"""Figures 4.7–4.10 — MDS coverage (and conditional coverage) of diversity
transformations for heap array resizes and immediate frees.

Paper shape: as with SDS, all heap array resizes are covered with implicit
diversity, and rearrange-heap is the only policy to detect all immediate
frees.
"""

from repro.eval import coverage, coverage_table, conditional_coverage_table
from repro.eval.metrics import by_variant
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE

from benchmarks.conftest import APPS, DIVERSITY_ORDER, once


def test_fig4_7_resize_coverage(benchmark, lab):
    def build():
        records = lab.campaign("diversity", "mds", HEAP_ARRAY_RESIZE)
        rows = lab.coverage_rows(records)
        text = coverage_table(
            "Fig 4.7: MDS heap-array-resize coverage (diversity transformations)",
            rows, DIVERSITY_ORDER, APPS,
        )
        return records, text

    records, text = once(benchmark, build)
    lab.emit("fig4.7", text)
    groups = by_variant(records)
    assert coverage(groups["no-diversity"]) == 1.0


def test_fig4_8_free_coverage(benchmark, lab):
    def build():
        records = lab.campaign("diversity", "mds", IMMEDIATE_FREE)
        rows = lab.coverage_rows(records)
        text = coverage_table(
            "Fig 4.8: MDS immediate-free coverage (diversity transformations)",
            rows, DIVERSITY_ORDER, APPS,
        )
        return records, text

    records, text = once(benchmark, build)
    lab.emit("fig4.8", text)
    groups = by_variant(records)
    rearrange = coverage(groups["rearrange-heap"])
    assert rearrange == 1.0
    for name, recs in groups.items():
        if name != "stdapp":
            assert rearrange >= coverage(recs), name


def test_fig4_9_resize_conditional(benchmark, lab):
    def build():
        records = lab.campaign("diversity", "mds", HEAP_ARRAY_RESIZE)
        rows = lab.conditional_rows(records)
        text = conditional_coverage_table(
            "Fig 4.9: MDS heap-array-resize conditional coverage "
            "(diversity transformations, all apps)",
            rows, DIVERSITY_ORDER,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig4.9", text)
    for name, cc in rows.items():
        if name != "stdapp" and cc.total_runs:
            assert cc.coverage >= 0.99, (name, cc)


def test_fig4_10_free_conditional(benchmark, lab):
    def build():
        records = lab.campaign("diversity", "mds", IMMEDIATE_FREE)
        rows = lab.conditional_rows(records)
        text = conditional_coverage_table(
            "Fig 4.10: MDS immediate-free conditional coverage "
            "(diversity transformations, all apps)",
            rows, DIVERSITY_ORDER,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig4.10", text)
    rh = rows.get("rearrange-heap")
    if rh is not None and rh.total_runs:
        assert rh.coverage == 1.0
