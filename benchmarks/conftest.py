"""Shared benchmark lab: caches campaigns so figures that share data
(e.g. Figs. 3.6/3.8 and Table 3.3) run the experiments once per session.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload scale multiplier (default 1);
* ``REPRO_BENCH_SEEDS`` — runs per experiment (default 1; the paper uses
  several runs per configuration);
* ``REPRO_BENCH_APPS``  — comma-separated subset of workloads;
* ``DPMR_JOBS``         — worker processes for the parallel campaign
  executor (default 1 = serial; results are bit-identical either way).

Each figure/table bench prints its rows and writes them under
``benchmarks/results/`` for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import pytest

from repro.apps import WORKLOAD_ORDER, app_factory
from repro.eval import (
    CoverageComponents,
    ExecConfig,
    ExperimentRecord,
    WorkloadHarness,
    by_variant,
    conditional_coverage_components,
    coverage_components,
    diversity_variants,
    job_for_harness,
    manifest_section,
    mean_time_to_detection,
    policy_variants,
    run,
    std_not_all_det_sites,
    stdapp_variant,
)
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))
N_SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "1"))
APPS = tuple(
    a
    for a in os.environ.get("REPRO_BENCH_APPS", ",".join(WORKLOAD_ORDER)).split(",")
    if a
)

RESULTS_DIR = Path(__file__).parent / "results"

DIVERSITY_ORDER = (
    "stdapp",
    "no-diversity",
    "zero-before-free",
    "rearrange-heap",
    "pad-malloc-8",
    "pad-malloc-32",
    "pad-malloc-256",
    "pad-malloc-1024",
)
POLICY_ORDER = (
    "stdapp",
    "all-loads",
    "temporal-1/8",
    "temporal-1/2",
    "temporal-7/8",
    "static-10%",
    "static-50%",
    "static-90%",
)


class BenchLab:
    """Session-wide cache of harnesses, campaigns, and overhead runs."""

    def __init__(self, scale: int = SCALE, n_seeds: int = N_SEEDS):
        self.scale = scale
        self.seeds = tuple(range(n_seeds))
        #: execution configuration (DPMR_JOBS, DPMR_TRACE, …) parsed once.
        self.config = ExecConfig.from_env()
        self._harnesses: Dict[str, WorkloadHarness] = {}
        self._campaigns: Dict[Tuple, List[ExperimentRecord]] = {}
        self._overheads: Dict[Tuple, Dict[Tuple[str, str], float]] = {}

    # -- harnesses ---------------------------------------------------------

    def harness(self, app: str) -> WorkloadHarness:
        if app not in self._harnesses:
            self._harnesses[app] = WorkloadHarness(
                app,
                app_factory(app, self.scale),
                seeds=self.seeds,
                config=self.config,
            )
        return self._harnesses[app]

    # -- variant families ------------------------------------------------------

    def variants(self, family: str, design: str):
        if family == "diversity":
            return [stdapp_variant()] + diversity_variants(design)
        if family == "policy":
            return [stdapp_variant()] + policy_variants(design)
        raise ValueError(family)

    # -- campaigns ----------------------------------------------------------------

    def campaign(
        self, family: str, design: str, kind: str
    ) -> List[ExperimentRecord]:
        """All fault-injection records for one (family, design, kind).

        All apps' experiment tuples go to one executor invocation, so with
        ``DPMR_JOBS>1`` the worker pool load-balances across apps while the
        aggregated record order stays identical to the serial per-app loop.
        """
        key = (family, design, kind)
        if key not in self._campaigns:
            variants = self.variants(family, design)
            jobs = [
                job_for_harness(self.harness(app), variants, kind) for app in APPS
            ]
            res = run(jobs, config=self.config)
            RESULTS_DIR.mkdir(exist_ok=True)
            res.manifest.write(
                str(RESULTS_DIR / f"manifest_{family}_{design}_{kind}.json")
            )
            print()
            print(manifest_section(res.manifest))
            self._campaigns[key] = res.records
        return self._campaigns[key]

    def overheads(self, family: str, design: str) -> Dict[Tuple[str, str], float]:
        """(variant, app) → overhead (Eq. 3.1) for non-FI runs."""
        key = (family, design)
        if key not in self._overheads:
            out: Dict[Tuple[str, str], float] = {}
            for app in APPS:
                h = self.harness(app)
                out[("golden", app)] = 1.0
                for variant in self.variants(family, design):
                    if not variant.dpmr:
                        continue
                    out[(variant.name, app)] = h.overhead(variant)
            self._overheads[key] = out
        return self._overheads[key]

    # -- aggregation helpers ------------------------------------------------------

    def coverage_rows(
        self, records: Iterable[ExperimentRecord]
    ) -> Dict[Tuple[str, str], CoverageComponents]:
        rows: Dict[Tuple[str, str], CoverageComponents] = {}
        per_variant: Dict[Tuple[str, str], List[ExperimentRecord]] = {}
        for r in records:
            per_variant.setdefault((r.variant, r.workload), []).append(r)
        for key, recs in per_variant.items():
            rows[key] = coverage_components(recs)
        return rows

    def conditional_rows(
        self, records: Iterable[ExperimentRecord]
    ) -> Dict[str, CoverageComponents]:
        records = list(records)
        groups = by_variant(records)
        qualifying = std_not_all_det_sites(groups.get("stdapp", []))
        return {
            name: conditional_coverage_components(recs, qualifying)
            for name, recs in groups.items()
        }

    def latency_rows(
        self, records: Iterable[ExperimentRecord]
    ) -> Dict[Tuple[str, str], Optional[float]]:
        per: Dict[Tuple[str, str], List[ExperimentRecord]] = {}
        for r in records:
            per.setdefault((r.variant, r.workload), []).append(r)
        return {k: mean_time_to_detection(v) for k, v in per.items()}

    # -- output ---------------------------------------------------------------------

    def emit(self, exp_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{exp_id}.txt"
        path.write_text(text + "\n")
        print()
        print(text)


@pytest.fixture(scope="session")
def lab() -> BenchLab:
    return BenchLab()


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
