"""Figure 3.15 — Overhead of state comparison policies (SDS,
rearrange-heap).

Paper shape: static load-checking reduces overhead (~1/3 speedup at 10%);
temporal load-checking *increases* overhead over all-loads because of the
per-load counter/branch bookkeeping.
"""

from repro.eval import overhead_table

from benchmarks.conftest import APPS, POLICY_ORDER, once

VARIANTS = ("golden",) + POLICY_ORDER[1:]


def test_fig3_15(benchmark, lab):
    def build():
        rows = lab.overheads("policy", "sds")
        text = overhead_table(
            "Fig 3.15: SDS overhead of state comparison policies "
            "(rearrange-heap diversity)",
            rows,
            VARIANTS,
            APPS,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig3.15", text)
    for app in APPS:
        all_loads = rows[("all-loads", app)]
        assert rows[("static-10%", app)] < all_loads, app
        assert rows[("temporal-1/8", app)] > all_loads, app
        assert rows[("static-10%", app)] < rows[("static-90%", app)], app
