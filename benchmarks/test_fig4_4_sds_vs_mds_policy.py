"""Figure 4.4 — Side-by-side comparison-policy overheads of SDS and MDS
(rearrange-heap; static policies and all-loads, as in the paper's figure).

Paper shape: pointer-heavy benchmarks gain from MDS; bzip2 roughly ties.
"""

from repro.eval import overhead_table

from benchmarks.conftest import APPS, once

VARIANTS = ("static-10%", "static-50%", "static-90%", "all-loads")


def test_fig4_4(benchmark, lab):
    def build():
        sds = lab.overheads("policy", "sds")
        mds = lab.overheads("policy", "mds")
        rows = {}
        order = []
        for v in VARIANTS:
            for label, table in (("SDS", sds), ("MDS", mds)):
                key = f"{label} {v}"
                order.append(key)
                for app in APPS:
                    rows[(key, app)] = table[(v, app)]
        text = overhead_table(
            "Fig 4.4: side-by-side comparison-policy overheads, SDS vs MDS",
            rows,
            order,
            APPS,
        )
        return sds, mds, text

    sds, mds, text = once(benchmark, build)
    lab.emit("fig4.4", text)
    for app in ("equake", "mcf"):
        if app in APPS:
            assert mds[("all-loads", app)] < sds[("all-loads", app)], app
