"""Figure 3.8 — Mean heap array resize *conditional* coverage of diversity
transformations (SDS), conditioned on incorrect output and StdNotAllDet.

Paper shape: restricted to faults where the standard application would
sometimes silently corrupt, DPMR variants retain full coverage.
"""

from repro.eval import conditional_coverage_table
from repro.faultinject import HEAP_ARRAY_RESIZE

from benchmarks.conftest import DIVERSITY_ORDER, once


def test_fig3_8(benchmark, lab):
    def build():
        records = lab.campaign("diversity", "sds", HEAP_ARRAY_RESIZE)
        rows = lab.conditional_rows(records)
        text = conditional_coverage_table(
            "Fig 3.8: SDS heap-array-resize conditional coverage "
            "(diversity transformations, all apps)",
            rows,
            DIVERSITY_ORDER,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig3.8", text)
    for name, cc in rows.items():
        if name == "stdapp" or cc.total_runs == 0:
            continue
        assert cc.coverage >= 0.99, (name, cc)
