#!/usr/bin/env python
"""Interpreter & campaign-executor micro-benchmark → ``BENCH_interp.json``.

Measures the two quantities the perf work of this repo is judged on:

* **interpreter throughput** — instructions/second of the mcf analog's
  golden run (the pure interpreter inner loop, no DPMR transform);
* **campaign wall-clock** — the full heap-array-resize campaign (all four
  apps, stdapp + all seven diversity variants under all-loads), serial vs
  the parallel executor and the incremental build path vs per-site full
  rebuilds, with record-level identity checks between all of them.  Each
  configuration is timed best-of-``CAMPAIGN_REPS`` (the container's
  wall-clock is noisy); PR 1's recorded ``serial_s`` was a single shot.
  The incremental path retains finished builds on its per-job
  ``JobBuildState``, so its best-of-N is the steady state a re-run campaign
  sees: later reps pay interpreter time only.  ``serial_full_rebuild_s``
  is the cold build-everything-per-site cost for comparison.

Writes ``BENCH_interp.json`` at the repo root so future PRs have a perf
trajectory to regress against.  The ``seed_baseline`` block is frozen: it
holds the numbers measured on the pre-fast-path seed tree (PR 1, same
single-core container) and must not be re-measured.

Usage::

    PYTHONPATH=src python benchmarks/perf_interp.py [jobs]

``jobs`` defaults to ``DPMR_JOBS`` or 4.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.apps import WORKLOAD_ORDER, app_factory
from repro.eval import (
    diversity_variants,
    job_for_harness,
    run_campaign_jobs,
    stdapp_variant,
    WorkloadHarness,
)
from repro.faultinject import HEAP_ARRAY_RESIZE
from repro.machine.process import run_process

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

#: Measured on the unmodified seed tree (commit 7b09b5c) on this same
#: 1-core container, before the interpreter fast path landed.  Frozen.
SEED_BASELINE = {
    "interp_mcf_scale6_ips": 700_481,
    "campaign_resize_diversity_serial_s": 3.0,
}

INTERP_SCALE = 6
INTERP_REPS = 3


def bench_interpreter() -> dict:
    module_factory = app_factory("mcf", INTERP_SCALE)
    best = None
    instructions = 0
    for _ in range(INTERP_REPS):
        module = module_factory()
        t0 = time.perf_counter()
        result = run_process(module)
        dt = time.perf_counter() - t0
        instructions = result.instructions
        best = dt if best is None else min(best, dt)
    return {
        "workload": "mcf",
        "scale": INTERP_SCALE,
        "instructions": instructions,
        "best_wall_s": round(best, 4),
        "instructions_per_s": round(instructions / best),
    }


def record_signature(r):
    return (
        r.workload,
        r.variant,
        r.site,
        r.run,
        r.result.status.value,
        r.result.exit_code,
        r.result.output_text,
        r.result.cycles,
        r.result.instructions,
        tuple(sorted(r.result.fault_activations.items())),
    )


CAMPAIGN_REPS = 3


def _timed_campaign(campaign_jobs, processes, incremental):
    """Best-of-N wall-clock (same methodology as the interpreter bench —
    this container's timings are noisy) plus the records of the last run."""
    best = None
    records = None
    for _ in range(CAMPAIGN_REPS):
        t0 = time.perf_counter()
        records = run_campaign_jobs(
            campaign_jobs, processes=processes, incremental=incremental
        )
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, records


def bench_campaign(jobs: int) -> dict:
    variants = [stdapp_variant()] + diversity_variants("sds")
    harnesses = [WorkloadHarness(a, app_factory(a, 1)) for a in WORKLOAD_ORDER]
    campaign_jobs = [
        job_for_harness(h, variants, HEAP_ARRAY_RESIZE) for h in harnesses
    ]

    # The default (incremental) path, the full-rebuild path it replaced, and
    # the parallel executor — every timing includes all build work.
    full_s, full = _timed_campaign(campaign_jobs, 1, incremental=False)
    serial_s, serial = _timed_campaign(campaign_jobs, 1, incremental=True)
    parallel_s, parallel = _timed_campaign(campaign_jobs, jobs, incremental=True)

    serial_sigs = [record_signature(r) for r in serial]
    identical = serial_sigs == [record_signature(r) for r in parallel]
    identical_inc = serial_sigs == [record_signature(r) for r in full]
    return {
        "kind": HEAP_ARRAY_RESIZE,
        "apps": list(WORKLOAD_ORDER),
        "variants": [v.name for v in variants],
        "records": len(serial),
        "serial_s": round(serial_s, 3),
        "serial_full_rebuild_s": round(full_s, 3),
        "parallel_s": round(parallel_s, 3),
        "jobs": jobs,
        "parallel_identical_to_serial": identical,
        "incremental_identical_to_full_rebuild": identical_inc,
        "speedup_parallel_vs_serial": round(serial_s / parallel_s, 2),
        "speedup_incremental_vs_full_rebuild": round(full_s / serial_s, 2),
        "speedup_serial_vs_seed": round(
            SEED_BASELINE["campaign_resize_diversity_serial_s"] / serial_s, 2
        ),
    }


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else int(
        os.environ.get("DPMR_JOBS", "4") or "4"
    )
    interp = bench_interpreter()
    campaign = bench_campaign(jobs)
    previous = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    payload = {
        "meta": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "note": (
                "single-core containers cannot show multiprocess speedup; "
                "the wall-clock win there comes from the interpreter fast "
                "path (compare against seed_baseline)"
            ),
        },
        "seed_baseline": SEED_BASELINE,
        "interp": dict(
            interp,
            speedup_vs_seed=round(
                interp["instructions_per_s"]
                / SEED_BASELINE["interp_mcf_scale6_ips"],
                2,
            ),
        ),
        "campaign": campaign,
    }
    # Preserve the build-path section maintained by benchmarks/perf_build.py.
    if "build" in previous:
        payload["build"] = previous["build"]
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if not campaign["parallel_identical_to_serial"]:
        sys.exit("FATAL: parallel campaign diverged from serial run")
    if not campaign["incremental_identical_to_full_rebuild"]:
        sys.exit("FATAL: incremental campaign diverged from full rebuild")


if __name__ == "__main__":
    main()
