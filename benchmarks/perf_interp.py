#!/usr/bin/env python
"""Interpreter & campaign-executor micro-benchmark → ``BENCH_interp.json``.

Measures the two quantities the perf work of this repo is judged on:

* **interpreter throughput** — instructions/second of the mcf analog's
  golden run (the pure interpreter inner loop, no DPMR transform), plus
  the same run under the compiled execution tier (``compiled`` section:
  throughput, speedup, and a full record-identity check);
* **campaign wall-clock** — the full heap-array-resize campaign (all four
  apps, stdapp + all seven diversity variants under all-loads), serial vs
  the parallel executor and the incremental build path vs per-site full
  rebuilds, with record-level identity checks between all of them.  Each
  configuration is timed best-of-``CAMPAIGN_REPS`` (the container's
  wall-clock is noisy); PR 1's recorded ``serial_s`` was a single shot.
  The incremental path retains finished builds on its per-job
  ``JobBuildState``, so its best-of-N is the steady state a re-run campaign
  sees: later reps pay interpreter time only.  ``serial_full_rebuild_s``
  is the cold build-everything-per-site cost for comparison.

The ``campaign_compiled`` section times the same campaign under the
*default* engine (the compiled tier, since PR 7) against an explicit
``compiled=False`` interpreter run — serial, best-of-N, full
record-signature identity — and records the codegen cache traffic of a
cold first run and a warm re-run (delta codegen makes per-site compiles
cheap; the caches make re-runs nearly free).

The ``inline_rt`` section compares the inlined-runtime engine (PR 8:
DPMR hooks folded into generated code, parametrised per diversity spec
at bind time, plus provenance-stamped delta transforms) against the
PR 7 compiled-default engine (``DPMR_INLINE_RT=0``), each arm from cold
process caches with fresh job objects per rep, and decomposes the
campaign into per-stage transform / codegen / run buckets.  It gates
warm speedup ≥1.3x, warm delta-transform hit rate ≥80%, and record
identity against both the old engine and the interpreter.

Writes ``BENCH_interp.json`` at the repo root so future PRs have a perf
trajectory to regress against.  The ``seed_baseline`` block is frozen: it
holds the numbers measured on the pre-fast-path seed tree (PR 1, same
single-core container) and must not be re-measured.  Every full run also
appends a compact ``history`` snapshot (date, git sha, headline ips and
campaign seconds), so the trajectory survives section rewrites.

Usage::

    PYTHONPATH=src python benchmarks/perf_interp.py [jobs]
    PYTHONPATH=src python benchmarks/perf_interp.py --smoke

``jobs`` defaults to ``DPMR_JOBS`` or 4.  ``--smoke`` is the CI
trace-overhead gate: it asserts structurally that machines without
observability bind the uninstrumented fast-path executor, A/B-measures the
disabled-tracer path against a bare machine (must be within 5% — they run
the identical loop, so this catches anyone re-introducing per-instruction
checks), replays a small traced campaign to verify T2D is recomputable
from the JSONL trace bit-identically, and gates the compiled execution
tier: structural engine selection, campaign record identity against the
interpreter, and ≥2x throughput on the smoke workload.  Absolute
throughput is only compared against ``seed_baseline`` in the full
(non-smoke) run, because cross-machine absolute comparisons are
meaningless in CI.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import sys
import time
from contextlib import contextmanager
from pathlib import Path

from repro.apps import WORKLOAD_ORDER, app_factory
from repro.eval import (
    ExecConfig,
    diversity_variants,
    job_for_harness,
    run_campaign_jobs,
    run_campaign_jobs_with_manifest,
    stdapp_variant,
    WorkloadHarness,
)
from repro.faultinject import HEAP_ARRAY_RESIZE
from repro.machine.process import run_process

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

#: Measured on the unmodified seed tree (commit 7b09b5c) on this same
#: 1-core container, before the interpreter fast path landed.  Frozen.
SEED_BASELINE = {
    "interp_mcf_scale6_ips": 700_481,
    "campaign_resize_diversity_serial_s": 3.0,
}

INTERP_SCALE = 6
INTERP_REPS = 3


@contextmanager
def _gc_disabled():
    """Timing hygiene: a cyclic-GC pass landing inside a timed run skews
    best-of-N, so every timing loop runs with the collector off (restored —
    and drained — afterwards)."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()


def bench_interpreter() -> dict:
    module_factory = app_factory("mcf", INTERP_SCALE)
    best = None
    instructions = 0
    for _ in range(INTERP_REPS):
        module = module_factory()
        with _gc_disabled():
            t0 = time.perf_counter()
            result = run_process(module)
            dt = time.perf_counter() - t0
        instructions = result.instructions
        best = dt if best is None else min(best, dt)
    return {
        "workload": "mcf",
        "scale": INTERP_SCALE,
        "instructions": instructions,
        "best_wall_s": round(best, 4),
        "instructions_per_s": round(instructions / best),
    }


# -- observability overhead ---------------------------------------------------

#: Disabled-path tolerance: a machine with no tracer/counters runs the
#: byte-identical pre-observability loop, so any gap beyond noise means a
#: per-instruction check crept back in.
TRACE_OVERHEAD_TOLERANCE = 0.05

SMOKE_SCALE = 4
SMOKE_REPS = 3


def _ips(scale: int, reps: int, **run_kwargs) -> float:
    """Best-of-N golden-run throughput (instructions/second) of mcf."""
    factory = app_factory("mcf", scale)
    best = None
    instructions = 0
    for _ in range(reps):
        module = factory()
        if run_kwargs.get("compiled"):
            # Binding (codegen + exec) is build-phase work, the analog of
            # the DPMR transform this bench also keeps outside the timed
            # region; campaigns amortize it through the content-addressed
            # cache.  bench_compiled() reports the bind cost separately.
            from repro.machine.compile import compiled_program_for

            compiled_program_for(module)
        with _gc_disabled():
            t0 = time.perf_counter()
            result = run_process(module, **run_kwargs)
            dt = time.perf_counter() - t0
        instructions = result.instructions
        best = dt if best is None else min(best, dt)
    return instructions / best


#: Minimum interleaved reps for the obs A/B: a median over fewer pairs is
#: dominated by single-quantum throttling artifacts on this container.
OBS_MIN_REPS = 5


def bench_obs(scale: int = SMOKE_SCALE, reps: int = SMOKE_REPS) -> dict:
    """Throughput of the observability paths relative to the bare machine.

    The three paths are measured in interleaved round-robin reps (bare,
    null-tracer, counters, repeat) rather than three sequential blocks:
    this container's throughput drifts over tens of seconds (CPU quota
    throttling), and sequential blocks charge that drift entirely to
    whichever path runs last — which is exactly the A/B the smoke gate
    hangs a 5% tolerance on.

    Overhead is a *paired* statistic: each rep yields one (bare, null)
    timing pair measured back to back, the per-rep overhead is computed
    within that pair, and the reported overhead is the **median across
    reps** with a minimum-rep floor.  The previous best-of-N quotient
    compared timings from different reps, so one slow throttling quantum
    landing in the bare arm produced a nonsensical negative overhead
    (BENCH once recorded -10.81%).  The two arms run the byte-identical
    loop, so a negative median is measurement noise by construction: it is
    clamped to 0 and flagged, with the raw value kept alongside.
    """
    from statistics import median

    from repro.obs import NullTracer

    reps = max(reps, OBS_MIN_REPS)
    factory = app_factory("mcf", scale)
    arms = {
        "bare": {},
        "null": {"tracer": NullTracer()},
        "counters": {"counters": True},
    }
    order = list(arms)
    best: dict = {k: None for k in arms}
    instructions: dict = {k: 0 for k in arms}
    null_overheads = []
    counter_slowdowns = []
    for rep in range(reps):
        rep_dt: dict = {}
        # Rotate the within-rep arm order: a fixed order hands every rep's
        # warm-up artifact to the same arm, which shows up as a systematic
        # (even negative) overhead the median cannot remove.
        for key in order[rep % 3:] + order[: rep % 3]:
            module = factory()
            with _gc_disabled():
                t0 = time.perf_counter()
                result = run_process(module, **arms[key])
                dt = time.perf_counter() - t0
            instructions[key] = result.instructions
            rep_dt[key] = dt
            if best[key] is None or dt < best[key]:
                best[key] = dt
        null_overheads.append((rep_dt["null"] / rep_dt["bare"] - 1) * 100)
        counter_slowdowns.append(rep_dt["counters"] / rep_dt["bare"])
    raw_overhead = median(null_overheads)
    return {
        "scale": scale,
        "reps": reps,
        "bare_ips": round(instructions["bare"] / best["bare"]),
        "null_tracer_ips": round(instructions["null"] / best["null"]),
        "counters_ips": round(instructions["counters"] / best["counters"]),
        "null_tracer_overhead_pct": round(max(0.0, raw_overhead), 2),
        "null_tracer_overhead_raw_pct": round(raw_overhead, 2),
        "overhead_clamped": raw_overhead < 0,
        "counters_slowdown_x": round(median(counter_slowdowns), 2),
    }


COMPILED_MIN_SPEEDUP = 3.0


def _full_signature(result):
    return (
        result.status.value,
        result.exit_code,
        result.output_text,
        result.cycles,
        result.instructions,
        tuple(sorted(result.fault_activations.items())),
        result.detail,
    )


def bench_compiled(interp_ips: float) -> dict:
    """Compiled-tier throughput on the same mcf golden run, plus the
    bit-identity check the tier's whole contract rests on."""
    from repro.machine.compile import compiled_program_for

    factory = app_factory("mcf", INTERP_SCALE)
    interp_result = run_process(factory())
    comp_result = run_process(factory(), compiled=True)
    identical = _full_signature(interp_result) == _full_signature(comp_result)
    # Bind cost for a fresh module with a warm content cache — the
    # steady-state cost a campaign pays per build (cold codegen happens
    # once per function text, ever).
    module = factory()
    t0 = time.perf_counter()
    compiled_program_for(module)
    bind_s = time.perf_counter() - t0
    comp_ips = _ips(INTERP_SCALE, INTERP_REPS, compiled=True)
    return {
        "workload": "mcf",
        "scale": INTERP_SCALE,
        "instructions_per_s": round(comp_ips),
        "interp_instructions_per_s": round(interp_ips),
        "bind_warm_ms": round(bind_s * 1000, 2),
        "records_identical": identical,
        "speedup_vs_interp": round(comp_ips / interp_ips, 2),
        "speedup_vs_seed": round(
            comp_ips / SEED_BASELINE["interp_mcf_scale6_ips"], 2
        ),
    }


def smoke() -> None:
    """CI gate: fast path intact, null tracer free, trace replay identical."""
    from repro.machine.interpreter import Machine
    from repro.obs import NullTracer, t2d_by_run

    # 1. Structural: no observability → the uninstrumented executor, no
    #    counter dict; a NullTracer must not change that.
    module = app_factory("mcf", 1)()
    m = Machine(module)
    assert m._exec.__func__ is Machine._exec_function, (
        "default Machine no longer binds the uninstrumented fast path"
    )
    assert m.tracer is None and m.counters is None
    m_null = Machine(app_factory("mcf", 1)(), tracer=NullTracer())
    assert m_null._exec.__func__ is Machine._exec_function, (
        "NullTracer must keep the uninstrumented fast path"
    )
    m_obs = Machine(app_factory("mcf", 1)(), counters=True)
    assert m_obs._exec.__func__ is Machine._exec_function_instrumented
    print("smoke: structural fast-path checks OK")

    # 2. A/B throughput: bare vs NullTracer run the identical loop, so the
    #    gap is pure noise — gate it at TRACE_OVERHEAD_TOLERANCE.
    obs = bench_obs()
    overhead = obs["null_tracer_overhead_pct"] / 100.0
    print(
        f"smoke: bare {obs['bare_ips']:,} ips, "
        f"null-tracer {obs['null_tracer_ips']:,} ips "
        f"({obs['null_tracer_overhead_pct']:+.2f}%)"
    )
    if overhead > TRACE_OVERHEAD_TOLERANCE:
        sys.exit(
            f"FATAL: disabled-tracer path is {overhead:.1%} slower than the "
            f"bare machine (tolerance {TRACE_OVERHEAD_TOLERANCE:.0%})"
        )

    # 3. End-to-end: a small traced campaign whose T2D must be recomputable
    #    from the JSONL trace alone, bit-identically.
    import tempfile

    from repro.eval import ExecConfig, WorkloadHarness, diversity_variants, run

    harness = WorkloadHarness("mcf", app_factory("mcf", 1))
    variants = [v for v in diversity_variants("sds") if v.name in
                ("no-diversity", "rearrange-heap")]
    with tempfile.TemporaryDirectory() as td:
        trace = os.path.join(td, "smoke.jsonl")
        res = run(
            harness,
            variants,
            kind=HEAP_ARRAY_RESIZE,
            config=ExecConfig(jobs=1, trace_path=trace),
        )
        replayed = t2d_by_run(trace)
        for r in res.records:
            rid = f"{r.workload}/{r.variant}/{r.site}/{r.run}"
            assert replayed[rid] == r.t2d, (
                f"trace-replayed T2D diverged for {rid}: "
                f"{replayed[rid]} != {r.t2d}"
            )
    print(
        f"smoke: T2D replayed bit-identically from trace for "
        f"{len(res.records)} records"
    )

    # 4. Compiled tier: selection is structural (observability always wins),
    #    a small campaign is record-identical across engines, and the
    #    speedup is real (≥2x on this short smoke workload; the full bench
    #    gates the ≥3x target at scale 6).
    m_comp = Machine(app_factory("mcf", 1)(), compiled=True)
    assert m_comp._exec.__func__ is Machine._exec_function_compiled, (
        "Machine(compiled=True) no longer binds the compiled tier"
    )
    m_comp_obs = Machine(app_factory("mcf", 1)(), compiled=True, counters=True)
    assert m_comp_obs._exec.__func__ is Machine._exec_function_instrumented, (
        "observability must override the compiled tier"
    )
    res_comp = run(
        harness,
        variants,
        kind=HEAP_ARRAY_RESIZE,
        config=ExecConfig(jobs=1, compiled=True),
    )
    res_interp = run(
        harness, variants, kind=HEAP_ARRAY_RESIZE, config=ExecConfig(jobs=1)
    )
    if [r.signature() for r in res_comp.records] != [
        r.signature() for r in res_interp.records
    ]:
        sys.exit("FATAL: compiled campaign records diverged from interpreter")
    assert res_comp.manifest.engine == "compiled"
    bare_ips = _ips(SMOKE_SCALE, SMOKE_REPS)
    comp_ips = _ips(SMOKE_SCALE, SMOKE_REPS, compiled=True)
    print(
        f"smoke: compiled {comp_ips:,.0f} ips vs interp {bare_ips:,.0f} ips "
        f"({comp_ips / bare_ips:.2f}x), campaign records identical"
    )
    if comp_ips < 2 * bare_ips:
        sys.exit(
            f"FATAL: compiled tier only {comp_ips / bare_ips:.2f}x the "
            "interpreter (smoke gate requires ≥2x)"
        )

    # 5. Campaign-level engine gate: the compiled tier is now the *default*
    #    campaign engine, and a default-config serial campaign must be
    #    signature-identical to an interpreter-default campaign and ≥2x
    #    faster end to end (the ISSUE-7 acceptance bar, also gated at full
    #    scale by the non-smoke run).
    assert ExecConfig().compiled is True, (
        "ExecConfig no longer defaults to the compiled engine"
    )
    assert ExecConfig.from_env({}).compiled is True, (
        "DPMR_COMPILE no longer defaults on"
    )
    # Big enough that run time (not per-experiment fixed cost — floored by
    # the per-run 4 MiB heap-garbage reset) dominates, small enough for CI:
    # one workload, the full diversity suite.
    gate_scale = 6
    gate_variants = diversity_variants("sds")
    gate_jobs = [
        job_for_harness(
            WorkloadHarness("mcf", app_factory("mcf", gate_scale)),
            gate_variants,
            HEAP_ARRAY_RESIZE,
        )
    ]
    comp_s, comp_records = _timed_campaign(gate_jobs, 1, True, compiled=True)
    interp_gate_jobs = [
        job_for_harness(
            WorkloadHarness("mcf", app_factory("mcf", gate_scale)),
            gate_variants,
            HEAP_ARRAY_RESIZE,
        )
    ]
    interp_s, interp_records = _timed_campaign(interp_gate_jobs, 1, True)
    if [r.signature() for r in comp_records] != [
        r.signature() for r in interp_records
    ]:
        sys.exit(
            "FATAL: compiled-default campaign records diverged from the "
            "interpreter-default campaign"
        )
    ratio = interp_s / comp_s
    print(
        f"smoke: compiled-default campaign {comp_s:.3f}s vs "
        f"interpreter-default {interp_s:.3f}s ({ratio:.2f}x), "
        f"{len(comp_records)} records identical"
    )
    if ratio < CAMPAIGN_COMPILED_MIN_SPEEDUP:
        sys.exit(
            f"FATAL: compiled-default campaign only {ratio:.2f}x the "
            f"interpreter (gate requires "
            f"≥{CAMPAIGN_COMPILED_MIN_SPEEDUP}x)"
        )

    # 6. Inlined-runtime gate: the default engine now folds the DPMR
    #    runtime hooks into generated code (PR 8); ``DPMR_INLINE_RT=0`` is
    #    the PR 7 compiled-default engine.  Both arms start from cold
    #    process caches and run twice on fresh job objects; the second rep
    #    is the warm steady state the bench gates at full scale.  The
    #    inlined campaign must be signature-identical to the interpreter
    #    campaign from step 5 and ≥INLINE_RT_MIN_SPEEDUP warm.
    from repro.machine.compile import reset_codegen_caches

    def _inline_arm(inline):
        reset_codegen_caches(code_cache=True)
        times, records = [], None
        for _ in range(2):
            arm_jobs = [
                job_for_harness(
                    WorkloadHarness("mcf", app_factory("mcf", gate_scale)),
                    gate_variants,
                    HEAP_ARRAY_RESIZE,
                )
            ]
            with _gc_disabled():
                t0 = time.perf_counter()
                records = run_campaign_jobs(
                    arm_jobs, config=ExecConfig(jobs=1, inline_rt=inline)
                )
                times.append(time.perf_counter() - t0)
        return times, records

    off_times, off_records = _inline_arm(False)
    on_times, on_records = _inline_arm(True)
    on_sigs = [r.signature() for r in on_records]
    if on_sigs != [r.signature() for r in interp_records]:
        sys.exit(
            "FATAL: inlined-runtime campaign records diverged from the "
            "interpreter campaign"
        )
    if on_sigs != [r.signature() for r in off_records]:
        sys.exit(
            "FATAL: inlined-runtime campaign records diverged from the "
            "compiled-default (DPMR_INLINE_RT=0) campaign"
        )
    inline_ratio = off_times[1] / on_times[1]
    print(
        f"smoke: inlined-runtime campaign warm {on_times[1]:.3f}s vs "
        f"compiled-default {off_times[1]:.3f}s ({inline_ratio:.2f}x, cold "
        f"{off_times[0] / on_times[0]:.2f}x), records identical to the "
        "interpreter"
    )
    if inline_ratio < INLINE_RT_MIN_SPEEDUP:
        sys.exit(
            f"FATAL: inlined-runtime campaign only {inline_ratio:.2f}x the "
            f"compiled-default engine warm (gate requires "
            f"≥{INLINE_RT_MIN_SPEEDUP}x)"
        )
    print("smoke: OK")


def record_signature(r):
    return (
        r.workload,
        r.variant,
        r.site,
        r.run,
        r.result.status.value,
        r.result.exit_code,
        r.result.output_text,
        r.result.cycles,
        r.result.instructions,
        tuple(sorted(r.result.fault_activations.items())),
    )


CAMPAIGN_REPS = 3


def _timed_campaign(campaign_jobs, processes, incremental, compiled=False):
    """Best-of-N wall-clock (same methodology as the interpreter bench —
    this container's timings are noisy) plus the records of the last run.

    ``compiled`` defaults to False here (overriding the ExecConfig default):
    the ``campaign`` section is the *interpreter* trajectory, and
    ``bench_campaign_compiled`` owns the compiled-engine comparison.
    """
    best = None
    records = None
    for _ in range(CAMPAIGN_REPS):
        with _gc_disabled():
            t0 = time.perf_counter()
            records = run_campaign_jobs(
                campaign_jobs,
                config=ExecConfig(
                    jobs=processes, incremental=incremental, compiled=compiled
                ),
            )
            dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, records


def bench_campaign(jobs: int) -> dict:
    variants = [stdapp_variant()] + diversity_variants("sds")
    harnesses = [WorkloadHarness(a, app_factory(a, 1)) for a in WORKLOAD_ORDER]
    campaign_jobs = [
        job_for_harness(h, variants, HEAP_ARRAY_RESIZE) for h in harnesses
    ]

    # The default (incremental) path, the full-rebuild path it replaced, and
    # the parallel executor — every timing includes all build work.
    full_s, full = _timed_campaign(campaign_jobs, 1, incremental=False)
    serial_s, serial = _timed_campaign(campaign_jobs, 1, incremental=True)
    parallel_s, parallel = _timed_campaign(campaign_jobs, jobs, incremental=True)

    serial_sigs = [record_signature(r) for r in serial]
    identical = serial_sigs == [record_signature(r) for r in parallel]
    identical_inc = serial_sigs == [record_signature(r) for r in full]
    return {
        "kind": HEAP_ARRAY_RESIZE,
        "apps": list(WORKLOAD_ORDER),
        "variants": [v.name for v in variants],
        "records": len(serial),
        "serial_s": round(serial_s, 3),
        "serial_full_rebuild_s": round(full_s, 3),
        "parallel_s": round(parallel_s, 3),
        "jobs": jobs,
        "parallel_identical_to_serial": identical,
        "incremental_identical_to_full_rebuild": identical_inc,
        "speedup_parallel_vs_serial": round(serial_s / parallel_s, 2),
        "speedup_incremental_vs_full_rebuild": round(full_s / serial_s, 2),
        "speedup_serial_vs_seed": round(
            SEED_BASELINE["campaign_resize_diversity_serial_s"] / serial_s, 2
        ),
    }


#: Campaign-level floor for the compiled-default engine vs the interpreter,
#: same session, serial: the ISSUE-7 acceptance bar.
CAMPAIGN_COMPILED_MIN_SPEEDUP = 2.0


def _fresh_campaign_jobs(variants):
    harnesses = [WorkloadHarness(a, app_factory(a, 1)) for a in WORKLOAD_ORDER]
    return [
        job_for_harness(h, variants, HEAP_ARRAY_RESIZE) for h in harnesses
    ]


def bench_campaign_compiled() -> dict:
    """The compiled-by-default campaign engine vs the interpreter, end to end.

    Times the same resize campaign as ``bench_campaign`` under the default
    (compiled) engine and under ``compiled=False``, serial, best-of-N, and
    checks full record-signature identity.  The cold manifest shows delta
    codegen keeping per-site compiles cheap on a first run (the 7 diversity
    variants share transformed function text, so one delta build serves all
    of them); the warm manifest re-runs the campaign on *fresh* module
    objects — the process-wide content/delta caches must then serve nearly
    everything, which is the hit-dominated steady state a resumed campaign
    sees.
    """
    variants = [stdapp_variant()] + diversity_variants("sds")

    comp_jobs = _fresh_campaign_jobs(variants)
    with _gc_disabled():
        t0 = time.perf_counter()
        comp_records, cold_manifest = run_campaign_jobs_with_manifest(
            comp_jobs, config=ExecConfig(jobs=1)
        )
        cold_s = time.perf_counter() - t0
    compiled_s, comp_records = _timed_campaign(comp_jobs, 1, True, compiled=True)

    interp_jobs = _fresh_campaign_jobs(variants)
    interp_s, interp_records = _timed_campaign(interp_jobs, 1, True)

    # Fresh module objects: every L1 memo misses, so this manifest shows the
    # content-addressed + delta caches carrying a warm re-run.
    warm_jobs = _fresh_campaign_jobs(variants)
    _, warm_manifest = run_campaign_jobs_with_manifest(
        warm_jobs, config=ExecConfig(jobs=1)
    )

    identical = [r.signature() for r in comp_records] == [
        r.signature() for r in interp_records
    ]
    return {
        "kind": HEAP_ARRAY_RESIZE,
        "apps": list(WORKLOAD_ORDER),
        "variants": [v.name for v in variants],
        "records": len(comp_records),
        "serial_s": round(compiled_s, 3),
        "cold_serial_s": round(cold_s, 3),
        "interp_serial_s": round(interp_s, 3),
        "records_identical": identical,
        "speedup_vs_interp": round(interp_s / compiled_s, 2),
        "speedup_vs_seed": round(
            SEED_BASELINE["campaign_resize_diversity_serial_s"] / compiled_s, 2
        ),
        "codegen_cold": {
            "hits": cold_manifest.codegen_hits,
            "misses": cold_manifest.codegen_misses,
        },
        "codegen_warm": {
            "hits": warm_manifest.codegen_hits,
            "misses": warm_manifest.codegen_misses,
        },
    }


#: Campaign-level floor for the inlined-runtime engine vs the PR 7
#: compiled-default engine (``DPMR_INLINE_RT=0``), warm fresh-jobs reps.
INLINE_RT_MIN_SPEEDUP = 1.3
#: Minimum warm delta-transform hit rate: of the per-site transform builds,
#: the fraction served by instruction-granular journal replay (splices)
#: rather than whole-function re-translation (refusals).
INLINE_RT_MIN_DELTA_HIT_RATE = 0.8


def _staged_inline_sweep(inline: bool) -> dict:
    """Per-stage wall-clock of the resize campaign's build pipeline.

    Decomposes each (app, variant, site) experiment into the three stages
    the inlined-runtime work targets — DPMR *transform* (base incremental
    compiler construction + per-site delta builds), *codegen* (compiled
    program for the base and each faulty module, under the variant's
    runtime spec when ``inline``), and *run* (compiled execution) — and
    buckets the seconds per stage.  Uses the diversity variants only: the
    stdapp variant has no DPMR transform, so it has no transform/codegen
    split to attribute.  Also tallies the delta-transform journal-replay
    stats accumulated by the incremental compilers.
    """
    from repro.core.runtime import diversity_codegen_spec
    from repro.faultinject.injector import inject
    from repro.machine.compile import compiled_program_for, set_inline_runtime

    variants = diversity_variants("sds")
    prev = set_inline_runtime(inline)
    try:
        with _gc_disabled():
            t_tx = t_cg = t_run = 0.0
            experiments = 0
            splices = refusals = replayed = translated = 0
            for app in WORKLOAD_ORDER:
                job = job_for_harness(
                    WorkloadHarness(app, app_factory(app, 1)),
                    variants,
                    HEAP_ARRAY_RESIZE,
                )
                pristine = job.factory()
                t0 = time.perf_counter()
                compilers = [
                    v.incremental_compiler(pristine) for v in job.variants
                ]
                t_tx += time.perf_counter() - t0
                specs = [
                    diversity_codegen_spec(c.compiler.diversity)
                    if inline
                    else None
                    for c in compilers
                ]
                t0 = time.perf_counter()
                for inc, spec in zip(compilers, specs):
                    compiled_program_for(inc.base_module, spec)
                t_cg += time.perf_counter() - t0
                for site in job.sites:
                    for inc, spec in zip(compilers, specs):
                        t0 = time.perf_counter()
                        clone = pristine.clone(mutable_functions=(site.function,))
                        faulty = inject(clone, site, job.percent)
                        build = inc.compile(faulty)
                        t1 = time.perf_counter()
                        compiled_program_for(build.module, spec)
                        t2 = time.perf_counter()
                        build.run(
                            argv=job.argv,
                            max_cycles=job.timeout,
                            seed=job.seeds[0],
                            compiled=True,
                        )
                        t3 = time.perf_counter()
                        t_tx += t1 - t0
                        t_cg += t2 - t1
                        t_run += t3 - t2
                        experiments += 1
                for inc in compilers:
                    splices += inc.stats.delta_splices
                    refusals += inc.stats.delta_refusals
                    replayed += inc.stats.replayed_instructions
                    translated += inc.stats.translated_instructions
        delta_total = splices + refusals
        replay_total = replayed + translated
        return {
            "transform_s": round(t_tx, 3),
            "codegen_s": round(t_cg, 3),
            "run_s": round(t_run, 3),
            "total_s": round(t_tx + t_cg + t_run, 3),
            "experiments": experiments,
            "delta_splices": splices,
            "delta_refusals": refusals,
            "delta_hit_rate": round(splices / delta_total, 3)
            if delta_total
            else None,
            "delta_replay_rate": round(replayed / replay_total, 3)
            if replay_total
            else None,
        }
    finally:
        set_inline_runtime(prev)


def bench_inline_rt() -> dict:
    """The inlined-runtime engine vs the PR 7 compiled-default engine.

    Both arms run the same resize campaign as ``bench_campaign_compiled``
    through the real executor, serial.  Each arm starts from fully cold
    process caches (``reset_codegen_caches(code_cache=True)``) and runs
    ``CAMPAIGN_REPS`` reps on *fresh* job objects each rep: rep 0 is the
    cold first-campaign cost, the best of the later reps is the warm
    steady state (process caches hot, every per-module L1 memo cold) that
    a resumed or multi-workload campaign sees.  Fresh jobs per rep matter:
    reusing job objects would retain finished builds and time nothing but
    runs.  The ``stages`` sub-section decomposes the same sweep into
    transform / codegen / run buckets, cold and warm, per arm; delta
    stats come from the warm ON sweep.  Signature identity is checked
    three ways: ON vs OFF, and ON vs a plain interpreter campaign.
    """
    from repro.machine.compile import reset_codegen_caches

    variants = [stdapp_variant()] + diversity_variants("sds")
    arm_times = {}
    arm_records = {}
    for label, inline in (("off", False), ("on", True)):
        reset_codegen_caches(code_cache=True)
        reps = []
        records = None
        for _ in range(CAMPAIGN_REPS):
            jobs = _fresh_campaign_jobs(variants)
            with _gc_disabled():
                t0 = time.perf_counter()
                records = run_campaign_jobs(
                    jobs, config=ExecConfig(jobs=1, inline_rt=inline)
                )
                reps.append(time.perf_counter() - t0)
        arm_times[label] = (reps[0], min(reps[1:]))
        arm_records[label] = records

    interp_jobs = _fresh_campaign_jobs(variants)
    interp_records = run_campaign_jobs(
        interp_jobs, config=ExecConfig(jobs=1, compiled=False)
    )

    stage_arms = {}
    for label, inline in (("off", False), ("on", True)):
        reset_codegen_caches(code_cache=True)
        cold = _staged_inline_sweep(inline)
        warm = _staged_inline_sweep(inline)
        stage_arms[label] = {"cold": cold, "warm": warm}

    on_sigs = [r.signature() for r in arm_records["on"]]
    identical_off = on_sigs == [r.signature() for r in arm_records["off"]]
    identical_interp = on_sigs == [r.signature() for r in interp_records]
    off_cold, off_warm = arm_times["off"]
    on_cold, on_warm = arm_times["on"]
    warm_delta = stage_arms["on"]["warm"]
    return {
        "kind": HEAP_ARRAY_RESIZE,
        "apps": list(WORKLOAD_ORDER),
        "variants": [v.name for v in variants],
        "records": len(arm_records["on"]),
        "off_cold_s": round(off_cold, 3),
        "off_warm_s": round(off_warm, 3),
        "on_cold_s": round(on_cold, 3),
        "on_warm_s": round(on_warm, 3),
        "speedup_cold": round(off_cold / on_cold, 2),
        "speedup_warm": round(off_warm / on_warm, 2),
        "records_identical_to_compiled_default": identical_off,
        "records_identical_to_interp": identical_interp,
        "stages": stage_arms,
        "delta_hit_rate_warm": warm_delta["delta_hit_rate"],
        "delta_replay_rate_warm": warm_delta["delta_replay_rate"],
    }


def _git_sha() -> str:
    try:
        import subprocess

        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=str(OUT_PATH.parent),
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def main() -> None:
    if "--smoke" in sys.argv[1:]:
        smoke()
        return
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else int(
        os.environ.get("DPMR_JOBS", "4") or "4"
    )
    interp = bench_interpreter()
    compiled = bench_compiled(interp["instructions_per_s"])
    obs = bench_obs()
    campaign = bench_campaign(jobs)
    campaign_compiled = bench_campaign_compiled()
    inline_rt = bench_inline_rt()
    previous = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    payload = {
        "meta": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "note": (
                "single-core containers cannot show multiprocess speedup; "
                "the wall-clock win there comes from the interpreter fast "
                "path (compare against seed_baseline)"
            ),
        },
        "seed_baseline": SEED_BASELINE,
        "interp": dict(
            interp,
            speedup_vs_seed=round(
                interp["instructions_per_s"]
                / SEED_BASELINE["interp_mcf_scale6_ips"],
                2,
            ),
        ),
        "compiled": compiled,
        "obs": obs,
        "campaign": campaign,
        "campaign_compiled": campaign_compiled,
        "inline_rt": inline_rt,
    }
    # Preserve the sections maintained by perf_build.py / perf_store.py.
    for section in ("build", "store"):
        if section in previous:
            payload[section] = previous[section]
    # Per-PR trajectory: append a compact snapshot instead of silently
    # overwriting — the headline numbers of every bench run stay
    # reconstructible from the file alone.  A re-run at the same commit
    # updates its entry rather than duplicating it.
    sha = _git_sha()
    snapshot = {
        "date": time.strftime("%Y-%m-%d"),
        "git_sha": sha,
        "interp_ips": interp["instructions_per_s"],
        "compiled_ips": compiled["instructions_per_s"],
        "campaign_serial_s": campaign["serial_s"],
        "campaign_compiled_serial_s": campaign_compiled["serial_s"],
        "inline_rt_warm_s": inline_rt["on_warm_s"],
        "inline_rt_speedup_warm": inline_rt["speedup_warm"],
    }
    payload["history"] = [
        h for h in previous.get("history", []) if h.get("git_sha") != sha
    ] + [snapshot]
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if not campaign["parallel_identical_to_serial"]:
        sys.exit("FATAL: parallel campaign diverged from serial run")
    if not campaign["incremental_identical_to_full_rebuild"]:
        sys.exit("FATAL: incremental campaign diverged from full rebuild")
    if not compiled["records_identical"]:
        sys.exit("FATAL: compiled golden run diverged from the interpreter")
    if compiled["speedup_vs_interp"] < COMPILED_MIN_SPEEDUP:
        sys.exit(
            f"FATAL: compiled tier {compiled['speedup_vs_interp']}x vs "
            f"interpreter, below the {COMPILED_MIN_SPEEDUP}x target"
        )
    if not campaign_compiled["records_identical"]:
        sys.exit("FATAL: compiled-default campaign diverged from interpreter")
    if campaign_compiled["speedup_vs_interp"] < CAMPAIGN_COMPILED_MIN_SPEEDUP:
        sys.exit(
            f"FATAL: compiled-default campaign only "
            f"{campaign_compiled['speedup_vs_interp']}x vs the interpreter "
            f"(target ≥{CAMPAIGN_COMPILED_MIN_SPEEDUP}x)"
        )
    if not inline_rt["records_identical_to_compiled_default"]:
        sys.exit(
            "FATAL: inlined-runtime campaign diverged from the "
            "compiled-default campaign"
        )
    if not inline_rt["records_identical_to_interp"]:
        sys.exit("FATAL: inlined-runtime campaign diverged from interpreter")
    if inline_rt["speedup_warm"] < INLINE_RT_MIN_SPEEDUP:
        sys.exit(
            f"FATAL: inlined-runtime campaign only "
            f"{inline_rt['speedup_warm']}x the compiled-default engine warm "
            f"(target ≥{INLINE_RT_MIN_SPEEDUP}x)"
        )
    if (
        inline_rt["delta_hit_rate_warm"] is None
        or inline_rt["delta_hit_rate_warm"] < INLINE_RT_MIN_DELTA_HIT_RATE
    ):
        sys.exit(
            f"FATAL: warm delta-transform hit rate "
            f"{inline_rt['delta_hit_rate_warm']} below "
            f"{INLINE_RT_MIN_DELTA_HIT_RATE}"
        )
    if obs["null_tracer_overhead_pct"] > TRACE_OVERHEAD_TOLERANCE * 100:
        sys.exit(
            "FATAL: disabled-tracer path exceeds the "
            f"{TRACE_OVERHEAD_TOLERANCE:.0%} overhead budget "
            f"({obs['null_tracer_overhead_pct']:+.2f}%)"
        )


if __name__ == "__main__":
    main()
