"""Figure 3.7 — Mean immediate free coverage of diversity transformations
(SDS, all-loads).

Paper shape: coverage high; rearrange-heap is the best-performing diversity
transformation and the only one covering 100% of immediate frees.
"""

from repro.eval import coverage, coverage_table
from repro.eval.metrics import by_variant
from repro.faultinject import IMMEDIATE_FREE

from benchmarks.conftest import APPS, DIVERSITY_ORDER, once


def test_fig3_7(benchmark, lab):
    def build():
        records = lab.campaign("diversity", "sds", IMMEDIATE_FREE)
        rows = lab.coverage_rows(records)
        text = coverage_table(
            "Fig 3.7: SDS immediate-free coverage (diversity transformations)",
            rows,
            DIVERSITY_ORDER,
            APPS,
        )
        return records, text

    records, text = once(benchmark, build)
    lab.emit("fig3.7", text)
    groups = by_variant(records)
    rearrange = coverage(groups["rearrange-heap"])
    assert rearrange == 1.0
    for name, recs in groups.items():
        if name == "stdapp":
            continue
        assert rearrange >= coverage(recs), name
