"""Ablation — how much coverage comes from *implicit* diversity alone?

§2.1 claims intra-process replication provides implicit diversity "for
free": interleaved allocation means the object adjacent to ``X`` is usually
``X_r``, so an overflow corrupts unpaired objects and the replicated loads
diverge.  §3.7 then observes that implicit diversity alone covers 100% of
heap array resizes.

This ablation replaces the interleaved layout with a segregated,
layout-mirroring replica arena (process-replication style) and re-runs the
heap-array-resize campaign.  Expected shape: the segregated layout loses
DPMR detections that the interleaved layout catches, demonstrating that the
paper's intra-process design choice is load-bearing.
"""

from repro.core.diversity import NoDiversity, SegregatedReplicas
from repro.eval import Variant, coverage_components
from repro.eval.metrics import by_variant
from repro.faultinject import HEAP_ARRAY_RESIZE

from benchmarks.conftest import APPS, once


def test_ablation_implicit_diversity(benchmark, lab):
    def build():
        variants = [
            Variant(name="interleaved (paper)", design="sds", diversity=NoDiversity()),
            Variant(name="segregated (ablation)", design="sds", diversity=SegregatedReplicas()),
        ]
        records = []
        for app in APPS:
            records.extend(
                lab.harness(app).run_campaign(variants, HEAP_ARRAY_RESIZE)
            )
        groups = by_variant(records)
        rows = {name: coverage_components(recs) for name, recs in groups.items()}
        lines = [
            "Ablation: implicit diversity (interleaved vs segregated replicas)",
            "=" * 66,
            f"{'layout':<24} {'CO':>6} {'NatDet':>7} {'DpmrDet':>8} {'coverage':>9}",
            "-" * 60,
        ]
        for name in ("interleaved (paper)", "segregated (ablation)"):
            c = rows[name]
            lines.append(
                f"{name:<24} {c.co:>6.2f} {c.ndet:>7.2f} {c.ddet:>8.2f} "
                f"{c.coverage:>9.2f}"
            )
        return rows, "\n".join(lines)

    rows, text = once(benchmark, build)
    lab.emit("ablation-implicit-diversity", text)
    interleaved = rows["interleaved (paper)"]
    segregated = rows["segregated (ablation)"]
    # The interleaved layout must detect strictly more via DPMR comparison.
    assert interleaved.ddet > segregated.ddet
    assert interleaved.coverage >= segregated.coverage
