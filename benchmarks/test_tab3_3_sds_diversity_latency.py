"""Table 3.3 — Mean time to detection of diversity transformations (SDS).

Paper shape: rearrange-heap drastically outperforms the other policies on
art and is comparable elsewhere.  (Latency is reported in kilocycles; the
paper reports milliseconds on its testbed.)
"""

from repro.eval import latency_table
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE

from benchmarks.conftest import APPS, DIVERSITY_ORDER, once


def test_tab3_3(benchmark, lab):
    def build():
        parts = []
        for kind in (HEAP_ARRAY_RESIZE, IMMEDIATE_FREE):
            records = [
                r
                for r in lab.campaign("diversity", "sds", kind)
                if r.variant != "stdapp"
            ]
            rows = lab.latency_rows(records)
            parts.append(
                latency_table(
                    f"Table 3.3 ({kind}): SDS mean time to detection, "
                    "diversity transformations",
                    rows,
                    DIVERSITY_ORDER[1:],
                    APPS,
                )
            )
        return "\n\n".join(parts)

    text = once(benchmark, build)
    lab.emit("tab3.3", text)
    assert "rearrange-heap" in text
