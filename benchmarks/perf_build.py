#!/usr/bin/env python
"""Campaign build-path benchmark → ``build`` section of ``BENCH_interp.json``.

Measures what the incremental recompilation layer (core/incremental.py)
actually buys for fault-injection campaigns, separated from interpreter run
time:

* **full-rebuild build time** — the PR 1 path: one ``factory()`` call plus a
  whole-module DPMR transform (with whole-module verification) per
  ``(site, variant)``;
* **incremental cold build time** — one pristine snapshot and one base
  transform per variant, then per site a copy-on-write clone plus a
  re-transform of only the function containing the fault (every compile a
  content-hash memo miss: the campaign's first pass);
* **incremental warm build time** — the same compiles again, now served
  from the content-addressed memo (repeat passes, multi-seed campaigns,
  and the parallel executor re-using coordinator state).

Every timed configuration is also checked for byte-identical transformed
modules against the full-rebuild path, and ``--smoke`` runs that identity
check alone (small campaign, both fault kinds, exits non-zero on any
divergence) so CI can gate on it cheaply.

Usage::

    PYTHONPATH=src python benchmarks/perf_build.py          # measure + update BENCH
    PYTHONPATH=src python benchmarks/perf_build.py --smoke  # CI identity gate
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

from repro.apps import WORKLOAD_ORDER, app_factory
from repro.eval import (
    ExecConfig,
    WorkloadHarness,
    diversity_variants,
    job_for_harness,
    prepare_build_states,
    run_campaign_jobs,
    stdapp_variant,
)
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE
from repro.faultinject.campaign import Campaign
from repro.faultinject.injector import inject
from repro.ir.printer import format_module

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

REPS = 3


def _campaigns():
    for app in WORKLOAD_ORDER:
        yield app, Campaign(app_factory(app, 1), HEAP_ARRAY_RESIZE)


def _dpmr_variants():
    return diversity_variants("sds")


def bench_build_paths() -> dict:
    """Time every DPMR (site, variant) build of the resize campaign."""
    campaigns = list(_campaigns())
    variants = _dpmr_variants()
    n_compiles = sum(len(c.sites) for _, c in campaigns) * len(variants)

    def full_pass():
        for app, camp in campaigns:
            factory = camp.factory
            for v in variants:
                for s in camp.sites:
                    v.compile(inject(factory(), s, camp.percent))

    def cold_pass():
        for app, camp in campaigns:
            incs = [v.incremental_compiler(camp.pristine) for v in variants]
            for v, ic in zip(variants, incs):
                for s in camp.sites:
                    ic.compile(camp.faulty_module(s))

    # Warm: same compilers kept across passes → content-hash memo hits.
    warm_incs = [
        [v.incremental_compiler(camp.pristine) for v in variants]
        for _, camp in campaigns
    ]

    def warm_pass():
        for (app, camp), incs in zip(campaigns, warm_incs):
            for v, ic in zip(variants, incs):
                for s in camp.sites:
                    ic.compile(camp.faulty_module(s))

    def best_of(f):
        f()  # warm caches (imports, memo for warm_pass)
        best = None
        for _ in range(REPS):
            # GC off during the timed region: a collector pass landing
            # mid-run skews best-of-N on this noisy container.
            gc.disable()
            try:
                t0 = time.perf_counter()
                f()
                dt = time.perf_counter() - t0
            finally:
                gc.enable()
            gc.collect()
            best = dt if best is None else min(best, dt)
        return best

    full_s = best_of(full_pass)
    cold_s = best_of(cold_pass)
    warm_s = best_of(warm_pass)

    stats_hits = sum(ic.stats.hits for incs in warm_incs for ic in incs)
    stats_misses = sum(ic.stats.misses for incs in warm_incs for ic in incs)
    return {
        "dpmr_compiles": n_compiles,
        "full_rebuild_s": round(full_s, 3),
        "incremental_cold_s": round(cold_s, 3),
        "incremental_warm_s": round(warm_s, 3),
        "full_rebuild_ms_per_compile": round(full_s / n_compiles * 1000, 2),
        "incremental_cold_ms_per_compile": round(cold_s / n_compiles * 1000, 2),
        "incremental_warm_ms_per_compile": round(warm_s / n_compiles * 1000, 2),
        "speedup_warm_vs_full": round(full_s / warm_s, 2),
        "speedup_cold_vs_full": round(full_s / cold_s, 2),
        "cache_hits": stats_hits,
        "cache_misses": stats_misses,
        "cache_hit_rate": round(
            stats_hits / (stats_hits + stats_misses), 3
        )
        if stats_hits + stats_misses
        else 0.0,
    }


def check_identity(apps, kinds, variants) -> list:
    """Byte-compare incremental vs full-rebuild transformed modules and
    campaign records; returns a list of divergence descriptions."""
    failures = []
    for app in apps:
        harness = WorkloadHarness(app, app_factory(app, 1))
        for kind in kinds:
            camp = Campaign(harness.factory, kind)
            if not camp.sites:
                continue
            # module-text identity, per (variant, site)
            for v in variants:
                if not v.dpmr:
                    continue
                ic = v.incremental_compiler(camp.pristine)
                for s in camp.sites:
                    full = v.compile(inject(harness.factory(), s, camp.percent))
                    fast = v.compile_incremental(ic, camp.faulty_module(s))
                    if format_module(full._build.module) != format_module(
                        fast._build.module
                    ):
                        failures.append(f"module text: {app}/{kind}/{v.name}/{s.site_id}")
                if ic.stats.hits + ic.stats.misses == 0 or ic.stats.full_rebuilds:
                    failures.append(f"cache never engaged: {app}/{kind}/{v.name}")
            # record identity through the executor
            job = job_for_harness(harness, variants, kind)
            full = run_campaign_jobs([job], config=ExecConfig(incremental=False))
            inc = run_campaign_jobs([job], config=ExecConfig(incremental=True))
            sig = lambda r: (
                r.workload,
                r.variant,
                r.site,
                r.run,
                r.result.status.value,
                r.result.exit_code,
                r.result.output_text,
                r.result.cycles,
                r.result.instructions,
                tuple(sorted(r.result.fault_activations.items())),
            )
            if [sig(r) for r in full] != [sig(r) for r in inc]:
                failures.append(f"records: {app}/{kind}")
    return failures


def smoke() -> None:
    variants = [stdapp_variant()] + _dpmr_variants()[:3]
    failures = check_identity(
        ("mcf", "equake"), (HEAP_ARRAY_RESIZE, IMMEDIATE_FREE), variants
    )
    if failures:
        for f in failures:
            print(f"DIVERGED: {f}", file=sys.stderr)
        sys.exit(1)
    print("smoke OK: incremental builds byte-identical to full rebuilds")


def main() -> None:
    if "--smoke" in sys.argv[1:]:
        smoke()
        return
    variants = [stdapp_variant()] + _dpmr_variants()
    failures = check_identity(
        WORKLOAD_ORDER, (HEAP_ARRAY_RESIZE, IMMEDIATE_FREE), variants
    )
    build = bench_build_paths()
    build["identical_to_full_rebuild"] = not failures
    payload = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    payload["build"] = build
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(build, indent=2))
    if failures:
        for f in failures:
            print(f"DIVERGED: {f}", file=sys.stderr)
        sys.exit("FATAL: incremental build diverged from full rebuild")


if __name__ == "__main__":
    main()
