"""Table 4.5 — Mean time to detection of diversity transformations (MDS).

Paper shape: very similar to the SDS latencies of Table 3.3; rearrange-heap
has much lower latency on art and comparable latency elsewhere.
"""

from repro.eval import latency_table
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE

from benchmarks.conftest import APPS, DIVERSITY_ORDER, once


def test_tab4_5(benchmark, lab):
    def build():
        parts = []
        for kind in (HEAP_ARRAY_RESIZE, IMMEDIATE_FREE):
            records = [
                r
                for r in lab.campaign("diversity", "mds", kind)
                if r.variant != "stdapp"
            ]
            rows = lab.latency_rows(records)
            parts.append(
                latency_table(
                    f"Table 4.5 ({kind}): MDS mean time to detection, "
                    "diversity transformations",
                    rows, DIVERSITY_ORDER[1:], APPS,
                )
            )
        return "\n\n".join(parts)

    text = once(benchmark, build)
    lab.emit("tab4.5", text)
    assert "rearrange-heap" in text
