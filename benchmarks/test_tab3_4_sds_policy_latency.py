"""Table 3.4 — Mean time to detection of state comparison policies (SDS).

Paper shape: static load-checking latencies are comparable to (sometimes
below) all-loads; temporal load-checking latencies tend to be higher.
"""

from repro.eval import latency_table
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE

from benchmarks.conftest import APPS, POLICY_ORDER, once


def test_tab3_4(benchmark, lab):
    def build():
        parts = []
        for kind in (HEAP_ARRAY_RESIZE, IMMEDIATE_FREE):
            records = [
                r
                for r in lab.campaign("policy", "sds", kind)
                if r.variant != "stdapp"
            ]
            rows = lab.latency_rows(records)
            parts.append(
                latency_table(
                    f"Table 3.4 ({kind}): SDS mean time to detection, "
                    "comparison policies",
                    rows,
                    POLICY_ORDER[1:],
                    APPS,
                )
            )
        return "\n\n".join(parts)

    text = once(benchmark, build)
    lab.emit("tab3.4", text)
    assert "all-loads" in text
