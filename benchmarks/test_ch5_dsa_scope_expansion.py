"""Chapter 5 — DSA scope expansion (qualitative evaluation).

The chapter's claim is functional rather than tabular: programs with
int-to-pointer casts and pointers masquerading as integers, which SDS/MDS
must reject (§2.9/§4.4), run correctly under MDS with a DSA-derived
replication plan, while the *replicated* portion of the program keeps its
detection capability.  This bench quantifies the refined partial replica
(how many operations stay replicated) and its overhead.
"""

import pytest

from repro.core import DpmrCompiler, DpmrTransformError
from repro.dsa import DsaReplicationPlan
from repro.ir import INT32, INT64, ModuleBuilder, VOID, verify_module
from repro.machine import ExitStatus, run_process

from benchmarks.conftest import once


def build_mixed_program(n: int = 60):
    """Half the work happens through an int-escaped pointer (unreplicated),
    half through ordinary heap arrays (replicated)."""
    mb = ModuleBuilder("ch5-mixed")
    mb.declare_external("print_i64", VOID, [INT64])
    fn, b = mb.define("main", INT32)
    escaped = b.malloc(INT64, b.i64(n))
    handle = b.ptr_to_int(b.elem_addr(escaped, b.i64(0)))  # escapes to int
    clean = b.malloc(INT64, b.i64(n))
    with b.for_range(b.i64(n)) as i:
        b.store(b.elem_addr(clean, i), b.mul(i, b.i64(3)))
        off = b.mul(i, b.i64(8))
        p = b.int_to_ptr(b.add(handle, off), INT64)
        b.store(p, b.add(i, b.i64(100)))
    total = b.alloca(INT64)
    b.store(total, b.i64(0))
    with b.for_range(b.i64(n)) as i:
        a = b.load(b.elem_addr(clean, i))
        off = b.mul(i, b.i64(8))
        p = b.int_to_ptr(b.add(handle, off), INT64)
        c = b.load(p)
        b.store(total, b.add(b.load(total), b.add(a, c)))
    b.call("print_i64", [b.load(total)])
    b.free(escaped)
    b.free(clean)
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


def test_ch5_scope_expansion(benchmark, lab):
    def build():
        golden = run_process(build_mixed_program())
        assert golden.status is ExitStatus.NORMAL

        # Plain MDS rejects the program outright.
        rejected = False
        try:
            DpmrCompiler(design="mds").compile(build_mixed_program())
        except DpmrTransformError:
            rejected = True

        m = build_mixed_program()
        plan = DsaReplicationPlan(m)
        summary = plan.summary()
        result = DpmrCompiler(design="mds", plan=plan).compile(m).run()
        lines = [
            "Ch. 5: DSA scope expansion (MDS + refined partial replica)",
            "=" * 60,
            f"plain MDS rejects int-to-pointer program : {rejected}",
            f"DSA-MDS run status                       : {result.status.value}",
            f"output preserved                         : "
            f"{result.output_text == golden.output_text}",
            f"allocs replicated / excluded             : "
            f"{summary['allocs_replicated']} / {summary['allocs_excluded']}",
            f"loads compared / excluded                : "
            f"{summary['loads_compared']} / {summary['loads_excluded']}",
            f"stores mirrored / excluded               : "
            f"{summary['stores_mirrored']} / {summary['stores_excluded']}",
            f"overhead (refined replica)               : "
            f"{result.cycles / golden.cycles:.2f}x",
        ]
        return rejected, golden, result, summary, "\n".join(lines)

    rejected, golden, result, summary, text = once(benchmark, build)
    lab.emit("ch5", text)
    assert rejected
    assert result.status is ExitStatus.NORMAL
    assert result.output_text == golden.output_text
    assert summary["allocs_excluded"] >= 1
    assert summary["allocs_replicated"] >= 1
    # excluding part of the replica must cost less than full replication
    assert result.cycles / golden.cycles < 3.5
