#!/usr/bin/env python
"""Result-store benchmark → ``store`` section of ``BENCH_interp.json``.

Measures what the persistent result store (eval/store.py) buys a repeated
or resumed campaign:

* **cold campaign time** — every experiment computed and written to a
  fresh store;
* **warm campaign time** — the same campaign again: every record served
  from the store (keying, lookup, and record deserialization only);
* **identity** — warm records must be bit-identical
  (``ExperimentRecord.signature``) to the cold run's, and to a run with
  no store at all.

``--smoke`` runs the identity check alone on a small campaign (both
fault kinds, exits non-zero on any divergence) so CI can gate on it
cheaply.

Usage::

    PYTHONPATH=src python benchmarks/perf_store.py          # measure + update BENCH
    PYTHONPATH=src python benchmarks/perf_store.py --smoke  # CI identity gate
"""

from __future__ import annotations

import gc
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.apps import WORKLOAD_ORDER, app_factory
from repro.eval import (
    ExecConfig,
    WorkloadHarness,
    diversity_variants,
    run,
    stdapp_variant,
)
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

REPS = 3


def _run_store_cycle(apps, kinds, variants, verbose=False):
    """One cold + one warm pass per (app, kind); returns timing and any
    divergence descriptions."""
    failures = []
    cold_s = warm_s = bare_s = 0.0
    n_records = hits = 0
    for app in apps:
        harness = WorkloadHarness(app, app_factory(app, 1))
        for kind in kinds:
            with tempfile.TemporaryDirectory() as store_dir:
                cfg = ExecConfig(jobs=1, store_path=store_dir)
                # GC off during the timed region: a collector pass landing
                # mid-run skews the cold/warm comparison.
                gc.disable()
                try:
                    t0 = time.perf_counter()
                    bare = run(harness, variants, kind=kind, config=ExecConfig(jobs=1))
                    t1 = time.perf_counter()
                    cold = run(harness, variants, kind=kind, config=cfg)
                    t2 = time.perf_counter()
                    warm = run(harness, variants, kind=kind, config=cfg)
                    t3 = time.perf_counter()
                finally:
                    gc.enable()
                gc.collect()
                bare_s += t1 - t0
                cold_s += t2 - t1
                warm_s += t3 - t2
                n_records += len(cold.records)
                hits += warm.manifest.store_hits
                for tag, res in (("cold", cold), ("warm", warm)):
                    if [r.signature() for r in res.records] != [
                        r.signature() for r in bare.records
                    ]:
                        failures.append(f"records ({tag}): {app}/{kind}")
                if warm.manifest.store_misses:
                    failures.append(
                        f"warm misses={warm.manifest.store_misses}: {app}/{kind}"
                    )
                if verbose:
                    print(
                        f"  {app}/{kind}: {len(cold.records)} records "
                        f"cold {t2 - t1:.2f}s warm {t3 - t2:.2f}s"
                    )
    return {
        "records": n_records,
        "store_hits_warm": hits,
        "no_store_s": round(bare_s, 3),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "store_write_overhead": round(cold_s / bare_s, 3) if bare_s else 0.0,
        "speedup_warm_vs_cold": round(cold_s / warm_s, 2) if warm_s else 0.0,
    }, failures


def smoke() -> None:
    variants = [stdapp_variant()] + diversity_variants("sds")[:3]
    stats, failures = _run_store_cycle(
        ("mcf",), (HEAP_ARRAY_RESIZE, IMMEDIATE_FREE), variants
    )
    if failures:
        for f in failures:
            print(f"DIVERGED: {f}", file=sys.stderr)
        sys.exit(1)
    print(
        f"smoke OK: warm store replayed {stats['store_hits_warm']} records "
        f"bit-identical to the storeless run "
        f"({stats['speedup_warm_vs_cold']}x over cold)"
    )


def main() -> None:
    if "--smoke" in sys.argv[1:]:
        smoke()
        return
    variants = [stdapp_variant()] + diversity_variants("sds")
    stats, failures = _run_store_cycle(
        WORKLOAD_ORDER,
        (HEAP_ARRAY_RESIZE, IMMEDIATE_FREE),
        variants,
        verbose=True,
    )
    stats["identical_to_no_store"] = not failures
    payload = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    payload["store"] = stats
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(stats, indent=2))
    if failures:
        for f in failures:
            print(f"DIVERGED: {f}", file=sys.stderr)
        sys.exit("FATAL: store-served records diverged")


if __name__ == "__main__":
    main()
