"""Figure 3.6 — Mean heap array resize coverage of diversity transformations
(SDS, all-loads).

Paper shape: coverage is high everywhere; every DPMR variant (including
no-diversity, i.e. implicit diversity alone) covers 100% of heap array
resizes; the stdapp bar is the only one that can fall short.
"""

from repro.eval import coverage_table
from repro.faultinject import HEAP_ARRAY_RESIZE

from benchmarks.conftest import APPS, DIVERSITY_ORDER, once


def test_fig3_6(benchmark, lab):
    def build():
        records = lab.campaign("diversity", "sds", HEAP_ARRAY_RESIZE)
        rows = lab.coverage_rows(records)
        return rows, coverage_table(
            "Fig 3.6: SDS heap-array-resize coverage (diversity transformations)",
            rows,
            DIVERSITY_ORDER,
            APPS,
        )

    rows, text = once(benchmark, build)
    lab.emit("fig3.6", text)
    for app in APPS:
        no_div = rows.get(("no-diversity", app))
        if no_div is not None and no_div.total_runs:
            assert no_div.coverage == 1.0, (app, no_div)
        std = rows.get(("stdapp", app))
        if std is not None and no_div is not None and std.total_runs:
            assert no_div.coverage >= std.coverage
