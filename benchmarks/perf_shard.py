#!/usr/bin/env python
"""Shard-fabric benchmark → ``BENCH_interp.json``.

Runs one resize+free campaign matrix through the executor at 1, 2, and 4
shard worker nodes (``ExecConfig.shards``) and reports wall-clock,
speedup, and the fabric counters from the merged schema-5 manifest.  Two
things are always gated, regardless of timing:

* every sharded run's records are bit-identical
  (``ExperimentRecord.signature()``) and identically ordered to the
  1-shard run, and
* the merged manifest accounts for every tuple (``store_synced`` plus
  store hits cover the matrix).

Timing is gated only where it is meaningful: shard workers are real
processes, so the 4-shard speedup gate (≥ ``SHARD_MIN_SPEEDUP``×) applies
only when the machine actually has ≥4 usable cores (CI runners do; the
single-core dev container records honest numbers with a ``cores``
annotation instead of failing).

Results land in the ``shard`` section of ``BENCH_interp.json`` (other
sections preserved) and the headline numbers are merged into the
``history`` entry for the current commit.

Usage::

    PYTHONPATH=src python benchmarks/perf_shard.py
    PYTHONPATH=src python benchmarks/perf_shard.py --smoke

``--smoke`` is the CI gate: 2-shard bit-identity vs 1-shard on a small
matrix (always), plus the 4-shard speedup gate when cores allow.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

from repro.apps import app_factory
from repro.eval import (
    ExecConfig,
    WorkloadHarness,
    diversity_variants,
    job_for_harness,
    run_campaign_jobs_with_manifest,
    stdapp_variant,
)
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

#: Minimum 1-shard/4-shard speedup when ≥4 cores are usable.  Four
#: CPU-bound worker processes on four cores should approach 4x; 1.5x
#: leaves generous headroom for lease/sync overhead and CI noise.
SHARD_MIN_SPEEDUP = 1.5

WORKLOADS = ("mcf", "equake")
KINDS = (HEAP_ARRAY_RESIZE, IMMEDIATE_FREE)
N_VARIANTS = 3
MAX_SITES = 2
SHARD_COUNTS = (1, 2, 4)
REPS = 3


@contextmanager
def _gc_disabled():
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def matrix_jobs(workloads=WORKLOADS, kinds=KINDS):
    """Fresh campaign jobs for the benchmark matrix (jobs carry per-run
    build caches, so every timed run gets its own)."""
    variants = [stdapp_variant()] + diversity_variants("sds")[: N_VARIANTS - 1]
    return [
        job_for_harness(
            WorkloadHarness(name, app_factory(name, 1), seeds=(0,)),
            variants,
            kind,
            max_sites=MAX_SITES,
        )
        for kind in kinds
        for name in workloads
    ]


def _timed_run(shards: int, workloads=WORKLOADS, kinds=KINDS):
    """Best-of-REPS wall for the matrix at ``shards`` nodes."""
    best = None
    records = manifest = None
    for _ in range(REPS):
        jobs = matrix_jobs(workloads, kinds)
        with _gc_disabled():
            t0 = time.perf_counter()
            recs, mf = run_campaign_jobs_with_manifest(
                jobs, config=ExecConfig(shards=shards)
            )
            dt = time.perf_counter() - t0
        if best is None or dt < best:
            best, records, manifest = dt, recs, mf
    return best, records, manifest


def bench_shard() -> dict:
    runs = {n: _timed_run(n) for n in SHARD_COUNTS}
    base_s, base_records, _ = runs[1]
    base_sigs = [r.signature() for r in base_records]

    identical = all(
        [r.signature() for r in records] == base_sigs
        for _, records, _ in runs.values()
    )
    per_shards = {}
    for n, (wall, records, manifest) in runs.items():
        per_shards[str(n)] = {
            "wall_s": round(wall, 3),
            "speedup": round(base_s / wall, 2),
            "records": len(records),
            "lease_grants": manifest.lease_grants,
            "lease_reassignments": manifest.lease_reassignments,
            "store_synced": manifest.store_synced,
            "nodes_used": len(manifest.shards),
        }
    return {
        "workloads": list(WORKLOADS),
        "kinds": list(KINDS),
        "n_variants": N_VARIANTS,
        "max_sites": MAX_SITES,
        "n_records": len(base_records),
        "cores": _usable_cores(),
        "reps": REPS,
        "shards": per_shards,
        "speedup_4": per_shards["4"]["speedup"],
        "records_identical_to_single_node": identical,
    }


def smoke() -> None:
    """CI gate: 2-shard bit-identity always; 4-shard speedup when cores allow."""
    cores = _usable_cores()
    one, m1 = run_campaign_jobs_with_manifest(
        matrix_jobs(workloads=("mcf",), kinds=(HEAP_ARRAY_RESIZE,)),
        config=ExecConfig(shards=1),
    )
    two, m2 = run_campaign_jobs_with_manifest(
        matrix_jobs(workloads=("mcf",), kinds=(HEAP_ARRAY_RESIZE,)),
        config=ExecConfig(shards=2),
    )
    print(
        f"smoke: {len(two)} records on 2 shards "
        f"({m2.lease_grants} leases, {m2.store_synced} synced), cores={cores}"
    )
    if not one or len(one) != len(two):
        sys.exit(f"FATAL: 2-shard run produced {len(two)} records, expected {len(one)}")
    if [r.signature() for r in two] != [r.signature() for r in one]:
        sys.exit("FATAL: 2-shard records diverged from the 1-shard run")
    if m2.n_shards != 2 or m2.store_synced != len(two):
        sys.exit(
            f"FATAL: merged manifest inconsistent: n_shards={m2.n_shards}, "
            f"synced={m2.store_synced} of {len(two)}"
        )
    if m1.n_shards != 0:
        sys.exit("FATAL: 1-shard run unexpectedly routed through the fabric")

    if cores < 4:
        print(f"smoke: OK (speedup gate skipped: {cores} usable core(s) < 4)")
        return
    base_s, base_records, _ = _timed_run(1)
    four_s, four_records, _ = _timed_run(4)
    speedup = base_s / four_s
    print(
        f"smoke: 1-shard {base_s:.2f}s vs 4-shard {four_s:.2f}s "
        f"→ {speedup:.2f}x on {cores} cores"
    )
    if [r.signature() for r in four_records] != [
        r.signature() for r in base_records
    ]:
        sys.exit("FATAL: 4-shard records diverged from the 1-shard run")
    if speedup < SHARD_MIN_SPEEDUP:
        sys.exit(
            f"FATAL: 4 shards on {cores} cores gained only {speedup:.2f}x "
            f"(gate ≥{SHARD_MIN_SPEEDUP}x)"
        )
    print("smoke: OK")


def _git_sha() -> str:
    try:
        import subprocess

        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=str(OUT_PATH.parent),
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def main() -> None:
    if "--smoke" in sys.argv[1:]:
        smoke()
        return
    shard = bench_shard()
    payload = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    payload["shard"] = shard
    # Merge the headline numbers into this commit's history entry (one
    # entry per sha; perf_interp.py owns the rest of its fields).
    sha = _git_sha()
    headline = {
        "shard_1_s": shard["shards"]["1"]["wall_s"],
        "shard_4_s": shard["shards"]["4"]["wall_s"],
        "shard_speedup_4": shard["speedup_4"],
        "shard_cores": shard["cores"],
    }
    history = payload.setdefault("history", [])
    entry = next((h for h in history if h.get("git_sha") == sha), None)
    if entry is not None:
        entry.update(headline)
    else:
        history.append(
            {"date": time.strftime("%Y-%m-%d"), "git_sha": sha, **headline}
        )
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(shard, indent=2))
    if not shard["records_identical_to_single_node"]:
        sys.exit("FATAL: a sharded run's records diverged from single-node")
    if shard["cores"] >= 4 and shard["speedup_4"] < SHARD_MIN_SPEEDUP:
        sys.exit(
            f"FATAL: 4 shards on {shard['cores']} cores gained only "
            f"{shard['speedup_4']:.2f}x (gate ≥{SHARD_MIN_SPEEDUP}x)"
        )


if __name__ == "__main__":
    main()
