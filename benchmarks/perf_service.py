#!/usr/bin/env python
"""Campaign-service concurrency benchmark → ``BENCH_interp.json``.

Four clients submit overlapping figure matrices (same workloads, same
fault kind, rotating 3-of-4 variant windows) to one daemon, concurrently.
The daemon deduplicates the overlap — each shared experiment tuple
executes once and fans out to every subscriber — so the aggregate
wall-clock must beat running the same four requests as sequential
in-process ``run(request)`` calls, even on this single-core container
where the pool itself cannot parallelize anything.  The gate is

* every client's records bit-identical (``ExperimentRecord.signature()``)
  and identically ordered vs its own solo ``run(request)``, and
* concurrent wall ≤ ``SERVICE_MAX_RATIO`` × the sequential total.

Results land in the ``service`` section of ``BENCH_interp.json`` (other
sections preserved) and the headline numbers are merged into the
``history`` entry for the current commit.

Usage::

    PYTHONPATH=src python benchmarks/perf_service.py
    PYTHONPATH=src python benchmarks/perf_service.py --smoke

``--smoke`` is the CI gate: daemon + two concurrent clients over a
temporary store; asserts record identity against solo runs and a nonzero
dedupe share, with no timing (CI wall-clock is meaningless).
"""

from __future__ import annotations

import gc
import json
import sys
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.eval import CampaignRequest, ExecConfig, ResultStore, run
from repro.faultinject import HEAP_ARRAY_RESIZE
from repro.service import ServiceClient, ServiceDaemon

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

#: Aggregate concurrent wall-clock ceiling, as a fraction of the four
#: sequential runs.  With 3-of-4 variant windows the union is a third of
#: the summed request sizes, so ≤0.6 leaves headroom for daemon overhead.
SERVICE_MAX_RATIO = 0.6

CLIENTS = 4
WORKLOADS = ("mcf", "equake")
KIND = HEAP_ARRAY_RESIZE
VARIANT_POOL = ("stdapp", "no-diversity", "zero-before-free", "pad-malloc-8")
MAX_SITES = 2
REPS = 3


@contextmanager
def _gc_disabled():
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()


def client_requests(n: int = CLIENTS) -> list:
    """n requests with rotating 3-of-4 variant windows: every pair of
    clients overlaps in two variants, and the union is the whole pool."""
    window = len(VARIANT_POOL) - 1
    return [
        CampaignRequest(
            workloads=WORKLOADS,
            kinds=(KIND,),
            variants=tuple(
                VARIANT_POOL[(i + j) % len(VARIANT_POOL)] for j in range(window)
            ),
            max_sites=MAX_SITES,
        )
        for i in range(n)
    ]


def _sequential(requests) -> tuple:
    """Best-of-N wall of the four requests as plain in-process runs."""
    best = None
    results = None
    for _ in range(REPS):
        with _gc_disabled():
            t0 = time.perf_counter()
            results = [run(req, config=ExecConfig()) for req in requests]
            dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, results


def _concurrent(requests) -> tuple:
    """Best-of-N wall of the same requests via concurrent clients.

    A fresh daemon per rep: the dedupe table is in-memory state, so a
    second submission to a warm daemon would measure nothing but fan-out.
    """
    best = None
    results = None
    stats = None
    for _ in range(REPS):
        rep_results = [None] * len(requests)

        def submit(i, request, port):
            with ServiceClient(port=port, timeout=600.0) as client:
                rep_results[i] = client.submit(request)

        with ServiceDaemon(ExecConfig()) as daemon:
            threads = [
                threading.Thread(target=submit, args=(i, req, daemon.port))
                for i, req in enumerate(requests)
            ]
            with _gc_disabled():
                t0 = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=600)
                dt = time.perf_counter() - t0
            rep_stats = dict(daemon.scheduler.dedupe.stats)
        if any(r is None for r in rep_results):
            sys.exit("FATAL: a service client did not complete")
        if best is None or dt < best:
            best, results, stats = dt, rep_results, rep_stats
    return best, results, stats


def bench_service() -> dict:
    requests = client_requests()
    sequential_s, solo = _sequential(requests)
    concurrent_s, served, stats = _concurrent(requests)

    identical = all(
        [r.signature() for r in served[i].records]
        == [r.signature() for r in solo[i].records]
        for i in range(len(requests))
    )
    union = {r.signature() for res in solo for r in res.records}
    shared = sum(res.manifest.shared_hits for res in served)
    executed = sum(res.manifest.store_misses for res in served)
    ratio = concurrent_s / sequential_s
    return {
        "clients": len(requests),
        "workloads": list(WORKLOADS),
        "kind": KIND,
        "variant_pool": list(VARIANT_POOL),
        "variants_per_client": len(requests[0].variants),
        "records_per_client": [len(res.records) for res in solo],
        "union_records": len(union),
        "sequential_s": round(sequential_s, 3),
        "concurrent_s": round(concurrent_s, 3),
        "ratio": round(ratio, 3),
        "speedup": round(sequential_s / concurrent_s, 2),
        "executed": executed,
        "shared_hits": shared,
        "dedupe": stats,
        "records_identical_to_solo": identical,
    }


def smoke() -> None:
    """CI gate: identity + nonzero dedupe through real sockets, no timing."""
    req_a = CampaignRequest(
        workloads=("mcf",),
        kinds=(KIND,),
        variants=("stdapp", "no-diversity"),
        max_sites=MAX_SITES,
    )
    req_b = CampaignRequest(
        workloads=("mcf",),
        kinds=(KIND,),
        variants=("no-diversity", "zero-before-free"),
        max_sites=MAX_SITES,
    )
    solo = {r: run(r, config=ExecConfig()) for r in (req_a, req_b)}
    union = {
        sig
        for res in solo.values()
        for sig in (r.signature() for r in res.records)
    }

    results = {}
    with tempfile.TemporaryDirectory() as td:
        store_dir = str(Path(td) / "store")
        with ServiceDaemon(ExecConfig(store_path=store_dir)) as daemon:

            def submit(request, port):
                with ServiceClient(port=port) as client:
                    results[request] = client.submit(request)

            threads = [
                threading.Thread(target=submit, args=(r, daemon.port))
                for r in (req_a, req_b)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            stats = dict(daemon.scheduler.dedupe.stats)
        store_len = len(ResultStore(store_dir))

    for request, res in solo.items():
        got = results.get(request)
        if got is None:
            sys.exit("FATAL: a smoke client did not complete")
        if [r.signature() for r in got.records] != [
            r.signature() for r in res.records
        ]:
            sys.exit(
                "FATAL: service records diverged from the in-process run "
                f"for {request.variants}"
            )
    shared = sum(res.manifest.shared_hits for res in results.values())
    print(
        f"smoke: {sum(len(r.records) for r in results.values())} records "
        f"across 2 clients, union {len(union)}, shared {shared}, "
        f"dedupe {stats}"
    )
    if shared == 0 or stats["joins"] + stats["memory_hits"] == 0:
        sys.exit("FATAL: overlapping concurrent requests shared no tuples")
    if stats["scheduled"] != len(union):
        sys.exit(
            f"FATAL: daemon executed {stats['scheduled']} tuples for a "
            f"union of {len(union)}"
        )
    if store_len != len(union):
        sys.exit(
            f"FATAL: store holds {store_len} records, expected {len(union)}"
        )
    print("smoke: OK")


def _git_sha() -> str:
    try:
        import subprocess

        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=str(OUT_PATH.parent),
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def main() -> None:
    if "--smoke" in sys.argv[1:]:
        smoke()
        return
    service = bench_service()
    payload = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    payload["service"] = service
    # Merge the headline numbers into this commit's history entry (one
    # entry per sha; perf_interp.py owns the rest of its fields).
    sha = _git_sha()
    headline = {
        "service_sequential_s": service["sequential_s"],
        "service_concurrent_s": service["concurrent_s"],
        "service_ratio": service["ratio"],
    }
    history = payload.setdefault("history", [])
    entry = next((h for h in history if h.get("git_sha") == sha), None)
    if entry is not None:
        entry.update(headline)
    else:
        history.append(
            {"date": time.strftime("%Y-%m-%d"), "git_sha": sha, **headline}
        )
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(service, indent=2))
    if not service["records_identical_to_solo"]:
        sys.exit("FATAL: a service client's records diverged from its solo run")
    if service["ratio"] > SERVICE_MAX_RATIO:
        sys.exit(
            f"FATAL: concurrent clients took {service['ratio']:.2f}x the "
            f"sequential runs (gate ≤{SERVICE_MAX_RATIO}x)"
        )


if __name__ == "__main__":
    main()
