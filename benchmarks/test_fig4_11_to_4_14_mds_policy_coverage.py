"""Figures 4.11–4.14 — MDS coverage (and conditional coverage) of state
comparison policies (rearrange-heap diversity).

Paper shape: coverage robust under reduced checking; under MDS, temporal
checking looks slightly more robust than static (every load site eventually
gets checked), with dips at the small static fractions.
"""

from repro.eval import coverage, coverage_table, conditional_coverage_table
from repro.eval.metrics import by_variant
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE

from benchmarks.conftest import APPS, POLICY_ORDER, once


def test_fig4_11_resize_coverage(benchmark, lab):
    def build():
        records = lab.campaign("policy", "mds", HEAP_ARRAY_RESIZE)
        rows = lab.coverage_rows(records)
        text = coverage_table(
            "Fig 4.11: MDS heap-array-resize coverage (comparison policies)",
            rows, POLICY_ORDER, APPS,
        )
        return records, text

    records, text = once(benchmark, build)
    lab.emit("fig4.11", text)
    groups = by_variant(records)
    assert coverage(groups["all-loads"]) >= 0.9


def test_fig4_12_free_coverage(benchmark, lab):
    def build():
        records = lab.campaign("policy", "mds", IMMEDIATE_FREE)
        rows = lab.coverage_rows(records)
        text = coverage_table(
            "Fig 4.12: MDS immediate-free coverage (comparison policies)",
            rows, POLICY_ORDER, APPS,
        )
        return records, text

    records, text = once(benchmark, build)
    lab.emit("fig4.12", text)
    groups = by_variant(records)
    assert coverage(groups["all-loads"]) >= coverage(groups["stdapp"])


def test_fig4_13_resize_conditional(benchmark, lab):
    def build():
        records = lab.campaign("policy", "mds", HEAP_ARRAY_RESIZE)
        rows = lab.conditional_rows(records)
        text = conditional_coverage_table(
            "Fig 4.13: MDS heap-array-resize conditional coverage "
            "(comparison policies, all apps)",
            rows, POLICY_ORDER,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig4.13", text)


def test_fig4_14_free_conditional(benchmark, lab):
    def build():
        records = lab.campaign("policy", "mds", IMMEDIATE_FREE)
        rows = lab.conditional_rows(records)
        text = conditional_coverage_table(
            "Fig 4.14: MDS immediate-free conditional coverage "
            "(comparison policies, all apps)",
            rows, POLICY_ORDER,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig4.14", text)
