"""Figure 3.11 — Mean heap array resize coverage of state comparison
policies (SDS, rearrange-heap diversity).

Paper shape: coverage robust in the face of reduced checking; reduction
appears only at static 10%.
"""

from repro.eval import coverage, coverage_table
from repro.eval.metrics import by_variant
from repro.faultinject import HEAP_ARRAY_RESIZE

from benchmarks.conftest import APPS, POLICY_ORDER, once


def test_fig3_11(benchmark, lab):
    def build():
        records = lab.campaign("policy", "sds", HEAP_ARRAY_RESIZE)
        rows = lab.coverage_rows(records)
        text = coverage_table(
            "Fig 3.11: SDS heap-array-resize coverage (comparison policies)",
            rows,
            POLICY_ORDER,
            APPS,
        )
        return records, text

    records, text = once(benchmark, build)
    lab.emit("fig3.11", text)
    groups = by_variant(records)
    for name in ("all-loads", "temporal-1/2", "temporal-7/8", "static-90%"):
        assert coverage(groups[name]) >= 0.9, name
