"""Figure 3.10 — Overhead of diversity transformations (SDS, all-loads).

Paper shape: all overheads between ~2x and ~5x; no-diversity and
zero-before-free perform best; the larger pad-mallocs perform worst.
"""

from repro.eval import overhead_table

from benchmarks.conftest import APPS, DIVERSITY_ORDER, once

VARIANTS = ("golden",) + DIVERSITY_ORDER[1:]


def test_fig3_10(benchmark, lab):
    def build():
        rows = lab.overheads("diversity", "sds")
        text = overhead_table(
            "Fig 3.10: SDS overhead of diversity transformations",
            rows,
            VARIANTS,
            APPS,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig3.10", text)
    for app in APPS:
        for variant in DIVERSITY_ORDER[1:]:
            oh = rows[(variant, app)]
            assert 1.5 < oh < 6.5, (variant, app, oh)
        assert rows[("no-diversity", app)] <= rows[("pad-malloc-1024", app)]
