"""Figure 3.16 — Exploiting periodicity to improve temporal load-checking
overhead.

The paper contrasts counter-based temporal checking (Fig. 3.16a: a global
counter and a branch at every load) with a periodically *unrolled* loop body
(Fig. 3.16b: the branch decision and counter traffic are eliminated; every
other iteration performs the check directly).  This microbenchmark builds
both loops over the same array-sum kernel and compares their cost.

Paper shape: the unrolled periodic variant is strictly cheaper than the
counter-based variant at the same 1/2 checking rate.
"""

from repro.ir import (
    INT32,
    INT64,
    ModuleBuilder,
    VOID,
    verify_module,
)
from repro.machine import ExitStatus, run_process

from benchmarks.conftest import once

N = 400


def _common_prologue(mb, b):
    arr = b.malloc(INT64, b.i64(N))
    arr_r = b.malloc(INT64, b.i64(N))
    with b.for_range(b.i64(N)) as i:
        b.store(b.elem_addr(arr, i), i)
        b.store(b.elem_addr(arr_r, i), i)
    total = b.alloca(INT64)
    b.store(total, b.i64(0))
    return arr, arr_r, total


def build_counter_based():
    """Fig. 3.16(a): chkCounter load/branch/update at every element."""
    mb = ModuleBuilder("temporal-counter")
    mb.declare_external("print_i64", VOID, [INT64])
    mb.add_global("chkCounter", INT64, 0)
    fn, b = mb.define("main", INT32)
    arr, arr_r, total = _common_prologue(mb, b)
    counter = mb.module.globals["chkCounter"].ref()
    with b.for_range(b.i64(N)) as i:
        v = b.load(b.elem_addr(arr, i))
        chk = b.load(counter)
        is_zero = b.eq(chk, b.i64(0))
        with b.if_then(is_zero):
            rv = b.load(b.elem_addr(arr_r, i))
            same = b.eq(v, rv)
            bad = b.eq(same, b.i8(0))
            with b.if_then(bad):
                b.call("print_i64", [b.i64(-1)])
        b.store(counter, b.srem(b.add(chk, b.i64(1)), b.i64(2)))
        b.store(total, b.add(b.load(total), v))
    b.call("print_i64", [b.load(total)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


def build_periodic_unrolled():
    """Fig. 3.16(b): the loop is unrolled by two; the first copy checks,
    the second does not — no counter, no branch decision."""
    mb = ModuleBuilder("temporal-periodic")
    mb.declare_external("print_i64", VOID, [INT64])
    fn, b = mb.define("main", INT32)
    arr, arr_r, total = _common_prologue(mb, b)
    with b.for_range(b.i64(N), step=b.i64(2)) as i:
        v = b.load(b.elem_addr(arr, i))
        rv = b.load(b.elem_addr(arr_r, i))
        same = b.eq(v, rv)
        bad = b.eq(same, b.i8(0))
        with b.if_then(bad):
            b.call("print_i64", [b.i64(-1)])
        b.store(total, b.add(b.load(total), v))
        i2 = b.add(i, b.i64(1))
        v2 = b.load(b.elem_addr(arr, i2))
        b.store(total, b.add(b.load(total), v2))
    b.call("print_i64", [b.load(total)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


def test_fig3_16(benchmark, lab):
    def build():
        counter = run_process(build_counter_based())
        periodic = run_process(build_periodic_unrolled())
        assert counter.status is ExitStatus.NORMAL
        assert periodic.status is ExitStatus.NORMAL
        assert counter.output_text == periodic.output_text
        lines = [
            "Fig 3.16: periodic unrolling vs counter-based temporal checking "
            "(1/2 rate)",
            "=" * 60,
            f"counter-based : {counter.cycles} cycles",
            f"periodic      : {periodic.cycles} cycles",
            f"speedup       : {counter.cycles / periodic.cycles:.2f}x",
        ]
        return counter, periodic, "\n".join(lines)

    counter, periodic, text = once(benchmark, build)
    lab.emit("fig3.16", text)
    assert periodic.cycles < counter.cycles
