"""Figure 4.6 — MDS overhead of state comparison policies (rearrange-heap).

Paper shape: static checking cheaper than all-loads, temporal costlier; the
relative reduction from reduced checking is smaller than under SDS because
pointer loads (never compared under MDS) cannot be "saved" (§4.5).
"""

from repro.eval import overhead_table

from benchmarks.conftest import APPS, POLICY_ORDER, once

VARIANTS = ("golden",) + POLICY_ORDER[1:]


def test_fig4_6(benchmark, lab):
    def build():
        rows = lab.overheads("policy", "mds")
        text = overhead_table(
            "Fig 4.6: MDS overhead of state comparison policies",
            rows,
            VARIANTS,
            APPS,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig4.6", text)
    for app in APPS:
        assert rows[("static-10%", app)] < rows[("all-loads", app)]
        assert rows[("temporal-1/8", app)] > rows[("all-loads", app)]
