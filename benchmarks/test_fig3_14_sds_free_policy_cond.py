"""Figure 3.14 — SDS immediate free conditional coverage of comparison
policies (all apps, conditioned on StdNotAllDet)."""

from repro.eval import conditional_coverage_table
from repro.faultinject import IMMEDIATE_FREE

from benchmarks.conftest import POLICY_ORDER, once


def test_fig3_14(benchmark, lab):
    def build():
        records = lab.campaign("policy", "sds", IMMEDIATE_FREE)
        rows = lab.conditional_rows(records)
        text = conditional_coverage_table(
            "Fig 3.14: SDS immediate-free conditional coverage "
            "(comparison policies, all apps)",
            rows,
            POLICY_ORDER,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig3.14", text)
    std = rows.get("stdapp")
    al = rows.get("all-loads")
    if std is not None and al is not None and std.total_runs:
        assert al.coverage >= std.coverage
