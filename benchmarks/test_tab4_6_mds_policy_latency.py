"""Table 4.6 — Mean time to detection of state comparison policies (MDS).

Paper shape: static load-checking latencies similar to or below all-loads;
temporal load-checking latencies higher.
"""

from repro.eval import latency_table
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE

from benchmarks.conftest import APPS, POLICY_ORDER, once


def test_tab4_6(benchmark, lab):
    def build():
        parts = []
        for kind in (HEAP_ARRAY_RESIZE, IMMEDIATE_FREE):
            records = [
                r
                for r in lab.campaign("policy", "mds", kind)
                if r.variant != "stdapp"
            ]
            rows = lab.latency_rows(records)
            parts.append(
                latency_table(
                    f"Table 4.6 ({kind}): MDS mean time to detection, "
                    "comparison policies",
                    rows, POLICY_ORDER[1:], APPS,
                )
            )
        return "\n\n".join(parts)

    text = once(benchmark, build)
    lab.emit("tab4.6", text)
    assert "temporal-1/8" in text
