"""Figure 3.9 — Mean immediate free conditional coverage of diversity
transformations (SDS), conditioned on incorrect output and StdNotAllDet.

Paper shape: rearrange-heap leads; all DPMR variants beat stdapp.
"""

from repro.eval import conditional_coverage_table
from repro.faultinject import IMMEDIATE_FREE

from benchmarks.conftest import DIVERSITY_ORDER, once


def test_fig3_9(benchmark, lab):
    def build():
        records = lab.campaign("diversity", "sds", IMMEDIATE_FREE)
        rows = lab.conditional_rows(records)
        text = conditional_coverage_table(
            "Fig 3.9: SDS immediate-free conditional coverage "
            "(diversity transformations, all apps)",
            rows,
            DIVERSITY_ORDER,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig3.9", text)
    std = rows.get("stdapp")
    rearrange = rows.get("rearrange-heap")
    if std is not None and rearrange is not None and std.total_runs:
        assert rearrange.coverage >= std.coverage
        assert rearrange.coverage == 1.0
