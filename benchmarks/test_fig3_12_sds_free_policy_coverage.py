"""Figure 3.12 — Mean immediate free coverage of state comparison policies
(SDS, rearrange-heap diversity).

Paper shape: coverage remains high under reduced checking (temporal and
static), with static load-checking as viable as temporal (spatial
robustness).
"""

from repro.eval import coverage, coverage_table
from repro.eval.metrics import by_variant
from repro.faultinject import IMMEDIATE_FREE

from benchmarks.conftest import APPS, POLICY_ORDER, once


def test_fig3_12(benchmark, lab):
    def build():
        records = lab.campaign("policy", "sds", IMMEDIATE_FREE)
        rows = lab.coverage_rows(records)
        text = coverage_table(
            "Fig 3.12: SDS immediate-free coverage (comparison policies)",
            rows,
            POLICY_ORDER,
            APPS,
        )
        return records, text

    records, text = once(benchmark, build)
    lab.emit("fig3.12", text)
    groups = by_variant(records)
    assert coverage(groups["all-loads"]) >= 0.9
    assert coverage(groups["static-50%"]) >= coverage(groups["stdapp"])
