"""Figure 4.5 — MDS overhead of diversity transformations.

Paper shape: same ordering as Fig. 3.10 (no-diversity cheapest, pad-malloc
1024 most expensive), at lower absolute levels than SDS.
"""

from repro.eval import overhead_table

from benchmarks.conftest import APPS, DIVERSITY_ORDER, once

VARIANTS = ("golden",) + DIVERSITY_ORDER[1:]


def test_fig4_5(benchmark, lab):
    def build():
        rows = lab.overheads("diversity", "mds")
        text = overhead_table(
            "Fig 4.5: MDS overhead of diversity transformations",
            rows,
            VARIANTS,
            APPS,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig4.5", text)
    for app in APPS:
        assert rows[("no-diversity", app)] <= rows[("pad-malloc-1024", app)]
        assert 1.2 < rows[("no-diversity", app)] < 6.0
