"""Figure 3.13 — SDS heap array resize conditional coverage of comparison
policies (all apps, conditioned on StdNotAllDet)."""

from repro.eval import conditional_coverage_table
from repro.faultinject import HEAP_ARRAY_RESIZE

from benchmarks.conftest import POLICY_ORDER, once


def test_fig3_13(benchmark, lab):
    def build():
        records = lab.campaign("policy", "sds", HEAP_ARRAY_RESIZE)
        rows = lab.conditional_rows(records)
        text = conditional_coverage_table(
            "Fig 3.13: SDS heap-array-resize conditional coverage "
            "(comparison policies, all apps)",
            rows,
            POLICY_ORDER,
        )
        return rows, text

    rows, text = once(benchmark, build)
    lab.emit("fig3.13", text)
    al = rows.get("all-loads")
    if al is not None and al.total_runs:
        assert al.coverage >= 0.99
