"""Figure 4.3 — Side-by-side diversity transformation overheads of SDS and
MDS.

Paper shape: MDS beats (or matches) its SDS counterpart nearly everywhere;
gains are marginal on art/bzip2 and strongest on the pointer-heavy
equake/mcf (§4.5).
"""

from repro.eval import overhead_table

from benchmarks.conftest import APPS, once

VARIANTS = ("no-diversity", "zero-before-free", "rearrange-heap", "pad-malloc-32")


def test_fig4_3(benchmark, lab):
    def build():
        sds = lab.overheads("diversity", "sds")
        mds = lab.overheads("diversity", "mds")
        rows = {}
        order = []
        for v in VARIANTS:
            for label, table in (("SDS", sds), ("MDS", mds)):
                key = f"{label} {v}"
                order.append(key)
                for app in APPS:
                    rows[(key, app)] = table[(v, app)]
        text = overhead_table(
            "Fig 4.3: side-by-side diversity overheads, SDS vs MDS",
            rows,
            order,
            APPS,
        )
        return sds, mds, text

    sds, mds, text = once(benchmark, build)
    lab.emit("fig4.3", text)
    for app in ("equake", "mcf"):
        if app in APPS:
            for v in VARIANTS:
                assert mds[(v, app)] < sds[(v, app)], (v, app)
    # the MDS advantage is larger on pointer-heavy apps than on array apps
    if set(("art", "mcf")) <= set(APPS):
        gap_art = sds[("no-diversity", "art")] - mds[("no-diversity", "art")]
        gap_mcf = sds[("no-diversity", "mcf")] - mds[("no-diversity", "mcf")]
        assert gap_mcf > gap_art
