"""Merging per-shard :class:`RunManifest`s into one schema-5 manifest.

A sharded campaign produces one manifest per completed lease (the shard
worker runs each lease through the ordinary executor, which already
produces a full manifest).  The coordinator folds them into a single
merged manifest with :func:`merge_manifests` and then overlays the
coordinator-level truth (measured wall-clock, lease counters, coordinator
store traffic) on top.

The fold is a commutative monoid so the merge result cannot depend on
lease completion order — the property suite
(``tests/test_manifest_merge.py``) checks associativity, commutativity,
and total preservation over arbitrary permutations and partitions:

* **summed**: item/record counts, store traffic, retries, restarts,
  timeouts, codegen traffic, lease counters, ``status_counts`` and
  ``counter_totals`` (key-wise), per-job cache telemetry;
* **unioned**: ``quarantined`` (deduplicated, sorted), ``jobs`` (keyed by
  ``(workload, kind)``), ``shards`` (keyed by shard id, fields summed);
* **maxed**: ``wall_s`` (leases overlap in time), worker counts,
  ``n_shards``, ``cpu_count``;
* **labels** (``mode``, ``engine``, ``worker_reason``, …): the common
  value when every manifest agrees, else ``"mixed"`` — deterministic and
  order-independent.

The identity element is ``RunManifest(mode="")`` with every counter zero,
so merging a singleton returns a manifest equal to it (modulo ``path``,
which is never propagated: a merged manifest has not been persisted).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..obs.manifest import (
    JobManifest,
    QuarantineRecord,
    RunManifest,
    ShardManifest,
)

#: Fields of :class:`RunManifest` combined by plain summation.
_SUMMED = (
    "codegen_hits",
    "codegen_misses",
    "n_items",
    "n_records",
    "store_hits",
    "store_misses",
    "store_writes",
    "store_corrupt",
    "shared_hits",
    "retries",
    "worker_restarts",
    "exp_timeouts",
    "lease_grants",
    "lease_reassignments",
    "lease_expiries",
    "store_synced",
)

#: Fields combined by ``max`` (0 / 0.0 is the identity).
_MAXED = (
    "requested_jobs",
    "effective_jobs",
    "n_jobs",
    "n_shards",
    "wall_s",
    "cpu_count",
)

#: String-ish fields combined by the agree-or-"mixed" label rule
#: (empty/None means "no opinion" and never forces "mixed").
_LABELS = (
    "mode",
    "worker_reason",
    "serial_fallback",
    "trace_path",
    "engine",
    "store_path",
    "python",
)


def _merge_label(a, b):
    if a in ("", None):
        if b in ("", None):
            # Both "no opinion": canonicalize (None vs "") so the merge
            # stays commutative even across the two empty representations.
            return a if a == b else ""
        return b
    if b in ("", None) or a == b:
        return a
    return "mixed"


def _merge_optional_max(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _sum_counts(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0) + v
    return out


def _merge_jobs(
    a: List[JobManifest], b: List[JobManifest]
) -> List[JobManifest]:
    """Union keyed by ``(workload, kind)``; shards run the *same* jobs, so
    the shape fields describe one job seen from several leases (max), while
    the cache telemetry is genuine per-lease work (summed)."""
    merged: Dict[Tuple[str, str], JobManifest] = {}
    for jm in list(a) + list(b):
        key = (jm.workload, jm.kind)
        cur = merged.get(key)
        if cur is None:
            merged[key] = JobManifest(**vars(jm))
            continue
        cur.n_sites = max(cur.n_sites, jm.n_sites)
        cur.n_variants = max(cur.n_variants, jm.n_variants)
        cur.n_seeds = max(cur.n_seeds, jm.n_seeds)
        # per-lease site lists can be prefixes of each other; keep the most
        # complete one (total order by (len, content) keeps this a max).
        if (len(jm.sites), jm.sites) > (len(cur.sites), cur.sites):
            cur.sites = list(jm.sites)
        cur.cache_hits += jm.cache_hits
        cur.cache_misses += jm.cache_misses
        cur.cache_full_rebuilds += jm.cache_full_rebuilds
        cur.builds_cached += jm.builds_cached
    return [merged[k] for k in sorted(merged)]


def _merge_quarantined(
    a: List[QuarantineRecord], b: List[QuarantineRecord]
) -> List[QuarantineRecord]:
    """Exact-duplicate-free sorted union (two shards may independently
    condemn the same site with the same verdict)."""
    seen = {}
    for q in list(a) + list(b):
        seen[(q.workload, q.kind, q.site, q.attempts, q.reason)] = q
    return [seen[k] for k in sorted(seen)]


def _merge_shards(
    a: List[ShardManifest], b: List[ShardManifest]
) -> List[ShardManifest]:
    merged: Dict[int, ShardManifest] = {}
    for sm in list(a) + list(b):
        cur = merged.get(sm.shard)
        if cur is None:
            merged[sm.shard] = ShardManifest(**vars(sm))
            continue
        cur.leases += sm.leases
        cur.n_records += sm.n_records
        cur.store_writes += sm.store_writes
        cur.retries += sm.retries
        cur.wall_s += sm.wall_s
    return [merged[k] for k in sorted(merged)]


def _merge2(a: RunManifest, b: RunManifest) -> RunManifest:
    out = RunManifest(mode=_merge_label(a.mode, b.mode))
    for name in _LABELS[1:]:
        setattr(out, name, _merge_label(getattr(a, name), getattr(b, name)))
    for name in _SUMMED:
        setattr(out, name, getattr(a, name) + getattr(b, name))
    for name in _MAXED:
        setattr(out, name, max(getattr(a, name), getattr(b, name)))
    out.incremental = a.incremental and b.incremental
    out.counters_enabled = a.counters_enabled or b.counters_enabled
    out.timeout_factor = _merge_optional_max(a.timeout_factor, b.timeout_factor)
    out.jobs = _merge_jobs(a.jobs, b.jobs)
    out.quarantined = _merge_quarantined(a.quarantined, b.quarantined)
    out.shards = _merge_shards(a.shards, b.shards)
    out.status_counts = _sum_counts(a.status_counts, b.status_counts)
    out.counter_totals = _sum_counts(a.counter_totals, b.counter_totals)
    out.path = None
    return out


def merge_identity() -> RunManifest:
    """The fold's identity element: an empty, opinion-free manifest."""
    m = RunManifest(mode="")
    m.requested_jobs = 0
    m.effective_jobs = 0
    m.worker_reason = ""
    m.incremental = True
    m.engine = ""
    m.timeout_factor = None
    m.python = ""
    m.cpu_count = 0
    m.path = None
    return m


def merge_manifests(manifests: Iterable[RunManifest]) -> RunManifest:
    """Fold any number of manifests into one merged manifest.

    Associative and commutative (see the module docstring for the
    per-field rules), so any partition of the same underlying lease
    manifests — merged in any order, grouped any way — yields the same
    result.  An empty iterable returns :func:`merge_identity`.
    """
    out = merge_identity()
    for m in manifests:
        out = _merge2(out, m)
    return out
