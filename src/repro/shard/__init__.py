"""Shard fabric: distributed campaigns over the content-addressed store.

``repro.shard`` partitions the campaign tuple space ``(workload × kind ×
site × variant × run)`` across N worker nodes — processes simulating
machines, each with its own supervised pool and shard-local store
directory — and merges the results back into one record list and one
schema-5 :class:`~repro.obs.manifest.RunManifest`, bit-identical to a
single-node run.

Enable it with ``DPMR_SHARDS=N`` (or ``ExecConfig(shards=N)``); the
ordinary executor entry points route here automatically.  See
``DESIGN.md`` §11 for the lease protocol, merge semantics, and the
identity argument.
"""

from .coordinator import run_sharded_campaign, sharding_fallback
from .lease import Lease, LeaseTable, lease_size
from .merge import merge_identity, merge_manifests
from .worker import node_config, shard_store_path, shard_worker

__all__ = [
    "Lease",
    "LeaseTable",
    "lease_size",
    "merge_identity",
    "merge_manifests",
    "node_config",
    "run_sharded_campaign",
    "shard_store_path",
    "shard_worker",
    "sharding_fallback",
]
