"""Shard worker: one process simulating one campaign machine.

A shard worker is forked by the coordinator and owns a *node's* worth of
state: its own shard-local :class:`~repro.eval.store.ResultStore`
directory and its own supervised executor underneath (the ordinary
:func:`~repro.eval.parallel.run_campaign_jobs_with_manifest`, re-entered
with ``shards=1``).  Work arrives as :class:`~repro.shard.lease.Lease`
batches over the supervisor's task pipe; for each lease the worker runs
exactly the single-node campaign path over the lease's tuples and
reports ``(wid, lease, ok, (wid, manifest_dict))`` back.

Records deliberately do **not** travel over the result pipe: the worker
persists every finished record into its shard-local store (atomic,
content-addressed writes — the same layout as the coordinator store) and
the coordinator syncs them back by content address after the lease
completes.  That keeps the pipe payload tiny, makes a torn write
harmless (the entry is simply re-leased), and makes the merge idempotent:
re-syncing or re-running a lease rewrites byte-identical entries under
the same keys.

Pre-fork state mirrors the executor's ``_WORKER_*`` convention: the
coordinator populates the ``_SHARD_*`` globals immediately before forking
so every worker inherits the jobs, warm build states, and config via
copy-on-write — nothing program-sized is ever pickled.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import List, Optional

from ..eval.config import ExecConfig
from ..eval.parallel import CampaignJob, JobBuildState

# Populated in the coordinator immediately before shard workers are forked
# (fork inherits them); None in a plain process.
_SHARD_JOBS: Optional[List[CampaignJob]] = None
_SHARD_STATES: Optional[List[JobBuildState]] = None
_SHARD_CONFIG: Optional[ExecConfig] = None
_SHARD_ROOT: Optional[str] = None


def shard_store_path(root: str, wid: int) -> str:
    """The shard-local store directory of worker ``wid`` under ``root``."""
    return os.path.join(root, f"shard-{wid}")


def node_config(config: ExecConfig, root: str, wid: int) -> ExecConfig:
    """The :class:`ExecConfig` one shard node runs its leases under.

    ``shards=1`` re-enters the ordinary single-node executor (no
    recursion); the store points at the node's own directory; observability
    and manifest persistence stay off — the coordinator owns the merged
    manifest, and the shard path is only taken for bare (unobserved) runs.
    """
    return replace(
        config,
        shards=1,
        store_path=shard_store_path(root, wid),
        trace_path=None,
        trace_events=None,
        counters=False,
        manifest_path=None,
    )


def shard_worker(wid: int, task_conn, result_conn) -> None:
    """Worker entry point: execute leases until told to stop.

    The supervisor contract is the same as the executor's per-experiment
    workers (``None``/EOF on the task pipe means shut down; infrastructure
    exceptions are reported as failures, not deaths), but the supervised
    *item* is a whole lease.  The success payload is ``(wid,
    manifest_dict)`` — the lease's full single-node run manifest, which the
    coordinator merges into the campaign's schema-5 manifest.
    """
    from ..eval.parallel import run_campaign_jobs_with_manifest

    jobs = _SHARD_JOBS
    config = _SHARD_CONFIG
    root = _SHARD_ROOT
    assert jobs is not None and config is not None and root is not None, (
        "shard worker forked before _SHARD_* state was set"
    )
    my_config = node_config(config, root, wid)
    while True:
        try:
            lease = task_conn.recv()
        except (EOFError, OSError):
            return
        if lease is None:
            return
        try:
            _, manifest = run_campaign_jobs_with_manifest(
                jobs,
                config=my_config,
                build_states=_SHARD_STATES,
                items=list(lease.items),
            )
            payload = (wid, manifest.to_dict())
        except BaseException as exc:  # noqa: BLE001 — reported, not hidden
            try:
                result_conn.send(
                    (wid, lease, False, f"{type(exc).__name__}: {exc}")
                )
            except Exception:
                os._exit(1)
            continue
        result_conn.send((wid, lease, True, payload))
