"""Tuple-batch leases: the unit of work the coordinator hands to shards.

The campaign tuple space ``(workload × kind × site × variant × run)`` is
embarrassingly partitionable — every experiment tuple is a pure function
of its inputs — so distribution is a matter of *bookkeeping*, not
synchronization.  A :class:`Lease` is a contiguous batch of experiment
tuples in serial order; the :class:`LeaseTable` partitions the outstanding
tuples into leases, tracks which are done, and counts grants across
re-lease rounds.

Leases are hashable (frozen, tuple-typed) because they travel through
:class:`~repro.eval.supervise.WorkerSupervisor` as supervised *items*: a
shard worker that dies or wedges mid-lease is handled by exactly the
retry/quarantine machinery that already handles a dying experiment —
the lease is the experiment, one level up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: An experiment tuple: (job index, site index, variant index, run index).
Item = Tuple[int, int, int, int]

#: Target leases per shard in one round.  Several small leases per shard
#: (rather than one big one) bound the work lost to a SIGKILL or lease
#: expiry to a fraction of a shard's share, at the cost of a little more
#: coordinator traffic.
LEASES_PER_SHARD = 4


@dataclass(frozen=True)
class Lease:
    """A contiguous batch of experiment tuples granted to one shard."""

    lease_id: int
    items: Tuple[Item, ...]

    def __len__(self) -> int:
        return len(self.items)


def lease_size(n_items: int, n_shards: int, lease_items: int = 0) -> int:
    """Tuples per lease: explicit ``lease_items`` or the auto heuristic."""
    if lease_items > 0:
        return lease_items
    n_shards = max(1, n_shards)
    return max(1, -(-n_items // (n_shards * LEASES_PER_SHARD)))


class LeaseTable:
    """Partitions outstanding tuples into leases and tracks their fate.

    One table serves a whole sharded campaign across re-lease rounds:
    ``partition`` turns the currently-outstanding items into fresh leases
    (round one covers every store miss; later rounds cover only items
    whose synced results went missing, e.g. a corrupted shard-store
    entry), ``mark_done`` records a completed lease, and the grant
    counters feed the merged manifest.
    """

    def __init__(self, n_shards: int, lease_items: int = 0):
        self.n_shards = max(1, n_shards)
        self.lease_items = max(0, lease_items)
        #: leases created in round one (first grants).
        self.grants = 0
        #: leases created by later recovery rounds (re-leases of items whose
        #: results were lost after the lease nominally completed).
        self.regrants = 0
        self.rounds = 0
        self._next_id = 0
        self._done: Dict[int, int] = {}  # lease_id -> shard wid

    def partition(self, items: Sequence[Item]) -> List[Lease]:
        """Fresh leases over ``items`` (serial order, contiguous batches)."""
        size = lease_size(len(items), self.n_shards, self.lease_items)
        leases: List[Lease] = []
        for start in range(0, len(items), size):
            leases.append(
                Lease(
                    lease_id=self._next_id,
                    items=tuple(items[start : start + size]),
                )
            )
            self._next_id += 1
        if self.rounds == 0:
            self.grants += len(leases)
        else:
            self.regrants += len(leases)
        self.rounds += 1
        return leases

    def mark_done(self, lease: Lease, shard: int) -> None:
        self._done[lease.lease_id] = shard

    @property
    def completed(self) -> int:
        return len(self._done)
