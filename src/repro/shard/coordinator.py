"""Shard coordinator: lease, supervise, sync, merge.

:func:`run_sharded_campaign` is the distributed twin of
:func:`repro.eval.parallel.run_campaign_jobs_with_manifest` — same
signature (minus the observability hooks, which force single-node
execution), same return contract, bit-identical records.  The executor
routes to it when ``ExecConfig.shards > 1``.

The fabric is deliberately thin, because the substrate already does the
hard parts:

* **Partition.**  Experiment tuples are pure functions of their inputs,
  so the coordinator just looks every tuple up in its store (resume /
  memoization, exactly like single-node), partitions the misses into
  contiguous :class:`~repro.shard.lease.Lease` batches, and hands leases
  to N forked shard workers — processes simulating machines, each with
  its own supervised pool and shard-local store directory.
* **Supervise.**  Leases travel through the *existing*
  :class:`~repro.eval.supervise.WorkerSupervisor`: a SIGKILLed shard is
  detected by pipe EOF and respawned, a shard wedged past
  ``lease_timeout_s`` is killed, and in both cases the lease is re-leased
  to a fresh worker with bounded retries — node loss is the same event as
  experiment loss, one level up.
* **Sync.**  A completed lease's records are read back from the shard's
  store *by content address* and written into the coordinator store.
  Atomic writes + content addressing make the sync idempotent: replayed
  leases (a worker killed after reporting, a re-leased batch) rewrite
  byte-identical entries.  A corrupt shard-store entry is detected by the
  store's checksum validation, counted, and simply re-leased in a
  recovery round.
* **Merge.**  Per-lease manifests fold through
  :func:`~repro.shard.merge.merge_manifests` (a commutative monoid, so
  completion order cannot matter) and the coordinator overlays the
  campaign-level truth: measured wall-clock, lease counters, coordinator
  store traffic, per-shard provenance.

**Identity argument.**  Every record is computed by the same
``_run_item`` over the same fork-inherited build states with the same
per-tuple seed as a single-node run; the coordinator reassembles records
in exact serial order.  Partitioning, lease size, shard count, node
deaths, and re-leases can change only *where and when* a tuple runs,
never its inputs — so the merged records are signature-identical to the
1-shard run.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import platform
import shutil
import tempfile
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..eval.config import ExecConfig
from ..eval.experiment import ExperimentRecord
from ..eval.store import ResultStore
from ..eval.supervise import SupervisionStats, WorkerSupervisor
from ..obs.manifest import QuarantineRecord, RunManifest, ShardManifest
from . import worker as worker_mod
from .lease import Lease, LeaseTable
from .merge import merge_manifests
from .worker import shard_store_path, shard_worker

logger = logging.getLogger("repro.shard.coordinator")

_Item = Tuple[int, int, int, int]

#: Test-only chaos hook: called as ``hook(lease, wid, fabric_root)`` right
#: before a completed lease's entries are synced out of the shard-local
#: store.  The chaos suite uses it to corrupt a shard store entry at the
#: worst possible moment; production leaves it None.
_SYNC_CHAOS_HOOK = None


class _KeyOnlyStore:
    """Store stand-in when no coordinator store is configured: every
    lookup misses, so ``_store_index`` still yields keys and key fields."""

    def get(self, key: str):
        return None


def sharding_fallback(config: ExecConfig, tracer) -> Optional[str]:
    """Why a ``shards > 1`` request must run single-node, or None.

    Observability (tracing/counters) needs every event in one process, and
    the fabric needs ``fork`` for copy-on-write build-state inheritance.
    There is deliberately no minimum-work or CPU-count heuristic here:
    shard workers simulate *machines*, and the bit-identity suite relies
    on real multi-process fabric runs even on a single core.
    """
    if tracer is not None or config.observing:
        return "observability (trace/counters) forces single-node execution"
    if "fork" not in multiprocessing.get_all_start_methods():
        return "fork start method unavailable on this platform"
    return None


def run_sharded_campaign(
    jobs,
    config: ExecConfig,
    build_states=None,
    items: Optional[Sequence[_Item]] = None,
    on_record: Optional[Callable[[_Item, ExperimentRecord, str], None]] = None,
    cancel=None,
) -> Tuple[List[ExperimentRecord], RunManifest]:
    """Run the campaign across ``config.shards`` worker nodes.

    Same contract as
    :func:`~repro.eval.parallel.run_campaign_jobs_with_manifest`:
    records in exact serial order plus a (schema-5, merged) manifest;
    ``on_record`` streams store hits and synced lease results;
    ``cancel`` abandons unfinished leases.
    """
    from ..eval.parallel import (
        _all_items,
        _job_manifests,
        _store_index,
        _warm_compiled_bases,
        prepare_build_states,
    )
    from ..machine.compile import set_inline_runtime

    inline_prev = set_inline_runtime(config.inline_rt)
    started = time.monotonic()
    try:
        jobs = list(jobs)
        items = _all_items(jobs) if items is None else [tuple(i) for i in items]
        incremental = config.incremental or build_states is not None
        states = None
        if incremental and items:
            states = (
                build_states
                if build_states is not None
                else prepare_build_states(jobs)
            )

        # -- coordinator store lookup (resume / memoization) ------------
        store = config.make_store()
        cached: Dict[_Item, ExperimentRecord] = {}
        keys: Dict[_Item, str] = {}
        key_fields: Dict[_Item, Dict] = {}
        if items:
            cached, keys, key_fields = _store_index(
                jobs, states, items, config,
                store if store is not None else _KeyOnlyStore(),
            )
        if on_record is not None:
            for item in items:
                record = cached.get(item)
                if record is not None:
                    on_record(item, record, "store")
        misses = [item for item in items if item not in cached]

        # -- fabric root: shard-local stores live here -------------------
        temp_root = None
        if store is not None:
            fabric_root = os.path.join(store.root, "shards")
            os.makedirs(fabric_root, exist_ok=True)
        else:
            temp_root = tempfile.mkdtemp(prefix="dpmr-shards-")
            fabric_root = temp_root

        if config.compiled and states is not None and misses:
            _warm_compiled_bases(states)

        table = LeaseTable(config.shards, config.lease_items)
        computed: Dict[_Item, ExperimentRecord] = {}
        #: (ji, si) -> (attempts, reason); the campaign-level quarantine map.
        site_quarantined: Dict[Tuple[int, int], Tuple[int, str]] = {}
        site_index = {
            (job.workload, job.kind, job.sites[si].site_id): (ji, si)
            for ji, job in enumerate(jobs)
            for si in range(len(job.sites))
        }
        lease_manifests: List[Tuple[int, RunManifest]] = []
        shard_handles: Dict[int, ResultStore] = {}
        synced = 0
        agg = SupervisionStats()

        def sync_lease(lease: Lease, payload) -> None:
            nonlocal synced
            wid, mdict = payload
            manifest = RunManifest.from_dict(mdict)
            lease_manifests.append((wid, manifest))
            table.mark_done(lease, wid)
            # Adopt the shard's own (within-node) quarantine verdicts so the
            # affected tuples are excluded instead of endlessly re-leased.
            for q in manifest.quarantined:
                site = site_index.get((q.workload, q.kind, q.site))
                if site is not None and site not in site_quarantined:
                    site_quarantined[site] = (q.attempts, q.reason)
            hook = _SYNC_CHAOS_HOOK
            if hook is not None:
                hook(lease, wid, fabric_root)
            handle = shard_handles.get(wid)
            if handle is None:
                handle = shard_handles[wid] = ResultStore(
                    shard_store_path(fabric_root, wid)
                )
            for item in lease.items:
                if item in computed:
                    continue
                record = handle.get(keys[item])
                if record is None:
                    continue  # quarantined within the shard, or corrupt:
                    # a recovery round re-leases whatever is not condemned.
                computed[item] = record
                synced += 1
                if store is not None:
                    store.put(keys[item], record, key_fields.get(item))
                if on_record is not None:
                    on_record(item, record, "run")

        # -- lease / supervise / sync rounds -----------------------------
        outstanding = list(misses)
        worker_mod._SHARD_JOBS = jobs
        worker_mod._SHARD_STATES = states
        worker_mod._SHARD_CONFIG = config
        worker_mod._SHARD_ROOT = fabric_root
        try:
            rounds_left = config.retries + 1
            while outstanding and rounds_left > 0:
                if cancel is not None and cancel.is_set():
                    break
                rounds_left -= 1
                leases = table.partition(outstanding)
                supervisor = WorkerSupervisor(
                    multiprocessing.get_context("fork"),
                    shard_worker,
                    min(config.shards, len(leases)),
                    retries=config.retries,
                    exp_timeout_s=config.lease_timeout_s,
                    backoff_s=config.retry_backoff_s,
                    site_of=lambda lease: lease.lease_id,
                    on_result=sync_lease,
                    cancel=cancel,
                )
                supervisor.run(leases)
                agg.retries += supervisor.stats.retries
                agg.worker_restarts += supervisor.stats.worker_restarts
                agg.exp_timeouts += supervisor.stats.exp_timeouts
                # A lease that exhausted its retries condemns every site it
                # carried — the same never-silent degradation contract as
                # the single-node executor, at lease granularity.
                by_id = {lease.lease_id: lease for lease in leases}
                for lid, (attempts, reason) in sorted(
                    supervisor.stats.quarantined.items()
                ):
                    for item in by_id[lid].items:
                        if item[:2] not in site_quarantined:
                            site_quarantined[item[:2]] = (
                                attempts,
                                f"lease {lid}: {reason}",
                            )
                outstanding = [
                    item
                    for item in outstanding
                    if item not in computed
                    and item[:2] not in site_quarantined
                ]
            cancelled = cancel is not None and cancel.is_set()
            if outstanding and not cancelled:
                # Results kept vanishing (e.g. persistent shard-store
                # corruption) and the recovery budget is spent: quarantine,
                # never hang and never lie.
                for item in outstanding:
                    if item[:2] not in site_quarantined:
                        site_quarantined[item[:2]] = (
                            config.retries + 1,
                            "shard results missing after re-lease rounds",
                        )
                outstanding = []
        finally:
            worker_mod._SHARD_JOBS = None
            worker_mod._SHARD_STATES = None
            worker_mod._SHARD_CONFIG = None
            worker_mod._SHARD_ROOT = None
            if temp_root is not None:
                shutil.rmtree(temp_root, ignore_errors=True)

        # -- reassemble in exact serial order ----------------------------
        records: List[ExperimentRecord] = []
        for item in items:
            if item[:2] in site_quarantined:
                continue
            record = cached.get(item)
            if record is None:
                record = computed.get(item)
            if record is None:
                if cancelled:
                    continue  # abandoned by cancellation
                raise RuntimeError(
                    f"experiment {item} neither synced nor quarantined "
                    "(shard coordinator invariant violated)"
                )
            records.append(record)
        if cancelled:
            logger.warning(
                "sharded campaign cancelled: %d of %d tuple(s) finished",
                len(records),
                len(items),
            )

        # -- merged schema-5 manifest ------------------------------------
        merged = merge_manifests(m for _, m in lease_manifests)
        manifest = merged
        manifest.mode = "campaign"
        manifest.requested_jobs = config.jobs
        manifest.effective_jobs = max(1, merged.effective_jobs)
        if not misses:
            manifest.worker_reason = "all experiments served from store"
        else:
            manifest.worker_reason = (
                f"sharded: {config.shards} node(s), "
                f"{table.grants} lease(s)"
            )
        manifest.serial_fallback = None
        manifest.trace_path = None
        manifest.counters_enabled = False
        manifest.engine = "compiled" if config.compiled else "interp"
        manifest.incremental = states is not None
        manifest.timeout_factor = config.timeout_factor
        manifest.n_jobs = len(jobs)
        manifest.n_items = len(items)
        manifest.n_records = len(records)
        manifest.python = platform.python_version()
        manifest.cpu_count = os.cpu_count() or 1
        if not manifest.jobs:
            manifest.jobs = _job_manifests(jobs, states)
        manifest.shared_hits = 0
        shard_corrupt = sum(h.stats.corrupt for h in shard_handles.values())
        if store is not None:
            manifest.store_path = store.root
            manifest.store_hits = store.stats.hits
            manifest.store_misses = store.stats.misses
            manifest.store_writes = store.stats.writes
            manifest.store_corrupt = store.stats.corrupt + shard_corrupt
        else:
            manifest.store_path = None
            manifest.store_hits = 0
            manifest.store_misses = 0
            manifest.store_writes = 0
            manifest.store_corrupt = shard_corrupt
        manifest.worker_restarts = merged.worker_restarts + agg.worker_restarts
        manifest.n_shards = config.shards
        manifest.lease_grants = table.grants
        manifest.lease_reassignments = agg.retries + table.regrants
        manifest.lease_expiries = agg.exp_timeouts
        manifest.store_synced = synced
        by_wid: Dict[int, ShardManifest] = {}
        for wid, m in lease_manifests:
            sm = by_wid.get(wid)
            if sm is None:
                sm = by_wid[wid] = ShardManifest(shard=wid)
            sm.leases += 1
            sm.n_records += m.n_records
            sm.store_writes += m.store_writes
            sm.retries += m.retries
            sm.wall_s += m.wall_s
        manifest.shards = [by_wid[k] for k in sorted(by_wid)]
        manifest.quarantined = [
            QuarantineRecord(
                workload=jobs[ji].workload,
                kind=jobs[ji].kind,
                site=jobs[ji].sites[si].site_id,
                attempts=attempts,
                reason=reason,
            )
            for (ji, si), (attempts, reason) in sorted(
                site_quarantined.items()
            )
        ]
        manifest.status_counts = {}
        for r in records:
            s = r.result.status.value
            manifest.status_counts[s] = manifest.status_counts.get(s, 0) + 1
        from ..obs.counters import total_counters

        manifest.counter_totals = total_counters(
            r.result.counters for r in records
        )
        manifest.wall_s = time.monotonic() - started
        out_path = config.effective_manifest_path()
        if out_path is not None:
            manifest.write(out_path)
        return records, manifest
    finally:
        set_inline_runtime(inline_prev)
