"""Experimental framework: variants, experiments, metrics, reports (§3.3–3.6).

The primary entry point is :func:`run` — a single facade over clean
(overhead) runs, single-harness fault campaigns, and prepared multi-job
campaigns — which always returns a :class:`CampaignResult` (records plus
run manifest).  Execution knobs live on :class:`ExecConfig`
(``DPMR_JOBS``, ``DPMR_INCREMENTAL``, ``DPMR_TRACE``, …), parsed from the
environment in exactly one place (:mod:`repro.eval.config`).
"""

from .api import (
    CampaignRequest,
    CampaignResult,
    default_harness_provider,
    request_jobs,
    run,
)
from .config import DEFAULT_TIMEOUT_FACTOR, ExecConfig
from .experiment import ExperimentRecord, TIMEOUT_FACTOR, WorkloadHarness
from .parallel import (
    CampaignJob,
    JobBuildState,
    default_jobs,
    effective_workers,
    incremental_default,
    job_for_harness,
    prepare_build_states,
    run_campaign_jobs,
    run_campaign_jobs_with_manifest,
)
from .metrics import (
    CoverageComponents,
    aggregate_counters,
    by_variant,
    by_workload,
    conditional_coverage_components,
    coverage,
    coverage_components,
    mean_time_to_detection,
    std_not_all_det_sites,
    successful,
)
from .report import (
    conditional_coverage_table,
    counter_table,
    coverage_table,
    latency_table,
    manifest_section,
    overhead_table,
)
from .store import (
    ResultStore,
    StoreStats,
    experiment_key,
    module_fingerprint,
    variant_fingerprint,
)
from .supervise import SupervisionStats, WorkerSupervisor
from .variants import (
    CompiledVariant,
    Variant,
    diversity_variants,
    policy_variants,
    resolve_variants,
    stdapp_variant,
    variant_registry,
)

__all__ = [
    "CampaignJob",
    "CampaignRequest",
    "CampaignResult",
    "CompiledVariant",
    "CoverageComponents",
    "DEFAULT_TIMEOUT_FACTOR",
    "ExecConfig",
    "ExperimentRecord",
    "JobBuildState",
    "ResultStore",
    "StoreStats",
    "SupervisionStats",
    "TIMEOUT_FACTOR",
    "Variant",
    "WorkerSupervisor",
    "WorkloadHarness",
    "aggregate_counters",
    "by_variant",
    "by_workload",
    "conditional_coverage_components",
    "conditional_coverage_table",
    "counter_table",
    "coverage",
    "coverage_components",
    "coverage_table",
    "default_harness_provider",
    "default_jobs",
    "diversity_variants",
    "effective_workers",
    "experiment_key",
    "incremental_default",
    "job_for_harness",
    "latency_table",
    "module_fingerprint",
    "manifest_section",
    "mean_time_to_detection",
    "overhead_table",
    "policy_variants",
    "prepare_build_states",
    "request_jobs",
    "resolve_variants",
    "run",
    "run_campaign_jobs",
    "run_campaign_jobs_with_manifest",
    "std_not_all_det_sites",
    "stdapp_variant",
    "successful",
    "variant_fingerprint",
    "variant_registry",
]
