"""Experimental framework: variants, experiments, metrics, reports (§3.3–3.6)."""

from .experiment import ExperimentRecord, TIMEOUT_FACTOR, WorkloadHarness
from .parallel import (
    CampaignJob,
    JobBuildState,
    default_jobs,
    effective_workers,
    incremental_default,
    job_for_harness,
    prepare_build_states,
    run_campaign_jobs,
)
from .metrics import (
    CoverageComponents,
    by_variant,
    by_workload,
    conditional_coverage_components,
    coverage,
    coverage_components,
    mean_time_to_detection,
    std_not_all_det_sites,
    successful,
)
from .report import (
    conditional_coverage_table,
    coverage_table,
    latency_table,
    overhead_table,
)
from .variants import (
    CompiledVariant,
    Variant,
    diversity_variants,
    policy_variants,
    stdapp_variant,
)

__all__ = [
    "CampaignJob",
    "CompiledVariant",
    "CoverageComponents",
    "ExperimentRecord",
    "JobBuildState",
    "default_jobs",
    "effective_workers",
    "incremental_default",
    "job_for_harness",
    "prepare_build_states",
    "run_campaign_jobs",
    "TIMEOUT_FACTOR",
    "Variant",
    "WorkloadHarness",
    "by_variant",
    "by_workload",
    "conditional_coverage_components",
    "conditional_coverage_table",
    "coverage",
    "coverage_components",
    "coverage_table",
    "diversity_variants",
    "latency_table",
    "mean_time_to_detection",
    "overhead_table",
    "policy_variants",
    "std_not_all_det_sites",
    "stdapp_variant",
    "successful",
]
