"""The unified run/campaign entry point and the typed campaign API.

One function — :func:`run` — fronts the execution shapes of the
evaluation (clean overhead runs, one harness campaign, a multi-job
campaign, and a declarative :class:`CampaignRequest`) and always returns
the same thing: a :class:`CampaignResult` holding the experiment records
*and* the run manifest, so every invocation is observable and auditable
the same way::

    from repro.eval import ExecConfig, WorkloadHarness, run

    res = run(harness, variants, kind="heap-array-resize",
              config=ExecConfig(jobs=8, trace_path="campaign.jsonl"))
    res.records      # bit-identical to the serial per-call API
    res.manifest     # worker decisions, cache stats, counter totals

:class:`CampaignRequest` is the *public request shape*: a plain, fully
serializable description of a figure matrix (workloads × fault kinds ×
variants × percent × seeds).  ``run(request)`` executes it in-process;
the campaign service (:mod:`repro.service`) accepts the exact same type
over the wire and produces bit-identical records — both paths expand a
request through :func:`request_jobs`, so the in-process and over-the-wire
APIs cannot drift.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs.counters import total_counters
from ..obs.manifest import RunManifest
from ..obs.tracer import real_tracer
from .config import ExecConfig
from .experiment import ExperimentRecord, WorkloadHarness
from .parallel import CampaignJob, job_for_harness, run_campaign_jobs_with_manifest
from .variants import Variant, resolve_variants


@dataclass(frozen=True)
class CampaignRequest:
    """A declarative campaign: one figure matrix as plain, wire-safe data.

    Every field is a scalar or tuple of scalars, so a request round-trips
    losslessly through JSON (:meth:`to_dict` / :meth:`from_dict`) — the
    service protocol serializes exactly this type.  Expansion into
    experiment tuples is deterministic: workloads × kinds in the order
    given, then every fault site × variant × seed of each campaign job.
    """

    #: workload names from :data:`repro.apps.APP_BUILDERS` (e.g. ``"mcf"``).
    workloads: Tuple[str, ...]
    #: fault kinds from :data:`repro.faultinject.FAULT_KINDS`.
    kinds: Tuple[str, ...]
    #: variant names resolved through :func:`repro.eval.variants.variant_registry`.
    variants: Tuple[str, ...]
    #: replication design for DPMR variants (``"sds"`` or ``"mds"``).
    design: str = "sds"
    #: fault-injection percent (position of the site sweep, §3.4).
    percent: int = 50
    #: workload build scale (the app factories' size knob).
    scale: int = 1
    #: machine seeds; one run per seed per (site, variant).
    seeds: Tuple[int, ...] = (0,)
    #: truncate each job's enumerated fault sites (None: all sites).
    max_sites: Optional[int] = None
    #: client-chosen correlation id; the service generates one if None.
    request_id: Optional[str] = None

    def __post_init__(self):
        # Tolerate lists from JSON/keyword construction; store tuples so the
        # dataclass stays hashable and safely shareable.
        for name in ("workloads", "kinds", "variants", "seeds"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    def validate(self) -> "CampaignRequest":
        """Raise :class:`ValueError` on anything expansion would choke on."""
        from ..apps import APP_BUILDERS
        from ..faultinject import FAULT_KINDS

        if not self.workloads:
            raise ValueError("request has no workloads")
        unknown = [w for w in self.workloads if w not in APP_BUILDERS]
        if unknown:
            raise ValueError(
                f"unknown workload(s) {unknown!r}; known: {sorted(APP_BUILDERS)}"
            )
        if not self.kinds:
            raise ValueError("request has no fault kinds")
        bad = [k for k in self.kinds if k not in FAULT_KINDS]
        if bad:
            raise ValueError(
                f"unknown fault kind(s) {bad!r}; known: {sorted(FAULT_KINDS)}"
            )
        if not self.variants:
            raise ValueError("request has no variants")
        resolve_variants(self.variants, self.design)  # raises on unknown names
        if not 0 <= int(self.percent) <= 100:
            raise ValueError(f"percent must be 0..100, got {self.percent}")
        if int(self.scale) < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if not self.seeds:
            raise ValueError("request has no seeds")
        if self.max_sites is not None and int(self.max_sites) < 0:
            raise ValueError(f"max_sites must be >= 0, got {self.max_sites}")
        return self

    # -- serialization (the wire shape of the service protocol) ----------

    def to_dict(self) -> Dict:
        d = asdict(self)
        for name in ("workloads", "kinds", "variants", "seeds"):
            d[name] = list(d[name])
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "CampaignRequest":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        extra = set(d) - known
        if extra:
            raise ValueError(f"unknown CampaignRequest field(s): {sorted(extra)}")
        missing = {"workloads", "kinds", "variants"} - set(d)
        if missing:
            raise ValueError(f"CampaignRequest missing field(s): {sorted(missing)}")
        return cls(**d)


@dataclass
class CampaignResult:
    """Uniform result of :func:`run`: records plus their run manifest."""

    records: List[ExperimentRecord]
    manifest: RunManifest

    def __iter__(self) -> Iterator[ExperimentRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    # -- serialization (the wire shape of the service protocol) ----------

    def to_dict(self) -> Dict:
        from .store import record_to_dict

        return {
            "records": [record_to_dict(r) for r in self.records],
            "manifest": self.manifest.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "CampaignResult":
        from .store import record_from_dict

        return cls(
            records=[record_from_dict(r) for r in d["records"]],
            manifest=RunManifest.from_dict(d["manifest"]),
        )


#: ``harness_for(workload, scale)`` — how :func:`request_jobs` obtains each
#: workload's harness.  The service passes its cache; in-process callers
#: default to building (and golden-running) a fresh harness.
HarnessProvider = Callable[[str, int], WorkloadHarness]


def default_harness_provider(
    config: Optional[ExecConfig] = None,
) -> HarnessProvider:
    """Fresh :class:`WorkloadHarness` per call, built from the app factory."""

    def provide(workload: str, scale: int) -> WorkloadHarness:
        from ..apps import app_factory

        return WorkloadHarness(workload, app_factory(workload, scale), config=config)

    return provide


def request_jobs(
    request: CampaignRequest,
    config: Optional[ExecConfig] = None,
    harness_for: Optional[HarnessProvider] = None,
) -> List[CampaignJob]:
    """Expand a request into executor jobs — the one expansion everyone uses.

    Both the in-process ``run(request)`` path and the campaign service
    expand through here, which is what pins their record order (and
    content) to each other: workloads × kinds in request order, each job
    enumerating site × variant × seed exactly like the serial loop.
    """
    request.validate()
    cfg = config if config is not None else ExecConfig.from_env()
    provide = harness_for if harness_for is not None else default_harness_provider(cfg)
    variants = resolve_variants(request.variants, request.design)
    jobs: List[CampaignJob] = []
    for workload in request.workloads:
        harness = provide(workload, request.scale)
        for kind in request.kinds:
            jobs.append(
                job_for_harness(
                    harness,
                    variants,
                    kind,
                    percent=request.percent,
                    max_sites=request.max_sites,
                    seeds=request.seeds,
                )
            )
    return jobs


def run(
    target: Union[WorkloadHarness, CampaignRequest, Sequence[CampaignJob]],
    variants: Optional[Iterable[Variant]] = None,
    kind: Optional[str] = None,
    *,
    config: Optional[ExecConfig] = None,
    percent: int = 50,
    max_sites: Optional[int] = None,
    tracer=None,
) -> CampaignResult:
    """Run clean experiments or a fault campaign; always records + manifest.

    Dispatch is by arguments:

    * ``run(harness, variants)`` — clean (non-fault-injection) runs of each
      variant, one per harness seed (the overhead experiments);
    * ``run(harness, variants, kind=...)`` — one fault campaign over the
      harness (every site × variant × seed of that fault kind);
    * ``run(request)`` — a declarative :class:`CampaignRequest`, expanded
      by :func:`request_jobs` (the same expansion the campaign service
      uses, so records are bit-identical to submitting the request to a
      daemon);
    * ``run(jobs)`` — a prepared multi-job campaign
      (:class:`~repro.eval.parallel.CampaignJob` list).

    ``config`` defaults to the harness's configuration (itself defaulting
    to the environment); ``tracer`` overrides the config's trace file, e.g.
    with a :class:`~repro.obs.CollectingTracer`.
    """
    if isinstance(target, CampaignRequest):
        if kind is not None or variants is not None:
            raise TypeError(
                "run(request) takes no variants/kind — they live on the request"
            )
        jobs = request_jobs(target, config=config)
        records, manifest = run_campaign_jobs_with_manifest(
            jobs, config=config, tracer=tracer
        )
        return CampaignResult(records, manifest)
    if isinstance(target, WorkloadHarness):
        if kind is not None:
            if variants is None:
                raise TypeError("run(harness, ..., kind=...) requires variants")
            cfg = config if config is not None else target.config
            job = job_for_harness(
                target, variants, kind, percent=percent, max_sites=max_sites
            )
            records, manifest = run_campaign_jobs_with_manifest(
                [job], config=cfg, tracer=tracer
            )
            return CampaignResult(records, manifest)
        if variants is None:
            raise TypeError("run(harness) requires variants (or kind= for a campaign)")
        return _run_clean(target, list(variants), config=config, tracer=tracer)
    if kind is not None or variants is not None:
        raise TypeError("run(jobs) takes no variants/kind — they live on the jobs")
    records, manifest = run_campaign_jobs_with_manifest(
        list(target), config=config, tracer=tracer
    )
    return CampaignResult(records, manifest)


def _run_clean(
    harness: WorkloadHarness,
    variants: List[Variant],
    config: Optional[ExecConfig],
    tracer=None,
) -> CampaignResult:
    """Clean runs of every (variant, seed), with the same manifest shape."""
    cfg = config if config is not None else harness.config
    if cfg is None:
        cfg = ExecConfig.from_env()
    own_tracer = tracer is None
    if own_tracer:
        tracer = cfg.make_tracer()
    tracer = real_tracer(tracer)
    counters = cfg.counters or tracer is not None
    # Observability forces the instrumented interpreter (see parallel.py).
    use_compiled = cfg.compiled and not counters

    manifest = RunManifest(
        mode="clean",
        requested_jobs=cfg.jobs,
        effective_jobs=1,
        worker_reason="clean runs execute serially",
        incremental=False,
        trace_path=cfg.trace_path if (own_tracer and tracer is not None) else None,
        counters_enabled=counters,
        engine="compiled" if use_compiled else "interp",
        timeout_factor=cfg.timeout_factor,
        n_jobs=1,
        n_items=len(variants) * len(harness.seeds),
    )
    from ..machine.compile import codegen_stats

    cg_before = codegen_stats()
    started = time.monotonic()
    records: List[ExperimentRecord] = []
    try:
        for variant in variants:
            for seed in harness.seeds:
                records.append(
                    harness.run_clean(
                        variant,
                        seed=seed,
                        tracer=tracer,
                        counters=counters,
                        compiled=use_compiled,
                    )
                )
    finally:
        if own_tracer and tracer is not None:
            tracer.close()
    manifest.wall_s = time.monotonic() - started
    cg_after = codegen_stats()
    manifest.codegen_hits = cg_after["hits"] - cg_before["hits"]
    manifest.codegen_misses = cg_after["misses"] - cg_before["misses"]
    manifest.n_records = len(records)
    for r in records:
        s = r.result.status.value
        manifest.status_counts[s] = manifest.status_counts.get(s, 0) + 1
    manifest.counter_totals = total_counters(r.result.counters for r in records)
    out_path = cfg.effective_manifest_path()
    if out_path is not None:
        manifest.write(out_path)
    return CampaignResult(records, manifest)
