"""The unified run/campaign entry point.

One function — :func:`run` — fronts the three execution shapes of the
evaluation (clean overhead runs, one harness campaign, a multi-job
campaign) and always returns the same thing: a :class:`CampaignResult`
holding the experiment records *and* the run manifest, so every invocation
is observable and auditable the same way::

    from repro.eval import ExecConfig, WorkloadHarness, run

    res = run(harness, variants, kind="heap-array-resize",
              config=ExecConfig(jobs=8, trace_path="campaign.jsonl"))
    res.records      # bit-identical to the serial per-call API
    res.manifest     # worker decisions, cache stats, counter totals
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from ..obs.counters import total_counters
from ..obs.manifest import RunManifest
from ..obs.tracer import real_tracer
from .config import ExecConfig
from .experiment import ExperimentRecord, WorkloadHarness
from .parallel import CampaignJob, job_for_harness, run_campaign_jobs_with_manifest
from .variants import Variant


@dataclass
class CampaignResult:
    """Uniform result of :func:`run`: records plus their run manifest."""

    records: List[ExperimentRecord]
    manifest: RunManifest

    def __iter__(self) -> Iterator[ExperimentRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


def run(
    target: Union[WorkloadHarness, Sequence[CampaignJob]],
    variants: Optional[Iterable[Variant]] = None,
    kind: Optional[str] = None,
    *,
    config: Optional[ExecConfig] = None,
    percent: int = 50,
    max_sites: Optional[int] = None,
    tracer=None,
) -> CampaignResult:
    """Run clean experiments or a fault campaign; always records + manifest.

    Dispatch is by arguments:

    * ``run(harness, variants)`` — clean (non-fault-injection) runs of each
      variant, one per harness seed (the overhead experiments);
    * ``run(harness, variants, kind=...)`` — one fault campaign over the
      harness (every site × variant × seed of that fault kind);
    * ``run(jobs)`` — a prepared multi-job campaign
      (:class:`~repro.eval.parallel.CampaignJob` list).

    ``config`` defaults to the harness's configuration (itself defaulting
    to the environment); ``tracer`` overrides the config's trace file, e.g.
    with a :class:`~repro.obs.CollectingTracer`.
    """
    if isinstance(target, WorkloadHarness):
        if kind is not None:
            if variants is None:
                raise TypeError("run(harness, ..., kind=...) requires variants")
            cfg = config if config is not None else target.config
            job = job_for_harness(
                target, variants, kind, percent=percent, max_sites=max_sites
            )
            records, manifest = run_campaign_jobs_with_manifest(
                [job], config=cfg, tracer=tracer
            )
            return CampaignResult(records, manifest)
        if variants is None:
            raise TypeError("run(harness) requires variants (or kind= for a campaign)")
        return _run_clean(target, list(variants), config=config, tracer=tracer)
    if kind is not None or variants is not None:
        raise TypeError("run(jobs) takes no variants/kind — they live on the jobs")
    records, manifest = run_campaign_jobs_with_manifest(
        list(target), config=config, tracer=tracer
    )
    return CampaignResult(records, manifest)


def _run_clean(
    harness: WorkloadHarness,
    variants: List[Variant],
    config: Optional[ExecConfig],
    tracer=None,
) -> CampaignResult:
    """Clean runs of every (variant, seed), with the same manifest shape."""
    cfg = config if config is not None else harness.config
    if cfg is None:
        cfg = ExecConfig.from_env()
    own_tracer = tracer is None
    if own_tracer:
        tracer = cfg.make_tracer()
    tracer = real_tracer(tracer)
    counters = cfg.counters or tracer is not None
    # Observability forces the instrumented interpreter (see parallel.py).
    use_compiled = cfg.compiled and not counters

    manifest = RunManifest(
        mode="clean",
        requested_jobs=cfg.jobs,
        effective_jobs=1,
        worker_reason="clean runs execute serially",
        incremental=False,
        trace_path=cfg.trace_path if (own_tracer and tracer is not None) else None,
        counters_enabled=counters,
        engine="compiled" if use_compiled else "interp",
        timeout_factor=cfg.timeout_factor,
        n_jobs=1,
        n_items=len(variants) * len(harness.seeds),
    )
    from ..machine.compile import codegen_stats

    cg_before = codegen_stats()
    started = time.monotonic()
    records: List[ExperimentRecord] = []
    try:
        for variant in variants:
            for seed in harness.seeds:
                records.append(
                    harness.run_clean(
                        variant,
                        seed=seed,
                        tracer=tracer,
                        counters=counters,
                        compiled=use_compiled,
                    )
                )
    finally:
        if own_tracer and tracer is not None:
            tracer.close()
    manifest.wall_s = time.monotonic() - started
    cg_after = codegen_stats()
    manifest.codegen_hits = cg_after["hits"] - cg_before["hits"]
    manifest.codegen_misses = cg_after["misses"] - cg_before["misses"]
    manifest.n_records = len(records)
    for r in records:
        s = r.result.status.value
        manifest.status_counts[s] = manifest.status_counts.get(s, 0) + 1
    manifest.counter_totals = total_counters(r.result.counters for r in records)
    out_path = cfg.effective_manifest_path()
    if out_path is not None:
        manifest.write(out_path)
    return CampaignResult(records, manifest)
