"""Experiment execution and per-run classification (§3.6, Table 3.2).

An experiment is one run of an application variant, identified by the tuple
``(W, C, D, I, RN)`` — workload, comparison policy, diversity
transformation, injected fault, run number.  :class:`ExperimentRecord`
captures the measured random variables: running time ``T``, successful
fault injection ``SF``, correct output ``CO``, natural detection ``Ndet``,
DPMR detection ``Ddet``, and time-to-detection ``T2D``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..faultinject.campaign import ProgramFactory
from ..machine.process import ExitStatus, ProcessResult, run_process
from .config import DEFAULT_TIMEOUT_FACTOR, ExecConfig
from .variants import CompiledVariant, Variant

#: timeout multiplier over golden running time (the paper uses ~20x).
#: Kept as a module alias; the configurable knob is
#: ``ExecConfig.timeout_factor`` / ``DPMR_TIMEOUT_FACTOR``.
TIMEOUT_FACTOR = DEFAULT_TIMEOUT_FACTOR


@dataclass
class ExperimentRecord:
    """One experiment's measurements and derived classifications."""

    workload: str
    variant: str
    site: Optional[str]  # fault-site id, None for non-FI experiments
    run: int
    result: ProcessResult
    golden_output: str

    def signature(self) -> tuple:
        """Every measured field, as one comparable value.

        Two records are *bit-identical* for the executor's determinism and
        resume guarantees iff their signatures are equal.  Machine counters
        are deliberately excluded — observability must never change what an
        experiment measures, and store hits replay records that may have
        been computed under a different observability configuration.
        """
        return (
            self.workload,
            self.variant,
            self.site,
            self.run,
            self.golden_output,
            self.result.status,
            self.result.exit_code,
            self.result.output_text,
            self.result.cycles,
            self.result.instructions,
            tuple(sorted(self.result.fault_activations.items())),
            self.result.detail,
        )

    @property
    def sf(self) -> bool:
        """Successful fault injection: the injected code executed (§3.6)."""
        if self.site is None:
            return False
        return self.site in self.result.fault_activations

    @property
    def co(self) -> bool:
        """Correct output — the literal interpretation: the run produced
        exactly what the golden run would have (a detected error is *not*
        correct output)."""
        return (
            self.result.status is ExitStatus.NORMAL
            and self.result.exit_code == 0
            and self.result.output_text == self.golden_output
        )

    @property
    def ddet(self) -> bool:
        """Error detected by DPMR."""
        return self.result.status is ExitStatus.DPMR_DETECTED

    @property
    def ndet(self) -> bool:
        """Natural detection: crash, application-detected error, or an
        error-identifying exit code."""
        s = self.result.status
        if s in (ExitStatus.CRASH, ExitStatus.APP_ERROR):
            return True
        return s is ExitStatus.NORMAL and self.result.exit_code != 0

    @property
    def covered(self) -> bool:
        """Coverage per Eq. 3.2: correct output or some detection."""
        return self.co or self.ndet or self.ddet

    @property
    def detection_time(self) -> Optional[int]:
        if self.ddet or self.ndet:
            return self.result.cycles
        return None

    @property
    def t2d(self) -> Optional[int]:
        """Time to fault detection (Eq. 3.4): detection minus activation."""
        if self.co or not self.sf:
            return None
        d = self.detection_time
        a = self.result.fault_activations.get(self.site)
        if d is None or a is None:
            return None
        return max(d - a, 0)


@dataclass
class WorkloadHarness:
    """Runs variants of one workload, non-FI and under fault campaigns."""

    name: str
    factory: ProgramFactory
    argv: Sequence[str] = ()
    seeds: Sequence[int] = (0,)
    #: execution configuration; None defaults to the environment's.
    config: Optional[ExecConfig] = None

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = ExecConfig.from_env()
        golden = run_process(self.factory(), argv=self.argv)
        if golden.status is not ExitStatus.NORMAL or golden.exit_code != 0:
            raise RuntimeError(
                f"golden run of {self.name} failed: {golden.status} "
                f"{golden.detail} exit={golden.exit_code}"
            )
        self.golden = golden
        self.timeout = max(golden.cycles * self.config.timeout_factor, 100_000)

    # -- non-fault-injection runs (overhead) ------------------------------

    def run_clean(
        self,
        variant: Variant,
        seed: int = 0,
        tracer=None,
        counters: bool = False,
        compiled: bool = False,
    ) -> ExperimentRecord:
        build = variant.compile(self.factory())
        trace_meta = None
        if tracer is not None:
            trace_meta = {
                "run_id": f"{self.name}/{variant.name}/clean/{seed}",
                "workload": self.name,
                "variant": variant.name,
                "site": None,
                "run": seed,
                "golden_output": self.golden.output_text,
            }
        result = build.run(
            argv=self.argv,
            max_cycles=self.timeout * 3,
            seed=seed,
            tracer=tracer,
            counters=counters,
            trace_meta=trace_meta,
            compiled=compiled,
        )
        return ExperimentRecord(
            workload=self.name,
            variant=variant.name,
            site=None,
            run=seed,
            result=result,
            golden_output=self.golden.output_text,
        )

    def overhead(self, variant: Variant, seed: int = 0) -> float:
        """Eq. 3.1: variant running time over golden running time."""
        rec = self.run_clean(variant, seed)
        if rec.result.status is not ExitStatus.NORMAL:
            raise RuntimeError(
                f"clean run of {self.name}/{variant.name} failed: "
                f"{rec.result.status} {rec.result.detail}"
            )
        return rec.result.cycles / self.golden.cycles

    # -- fault-injection runs -----------------------------------------------

    def run_campaign(
        self,
        variants: Iterable[Variant],
        kind: str,
        percent: int = 50,
        max_sites: Optional[int] = None,
        config: Optional[ExecConfig] = None,
    ) -> List[ExperimentRecord]:
        """Run every (site, variant, seed) experiment for one fault kind.

        Execution is governed by ``config`` (worker count, incremental
        builds, tracing/counters; defaults to the harness's configuration);
        serial and parallel execution produce identical records in identical
        order, as do incremental and full-rebuild builds.  Use
        :func:`repro.eval.run` to also get the run manifest.
        """
        from .parallel import job_for_harness, run_campaign_jobs_with_manifest

        cfg = config if config is not None else self.config
        job = job_for_harness(
            self, variants, kind, percent=percent, max_sites=max_sites
        )
        records, _ = run_campaign_jobs_with_manifest([job], config=cfg)
        return records
