"""Persistent, content-addressed experiment result store.

The evaluation is thousands of independent experiment tuples; all of them
are pure functions of their inputs — the pristine module text, the fault
site, the variant configuration, the seed, and the execution budget.  The
store memoizes finished :class:`~repro.eval.experiment.ExperimentRecord`
values on disk under a key derived from exactly those inputs, so

* re-running any figure's campaign skips already-computed tuples, and
* a campaign interrupted mid-flight (crashed coordinator, killed machine)
  resumes exactly where it died: surviving entries are served as hits and
  only the missing tail is recomputed.

Key derivation (:func:`experiment_key`) hashes a canonical JSON encoding
of ``(workload, fault kind, injection percent, site id, variant
fingerprint, seed, run index, argv, cycle budget, exec-config fingerprint,
module sha256)``.  Any change to the program text, the variant's design /
diversity / comparison policy, or a result-affecting execution knob
changes the key, so stale entries can never be served; knobs that are
*proven* not to affect records (worker count, incremental builds,
tracing) are deliberately excluded so a campaign resumed under a
different parallelism still hits.

Entries are single JSON files named by their key, written atomically
(temp file + ``os.replace``) so a SIGKILL mid-write never leaves a
half-entry under the final name.  Reads verify a payload checksum; a
corrupt or truncated entry is *deleted and treated as a miss* — the
experiment is recomputed, never crashed on.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence

from ..ir.printer import format_module
from ..machine.process import ExitStatus, ProcessResult
from .config import ExecConfig
from .experiment import ExperimentRecord
from .variants import Variant

#: Store entry schema; bump on incompatible shape changes (old-schema
#: entries are treated as misses and recomputed).
STORE_SCHEMA = 1


# -- fingerprints ----------------------------------------------------------


def module_fingerprint(module) -> str:
    """sha256 of the module's canonical printed form.

    Covers every function body (including injected faults), globals and
    their initializers — any edit to the program text changes the key.
    """
    return hashlib.sha256(format_module(module).encode("utf-8")).hexdigest()


def variant_fingerprint(variant: Variant) -> str:
    """Canonical descriptor of one variant's configuration.

    Uses the *effective* diversity/policy (mirroring
    :meth:`Variant.compiler` defaults) so ``diversity=None`` and an
    explicit ``NoDiversity()`` fingerprint identically.
    """
    if not variant.dpmr:
        return f"{variant.name}|stdapp"
    diversity = variant.diversity.name if variant.diversity is not None else "no-diversity"
    policy = variant.policy.name if variant.policy is not None else "all-loads"
    design = getattr(variant.design, "value", variant.design)
    return f"{variant.name}|dpmr|{design}|{diversity}|{policy}"


def exec_fingerprint(config: ExecConfig) -> str:
    """Hash of the result-affecting :class:`ExecConfig` fields.

    Only ``timeout_factor`` can change what a record *contains*; worker
    count, incremental builds, tracing, the compiled execution tier
    (``DPMR_COMPILE``), the shard fabric (``DPMR_SHARDS``), and the
    resilience knobs are all proven bit-transparent and excluded so their
    variation never misses.
    """
    payload = json.dumps(
        {"timeout_factor": config.timeout_factor}, sort_keys=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def experiment_key(
    workload: str,
    kind: str,
    percent: int,
    site: str,
    variant_fp: str,
    seed: int,
    run: int,
    argv: Sequence[str],
    timeout: int,
    exec_fp: str,
    module_sha: str,
) -> str:
    """Content address of one experiment tuple (sha256 hex)."""
    payload = json.dumps(
        {
            "schema": STORE_SCHEMA,
            "workload": workload,
            "kind": kind,
            "percent": percent,
            "site": site,
            "variant": variant_fp,
            "seed": seed,
            "run": run,
            "argv": list(argv),
            "timeout": timeout,
            "exec": exec_fp,
            "module": module_sha,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- record (de)serialization ---------------------------------------------


def result_to_dict(result: ProcessResult) -> Dict:
    return {
        "status": result.status.value,
        "exit_code": result.exit_code,
        "output": list(result.output),
        "cycles": result.cycles,
        "instructions": result.instructions,
        "fault_activations": dict(result.fault_activations),
        "detail": result.detail,
        "counters": dict(result.counters) if result.counters is not None else None,
    }


def result_from_dict(d: Dict) -> ProcessResult:
    return ProcessResult(
        status=ExitStatus(d["status"]),
        exit_code=d["exit_code"],
        output=list(d["output"]),
        cycles=d["cycles"],
        instructions=d["instructions"],
        fault_activations={k: int(v) for k, v in d["fault_activations"].items()},
        detail=d["detail"],
        counters=dict(d["counters"]) if d.get("counters") is not None else None,
    )


def record_to_dict(record: ExperimentRecord) -> Dict:
    return {
        "workload": record.workload,
        "variant": record.variant,
        "site": record.site,
        "run": record.run,
        "golden_output": record.golden_output,
        "result": result_to_dict(record.result),
    }


def record_from_dict(d: Dict) -> ExperimentRecord:
    return ExperimentRecord(
        workload=d["workload"],
        variant=d["variant"],
        site=d["site"],
        run=d["run"],
        result=result_from_dict(d["result"]),
        golden_output=d["golden_output"],
    )


# -- the store -------------------------------------------------------------


@dataclass
class StoreStats:
    """One store handle's traffic (reset per executor invocation)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0


class ResultStore:
    """Directory of content-addressed experiment records.

    Layout: ``<root>/<key[:2]>/<key>.json`` — two-level fan-out keeps any
    single directory small at campaign scale.  Concurrent writers are safe:
    entries are immutable once written (same key ⇒ byte-identical record,
    by the executor's determinism guarantee) and writes are atomic renames.
    """

    def __init__(self, root: str):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.stats = StoreStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # -- lookup ---------------------------------------------------------

    def get(self, key: str) -> Optional[ExperimentRecord]:
        """The stored record for ``key``, or None (miss).

        A corrupt entry — unparseable JSON, wrong schema, or a payload
        that no longer matches its checksum — is deleted, counted in
        ``stats.corrupt``, and reported as a miss so the caller recomputes.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            record = self._validate(entry)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            self._discard_corrupt(path)
            return None
        if record is None:
            self._discard_corrupt(path)
            return None
        self.stats.hits += 1
        return record

    def get_many(self, keys: Sequence[str]) -> Dict[str, ExperimentRecord]:
        """Batched lookup: ``{key: record}`` for every hit, misses absent.

        The campaign service admits whole requests at once; each key goes
        through :meth:`get` so corruption handling and per-handle hit/miss
        statistics behave exactly like single lookups.
        """
        found: Dict[str, ExperimentRecord] = {}
        for key in keys:
            record = self.get(key)
            if record is not None:
                found[key] = record
        return found

    def _validate(self, entry: Dict) -> Optional[ExperimentRecord]:
        if entry.get("schema") != STORE_SCHEMA:
            return None
        payload = entry["record"]
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        if digest != entry.get("sha256"):
            return None
        return record_from_dict(payload)

    def _discard_corrupt(self, path: str) -> None:
        self.stats.corrupt += 1
        self.stats.misses += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- insertion ------------------------------------------------------

    def put(
        self, key: str, record: ExperimentRecord, key_fields: Optional[Dict] = None
    ) -> str:
        """Persist ``record`` under ``key``; returns the entry path.

        The write is atomic (temp file in the destination directory, then
        ``os.replace``): a reader either sees the complete entry or no
        entry, and a crash mid-write leaves at worst an orphaned temp file.
        ``key_fields`` is stored verbatim for human debugging only; lookup
        never consults it.
        """
        path = self._path(key)
        payload = record_to_dict(record)
        entry = {
            "schema": STORE_SCHEMA,
            "key": key,
            "key_fields": key_fields or {},
            "sha256": hashlib.sha256(
                json.dumps(payload, sort_keys=True).encode("utf-8")
            ).hexdigest(),
            "record": payload,
        }
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    # -- maintenance ----------------------------------------------------

    def keys(self) -> Iterator[str]:
        """Every key currently on disk (order unspecified)."""
        for sub in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    yield name[: -len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))
