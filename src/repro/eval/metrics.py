"""Evaluation metrics (§3.6): coverage, conditional coverage, latency.

All metrics condition on *successful* fault injections (``SF``), exactly as
Eqs. 3.2–3.4 do.  Coverage decomposes into the three mutually exclusive
components plotted in the figures: correct output (``CO``), natural
detection and incorrect output (``Ndet ∧ ¬CO``), and DPMR detection and
incorrect output (``Ddet ∧ ¬CO``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .experiment import ExperimentRecord


@dataclass
class CoverageComponents:
    """Per-figure coverage breakdown (fractions of SF experiments)."""

    co: float
    ndet: float
    ddet: float
    total_runs: int

    @property
    def coverage(self) -> float:
        return self.co + self.ndet + self.ddet

    def __str__(self) -> str:  # pragma: no cover
        return (
            f"CO={self.co:.2f} NatDet={self.ndet:.2f} "
            f"DpmrDet={self.ddet:.2f} (coverage={self.coverage:.2f}, "
            f"n={self.total_runs})"
        )


def successful(records: Iterable[ExperimentRecord]) -> List[ExperimentRecord]:
    """Only records whose fault injection was successful."""
    return [r for r in records if r.sf]


def coverage_components(records: Iterable[ExperimentRecord]) -> CoverageComponents:
    recs = successful(records)
    n = len(recs)
    if n == 0:
        return CoverageComponents(0.0, 0.0, 0.0, 0)
    co = sum(1 for r in recs if r.co)
    ndet = sum(1 for r in recs if r.ndet and not r.co)
    ddet = sum(1 for r in recs if r.ddet and not r.co and not r.ndet)
    return CoverageComponents(co / n, ndet / n, ddet / n, n)


def coverage(records: Iterable[ExperimentRecord]) -> float:
    """Eq. 3.2: fraction of SF experiments with correct output or detection."""
    return coverage_components(records).coverage


def std_not_all_det_sites(stdapp_records: Iterable[ExperimentRecord]) -> Set[str]:
    """Sites where ``StdNotAllDet`` holds (Table 3.2).

    A site qualifies when at least one fi-stdapp run with a successful
    injection produced incorrect output *without* natural detection — i.e.
    the standard application would sometimes silently corrupt.
    """
    out: Set[str] = set()
    for r in successful(stdapp_records):
        if not r.co and not r.ndet and not r.ddet:
            out.add(r.site)
    return out


def conditional_coverage_components(
    records: Iterable[ExperimentRecord],
    qualifying_sites: Set[str],
) -> CoverageComponents:
    """Eq. 3.3: coverage restricted to StdNotAllDet sites."""
    filtered = [r for r in records if r.site in qualifying_sites]
    return coverage_components(filtered)


def mean_time_to_detection(records: Iterable[ExperimentRecord]) -> Optional[float]:
    """Eq. 3.4: mean T2D over covered, detected, SF experiments."""
    values = [r.t2d for r in successful(records) if r.t2d is not None]
    if not values:
        return None
    return sum(values) / len(values)


def aggregate_counters(records: Iterable[ExperimentRecord]) -> Dict[str, int]:
    """Campaign-level machine counter totals (empty when observability off).

    Sums the per-run ``ProcessResult.counters`` dicts (see
    :mod:`repro.obs.counters` for key semantics); records executed without
    observability contribute nothing.
    """
    from ..obs.counters import total_counters

    return total_counters(r.result.counters for r in records)


def by_variant(
    records: Iterable[ExperimentRecord],
) -> Dict[str, List[ExperimentRecord]]:
    out: Dict[str, List[ExperimentRecord]] = {}
    for r in records:
        out.setdefault(r.variant, []).append(r)
    return out


def by_workload(
    records: Iterable[ExperimentRecord],
) -> Dict[str, List[ExperimentRecord]]:
    out: Dict[str, List[ExperimentRecord]] = {}
    for r in records:
        out.setdefault(r.workload, []).append(r)
    return out
