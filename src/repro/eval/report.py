"""ASCII rendering of the paper's tables and figures.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent across all figure/table benches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .metrics import CoverageComponents


def coverage_table(
    title: str,
    rows: Mapping[Tuple[str, str], CoverageComponents],
    variant_order: Sequence[str],
    workload_order: Sequence[str],
) -> str:
    """Render a coverage figure: one row per (variant, workload)."""
    lines = [title, "=" * len(title)]
    header = f"{'variant':<18} {'app':<8} {'CO':>6} {'NatDet':>7} {'DpmrDet':>8} {'coverage':>9} {'n':>4}"
    lines.append(header)
    lines.append("-" * len(header))
    for variant in variant_order:
        for workload in workload_order:
            c = rows.get((variant, workload))
            if c is None:
                continue
            lines.append(
                f"{variant:<18} {workload:<8} {c.co:>6.2f} {c.ndet:>7.2f} "
                f"{c.ddet:>8.2f} {c.coverage:>9.2f} {c.total_runs:>4}"
            )
    return "\n".join(lines)


def conditional_coverage_table(
    title: str,
    rows: Mapping[str, CoverageComponents],
    variant_order: Sequence[str],
) -> str:
    """Render a conditional-coverage figure: one row per variant (all apps)."""
    lines = [title, "=" * len(title)]
    header = f"{'variant':<18} {'CO':>6} {'NatDet':>7} {'DpmrDet':>8} {'coverage':>9} {'n':>4}"
    lines.append(header)
    lines.append("-" * len(header))
    for variant in variant_order:
        c = rows.get(variant)
        if c is None:
            continue
        lines.append(
            f"{variant:<18} {c.co:>6.2f} {c.ndet:>7.2f} {c.ddet:>8.2f} "
            f"{c.coverage:>9.2f} {c.total_runs:>4}"
        )
    return "\n".join(lines)


def overhead_table(
    title: str,
    rows: Mapping[Tuple[str, str], float],
    variant_order: Sequence[str],
    workload_order: Sequence[str],
) -> str:
    """Render an overhead figure: variants × workloads, golden = 1.0x."""
    lines = [title, "=" * len(title)]
    header = f"{'variant':<18} " + " ".join(f"{w:>9}" for w in workload_order)
    lines.append(header)
    lines.append("-" * len(header))
    for variant in variant_order:
        cells = []
        for workload in workload_order:
            v = rows.get((variant, workload))
            cells.append(f"{v:>8.2f}x" if v is not None else f"{'--':>9}")
        lines.append(f"{variant:<18} " + " ".join(cells))
    return "\n".join(lines)


def counter_table(
    totals: Mapping[str, int],
    title: str = "machine counters",
) -> str:
    """Render campaign-level machine counter totals, grouped by prefix.

    ``totals`` is the dict produced by
    :func:`repro.eval.metrics.aggregate_counters` (or a manifest's
    ``counter_totals``); an empty dict renders a one-line placeholder so
    reports stay stable when observability is off.
    """
    lines = [title, "=" * len(title)]
    if not totals:
        lines.append("(observability disabled: no counters recorded)")
        return "\n".join(lines)
    width = max(len(k) for k in totals)
    prev_group = None
    for key in sorted(totals):
        group = key.split(".", 1)[0]
        if prev_group is not None and group != prev_group:
            lines.append("")
        prev_group = group
        lines.append(f"{key:<{width}} {totals[key]:>14,}")
    return "\n".join(lines)


def manifest_section(manifest) -> str:
    """Render a :class:`~repro.obs.RunManifest` as a report section.

    Shows the executor decisions (worker count and why, serial fallback,
    incremental builds), per-job cache behaviour, and outcome aggregates —
    the same data the JSON manifest persists.
    """
    lines = ["run manifest", "============"]
    lines.append(
        f"mode={manifest.mode} records={manifest.n_records} "
        f"items={manifest.n_items} wall={manifest.wall_s:.2f}s"
    )
    lines.append(
        f"workers: requested={manifest.requested_jobs} "
        f"effective={manifest.effective_jobs} ({manifest.worker_reason})"
    )
    if manifest.serial_fallback is not None:
        lines.append(f"serial fallback: {manifest.serial_fallback}")
    lines.append(
        f"builds: incremental={'on' if manifest.incremental else 'off'}"
    )
    engine = getattr(manifest, "engine", "interp")
    if engine == "compiled":
        lines.append(
            f"engine: compiled (codegen hits={manifest.codegen_hits} "
            f"misses={manifest.codegen_misses})"
        )
    else:
        lines.append(f"engine: {engine}")
    obs_bits = []
    if manifest.trace_path is not None:
        obs_bits.append(f"trace={manifest.trace_path}")
    obs_bits.append(f"counters={'on' if manifest.counters_enabled else 'off'}")
    if manifest.timeout_factor is not None:
        obs_bits.append(f"timeout_factor={manifest.timeout_factor}")
    lines.append("observability: " + " ".join(obs_bits))
    for jm in manifest.jobs:
        lines.append(
            f"  job {jm.workload}/{jm.kind}: sites={jm.n_sites} "
            f"variants={jm.n_variants} seeds={jm.n_seeds} "
            f"cache hits={jm.cache_hits} misses={jm.cache_misses} "
            f"full_rebuilds={jm.cache_full_rebuilds} "
            f"builds_cached={jm.builds_cached}"
        )
    if manifest.store_path is not None:
        lines.append(
            f"store: path={manifest.store_path} hits={manifest.store_hits} "
            f"misses={manifest.store_misses} writes={manifest.store_writes} "
            f"corrupt={manifest.store_corrupt}"
        )
    if manifest.retries or manifest.worker_restarts or manifest.exp_timeouts:
        lines.append(
            f"resilience: retries={manifest.retries} "
            f"worker_restarts={manifest.worker_restarts} "
            f"exp_timeouts={manifest.exp_timeouts}"
        )
    for q in manifest.quarantined:
        lines.append(
            f"  quarantined {q.workload}/{q.kind}/{q.site}: "
            f"attempts={q.attempts} ({q.reason})"
        )
    if manifest.status_counts:
        statuses = " ".join(
            f"{k}={manifest.status_counts[k]}" for k in sorted(manifest.status_counts)
        )
        lines.append(f"statuses: {statuses}")
    if manifest.path is not None:
        lines.append(f"persisted: {manifest.path}")
    return "\n".join(lines)


def latency_table(
    title: str,
    rows: Mapping[Tuple[str, str], Optional[float]],
    variant_order: Sequence[str],
    workload_order: Sequence[str],
    unit: str = "kcycles",
) -> str:
    """Render a mean time-to-detection table (Tables 3.3/3.4/4.5/4.6)."""
    lines = [f"{title} ({unit})", "=" * len(title)]
    header = f"{'variant':<18} " + " ".join(f"{w:>10}" for w in workload_order)
    lines.append(header)
    lines.append("-" * len(header))
    for variant in variant_order:
        cells = []
        for workload in workload_order:
            v = rows.get((variant, workload))
            cells.append(f"{v / 1000.0:>10.2f}" if v is not None else f"{'--':>10}")
        lines.append(f"{variant:<18} " + " ".join(cells))
    return "\n".join(lines)
