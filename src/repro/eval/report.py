"""ASCII rendering of the paper's tables and figures.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent across all figure/table benches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .metrics import CoverageComponents


def coverage_table(
    title: str,
    rows: Mapping[Tuple[str, str], CoverageComponents],
    variant_order: Sequence[str],
    workload_order: Sequence[str],
) -> str:
    """Render a coverage figure: one row per (variant, workload)."""
    lines = [title, "=" * len(title)]
    header = f"{'variant':<18} {'app':<8} {'CO':>6} {'NatDet':>7} {'DpmrDet':>8} {'coverage':>9} {'n':>4}"
    lines.append(header)
    lines.append("-" * len(header))
    for variant in variant_order:
        for workload in workload_order:
            c = rows.get((variant, workload))
            if c is None:
                continue
            lines.append(
                f"{variant:<18} {workload:<8} {c.co:>6.2f} {c.ndet:>7.2f} "
                f"{c.ddet:>8.2f} {c.coverage:>9.2f} {c.total_runs:>4}"
            )
    return "\n".join(lines)


def conditional_coverage_table(
    title: str,
    rows: Mapping[str, CoverageComponents],
    variant_order: Sequence[str],
) -> str:
    """Render a conditional-coverage figure: one row per variant (all apps)."""
    lines = [title, "=" * len(title)]
    header = f"{'variant':<18} {'CO':>6} {'NatDet':>7} {'DpmrDet':>8} {'coverage':>9} {'n':>4}"
    lines.append(header)
    lines.append("-" * len(header))
    for variant in variant_order:
        c = rows.get(variant)
        if c is None:
            continue
        lines.append(
            f"{variant:<18} {c.co:>6.2f} {c.ndet:>7.2f} {c.ddet:>8.2f} "
            f"{c.coverage:>9.2f} {c.total_runs:>4}"
        )
    return "\n".join(lines)


def overhead_table(
    title: str,
    rows: Mapping[Tuple[str, str], float],
    variant_order: Sequence[str],
    workload_order: Sequence[str],
) -> str:
    """Render an overhead figure: variants × workloads, golden = 1.0x."""
    lines = [title, "=" * len(title)]
    header = f"{'variant':<18} " + " ".join(f"{w:>9}" for w in workload_order)
    lines.append(header)
    lines.append("-" * len(header))
    for variant in variant_order:
        cells = []
        for workload in workload_order:
            v = rows.get((variant, workload))
            cells.append(f"{v:>8.2f}x" if v is not None else f"{'--':>9}")
        lines.append(f"{variant:<18} " + " ".join(cells))
    return "\n".join(lines)


def latency_table(
    title: str,
    rows: Mapping[Tuple[str, str], Optional[float]],
    variant_order: Sequence[str],
    workload_order: Sequence[str],
    unit: str = "kcycles",
) -> str:
    """Render a mean time-to-detection table (Tables 3.3/3.4/4.5/4.6)."""
    lines = [f"{title} ({unit})", "=" * len(title)]
    header = f"{'variant':<18} " + " ".join(f"{w:>10}" for w in workload_order)
    lines.append(header)
    lines.append("-" * len(header))
    for variant in variant_order:
        cells = []
        for workload in workload_order:
            v = rows.get((variant, workload))
            cells.append(f"{v / 1000.0:>10.2f}" if v is not None else f"{'--':>10}")
        lines.append(f"{variant:<18} " + " ".join(cells))
    return "\n".join(lines)
