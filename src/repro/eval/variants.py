"""Variant builds (§3.5, Fig. 3.5).

The paper compiles each application into four classes of variants:

* **golden** — the unmodified application;
* **fi-stdapp** — fault-injection-instrumented, no DPMR;
* **nofi-dpmr** — DPMR-transformed, no fault injection (overhead runs);
* **fi-dpmr** — fault-injected then DPMR-transformed (coverage runs).

Here a :class:`Variant` captures the *configuration* (DPMR or not; design,
diversity transformation, state comparison policy) and compiles any module
into a runnable build; the fi/nofi axis is determined by whether the module
handed to :meth:`Variant.compile` was fault-injected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..core.aug_types import ReplicationDesign
from ..core.diversity import (
    DiversityPolicy,
    NoDiversity,
    PadMalloc,
    RearrangeHeap,
    ZeroBeforeFree,
)
from ..core.incremental import IncrementalDpmrCompiler
from ..core.pipeline import DpmrBuild, DpmrCompiler
from ..core.policies import (
    AllLoadsPolicy,
    ComparisonPolicy,
    static_10,
    static_50,
    static_90,
    temporal_1_2,
    temporal_1_8,
    temporal_7_8,
)
from ..ir.module import Module
from ..machine.interpreter import DEFAULT_MAX_CYCLES
from ..machine.process import ProcessResult, run_process


class CompiledVariant:
    """A runnable build of one (module, variant) pair."""

    def __init__(self, name: str, module: Module, build: Optional[DpmrBuild]):
        self.name = name
        self.module = module
        self._build = build

    def run(
        self,
        argv: Sequence[str] = (),
        max_cycles: int = DEFAULT_MAX_CYCLES,
        seed: int = 0,
        tracer=None,
        counters: bool = False,
        trace_meta=None,
        compiled: bool = False,
    ) -> ProcessResult:
        if self._build is not None:
            return self._build.run(
                argv=argv,
                max_cycles=max_cycles,
                seed=seed,
                tracer=tracer,
                counters=counters,
                trace_meta=trace_meta,
                compiled=compiled,
            )
        return run_process(
            self.module,
            argv=argv,
            max_cycles=max_cycles,
            seed=seed,
            tracer=tracer,
            counters=counters,
            trace_meta=trace_meta,
            compiled=compiled,
        )

    @property
    def cache_hits(self) -> int:
        """Function-level transform cache hits of this build (0 if no DPMR)."""
        return self._build.cache_hits if self._build is not None else 0

    @property
    def cache_misses(self) -> int:
        return self._build.cache_misses if self._build is not None else 0


@dataclass
class Variant:
    """One point in the evaluation's configuration space."""

    name: str
    dpmr: bool = True
    design: Union[str, ReplicationDesign] = ReplicationDesign.SDS
    diversity: Optional[DiversityPolicy] = None
    policy: Optional[ComparisonPolicy] = None

    def compiler(self) -> Optional[DpmrCompiler]:
        """This variant's DPMR compiler configuration (None without DPMR)."""
        if not self.dpmr:
            return None
        return DpmrCompiler(
            design=self.design,
            policy=self.policy if self.policy is not None else AllLoadsPolicy(),
            diversity=self.diversity if self.diversity is not None else NoDiversity(),
        )

    def compile(self, module: Module) -> CompiledVariant:
        compiler = self.compiler()
        if compiler is None:
            return CompiledVariant(self.name, module, None)
        return CompiledVariant(self.name, module, compiler.compile(module))

    # -- incremental campaign builds ------------------------------------

    def incremental_compiler(
        self, pristine: Module
    ) -> Optional[IncrementalDpmrCompiler]:
        """A function-level transform cache for campaign builds derived from
        ``pristine`` (None for non-DPMR variants, which need no transform)."""
        compiler = self.compiler()
        if compiler is None:
            return None
        return compiler.incremental(pristine)

    def compile_incremental(
        self,
        incremental: Optional[IncrementalDpmrCompiler],
        module: Module,
    ) -> CompiledVariant:
        """Compile ``module`` through the variant's incremental cache.

        Produces builds byte-identical to :meth:`compile`; ``incremental``
        is the compiler returned by :meth:`incremental_compiler` (None for
        non-DPMR variants).
        """
        if incremental is None:
            return CompiledVariant(self.name, module, None)
        return CompiledVariant(self.name, module, incremental.compile(module))


def stdapp_variant() -> Variant:
    """The standard application without DPMR."""
    return Variant(name="stdapp", dpmr=False)


def diversity_variants(design: Union[str, ReplicationDesign] = "sds") -> List[Variant]:
    """The seven DPMR diversity variants of §3.7, all under all-loads."""
    suite = [
        NoDiversity(),
        ZeroBeforeFree(),
        RearrangeHeap(),
        PadMalloc(8),
        PadMalloc(32),
        PadMalloc(256),
        PadMalloc(1024),
    ]
    return [
        Variant(name=d.name, design=design, diversity=d, policy=AllLoadsPolicy())
        for d in suite
    ]


def policy_variants(design: Union[str, ReplicationDesign] = "sds") -> List[Variant]:
    """The seven comparison-policy variants of §3.8 (rearrange-heap diversity).

    The paper evaluates policies under rearrange-heap because it was the
    best-performing diversity transformation.
    """
    policies = [
        AllLoadsPolicy(),
        temporal_1_8(),
        temporal_1_2(),
        temporal_7_8(),
        static_10(),
        static_50(),
        static_90(),
    ]
    return [
        Variant(name=p.name, design=design, diversity=RearrangeHeap(), policy=p)
        for p in policies
    ]


def variant_registry(
    design: Union[str, ReplicationDesign] = "sds"
) -> Dict[str, Variant]:
    """Every addressable variant of the evaluation, by canonical name.

    The registry is the by-name resolution surface of the public API: a
    :class:`~repro.eval.api.CampaignRequest` (and therefore the campaign
    service protocol) names variants as strings, and this mapping is the
    single place those strings become configurations.  It covers the
    standard application plus the paper's diversity suite (§3.7) and
    comparison-policy suite (§3.8); names are unique across both suites,
    and each call returns fresh :class:`Variant` objects so stateful
    diversity policies are never shared between campaigns.
    """
    registry: Dict[str, Variant] = {"stdapp": stdapp_variant()}
    for variant in diversity_variants(design) + policy_variants(design):
        registry[variant.name] = variant
    return registry


def resolve_variants(
    names: Sequence[str], design: Union[str, ReplicationDesign] = "sds"
) -> List[Variant]:
    """Resolve variant ``names`` through :func:`variant_registry`, in order.

    Raises :class:`ValueError` (naming the offender and every known name)
    for anything the registry does not define — a request must never fail
    later, mid-campaign, over a typo.
    """
    registry = variant_registry(design)
    missing = [n for n in names if n not in registry]
    if missing:
        raise ValueError(
            f"unknown variant name(s) {missing!r}; known: {sorted(registry)}"
        )
    return [registry[n] for n in names]
