"""Execution configuration — every ``DPMR_*`` knob parsed in one place.

The campaign executor, harness, and facade all consume an
:class:`ExecConfig`; nothing else in the package reads the environment.
Knobs (all optional):

========================  =====================================================
``DPMR_JOBS``             worker count for the parallel executor (default 1)
``DPMR_INCREMENTAL``      ``0``/``false`` disables incremental builds
``DPMR_TRACE``            path of a JSONL trace file (enables tracing)
``DPMR_TRACE_EVENTS``     comma-separated event kinds to keep (default: all)
``DPMR_COUNTERS``         ``1``/``true`` enables machine counters sans trace
``DPMR_TIMEOUT_FACTOR``   timeout multiple of golden running time (default 20)
``DPMR_MANIFEST``         path for the run manifest (default: next to trace)
``DPMR_STORE``            directory of the persistent result store (off by
                          default; enables campaign memoization and resume)
``DPMR_RETRIES``          infrastructure retries per experiment before its
                          site is quarantined (default 2)
``DPMR_EXP_TIMEOUT``      per-experiment wall-clock budget in seconds for
                          supervised workers (default 0 = unlimited)
``DPMR_COMPILE``          ``0``/``false`` opts out of the compiled execution
                          tier (on by default; bit-identical records; ignored
                          when observability forces the instrumented
                          interpreter)
``DPMR_INLINE_RT``        ``0``/``false`` opts out of runtime specialization
                          on the compiled tier: variant-inlined DPMR hooks in
                          generated code plus instruction-granular delta
                          transforms (on by default; bit-identical records)
``DPMR_SHARDS``           worker *nodes* for the shard fabric (default 1 =
                          single-node; N>1 partitions the campaign tuple
                          space across N processes simulating machines, each
                          with its own supervised pool and store directory,
                          and merges the results — bit-identical records)
========================  =====================================================

``ExecConfig`` is frozen: derive variations with :func:`dataclasses.replace`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Mapping, Optional, Tuple

#: timeout multiplier over golden running time (the paper uses ~20x).
DEFAULT_TIMEOUT_FACTOR = 20

JOBS_ENV_VAR = "DPMR_JOBS"
INCREMENTAL_ENV_VAR = "DPMR_INCREMENTAL"
TRACE_ENV_VAR = "DPMR_TRACE"
TRACE_EVENTS_ENV_VAR = "DPMR_TRACE_EVENTS"
COUNTERS_ENV_VAR = "DPMR_COUNTERS"
TIMEOUT_FACTOR_ENV_VAR = "DPMR_TIMEOUT_FACTOR"
MANIFEST_ENV_VAR = "DPMR_MANIFEST"
STORE_ENV_VAR = "DPMR_STORE"
RETRIES_ENV_VAR = "DPMR_RETRIES"
EXP_TIMEOUT_ENV_VAR = "DPMR_EXP_TIMEOUT"
COMPILE_ENV_VAR = "DPMR_COMPILE"
INLINE_RT_ENV_VAR = "DPMR_INLINE_RT"
SHARDS_ENV_VAR = "DPMR_SHARDS"

#: infrastructure retries per experiment before its site is quarantined.
DEFAULT_RETRIES = 2

_FALSE_WORDS = ("0", "false", "off", "no")
_TRUE_WORDS = ("1", "true", "on", "yes")


def _parse_int(env: Mapping[str, str], var: str, default: int) -> int:
    raw = env.get(var, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{var} must be an integer, got {raw!r}") from None


def _parse_float(env: Mapping[str, str], var: str, default: float) -> float:
    raw = env.get(var, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{var} must be a number, got {raw!r}") from None


def _parse_flag(env: Mapping[str, str], var: str, default: bool) -> bool:
    raw = env.get(var, "").strip().lower()
    if not raw:
        return default
    if raw in _TRUE_WORDS:
        return True
    if raw in _FALSE_WORDS:
        return False
    raise ValueError(f"{var} must be a boolean flag, got {raw!r}")


@dataclass(frozen=True)
class ExecConfig:
    """How to execute runs and campaigns (parallelism, builds, observability).

    This is the *only* knob surface: pass ``config=`` explicitly or let the
    entry point default to :meth:`from_env`.  The pre-PR-4 per-call keyword
    aliases (``jobs=``, ``processes=``, ``incremental=``) were removed after
    their deprecation soak — see the README migration notes.
    """

    #: requested worker count (the executor may use fewer; see the manifest).
    jobs: int = 1
    #: incremental campaign builds (pristine snapshot + function-level cache).
    incremental: bool = True
    #: JSONL trace file path; ``None`` disables tracing.
    trace_path: Optional[str] = None
    #: restrict tracing to these event kinds (``None`` = every kind).
    trace_events: Optional[Tuple[str, ...]] = None
    #: machine counters without (or in addition to) a trace.
    counters: bool = False
    #: timeout as a multiple of each workload's golden running time.
    timeout_factor: int = DEFAULT_TIMEOUT_FACTOR
    #: where to persist the run manifest (``None``: next to the trace, if any).
    manifest_path: Optional[str] = None
    #: directory of the persistent result store (``None`` disables it).
    store_path: Optional[str] = None
    #: infrastructure retries per experiment before its site is quarantined.
    retries: int = DEFAULT_RETRIES
    #: per-experiment wall-clock budget (seconds) enforced by the worker
    #: supervisor; 0 disables the budget.  Serial execution cannot preempt
    #: an experiment, so the budget only applies to supervised workers.
    exp_timeout_s: float = 0.0
    #: base of the exponential retry backoff (not environment-exposed;
    #: tests shrink it, production leaves the default).
    retry_backoff_s: float = 0.05
    #: compiled execution tier (repro.machine.compile), the default campaign
    #: engine since delta codegen made per-site compiles cheap.  Bit-
    #: transparent: records are signature-identical to the interpreter, so
    #: this knob is deliberately excluded from store fingerprints.  Set
    #: ``DPMR_COMPILE=0`` to opt out; whenever a run needs tracing or
    #: counters it falls back to the instrumented interpreter regardless.
    compiled: bool = True
    #: runtime specialization on the compiled tier: DPMR hooks for stateless
    #: diversity policies are inlined into generated code, and per-site
    #: builds use instruction-granular delta transforms.  Bit-transparent
    #: like ``compiled`` (and likewise excluded from store fingerprints);
    #: ``DPMR_INLINE_RT=0`` restores the call_intrinsic + whole-function
    #: re-transform behaviour of the plain compiled tier.
    inline_rt: bool = True
    #: worker nodes for the shard fabric (``repro.shard``).  1 (the default)
    #: runs single-node; N>1 partitions the campaign tuple space across N
    #: processes simulating machines — each with its own supervised pool and
    #: shard-local store — and merges the results back by content address.
    #: Bit-transparent like ``compiled`` (merged records are signature-
    #: identical to the single-node run), so it is likewise excluded from
    #: store fingerprints.
    shards: int = 1
    #: wall-clock budget (seconds) per tuple-batch lease before the
    #: coordinator revokes it and re-leases the batch elsewhere; 0 disables
    #: the budget (not environment-exposed; chaos tests shrink it).
    lease_timeout_s: float = 0.0
    #: experiment tuples per lease; 0 sizes batches automatically from the
    #: campaign size and shard count (not environment-exposed).
    lease_items: int = 0

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> "ExecConfig":
        """The configuration the environment asks for (see module docstring)."""
        if env is None:
            env = os.environ
        trace_path = env.get(TRACE_ENV_VAR, "").strip() or None
        raw_events = env.get(TRACE_EVENTS_ENV_VAR, "").strip()
        trace_events: Optional[Tuple[str, ...]] = None
        if raw_events:
            trace_events = tuple(
                k.strip() for k in raw_events.split(",") if k.strip()
            )
        return cls(
            jobs=max(1, _parse_int(env, JOBS_ENV_VAR, 1)),
            incremental=_parse_flag(env, INCREMENTAL_ENV_VAR, True),
            trace_path=trace_path,
            trace_events=trace_events,
            counters=_parse_flag(env, COUNTERS_ENV_VAR, False),
            timeout_factor=_parse_int(
                env, TIMEOUT_FACTOR_ENV_VAR, DEFAULT_TIMEOUT_FACTOR
            ),
            manifest_path=env.get(MANIFEST_ENV_VAR, "").strip() or None,
            store_path=env.get(STORE_ENV_VAR, "").strip() or None,
            retries=max(0, _parse_int(env, RETRIES_ENV_VAR, DEFAULT_RETRIES)),
            exp_timeout_s=max(0.0, _parse_float(env, EXP_TIMEOUT_ENV_VAR, 0.0)),
            compiled=_parse_flag(env, COMPILE_ENV_VAR, True),
            inline_rt=_parse_flag(env, INLINE_RT_ENV_VAR, True),
            shards=max(1, _parse_int(env, SHARDS_ENV_VAR, 1)),
        )

    # -- derived ------------------------------------------------------------

    @property
    def observing(self) -> bool:
        """Whether runs execute with observability (tracer and/or counters)."""
        return self.counters or self.trace_path is not None

    def make_tracer(self):
        """A fresh :class:`~repro.obs.JsonlTracer`, or None without a trace.

        Each executor invocation should create (and close) its own tracer;
        the constructor validates ``trace_events`` against the event schema.
        """
        if self.trace_path is None:
            return None
        from ..obs.tracer import JsonlTracer

        events = list(self.trace_events) if self.trace_events is not None else None
        return JsonlTracer(self.trace_path, events=events)

    def make_store(self):
        """A :class:`~repro.eval.store.ResultStore`, or None without a path.

        Each executor invocation opens its own store handle so hit/miss
        statistics are per-run; entries on disk are shared across handles
        and processes.
        """
        if self.store_path is None:
            return None
        from .store import ResultStore

        return ResultStore(self.store_path)

    def effective_manifest_path(self) -> Optional[str]:
        """Where the manifest should be persisted (``None``: keep in memory)."""
        if self.manifest_path is not None:
            return self.manifest_path
        if self.trace_path is not None:
            return self.trace_path + ".manifest.json"
        return None

    def with_jobs(self, jobs: int) -> "ExecConfig":
        return replace(self, jobs=max(1, jobs))
