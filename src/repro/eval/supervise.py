"""Worker supervision for the parallel campaign executor.

The pre-resilience executor handed chunks to a ``multiprocessing.Pool``
and waited: one SIGKILLed worker, wedged experiment, or poisoned build
threw away the whole campaign.  :class:`WorkerSupervisor` replaces the
pool with individually supervised worker processes:

* **per-item dispatch** — each worker holds at most one experiment tuple,
  so the parent always knows exactly which item a dead or stuck worker
  was running;
* **crash detection** — a worker that dies (killed, segfaulted, OOMed)
  while holding an item is detected by liveness polling and end-of-file
  on its result pipe, respawned (a fresh fork inherits the warm build
  caches), and the item is retried;
* **per-experiment wall-clock budget** — an item still outstanding past
  ``exp_timeout_s`` gets its worker killed and is retried on a fresh one;
* **bounded retry with exponential backoff** — an item is retried at most
  ``retries`` times, each attempt delayed ``backoff_s * 2**(attempt-1)``
  seconds (failures are infrastructure-level and often transient);
* **quarantine** — when an item exhausts its retries, its *fault site* is
  quarantined: remaining experiments for that site are dropped, the
  campaign continues, and the decision is reported to the caller (the
  executor records it in the run manifest — degradation is never silent).

Transport is a pair of unidirectional pipes **per worker** — never a
shared ``multiprocessing.Queue``.  A shared queue serializes writers
through a cross-process semaphore, and a worker SIGKILLed while its
feeder thread holds that lock leaves it acquired forever, deadlocking
every surviving writer (the reason ``ProcessPoolExecutor`` declares the
whole pool broken on any abrupt worker death).  With one writer and one
reader per pipe there are no locks to orphan; when a worker dies the
parent drains the complete messages it managed to publish, discards the
torn tail, and gives the respawned worker **fresh pipes** so no state of
the dead incarnation can wedge the new one.

The supervisor is deliberately agnostic of what an item *is* beyond two
facts: items are hashable, and ``site_of(item)`` groups them into the
unit of quarantine.  A result message is ``(worker_id, item, ok,
payload)`` where ``payload`` is the computed value or a failure
description.  Duplicate results (a worker killed just after reporting,
its item already requeued) are tolerated and deduplicated — by the
executor's determinism guarantee both copies are identical.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

logger = logging.getLogger("repro.eval.supervise")

#: Liveness-poll heartbeat when no deadline is nearer (seconds).
HEARTBEAT_S = 0.1

#: Grace period for worker shutdown before escalating to SIGKILL.
SHUTDOWN_GRACE_S = 1.0


@dataclass
class SupervisionStats:
    """What the supervisor had to do to finish the campaign."""

    retries: int = 0
    worker_restarts: int = 0
    exp_timeouts: int = 0
    #: site key → (attempts, reason) for every quarantined site.
    quarantined: Dict[Hashable, Tuple[int, str]] = field(default_factory=dict)


class _Slot:
    """One supervised worker: process, its pipe ends, and current item."""

    __slots__ = ("wid", "proc", "task_w", "result_r", "item", "deadline")

    def __init__(self, wid: int):
        self.wid = wid
        self.proc = None
        self.task_w = None
        self.result_r = None
        self.item = None
        self.deadline: Optional[float] = None


class WorkerSupervisor:
    """Runs items on supervised workers; survives crashes and hangs.

    ``worker_entry`` is a module-level function ``(worker_id, task_conn,
    result_conn) -> None`` looping over ``task_conn.recv()`` until it
    receives ``None`` (or EOF); it must ``result_conn.send((worker_id,
    item, ok, payload))`` for every item.  Workers are started with the
    ``fork`` method so they inherit the caller's prepared (copy-on-write)
    build state.
    """

    def __init__(
        self,
        ctx,
        worker_entry: Callable,
        n_workers: int,
        retries: int = 2,
        exp_timeout_s: float = 0.0,
        backoff_s: float = 0.05,
        site_of: Callable[[Hashable], Hashable] = lambda item: item,
        on_result: Optional[Callable[[Hashable, object], None]] = None,
        cancel=None,
    ):
        self.ctx = ctx
        self.worker_entry = worker_entry
        self.n_workers = max(1, n_workers)
        self.retries = max(0, retries)
        self.exp_timeout_s = max(0.0, exp_timeout_s)
        self.backoff_s = max(0.0, backoff_s)
        self.site_of = site_of
        self.on_result = on_result
        #: optional ``threading.Event``-alike; once set, no further items are
        #: dispatched and :meth:`run` returns the results finished so far
        #: (workers are shut down normally).  The campaign service sets it
        #: for prompt daemon shutdown with a batch in flight.
        self.cancel = cancel
        self.stats = SupervisionStats()

    # -- lifecycle ------------------------------------------------------

    def _start(self, slot: _Slot) -> None:
        """Give ``slot`` a fresh process and fresh pipes.

        The parent closes its copies of the child-side ends so that a
        dead worker reads as EOF on ``result_r`` instead of hanging.
        """
        task_r, task_w = self.ctx.Pipe(duplex=False)
        result_r, result_w = self.ctx.Pipe(duplex=False)
        proc = self.ctx.Process(
            target=self.worker_entry,
            args=(slot.wid, task_r, result_w),
            daemon=True,
        )
        proc.start()
        task_r.close()
        result_w.close()
        slot.proc = proc
        slot.task_w = task_w
        slot.result_r = result_r
        slot.item = None
        slot.deadline = None

    def _spawn(self, wid: int) -> _Slot:
        slot = _Slot(wid)
        self._start(slot)
        return slot

    def _close_slot_conns(self, slot: _Slot) -> None:
        for conn in (slot.task_w, slot.result_r):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass

    # -- the supervision loop ------------------------------------------

    def run(self, items: Sequence[Hashable]) -> Dict[Hashable, object]:
        """Execute ``items``; returns ``{item: payload}`` for survivors.

        Items whose site was quarantined are absent from the result (some
        may still be present if they completed before the quarantine
        decision; the caller filters by ``stats.quarantined``).
        """
        #: (item, not_before) in dispatch order; retries go to the front.
        pending = deque((item, 0.0) for item in items)
        self._pending = pending
        self._attempts: Dict[Hashable, int] = {}
        self._results: Dict[Hashable, object] = {}
        self._slots: List[_Slot] = [
            self._spawn(wid) for wid in range(self.n_workers)
        ]
        try:
            while pending or any(s.item is not None for s in self._slots):
                if self.cancel is not None and self.cancel.is_set():
                    break
                self._dispatch()
                ready = _conn_wait(
                    [s.result_r for s in self._slots],
                    timeout=self._next_wait(),
                )
                for conn in ready:
                    slot = next(
                        (s for s in self._slots if s.result_r is conn), None
                    )
                    if slot is None:
                        continue  # conn replaced while iterating
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        self._worker_died(slot, "worker died")
                        continue
                    self._handle(msg)
                if not ready:
                    self._check_workers()
            return self._results
        finally:
            self._shutdown()

    def _handle(self, msg) -> None:
        wid, item, ok, payload = msg
        slot = self._slots[wid] if wid < len(self._slots) else None
        current = slot is not None and slot.item == item
        if current:
            slot.item = None
            slot.deadline = None
        if ok:
            if item not in self._results:
                self._results[item] = payload
                if self.on_result is not None:
                    self.on_result(item, payload)
            # the item may have been requeued by a premature
            # timeout/death verdict; drop the stale retry.
            self._drop_pending(item)
        elif current or not self._is_tracked(item):
            # count the failure unless it is a stale duplicate of an
            # item already completed or already scheduled for retry.
            self._failed(item, str(payload))

    def _worker_died(self, slot: _Slot, reason: str) -> None:
        """A worker is gone: salvage its published results, respawn it on
        fresh pipes, and retry whatever it was holding."""
        code = slot.proc.exitcode
        self.stats.worker_restarts += 1
        for msg in self._drain(slot.result_r):
            self._handle(msg)
        failed_item = slot.item  # None if its result was in the drain
        self._close_slot_conns(slot)
        if slot.proc.is_alive():
            slot.proc.kill()
        slot.proc.join(SHUTDOWN_GRACE_S)
        self._start(slot)
        if failed_item is not None:
            self._failed(failed_item, f"{reason} (exitcode {code})")

    @staticmethod
    def _drain(conn) -> List:
        """Complete messages a dead worker managed to publish; a torn
        trailing message (killed mid-send) is discarded."""
        msgs = []
        while True:
            try:
                if not conn.poll(0):
                    return msgs
                msgs.append(conn.recv())
            except (EOFError, OSError):
                return msgs

    def _dispatch(self) -> None:
        pending = self._pending
        if self.cancel is not None and self.cancel.is_set():
            return
        now = time.monotonic()
        for slot in self._slots:
            if slot.item is not None or not pending:
                continue
            if not slot.proc.is_alive():
                # died idle (e.g. killed between items): salvage + respawn.
                self._worker_died(slot, "worker died idle")
                if slot.item is not None or not pending:
                    continue
            chosen = None
            for i, (item, not_before) in enumerate(pending):
                if self.site_of(item) in self.stats.quarantined:
                    continue
                if not_before <= now:
                    chosen = i
                    break
            if chosen is None:
                continue
            item, _ = pending[chosen]
            del pending[chosen]
            slot.item = item
            slot.deadline = (
                now + self.exp_timeout_s if self.exp_timeout_s > 0 else None
            )
            try:
                slot.task_w.send(item)
            except (BrokenPipeError, OSError):
                self._worker_died(slot, "worker died before receiving work")
        # prune items of quarantined sites so the loop can terminate.
        self._prune_quarantined()

    def _prune_quarantined(self) -> None:
        if not self.stats.quarantined:
            return
        pending = self._pending
        keep = [
            (item, nb)
            for item, nb in pending
            if self.site_of(item) not in self.stats.quarantined
        ]
        if len(keep) != len(pending):
            pending.clear()
            pending.extend(keep)

    def _next_wait(self) -> float:
        now = time.monotonic()
        wait = HEARTBEAT_S
        for slot in self._slots:
            if slot.deadline is not None:
                wait = min(wait, max(slot.deadline - now, 0.005))
        for _, not_before in self._pending:
            if not_before > now:
                wait = min(wait, max(not_before - now, 0.005))
        return wait

    def _check_workers(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if not slot.proc.is_alive():
                self._worker_died(slot, "worker died")
            elif (
                slot.item is not None
                and slot.deadline is not None
                and now > slot.deadline
            ):
                self.stats.exp_timeouts += 1
                slot.proc.kill()
                slot.proc.join(SHUTDOWN_GRACE_S)
                self._worker_died(
                    slot,
                    f"experiment exceeded {self.exp_timeout_s:g}s wall budget",
                )

    def _failed(self, item: Hashable, reason: str) -> None:
        site = self.site_of(item)
        if site in self.stats.quarantined:
            return  # a sibling already condemned this site
        n = self._attempts[item] = self._attempts.get(item, 0) + 1
        if n > self.retries:
            logger.warning(
                "quarantining site %r after %d failed attempt(s): %s",
                site,
                n,
                reason,
            )
            self.stats.quarantined[site] = (n, reason)
            self._prune_quarantined()
            return
        self.stats.retries += 1
        delay = self.backoff_s * (2 ** (n - 1))
        logger.warning(
            "retrying %r (attempt %d/%d) in %.2fs: %s",
            item,
            n + 1,
            self.retries + 1,
            delay,
            reason,
        )
        self._pending.appendleft((item, time.monotonic() + delay))

    def _is_tracked(self, item: Hashable) -> bool:
        if item in self._results:
            return True
        return any(queued == item for queued, _ in self._pending)

    def _drop_pending(self, item: Hashable) -> None:
        pending = self._pending
        for i, (queued, _) in enumerate(pending):
            if queued == item:
                del pending[i]
                return

    def _shutdown(self) -> None:
        for slot in self._slots:
            try:
                slot.task_w.send(None)
            except (BrokenPipeError, OSError, ValueError):
                pass
        deadline = time.monotonic() + SHUTDOWN_GRACE_S
        for slot in self._slots:
            slot.proc.join(max(deadline - time.monotonic(), 0.05))
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(SHUTDOWN_GRACE_S)
            self._close_slot_conns(slot)
