"""Parallel fault-injection campaign executor.

The evaluation re-runs the interpreter once per experiment tuple
``(workload, variant, site, run)`` — thousands of fully independent
machine executions.  This module fans those tuples out over a
``multiprocessing`` worker pool while keeping the results *provably
bit-identical* to a serial run:

* **Deterministic per-experiment seeding.**  Every experiment's machine RNG
  is seeded solely from its tuple (the harness seed list); nothing is drawn
  from shared or order-dependent RNG state.  Workers are forked from the
  parent, so they also inherit the parent's hash seed and build
  byte-identical modules.
* **No shared mutable machine state.**  Each experiment builds a fresh
  module (via the campaign's program factory), compiles it, and runs it in
  a fresh :class:`~repro.machine.interpreter.Machine`; the only values that
  cross process boundaries are immutable work-item indices (parent → worker)
  and finished :class:`ExperimentRecord` values (worker → parent).
* **Serial-identical aggregation.**  Results are reassembled in the exact
  nested order the serial loop produces (job → site → variant → run),
  whatever order workers finish in.

Workers keep a small LRU cache of compiled variants keyed by
``(workload, variant, site)``, so a worker DPMR-transforms any given faulty
module at most once even though work is distributed as individual
experiment tuples.

The executor is opt-in: ``DPMR_JOBS=N`` in the environment (or an explicit
``jobs=`` argument) enables it; unset/``1`` runs the same code path
serially in-process.  Platforms without the ``fork`` start method fall back
to serial execution — determinism there would require pickling program
factories and re-deriving the hash seed, which the fork path gets for free.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..faultinject.campaign import Campaign, ProgramFactory
from ..faultinject.injector import FaultSite, inject
from .experiment import ExperimentRecord
from .variants import CompiledVariant, Variant

#: Environment variable selecting the worker count (0/1/unset → serial).
JOBS_ENV_VAR = "DPMR_JOBS"

#: Compiled variants cached per worker; small, since consecutive work items
#: share the same (site, variant) and only chunk boundaries ever look back.
_COMPILED_CACHE_SIZE = 32


def default_jobs() -> int:
    """Worker count from ``DPMR_JOBS`` (defaults to serial execution)."""
    raw = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {raw!r}") from None


@dataclass
class CampaignJob:
    """One (workload, fault-kind) campaign: everything a worker needs.

    ``sites`` is enumerated once in the parent so every process agrees on
    site identity and order; workers only re-run the program factory and the
    injection for their assigned tuples.
    """

    workload: str
    factory: ProgramFactory
    kind: str
    variants: List[Variant]
    sites: List[FaultSite]
    golden_output: str
    timeout: int
    argv: Sequence[str] = ()
    seeds: Sequence[int] = (0,)
    percent: int = 50


def job_for_harness(
    harness,
    variants,
    kind: str,
    percent: int = 50,
    max_sites: Optional[int] = None,
) -> CampaignJob:
    """Build a :class:`CampaignJob` from a ``WorkloadHarness``."""
    campaign = Campaign(harness.factory, kind, percent=percent)
    sites = campaign.sites
    if max_sites is not None:
        sites = sites[:max_sites]
    return CampaignJob(
        workload=harness.name,
        factory=harness.factory,
        kind=kind,
        variants=list(variants),
        sites=list(sites),
        golden_output=harness.golden.output_text,
        timeout=harness.timeout,
        argv=harness.argv,
        seeds=harness.seeds,
        percent=percent,
    )


# An experiment tuple: (job index, site index, variant index, run index).
_Item = Tuple[int, int, int, int]

# Worker-side state.  Populated in the parent immediately before the pool is
# forked (fork inherits it); None in a plain process.
_WORKER_JOBS: Optional[List[CampaignJob]] = None
_COMPILED: "OrderedDict[Tuple[int, int, int], CompiledVariant]" = OrderedDict()


def _compiled_for(jobs: List[CampaignJob], item: _Item) -> CompiledVariant:
    """Compile (or fetch) the faulty build for one experiment tuple.

    The cache key is (workload/job, variant, site); within a worker the
    DPMR transformation for that key runs at most once.
    """
    ji, si, vi, _ = item
    key = (ji, si, vi)
    compiled = _COMPILED.get(key)
    if compiled is not None:
        _COMPILED.move_to_end(key)
        return compiled
    job = jobs[ji]
    faulty = inject(job.factory(), job.sites[si], job.percent)
    compiled = job.variants[vi].compile(faulty)
    _COMPILED[key] = compiled
    if len(_COMPILED) > _COMPILED_CACHE_SIZE:
        _COMPILED.popitem(last=False)
    return compiled


def _run_item(jobs: List[CampaignJob], item: _Item) -> ExperimentRecord:
    ji, si, vi, ri = item
    job = jobs[ji]
    compiled = _compiled_for(jobs, item)
    result = compiled.run(
        argv=job.argv, max_cycles=job.timeout, seed=job.seeds[ri]
    )
    return ExperimentRecord(
        workload=job.workload,
        variant=job.variants[vi].name,
        site=job.sites[si].site_id,
        run=ri,
        result=result,
        golden_output=job.golden_output,
    )


def _run_chunk(chunk: List[_Item]) -> List[Tuple[_Item, ExperimentRecord]]:
    """Worker entry point: execute one chunk of experiment tuples."""
    jobs = _WORKER_JOBS
    assert jobs is not None, "worker forked before _WORKER_JOBS was set"
    return [(item, _run_item(jobs, item)) for item in chunk]


def _all_items(jobs: Sequence[CampaignJob]) -> List[_Item]:
    """Every experiment tuple, in exact serial execution order."""
    return [
        (ji, si, vi, ri)
        for ji, job in enumerate(jobs)
        for si in range(len(job.sites))
        for vi in range(len(job.variants))
        for ri in range(len(job.seeds))
    ]


def _chunked(items: List[_Item], processes: int) -> List[List[_Item]]:
    """Split work into in-order chunks, ~4 per worker for load balance.

    Keeping tuples in serial order means runs of the same (site, variant)
    stay adjacent, so the worker-side compiled-variant cache hits for every
    seed after the first.
    """
    if not items:
        return []
    n_chunks = max(1, min(len(items), processes * 4))
    size = -(-len(items) // n_chunks)
    return [items[i : i + size] for i in range(0, len(items), size)]


def run_campaign_jobs(
    jobs: Sequence[CampaignJob], processes: Optional[int] = None
) -> List[ExperimentRecord]:
    """Run every experiment of every job; results in serial order.

    ``processes`` defaults to ``DPMR_JOBS``; values ≤ 1 (or a platform
    without ``fork``) execute the identical per-item code serially
    in-process.
    """
    global _WORKER_JOBS
    jobs = list(jobs)
    if processes is None:
        processes = default_jobs()
    items = _all_items(jobs)

    if processes <= 1 or len(items) <= 1 or not _fork_available():
        _COMPILED.clear()
        try:
            return [_run_item(jobs, item) for item in items]
        finally:
            _COMPILED.clear()

    ctx = multiprocessing.get_context("fork")
    results: Dict[_Item, ExperimentRecord] = {}
    _WORKER_JOBS = jobs
    try:
        with ctx.Pool(processes) as pool:
            for pairs in pool.imap_unordered(_run_chunk, _chunked(items, processes)):
                for item, record in pairs:
                    results[item] = record
    finally:
        _WORKER_JOBS = None
    return [results[item] for item in items]


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()
