"""Parallel fault-injection campaign executor with incremental builds.

The evaluation re-runs the interpreter once per experiment tuple
``(workload, variant, site, run)`` — thousands of fully independent
machine executions.  This module fans those tuples out over a
``multiprocessing`` worker pool while keeping the results *provably
bit-identical* to a serial run:

* **Deterministic per-experiment seeding.**  Every experiment's machine RNG
  is seeded solely from its tuple (the harness seed list); nothing is drawn
  from shared or order-dependent RNG state.  Workers are forked from the
  parent, so they also inherit the parent's hash seed and build
  byte-identical modules.
* **No shared mutable machine state.**  Each experiment runs in a fresh
  :class:`~repro.machine.interpreter.Machine`; the only values that cross
  process boundaries are immutable work-item indices (parent → worker) and
  finished :class:`ExperimentRecord` values (worker → parent).
* **Serial-identical aggregation.**  Results are reassembled in the exact
  nested order the serial loop produces (job → site → variant → run),
  whatever order workers finish in.

Experiment builds go through the **incremental recompilation layer**
(:mod:`repro.core.incremental`) by default: per job the program factory runs
once, producing a pristine snapshot, and each DPMR variant transforms that
snapshot once up front.  A faulty build is then a copy-on-write module clone
plus a re-transform of the single function containing the fault.  The
pristine snapshots and per-variant transform caches are prepared in the
coordinating process *before* the pool forks, so workers share them
(copy-on-write pages) rather than rebuilding them; records are bit-identical
to the full-rebuild path (set ``DPMR_INCREMENTAL=0`` or pass
``incremental=False`` to use it).

Workers keep a small LRU cache of compiled variants keyed by
``(workload, variant, site)``, so a worker compiles any given faulty module
at most once even though work is distributed as individual experiment
tuples.

The executor is opt-in: ``DPMR_JOBS=N`` in the environment (or an explicit
``jobs=`` argument) enables it; unset/``1`` runs the same code path
serially in-process.  A minimum-work-per-worker heuristic shrinks (or
drops to serial) the worker pool when a campaign is too small to amortize
fork/IPC cost, and the pool never exceeds the machine's CPU count.
Platforms without the ``fork`` start method fall back to serial execution —
determinism there would require pickling program factories and re-deriving
the hash seed, which the fork path gets for free.

**Resilience** (``DPMR_STORE`` / ``DPMR_RETRIES`` / ``DPMR_EXP_TIMEOUT``):
with a store configured, every finished record is persisted under a
content address (:mod:`repro.eval.store`) and looked up before execution,
so re-running a campaign skips already-computed tuples and an interrupted
campaign resumes where it died.  Parallel workers run under a
:class:`~repro.eval.supervise.WorkerSupervisor` — a SIGKILLed or wedged
worker is detected, respawned, and its experiment retried with exponential
backoff; serial execution applies the same bounded-retry policy to
infrastructure exceptions.  An experiment that keeps failing has its fault
*site* quarantined: the site's records are excluded from the result, the
campaign completes, and the run manifest records the quarantine, every
retry, and all store traffic — degradation is never silent.  All of this
is bit-transparent: the surviving records are byte-identical to an
uninterrupted serial run without a store.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.incremental import IncrementalDpmrCompiler
from ..faultinject.campaign import Campaign, ProgramFactory
from ..faultinject.injector import FaultSite, inject
from ..ir.module import Module
from ..obs.manifest import JobManifest, QuarantineRecord, RunManifest
from .config import (
    INCREMENTAL_ENV_VAR,
    JOBS_ENV_VAR,
    ExecConfig,
)
from .experiment import ExperimentRecord
from .supervise import SupervisionStats, WorkerSupervisor
from .variants import CompiledVariant, Variant

logger = logging.getLogger("repro.eval.parallel")

#: Compiled variants cached per worker; small, since consecutive work items
#: share the same (site, variant) and only chunk boundaries ever look back.
_COMPILED_CACHE_SIZE = 32

#: Finished builds retained on a job's :class:`JobBuildState` (one entry per
#: (site, variant)); sized to hold a whole typical job so repeated campaign
#: runs never recompile.
_STATE_CACHE_SIZE = 256

#: Forking a worker is only worth it if it gets at least this many
#: experiment tuples; below that, fork + import + IPC overhead dominates
#: (visible as parallel_s > serial_s on small campaigns).
MIN_ITEMS_PER_WORKER = 16


def default_jobs() -> int:
    """Worker count from ``DPMR_JOBS`` (defaults to serial execution)."""
    return ExecConfig.from_env().jobs


def incremental_default() -> bool:
    """Whether the incremental build path is enabled (``DPMR_INCREMENTAL``)."""
    return ExecConfig.from_env().incremental


def effective_workers(n_items: int, processes: int) -> int:
    """Worker count actually used for ``n_items`` experiment tuples.

    Caps the requested ``processes`` at (a) the machine's CPU count — extra
    workers on fewer cores only add fork and scheduling overhead — and
    (b) one worker per :data:`MIN_ITEMS_PER_WORKER` tuples, so tiny
    campaigns fall back to fewer workers or plain serial execution instead
    of paying fork cost they cannot amortize.
    """
    cap = os.cpu_count() or 1
    by_work = n_items // MIN_ITEMS_PER_WORKER
    return max(1, min(processes, cap, by_work))


@dataclass
class CampaignJob:
    """One (workload, fault-kind) campaign: everything a worker needs.

    ``sites`` is enumerated once in the parent so every process agrees on
    site identity and order.  ``pristine``, when provided (it is whenever
    the job comes from :func:`job_for_harness`), is the already-built
    pristine snapshot the sites were enumerated on; the incremental build
    path derives every faulty module from it instead of re-running the
    factory.
    """

    workload: str
    factory: ProgramFactory
    kind: str
    variants: List[Variant]
    sites: List[FaultSite]
    golden_output: str
    timeout: int
    argv: Sequence[str] = ()
    seeds: Sequence[int] = (0,)
    percent: int = 50
    pristine: Optional[Module] = field(default=None, repr=False)
    _state: Optional["JobBuildState"] = field(default=None, repr=False)

    def build_state(self) -> "JobBuildState":
        """This job's incremental build state, constructed once and cached.

        Holds the pristine snapshot plus one base transform (function-level
        cache) per DPMR variant — the only full-program build work of the
        whole campaign.  Cached on the job so repeated campaign runs and
        forked workers reuse the warm caches.
        """
        if self._state is None:
            pristine = self.pristine if self.pristine is not None else self.factory()
            self._state = JobBuildState(
                pristine=pristine,
                compilers=[v.incremental_compiler(pristine) for v in self.variants],
            )
        return self._state


def job_for_harness(
    harness,
    variants,
    kind: str,
    percent: int = 50,
    max_sites: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
) -> CampaignJob:
    """Build a :class:`CampaignJob` from a ``WorkloadHarness``.

    ``seeds`` overrides the harness's seed list (the service expands
    request-specified seeds through here); None keeps the harness's.
    """
    campaign = Campaign(harness.factory, kind, percent=percent)
    sites = campaign.sites
    if max_sites is not None:
        sites = sites[:max_sites]
    return CampaignJob(
        workload=harness.name,
        factory=harness.factory,
        kind=kind,
        variants=list(variants),
        sites=list(sites),
        golden_output=harness.golden.output_text,
        timeout=harness.timeout,
        argv=harness.argv,
        seeds=tuple(seeds) if seeds is not None else harness.seeds,
        percent=percent,
        pristine=campaign.pristine,
    )


@dataclass
class JobBuildState:
    """Per-job incremental build state shared by coordinator and workers.

    One pristine snapshot plus one function-level transform cache per DPMR
    variant (``None`` entries are non-DPMR variants).  Prepared in the
    coordinating process before the pool forks, so every worker inherits
    the fully-warmed caches.
    """

    pristine: Module
    compilers: List[Optional[IncrementalDpmrCompiler]]
    #: Finished faulty builds keyed (site index, variant index).  Lives as
    #: long as the pristine snapshot it was derived from, so repeated
    #: campaign runs over the same job skip even the per-site clone+inject.
    compiled: "OrderedDict[Tuple[int, int], CompiledVariant]" = field(
        default_factory=OrderedDict, repr=False
    )


def prepare_build_states(jobs: Sequence[CampaignJob]) -> List[JobBuildState]:
    """Build (or fetch) each job's pristine snapshot and transform caches.

    This is the only place the campaign pays full-program build cost: one
    ``factory()`` (skipped when the job carries its campaign's snapshot)
    and one whole-module DPMR transform per variant, all cached on the job.
    """
    return [job.build_state() for job in jobs]


# An experiment tuple: (job index, site index, variant index, run index).
_Item = Tuple[int, int, int, int]

# Worker-side state.  Populated in the parent immediately before workers are
# forked (fork inherits it); None in a plain process.
_WORKER_JOBS: Optional[List[CampaignJob]] = None
_WORKER_STATES: Optional[List[JobBuildState]] = None
_WORKER_TRACER = None  # file-backed tracer shared with workers (fork-aware)
_WORKER_COUNTERS = False
_WORKER_USE_COMPILED = False  # compiled execution tier (DPMR_COMPILE)
_COMPILED: "OrderedDict[Tuple[int, int, int], CompiledVariant]" = OrderedDict()

#: Test-only chaos hook: a callable invoked with each experiment tuple at
#: the top of :func:`_run_item` (inherited by forked workers).  The chaos
#: test-suite uses it to SIGKILL a worker, wedge an experiment, or poison a
#: site deterministically; production leaves it None.
_CHAOS_HOOK = None


def _compiled_for(
    jobs: List[CampaignJob],
    states: Optional[List[JobBuildState]],
    item: _Item,
) -> CompiledVariant:
    """Compile (or fetch) the faulty build for one experiment tuple.

    The cache key is (workload/job, variant, site); within a worker the
    build for that key runs at most once.  With ``states`` (the incremental
    path) a build is a copy-on-write clone of the job's pristine snapshot
    plus a single-function re-transform, and the finished build is kept on
    the :class:`JobBuildState` so later campaign runs over the same job
    reuse it outright; without, it is a full factory-rebuild and
    whole-module transform, memoised only for the current executor call.
    """
    ji, si, vi, _ = item
    job = jobs[ji]
    site = job.sites[si]
    if states is not None:
        state = states[ji]
        key = (si, vi)
        compiled = state.compiled.get(key)
        if compiled is not None:
            # No move_to_end here: the cache is sized to hold a whole job,
            # so recency bookkeeping on every hit is pure hot-path churn.
            return compiled
        clone = state.pristine.clone(mutable_functions=(site.function,))
        faulty = inject(clone, site, job.percent)
        compiled = job.variants[vi].compile_incremental(
            state.compilers[vi], faulty
        )
        state.compiled[key] = compiled
        if len(state.compiled) > _STATE_CACHE_SIZE:
            state.compiled.popitem(last=False)
        return compiled
    key = (ji, si, vi)
    compiled = _COMPILED.get(key)
    if compiled is not None:
        _COMPILED.move_to_end(key)
        return compiled
    faulty = inject(job.factory(), site, job.percent)
    compiled = job.variants[vi].compile(faulty)
    _COMPILED[key] = compiled
    if len(_COMPILED) > _COMPILED_CACHE_SIZE:
        _COMPILED.popitem(last=False)
    return compiled


def _run_item(
    jobs: List[CampaignJob],
    states: Optional[List[JobBuildState]],
    item: _Item,
    tracer=None,
    counters: bool = False,
    use_compiled: bool = False,
) -> ExperimentRecord:
    ji, si, vi, ri = item
    hook = _CHAOS_HOOK
    if hook is not None:
        hook(item)
    job = jobs[ji]
    variant = job.variants[vi].name
    site = job.sites[si].site_id
    compiled = _compiled_for(jobs, states, item)
    trace_meta = None
    if tracer is not None:
        trace_meta = {
            "run_id": f"{job.workload}/{variant}/{site}/{ri}",
            "workload": job.workload,
            "variant": variant,
            "site": site,
            "run": ri,
            "golden_output": job.golden_output,
        }
    result = compiled.run(
        argv=job.argv,
        max_cycles=job.timeout,
        seed=job.seeds[ri],
        tracer=tracer,
        counters=counters,
        trace_meta=trace_meta,
        compiled=use_compiled,
    )
    return ExperimentRecord(
        workload=job.workload,
        variant=variant,
        site=site,
        run=ri,
        result=result,
        golden_output=job.golden_output,
    )


def _supervised_worker(wid: int, task_conn, result_conn) -> None:
    """Worker entry point: execute experiment tuples until told to stop.

    Receives one item at a time over its private task pipe (per-item
    dispatch is what lets the supervisor attribute a crash or hang to a
    specific experiment) and reports ``(wid, item, ok, payload)`` on its
    private result pipe; an infrastructure exception is reported as a
    failure message rather than killing the worker, so the supervisor can
    decide between retry and quarantine.  ``None`` or EOF on the task
    pipe means shut down.
    """
    jobs = _WORKER_JOBS
    assert jobs is not None, "worker forked before _WORKER_JOBS was set"
    while True:
        try:
            item = task_conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        try:
            record = _run_item(
                jobs,
                _WORKER_STATES,
                item,
                tracer=_WORKER_TRACER,
                counters=_WORKER_COUNTERS,
                use_compiled=_WORKER_USE_COMPILED,
            )
        except BaseException as exc:  # noqa: BLE001 — reported, not hidden
            try:
                result_conn.send(
                    (wid, item, False, f"{type(exc).__name__}: {exc}")
                )
            except Exception:
                os._exit(1)
            continue
        result_conn.send((wid, item, True, record))


def _all_items(jobs: Sequence[CampaignJob]) -> List[_Item]:
    """Every experiment tuple, in exact serial execution order."""
    return [
        (ji, si, vi, ri)
        for ji, job in enumerate(jobs)
        for si in range(len(job.sites))
        for vi in range(len(job.variants))
        for ri in range(len(job.seeds))
    ]


def _worker_decision(
    requested: int, n_items: int
) -> Tuple[int, str, Optional[str]]:
    """Decide the worker count: ``(effective, reason, serial_fallback)``.

    ``serial_fallback`` is non-None exactly when parallelism was *requested*
    (``requested > 1``) but the executor runs serially anyway — the cases
    that used to be silent.
    """
    if requested <= 1:
        return 1, "serial requested (jobs=1)", None
    if n_items <= 1:
        return 1, "serial", f"campaign has {n_items} experiment(s)"
    if not _fork_available():
        return 1, "serial", "fork start method unavailable on this platform"
    cap = os.cpu_count() or 1
    if cap <= 1:
        # Forking on a single core only adds scheduling and IPC overhead
        # (workers time-slice one CPU); the fallback used to be implicit in
        # the min() below — make it explicit so the manifest says why.
        return 1, "serial", "single-core machine (os.cpu_count() <= 1)"
    effective = effective_workers(n_items, requested)
    if effective <= 1:
        if n_items // MIN_ITEMS_PER_WORKER <= 1:
            detail = (
                f"min-work heuristic: {n_items} items cannot amortize fork "
                f"cost (≥{MIN_ITEMS_PER_WORKER} items/worker required)"
            )
        else:
            detail = f"machine reports {cap} cpu(s)"
        return 1, "serial", detail
    reason = (
        f"min(requested {requested}, cpu {cap}, "
        f"{n_items} items // {MIN_ITEMS_PER_WORKER}/worker)"
    )
    return effective, reason, None


def _warm_compiled_bases(states: Sequence[JobBuildState]) -> None:
    """Pre-generate compiled code for every pristine/base-transform module.

    Delta codegen splices per-site code against a *base* generation of the
    same function; anchoring the bases on the pristine snapshot (and each
    DPMR variant's transformed pristine) before any faulty build compiles
    means every per-site compile takes the cheap delta path, and forked
    workers inherit the warm base info via copy-on-write.  DPMR bases are
    additionally warmed under the variant's runtime-specialization spec,
    which is part of the codegen context key — that is the context the
    per-experiment machines actually compile under.  Failures are
    ignored — anything that refuses to compile falls back to the
    interpreter at run time exactly as it would without warm-up.
    """
    from ..core.runtime import diversity_codegen_spec
    from ..machine.compile import compiled_program_for, inline_runtime_enabled

    inline_rt = inline_runtime_enabled()
    for state in states:
        try:
            compiled_program_for(state.pristine)
        except Exception:  # pragma: no cover — interp fallback handles it
            pass
        for compiler in state.compilers:
            if compiler is None:
                continue
            spec = (
                diversity_codegen_spec(compiler.compiler.diversity)
                if inline_rt
                else None
            )
            try:
                compiled_program_for(compiler.base_module, spec)
            except Exception:  # pragma: no cover
                pass


def _job_manifests(
    jobs: Sequence[CampaignJob], states: Optional[List[JobBuildState]]
) -> List[JobManifest]:
    out: List[JobManifest] = []
    for ji, job in enumerate(jobs):
        jm = JobManifest(
            workload=job.workload,
            kind=job.kind,
            n_sites=len(job.sites),
            n_variants=len(job.variants),
            n_seeds=len(job.seeds),
            sites=[s.site_id for s in job.sites],
        )
        if states is not None:
            state = states[ji]
            for compiler in state.compilers:
                if compiler is None:
                    continue
                jm.cache_hits += compiler.stats.hits
                jm.cache_misses += compiler.stats.misses
                jm.cache_full_rebuilds += compiler.stats.full_rebuilds
            jm.builds_cached = len(state.compiled)
        out.append(jm)
    return out


def _store_index(
    jobs: List[CampaignJob],
    states: Optional[List[JobBuildState]],
    items: List[_Item],
    config: ExecConfig,
    store,
) -> Tuple[Dict[_Item, ExperimentRecord], Dict[_Item, str], Dict[_Item, Dict]]:
    """Look up every experiment tuple in the persistent store.

    Returns ``(cached, keys, key_fields)``: records served as hits, the
    content address of every item, and the human-readable key fields
    persisted with each entry.  Module fingerprints come from each job's
    pristine snapshot — by the factory-determinism contract the snapshot's
    text equals the text of every module a worker would rebuild.
    """
    from .store import (
        exec_fingerprint,
        experiment_key,
        module_fingerprint,
        variant_fingerprint,
    )

    exec_fp = exec_fingerprint(config)
    module_shas: List[str] = []
    for ji, job in enumerate(jobs):
        if states is not None:
            pristine = states[ji].pristine
        elif job.pristine is not None:
            pristine = job.pristine
        else:
            pristine = job.factory()
        module_shas.append(module_fingerprint(pristine))
    variant_fps = [[variant_fingerprint(v) for v in job.variants] for job in jobs]

    cached: Dict[_Item, ExperimentRecord] = {}
    keys: Dict[_Item, str] = {}
    key_fields: Dict[_Item, Dict] = {}
    for item in items:
        ji, si, vi, ri = item
        job = jobs[ji]
        fields = {
            "workload": job.workload,
            "kind": job.kind,
            "percent": job.percent,
            "site": job.sites[si].site_id,
            "variant_fp": variant_fps[ji][vi],
            "seed": job.seeds[ri],
            "run": ri,
            "argv": list(job.argv),
            "timeout": job.timeout,
            "exec_fp": exec_fp,
            "module_sha": module_shas[ji],
        }
        key = experiment_key(**fields)
        keys[item] = key
        key_fields[item] = fields
        record = store.get(key)
        if record is not None:
            cached[item] = record
    return cached, keys, key_fields


def _run_serial_supervised(
    jobs: List[CampaignJob],
    states: Optional[List[JobBuildState]],
    misses: List[_Item],
    config: ExecConfig,
    tracer,
    counters: bool,
    use_compiled: bool,
    stats: SupervisionStats,
    on_result,
    cancel=None,
) -> Dict[_Item, ExperimentRecord]:
    """The serial execution path with bounded retry and quarantine.

    Serial execution cannot preempt a wedged experiment (no wall-clock
    budget applies), but infrastructure exceptions get the same
    retry-with-backoff and site-quarantine treatment as supervised workers,
    so a poisoned site degrades the campaign instead of aborting it.
    ``cancel`` (a ``threading.Event``-alike) stops dispatch between items —
    the campaign service uses it for prompt daemon shutdown.
    """
    computed: Dict[_Item, ExperimentRecord] = {}
    for item in misses:
        if cancel is not None and cancel.is_set():
            break
        site = item[:2]
        if site in stats.quarantined:
            continue
        attempt = 0
        while True:
            try:
                record = _run_item(
                    jobs,
                    states,
                    item,
                    tracer=tracer,
                    counters=counters,
                    use_compiled=use_compiled,
                )
            except Exception as exc:
                attempt += 1
                reason = f"{type(exc).__name__}: {exc}"
                if attempt > config.retries:
                    logger.warning(
                        "quarantining site %r after %d failed attempt(s): %s",
                        site,
                        attempt,
                        reason,
                    )
                    stats.quarantined[site] = (attempt, reason)
                    break
                stats.retries += 1
                logger.warning(
                    "retrying %r (attempt %d/%d): %s",
                    item,
                    attempt + 1,
                    config.retries + 1,
                    reason,
                )
                time.sleep(config.retry_backoff_s * (2 ** (attempt - 1)))
                continue
            computed[item] = record
            if on_result is not None:
                on_result(item, record)
            break
    return computed


def run_campaign_jobs_with_manifest(
    jobs: Sequence[CampaignJob],
    config: Optional[ExecConfig] = None,
    build_states: Optional[List[JobBuildState]] = None,
    tracer=None,
    items: Optional[Sequence[_Item]] = None,
    on_record: Optional[Callable[[_Item, ExperimentRecord, str], None]] = None,
    cancel=None,
) -> Tuple[List[ExperimentRecord], RunManifest]:
    """Run every experiment of every job; records in serial order + manifest.

    The manifest captures every executor decision (requested vs. effective
    worker count and why, serial-fallback reason, incremental cache
    behaviour per job) plus campaign aggregates (status counts, machine
    counter totals when observability is on) and every resilience event
    (store hits/misses/corruption, retries, worker restarts, quarantined
    sites).  ``config`` defaults to :meth:`ExecConfig.from_env`; ``tracer``
    overrides the config's trace file (pass a
    :class:`~repro.obs.CollectingTracer` in tests).  Records stay
    bit-identical across serial/parallel, incremental/full-rebuild,
    store-cold/store-warm, and observability on/off execution.

    Service hooks (all optional, default to the classic batch behaviour):

    * ``items`` — run only this subset of experiment tuples
      ``(job, site, variant, run)`` instead of every job's full
      site × variant × seed cross product.  The campaign service passes
      exactly the tuples its dedupe table left over, so overlapping
      client requests never recompute shared work.
    * ``on_record(item, record, source)`` — streaming callback invoked in
      the coordinator process for every finished record: once per store
      hit (``source="store"``, before execution starts) and once per
      computed record as it completes (``source="run"``, in completion
      order).  Records are *also* returned at the end, in serial order.
    * ``cancel`` — a ``threading.Event``-alike polled between experiments
      (serial) and dispatches (supervised workers); when set, remaining
      items are abandoned and only finished records are returned.
    """
    global _WORKER_JOBS, _WORKER_STATES, _WORKER_TRACER, _WORKER_COUNTERS
    global _WORKER_USE_COMPILED
    from ..machine.compile import (
        codegen_stats,
        set_inline_runtime,
        set_persistent_code_cache,
    )
    from ..obs.counters import total_counters
    from ..obs.tracer import real_tracer

    config = config if config is not None else ExecConfig.from_env()
    # -- shard fabric routing (DPMR_SHARDS / ExecConfig.shards) ---------
    # N>1 hands the whole invocation to the shard coordinator, which
    # partitions the tuple space across N worker nodes and re-enters this
    # function (with shards=1) inside each node.  Observability and
    # fork-less platforms fall back to single-node execution with a logged
    # reason — never silently.
    if config.shards > 1:
        from ..shard.coordinator import run_sharded_campaign, sharding_fallback

        shard_fallback = sharding_fallback(config, tracer)
        if shard_fallback is None:
            return run_sharded_campaign(
                jobs,
                config=config,
                build_states=build_states,
                items=items,
                on_record=on_record,
                cancel=cancel,
            )
        logger.warning(
            "campaign requested %d shards but runs single-node: %s",
            config.shards,
            shard_fallback,
        )
    # Campaign-scoped runtime-specialization toggle: sampled by the build
    # states below (their transform journals gate on it), by base warming,
    # and inherited by forked workers.  Restored in the finally.
    inline_prev = set_inline_runtime(config.inline_rt)
    jobs = list(jobs)
    incremental = config.incremental or build_states is not None
    items = _all_items(jobs) if items is None else [tuple(i) for i in items]
    states: Optional[List[JobBuildState]] = None
    if incremental and items:
        states = (
            build_states if build_states is not None else prepare_build_states(jobs)
        )

    own_tracer = tracer is None
    if own_tracer:
        tracer = config.make_tracer()
    tracer = real_tracer(tracer)
    counters = config.counters or tracer is not None
    # Observability forces the instrumented interpreter; the compiled tier
    # only engages on bare runs (records are bit-identical either way).
    use_compiled = config.compiled and not counters

    # -- persistent store lookup ---------------------------------------
    store = config.make_store()
    cached: Dict[_Item, ExperimentRecord] = {}
    keys: Dict[_Item, str] = {}
    key_fields: Dict[_Item, Dict] = {}
    if store is not None and items:
        cached, keys, key_fields = _store_index(
            jobs, states, items, config, store
        )
    misses = [item for item in items if item not in cached]
    if on_record is not None:
        for item in items:
            record = cached.get(item)
            if record is not None:
                on_record(item, record, "store")
    on_result = None
    if store is not None or on_record is not None:

        def on_result(item, record):  # noqa: E731 — composed callback
            if store is not None:
                store.put(keys[item], record, key_fields.get(item))
            if on_record is not None:
                on_record(item, record, "run")

    if not items:
        # An explicit decision, not a silent no-op: a service-side expansion
        # bug that produces zero tuples must be visible in the manifest.
        effective, reason, fallback = 1, "empty_campaign", None
        logger.warning(
            "campaign over %d job(s) expanded to zero experiment tuples",
            len(jobs),
        )
    elif not misses:
        effective, reason, fallback = 1, "all experiments served from store", None
    else:
        effective, reason, fallback = _worker_decision(config.jobs, len(misses))
    if fallback is not None:
        logger.warning(
            "campaign requested %d workers but runs serially: %s",
            config.jobs,
            fallback,
        )
    manifest = RunManifest(
        mode="campaign",
        requested_jobs=config.jobs,
        effective_jobs=effective,
        worker_reason=reason,
        serial_fallback=fallback,
        incremental=bool(states is not None),
        trace_path=config.trace_path if (own_tracer and tracer is not None) else None,
        counters_enabled=counters,
        engine="compiled" if use_compiled else "interp",
        timeout_factor=config.timeout_factor,
        n_jobs=len(jobs),
        n_items=len(items),
    )
    stats = SupervisionStats()
    # With a store configured, generated per-site source persists next to
    # the results (<store>/codegen), so warm-resume campaigns skip codegen
    # entirely; restored in the finally below.
    persist_prev: Optional[str] = None
    persist_set = False
    if use_compiled and store is not None:
        persist_prev = set_persistent_code_cache(
            os.path.join(store.root, "codegen")
        )
        persist_set = True
    if use_compiled and states is not None and misses:
        _warm_compiled_bases(states)
    # Coordinator-process snapshot: forked workers' codegen stats do not
    # cross the process boundary, so the deltas below cover serial runs and
    # the coordinator's share of parallel ones (still enough to show the
    # content-addressed cache working across a campaign).
    cg_before = codegen_stats()
    started = time.monotonic()
    try:
        if effective <= 1:
            _COMPILED.clear()
            try:
                computed = _run_serial_supervised(
                    jobs,
                    states,
                    misses,
                    config,
                    tracer,
                    counters,
                    use_compiled,
                    stats,
                    on_result,
                    cancel=cancel,
                )
            finally:
                _COMPILED.clear()
        else:
            ctx = multiprocessing.get_context("fork")
            _WORKER_JOBS = jobs
            _WORKER_STATES = states
            _WORKER_TRACER = tracer
            _WORKER_COUNTERS = counters
            _WORKER_USE_COMPILED = use_compiled
            _COMPILED.clear()
            try:
                supervisor = WorkerSupervisor(
                    ctx,
                    _supervised_worker,
                    effective,
                    retries=config.retries,
                    exp_timeout_s=config.exp_timeout_s,
                    backoff_s=config.retry_backoff_s,
                    site_of=lambda item: item[:2],
                    on_result=on_result,
                    cancel=cancel,
                )
                computed = supervisor.run(misses)
                stats = supervisor.stats
            finally:
                _WORKER_JOBS = None
                _WORKER_STATES = None
                _WORKER_TRACER = None
                _WORKER_COUNTERS = False
                _WORKER_USE_COMPILED = False
        cancelled = cancel is not None and cancel.is_set()
        records = []
        for item in items:
            if item[:2] in stats.quarantined:
                continue
            record = cached.get(item)
            if record is None:
                record = computed.get(item)
            if record is None:
                if cancelled:
                    continue  # abandoned by cancellation, not an invariant hole
                raise RuntimeError(
                    f"experiment {item} neither computed nor quarantined "
                    "(supervisor invariant violated)"
                )
            records.append(record)
        if cancelled:
            logger.warning(
                "campaign cancelled: %d of %d experiment tuple(s) finished",
                len(records),
                len(items),
            )
    finally:
        set_inline_runtime(inline_prev)
        if persist_set:
            set_persistent_code_cache(persist_prev)
        if own_tracer and tracer is not None:
            tracer.close()

    manifest.wall_s = time.monotonic() - started
    cg_after = codegen_stats()
    manifest.codegen_hits = cg_after["hits"] - cg_before["hits"]
    manifest.codegen_misses = cg_after["misses"] - cg_before["misses"]
    manifest.n_records = len(records)
    manifest.jobs = _job_manifests(jobs, states)
    manifest.retries = stats.retries
    manifest.worker_restarts = stats.worker_restarts
    manifest.exp_timeouts = stats.exp_timeouts
    for (ji, si), (attempts, reason_q) in sorted(stats.quarantined.items()):
        manifest.quarantined.append(
            QuarantineRecord(
                workload=jobs[ji].workload,
                kind=jobs[ji].kind,
                site=jobs[ji].sites[si].site_id,
                attempts=attempts,
                reason=reason_q,
            )
        )
    if store is not None:
        manifest.store_path = store.root
        manifest.store_hits = store.stats.hits
        manifest.store_misses = store.stats.misses
        manifest.store_writes = store.stats.writes
        manifest.store_corrupt = store.stats.corrupt
    for r in records:
        s = r.result.status.value
        manifest.status_counts[s] = manifest.status_counts.get(s, 0) + 1
    manifest.counter_totals = total_counters(r.result.counters for r in records)
    out_path = config.effective_manifest_path()
    if out_path is not None:
        manifest.write(out_path)
    return records, manifest


def run_campaign_jobs(
    jobs: Sequence[CampaignJob],
    build_states: Optional[List[JobBuildState]] = None,
    config: Optional[ExecConfig] = None,
) -> List[ExperimentRecord]:
    """Run every experiment of every job; results in serial order.

    Thin records-only wrapper over :func:`run_campaign_jobs_with_manifest`.
    Execution is governed entirely by ``config`` (defaulting to the
    environment via :meth:`ExecConfig.from_env`); the pre-PR-4
    ``processes=``/``incremental=`` keyword aliases are gone — see the
    README migration notes.
    """
    records, _ = run_campaign_jobs_with_manifest(
        jobs, config=config, build_states=build_states
    )
    return records


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()
