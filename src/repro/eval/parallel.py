"""Parallel fault-injection campaign executor with incremental builds.

The evaluation re-runs the interpreter once per experiment tuple
``(workload, variant, site, run)`` — thousands of fully independent
machine executions.  This module fans those tuples out over a
``multiprocessing`` worker pool while keeping the results *provably
bit-identical* to a serial run:

* **Deterministic per-experiment seeding.**  Every experiment's machine RNG
  is seeded solely from its tuple (the harness seed list); nothing is drawn
  from shared or order-dependent RNG state.  Workers are forked from the
  parent, so they also inherit the parent's hash seed and build
  byte-identical modules.
* **No shared mutable machine state.**  Each experiment runs in a fresh
  :class:`~repro.machine.interpreter.Machine`; the only values that cross
  process boundaries are immutable work-item indices (parent → worker) and
  finished :class:`ExperimentRecord` values (worker → parent).
* **Serial-identical aggregation.**  Results are reassembled in the exact
  nested order the serial loop produces (job → site → variant → run),
  whatever order workers finish in.

Experiment builds go through the **incremental recompilation layer**
(:mod:`repro.core.incremental`) by default: per job the program factory runs
once, producing a pristine snapshot, and each DPMR variant transforms that
snapshot once up front.  A faulty build is then a copy-on-write module clone
plus a re-transform of the single function containing the fault.  The
pristine snapshots and per-variant transform caches are prepared in the
coordinating process *before* the pool forks, so workers share them
(copy-on-write pages) rather than rebuilding them; records are bit-identical
to the full-rebuild path (set ``DPMR_INCREMENTAL=0`` or pass
``incremental=False`` to use it).

Workers keep a small LRU cache of compiled variants keyed by
``(workload, variant, site)``, so a worker compiles any given faulty module
at most once even though work is distributed as individual experiment
tuples.

The executor is opt-in: ``DPMR_JOBS=N`` in the environment (or an explicit
``jobs=`` argument) enables it; unset/``1`` runs the same code path
serially in-process.  A minimum-work-per-worker heuristic shrinks (or
drops to serial) the worker pool when a campaign is too small to amortize
fork/IPC cost, and the pool never exceeds the machine's CPU count.
Platforms without the ``fork`` start method fall back to serial execution —
determinism there would require pickling program factories and re-deriving
the hash seed, which the fork path gets for free.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.incremental import IncrementalDpmrCompiler
from ..faultinject.campaign import Campaign, ProgramFactory
from ..faultinject.injector import FaultSite, inject
from ..ir.module import Module
from .experiment import ExperimentRecord
from .variants import CompiledVariant, Variant

#: Environment variable selecting the worker count (0/1/unset → serial).
JOBS_ENV_VAR = "DPMR_JOBS"

#: Environment variable disabling the incremental build path (default on).
INCREMENTAL_ENV_VAR = "DPMR_INCREMENTAL"

#: Compiled variants cached per worker; small, since consecutive work items
#: share the same (site, variant) and only chunk boundaries ever look back.
_COMPILED_CACHE_SIZE = 32

#: Finished builds retained on a job's :class:`JobBuildState` (one entry per
#: (site, variant)); sized to hold a whole typical job so repeated campaign
#: runs never recompile.
_STATE_CACHE_SIZE = 256

#: Forking a worker is only worth it if it gets at least this many
#: experiment tuples; below that, fork + import + IPC overhead dominates
#: (visible as parallel_s > serial_s on small campaigns).
MIN_ITEMS_PER_WORKER = 16


def default_jobs() -> int:
    """Worker count from ``DPMR_JOBS`` (defaults to serial execution)."""
    raw = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {raw!r}") from None


def incremental_default() -> bool:
    """Whether the incremental build path is enabled (``DPMR_INCREMENTAL``)."""
    raw = os.environ.get(INCREMENTAL_ENV_VAR, "").strip().lower()
    return raw not in ("0", "false", "off", "no")


def effective_workers(n_items: int, processes: int) -> int:
    """Worker count actually used for ``n_items`` experiment tuples.

    Caps the requested ``processes`` at (a) the machine's CPU count — extra
    workers on fewer cores only add fork and scheduling overhead — and
    (b) one worker per :data:`MIN_ITEMS_PER_WORKER` tuples, so tiny
    campaigns fall back to fewer workers or plain serial execution instead
    of paying fork cost they cannot amortize.
    """
    cap = os.cpu_count() or 1
    by_work = n_items // MIN_ITEMS_PER_WORKER
    return max(1, min(processes, cap, by_work))


@dataclass
class CampaignJob:
    """One (workload, fault-kind) campaign: everything a worker needs.

    ``sites`` is enumerated once in the parent so every process agrees on
    site identity and order.  ``pristine``, when provided (it is whenever
    the job comes from :func:`job_for_harness`), is the already-built
    pristine snapshot the sites were enumerated on; the incremental build
    path derives every faulty module from it instead of re-running the
    factory.
    """

    workload: str
    factory: ProgramFactory
    kind: str
    variants: List[Variant]
    sites: List[FaultSite]
    golden_output: str
    timeout: int
    argv: Sequence[str] = ()
    seeds: Sequence[int] = (0,)
    percent: int = 50
    pristine: Optional[Module] = field(default=None, repr=False)
    _state: Optional["JobBuildState"] = field(default=None, repr=False)

    def build_state(self) -> "JobBuildState":
        """This job's incremental build state, constructed once and cached.

        Holds the pristine snapshot plus one base transform (function-level
        cache) per DPMR variant — the only full-program build work of the
        whole campaign.  Cached on the job so repeated campaign runs and
        forked workers reuse the warm caches.
        """
        if self._state is None:
            pristine = self.pristine if self.pristine is not None else self.factory()
            self._state = JobBuildState(
                pristine=pristine,
                compilers=[v.incremental_compiler(pristine) for v in self.variants],
            )
        return self._state


def job_for_harness(
    harness,
    variants,
    kind: str,
    percent: int = 50,
    max_sites: Optional[int] = None,
) -> CampaignJob:
    """Build a :class:`CampaignJob` from a ``WorkloadHarness``."""
    campaign = Campaign(harness.factory, kind, percent=percent)
    sites = campaign.sites
    if max_sites is not None:
        sites = sites[:max_sites]
    return CampaignJob(
        workload=harness.name,
        factory=harness.factory,
        kind=kind,
        variants=list(variants),
        sites=list(sites),
        golden_output=harness.golden.output_text,
        timeout=harness.timeout,
        argv=harness.argv,
        seeds=harness.seeds,
        percent=percent,
        pristine=campaign.pristine,
    )


@dataclass
class JobBuildState:
    """Per-job incremental build state shared by coordinator and workers.

    One pristine snapshot plus one function-level transform cache per DPMR
    variant (``None`` entries are non-DPMR variants).  Prepared in the
    coordinating process before the pool forks, so every worker inherits
    the fully-warmed caches.
    """

    pristine: Module
    compilers: List[Optional[IncrementalDpmrCompiler]]
    #: Finished faulty builds keyed (site index, variant index).  Lives as
    #: long as the pristine snapshot it was derived from, so repeated
    #: campaign runs over the same job skip even the per-site clone+inject.
    compiled: "OrderedDict[Tuple[int, int], CompiledVariant]" = field(
        default_factory=OrderedDict, repr=False
    )


def prepare_build_states(jobs: Sequence[CampaignJob]) -> List[JobBuildState]:
    """Build (or fetch) each job's pristine snapshot and transform caches.

    This is the only place the campaign pays full-program build cost: one
    ``factory()`` (skipped when the job carries its campaign's snapshot)
    and one whole-module DPMR transform per variant, all cached on the job.
    """
    return [job.build_state() for job in jobs]


# An experiment tuple: (job index, site index, variant index, run index).
_Item = Tuple[int, int, int, int]

# Worker-side state.  Populated in the parent immediately before the pool is
# forked (fork inherits it); None in a plain process.
_WORKER_JOBS: Optional[List[CampaignJob]] = None
_WORKER_STATES: Optional[List[JobBuildState]] = None
_COMPILED: "OrderedDict[Tuple[int, int, int], CompiledVariant]" = OrderedDict()


def _compiled_for(
    jobs: List[CampaignJob],
    states: Optional[List[JobBuildState]],
    item: _Item,
) -> CompiledVariant:
    """Compile (or fetch) the faulty build for one experiment tuple.

    The cache key is (workload/job, variant, site); within a worker the
    build for that key runs at most once.  With ``states`` (the incremental
    path) a build is a copy-on-write clone of the job's pristine snapshot
    plus a single-function re-transform, and the finished build is kept on
    the :class:`JobBuildState` so later campaign runs over the same job
    reuse it outright; without, it is a full factory-rebuild and
    whole-module transform, memoised only for the current executor call.
    """
    ji, si, vi, _ = item
    job = jobs[ji]
    site = job.sites[si]
    if states is not None:
        state = states[ji]
        key = (si, vi)
        compiled = state.compiled.get(key)
        if compiled is not None:
            state.compiled.move_to_end(key)
            return compiled
        clone = state.pristine.clone(mutable_functions=(site.function,))
        faulty = inject(clone, site, job.percent)
        compiled = job.variants[vi].compile_incremental(
            state.compilers[vi], faulty
        )
        state.compiled[key] = compiled
        if len(state.compiled) > _STATE_CACHE_SIZE:
            state.compiled.popitem(last=False)
        return compiled
    key = (ji, si, vi)
    compiled = _COMPILED.get(key)
    if compiled is not None:
        _COMPILED.move_to_end(key)
        return compiled
    faulty = inject(job.factory(), site, job.percent)
    compiled = job.variants[vi].compile(faulty)
    _COMPILED[key] = compiled
    if len(_COMPILED) > _COMPILED_CACHE_SIZE:
        _COMPILED.popitem(last=False)
    return compiled


def _run_item(
    jobs: List[CampaignJob],
    states: Optional[List[JobBuildState]],
    item: _Item,
) -> ExperimentRecord:
    ji, si, vi, ri = item
    job = jobs[ji]
    compiled = _compiled_for(jobs, states, item)
    result = compiled.run(
        argv=job.argv, max_cycles=job.timeout, seed=job.seeds[ri]
    )
    return ExperimentRecord(
        workload=job.workload,
        variant=job.variants[vi].name,
        site=job.sites[si].site_id,
        run=ri,
        result=result,
        golden_output=job.golden_output,
    )


def _run_chunk(chunk: List[_Item]) -> List[Tuple[_Item, ExperimentRecord]]:
    """Worker entry point: execute one chunk of experiment tuples."""
    jobs = _WORKER_JOBS
    assert jobs is not None, "worker forked before _WORKER_JOBS was set"
    return [(item, _run_item(jobs, _WORKER_STATES, item)) for item in chunk]


def _all_items(jobs: Sequence[CampaignJob]) -> List[_Item]:
    """Every experiment tuple, in exact serial execution order."""
    return [
        (ji, si, vi, ri)
        for ji, job in enumerate(jobs)
        for si in range(len(job.sites))
        for vi in range(len(job.variants))
        for ri in range(len(job.seeds))
    ]


def _chunked(items: List[_Item], processes: int) -> List[List[_Item]]:
    """Split work into in-order chunks, ~4 per worker for load balance.

    Keeping tuples in serial order means runs of the same (site, variant)
    stay adjacent, so the worker-side compiled-variant cache hits for every
    seed after the first.
    """
    if not items:
        return []
    n_chunks = max(1, min(len(items), processes * 4))
    size = -(-len(items) // n_chunks)
    return [items[i : i + size] for i in range(0, len(items), size)]


def run_campaign_jobs(
    jobs: Sequence[CampaignJob],
    processes: Optional[int] = None,
    incremental: Optional[bool] = None,
    build_states: Optional[List[JobBuildState]] = None,
) -> List[ExperimentRecord]:
    """Run every experiment of every job; results in serial order.

    ``processes`` defaults to ``DPMR_JOBS``; the actual worker count is
    further limited by :func:`effective_workers`, and values ≤ 1 (or a
    platform without ``fork``) execute the identical per-item code serially
    in-process.  ``incremental`` selects the incremental build path
    (default: on unless ``DPMR_INCREMENTAL=0``); ``build_states`` lets a
    caller pre-build — and afterwards inspect, e.g. for cache-hit-rate
    reporting — the per-job transform caches.  Records are bit-identical
    across serial/parallel and incremental/full-rebuild execution.
    """
    global _WORKER_JOBS, _WORKER_STATES
    jobs = list(jobs)
    if processes is None:
        processes = default_jobs()
    if incremental is None:
        incremental = incremental_default() or build_states is not None
    items = _all_items(jobs)
    states: Optional[List[JobBuildState]] = None
    if incremental and items:
        states = (
            build_states if build_states is not None else prepare_build_states(jobs)
        )

    processes = effective_workers(len(items), processes)
    if processes <= 1 or len(items) <= 1 or not _fork_available():
        _COMPILED.clear()
        try:
            return [_run_item(jobs, states, item) for item in items]
        finally:
            _COMPILED.clear()

    ctx = multiprocessing.get_context("fork")
    results: Dict[_Item, ExperimentRecord] = {}
    _WORKER_JOBS = jobs
    _WORKER_STATES = states
    _COMPILED.clear()
    try:
        with ctx.Pool(processes) as pool:
            for pairs in pool.imap_unordered(_run_chunk, _chunked(items, processes)):
                for item, record in pairs:
                    results[item] = record
    finally:
        _WORKER_JOBS = None
        _WORKER_STATES = None
    return [results[item] for item in items]


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()
