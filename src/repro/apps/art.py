"""``art`` analog: floating-point neural-network image recognition.

Mirrors the memory character of SPEC CPU2000 ``art`` (§3.3): almost all work
happens in flat floating-point arrays allocated on the heap (an input
"thermal image", a weight matrix, per-category activations), with very few
pointers stored to memory — which is why the paper finds SDS and MDS nearly
indistinguishable on art (§4.5).

The kernel is an ART-style competitive learner: repeated rounds of
dot-product activation, winner selection, and winner weight reinforcement.
"""

from __future__ import annotations

from ..ir.module import Module
from ..ir.builder import ModuleBuilder
from ..ir.types import FLOAT64, INT32, INT64
from .support import (
    add_message_global,
    declare_common_externals,
    emit_app_error_if,
    lcg_init,
    lcg_next,
    print_message,
)

NAME = "art"

#: categories in the competitive layer
CATEGORIES = 4


def build(scale: int = 1) -> Module:
    """Build the art workload; ``scale`` multiplies the image size."""
    n_inputs = 12 * scale
    rounds = 5
    mb = ModuleBuilder(NAME)
    declare_common_externals(mb)
    add_message_global(mb, "art.banner", "art: scanning image\n")

    fn, b = mb.define("main", INT32)
    print_message(mb, b, "art.banner")
    rng = lcg_init(b, 0xA27)

    image = b.malloc(FLOAT64, b.i64(n_inputs), hint="image")
    weights = b.malloc(FLOAT64, b.i64(CATEGORIES * n_inputs), hint="weights")
    acts = b.malloc(FLOAT64, b.i64(CATEGORIES), hint="acts")
    winners = b.malloc(INT64, b.i64(rounds), hint="winners")

    # Initialize the image with pseudo-thermal intensities in [0, 1).
    with b.for_range(b.i64(n_inputs)) as i:
        raw = lcg_next(b, rng, 1000)
        f = b.num_cast(raw, FLOAT64)
        b.store(b.elem_addr(image, i), b.fdiv(f, b.f64(1000.0)))
    # Initialize weights with small category-dependent biases.
    with b.for_range(b.i64(CATEGORIES * n_inputs)) as i:
        raw = lcg_next(b, rng, 100)
        f = b.num_cast(raw, FLOAT64)
        b.store(b.elem_addr(weights, i), b.fdiv(f, b.f64(400.0)))

    with b.for_range(b.i64(rounds)) as r:
        # activation[c] = dot(image, weights[c])
        with b.for_range(b.i64(CATEGORIES)) as c:
            acc = b.alloca(FLOAT64)
            b.store(acc, b.f64(0.0))
            base = b.mul(c, b.i64(n_inputs))
            with b.for_range(b.i64(n_inputs)) as i:
                x = b.load(b.elem_addr(image, i))
                w = b.load(b.elem_addr(weights, b.add(base, i)))
                b.store(acc, b.fadd(b.load(acc), b.fmul(x, w)))
            b.store(b.elem_addr(acts, c), b.load(acc))
        # winner = argmax activation
        best = b.alloca(INT64)
        b.store(best, b.i64(0))
        with b.for_range(b.i64(CATEGORIES), start=b.i64(1)) as c:
            cur = b.load(b.elem_addr(acts, c))
            top = b.load(b.elem_addr(acts, b.load(best)))
            better = b.cmp("sgt", cur, top)
            with b.if_then(better):
                b.store(best, c)
        w_idx = b.load(best)
        # Sanity check: the winner must be a valid category index.
        bad_low = b.slt(w_idx, b.i64(0))
        emit_app_error_if(b, bad_low, 20)
        bad_high = b.sge(w_idx, b.i64(CATEGORIES))
        emit_app_error_if(b, bad_high, 21)
        b.store(b.elem_addr(winners, r), w_idx)
        # Reinforce the winner's weights toward the image.
        base = b.mul(w_idx, b.i64(n_inputs))
        with b.for_range(b.i64(n_inputs)) as i:
            wslot = b.elem_addr(weights, b.add(base, i))
            x = b.load(b.elem_addr(image, i))
            bumped = b.fadd(b.load(wslot), b.fmul(x, b.f64(0.05)))
            b.store(wslot, bumped)

    # Output: winner sequence checksum and final weight mass.
    wsum = b.alloca(INT64)
    b.store(wsum, b.i64(0))
    with b.for_range(b.i64(rounds)) as r:
        v = b.load(b.elem_addr(winners, r))
        shifted = b.mul(b.load(wsum), b.i64(CATEGORIES + 1))
        b.store(wsum, b.add(shifted, v))
    b.call("print_i64", [b.load(wsum)])
    mass = b.alloca(FLOAT64)
    b.store(mass, b.f64(0.0))
    with b.for_range(b.i64(CATEGORIES * n_inputs)) as i:
        b.store(mass, b.fadd(b.load(mass), b.load(b.elem_addr(weights, i))))
    b.call("print_f64", [b.load(mass)])

    b.free(image)
    b.free(weights)
    b.free(acts)
    b.free(winners)
    b.ret(b.i32(0))
    return mb.module
