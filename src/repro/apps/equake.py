"""``equake`` analog: floating-point seismic wave propagation.

Mirrors the memory character of SPEC CPU2000 ``equake`` (§3.3): a sparse,
pointer-linked mesh of nodes carrying floating-point state, advanced through
explicit time steps.  A significant fraction of allocations hold pointers
(each mesh node owns a linked adjacency list), which is why the paper finds
MDS gains most on equake/mcf (§4.5).

The mesh is a ring of nodes with skip links; each step relaxes node values
toward a weighted average over the adjacency lists (pointer traversal), then
commits.  The basin's total energy is printed as the result.
"""

from __future__ import annotations

from ..ir.module import Module
from ..ir.builder import ModuleBuilder
from ..ir.types import FLOAT64, INT32, INT64, PointerType, StructType
from .support import (
    add_message_global,
    declare_common_externals,
    emit_app_error_if,
    lcg_init,
    lcg_next,
    print_message,
)

NAME = "equake"


def _mesh_types():
    """``struct Edge { Node* dst; float64 w; Edge* next; }`` and
    ``struct Node { float64 val; float64 nxt_val; Edge* edges; }``."""
    node = StructType.opaque("eq.Node")
    edge = StructType.opaque("eq.Edge")
    edge.set_fields([PointerType(node), FLOAT64, PointerType(edge)])
    node.set_fields([FLOAT64, FLOAT64, PointerType(edge)])
    return node, edge


def build(scale: int = 1) -> Module:
    """Build the equake workload; ``scale`` multiplies the mesh size."""
    n_nodes = 10 * scale
    steps = 4
    node_t, edge_t = _mesh_types()
    node_p = PointerType(node_t)
    edge_p = PointerType(edge_t)

    mb = ModuleBuilder(NAME)
    declare_common_externals(mb)
    add_message_global(mb, "equake.banner", "equake: simulating basin\n")

    # addEdge(from: Node*, to: Node*, w: float64)
    ae, b = mb.define(
        "addEdge", INT32, [node_p, node_p, FLOAT64], ["src", "dst", "w"]
    )
    e = b.malloc(edge_t, hint="edge")
    b.store(b.field_addr(e, 0), ae.params[1])
    b.store(b.field_addr(e, 1), ae.params[2])
    head_slot = b.field_addr(ae.params[0], 2)
    b.store(b.field_addr(e, 2), b.load(head_slot))
    b.store(head_slot, e)
    b.ret(b.i32(0))

    fn, b = mb.define("main", INT32)
    print_message(mb, b, "equake.banner")
    rng = lcg_init(b, 0xE9A)

    nodes = b.malloc(node_t, b.i64(n_nodes), hint="nodes")
    damp = b.malloc(FLOAT64, b.i64(n_nodes), hint="damp")
    # Initialize node state with a pseudo-random displacement field and
    # per-node damping factors.
    with b.for_range(b.i64(n_nodes)) as i:
        nd = b.elem_addr(nodes, i)
        raw = b.num_cast(lcg_next(b, rng, 2000), FLOAT64)
        b.store(b.field_addr(nd, 0), b.fdiv(raw, b.f64(100.0)))
        b.store(b.field_addr(nd, 1), b.f64(0.0))
        b.store(b.field_addr(nd, 2), b.null(edge_t))
        draw = b.num_cast(lcg_next(b, rng, 100), FLOAT64)
        factor = b.fadd(b.f64(0.9), b.fdiv(draw, b.f64(1000.0)))
        b.store(b.elem_addr(damp, i), factor)

    # Ring + skip connectivity: i -> i+1 and i -> i+3.
    for skip, weight in ((1, 0.6), (3, 0.4)):
        with b.for_range(b.i64(n_nodes)) as i:
            src = b.elem_addr(nodes, i)
            j = b.srem(b.add(i, b.i64(skip)), b.i64(n_nodes))
            dst = b.elem_addr(nodes, j)
            b.call("addEdge", [src, dst, b.f64(weight)])

    cur = b.alloca(edge_p)
    with b.for_range(b.i64(steps)):
        # Phase 1: accumulate weighted neighbour averages into nxt_val.
        with b.for_range(b.i64(n_nodes)) as i:
            nd = b.elem_addr(nodes, i)
            acc = b.alloca(FLOAT64)
            wsum = b.alloca(FLOAT64)
            b.store(acc, b.f64(0.0))
            b.store(wsum, b.f64(0.0))
            b.store(cur, b.load(b.field_addr(nd, 2)))

            def more(bb):
                return bb.ne(bb.load(cur), bb.null(edge_t))

            with b.while_loop(more):
                e = b.load(cur)
                dst = b.load(b.field_addr(e, 0))
                w = b.load(b.field_addr(e, 1))
                v = b.load(b.field_addr(dst, 0))
                b.store(acc, b.fadd(b.load(acc), b.fmul(w, v)))
                b.store(wsum, b.fadd(b.load(wsum), w))
                b.store(cur, b.load(b.field_addr(e, 2)))

            mine = b.load(b.field_addr(nd, 0))
            total = b.load(wsum)
            positive = b.cmp("sgt", total, b.f64(0.0))
            nxt = b.alloca(FLOAT64)
            b.store(nxt, mine)
            with b.if_then(positive):
                avg = b.fdiv(b.load(acc), total)
                mixed = b.fadd(b.fmul(mine, b.f64(0.7)), b.fmul(avg, b.f64(0.3)))
                b.store(nxt, mixed)
            b.store(b.field_addr(nd, 1), b.load(nxt))
        # Phase 2: commit, applying per-node damping.
        with b.for_range(b.i64(n_nodes)) as i:
            nd = b.elem_addr(nodes, i)
            d = b.load(b.elem_addr(damp, i))
            b.store(
                b.field_addr(nd, 0), b.fmul(b.load(b.field_addr(nd, 1)), d)
            )

    # Energy = sum of node values; it must stay within the initial bounds
    # (the relaxation is a convex combination), else something corrupted it.
    energy = b.alloca(FLOAT64)
    b.store(energy, b.f64(0.0))
    with b.for_range(b.i64(n_nodes)) as i:
        v = b.load(b.field_addr(b.elem_addr(nodes, i), 0))
        b.store(energy, b.fadd(b.load(energy), v))
    e_val = b.load(energy)
    too_low = b.slt(e_val, b.f64(0.0))
    emit_app_error_if(b, too_low, 40)
    too_high = b.cmp("sgt", e_val, b.f64(20.0 * n_nodes))
    emit_app_error_if(b, too_high, 41)
    b.call("print_f64", [e_val])

    # Tear down the adjacency lists, then the mesh.
    with b.for_range(b.i64(n_nodes)) as i:
        nd = b.elem_addr(nodes, i)
        b.store(cur, b.load(b.field_addr(nd, 2)))

        def more2(bb):
            return bb.ne(bb.load(cur), bb.null(edge_t))

        with b.while_loop(more2):
            e = b.load(cur)
            b.store(cur, b.load(b.field_addr(e, 2)))
            b.free(e)
    b.free(damp)
    b.free(nodes)
    b.ret(b.i32(0))
    return mb.module
