"""``mcf`` analog: integer combinatorial optimization over linked structures.

Mirrors the memory character of SPEC CPU2000 ``mcf`` (§3.3): vehicle
scheduling by minimum-cost-flow — in practice a network of nodes and arcs
held in pointer-linked adjacency structures, traversed repeatedly by an
integer label-correcting algorithm.  Allocation-wise it is the most
pointer-dense of the four workloads.

The kernel builds a layered network with per-arc heap allocations (arcs
store *node pointers*), runs Bellman–Ford label correction to find shortest
path potentials, and prints the resulting total potential.
"""

from __future__ import annotations

from ..ir.module import Module
from ..ir.builder import ModuleBuilder
from ..ir.types import INT32, INT64, PointerType, StructType
from .support import (
    add_message_global,
    declare_common_externals,
    emit_app_error_if,
    lcg_init,
    lcg_next,
    print_message,
)

NAME = "mcf"

INFINITY = 1 << 40


def _network_types():
    """``struct Arc { Node* head; int64 cost; Arc* next; }`` and
    ``struct Node { int64 potential; Arc* first; }``."""
    node = StructType.opaque("mcf.Node")
    arc = StructType.opaque("mcf.Arc")
    arc.set_fields([PointerType(node), INT64, PointerType(arc)])
    node.set_fields([INT64, PointerType(arc)])
    return node, arc


def build(scale: int = 1) -> Module:
    """Build the mcf workload; ``scale`` multiplies the network size."""
    n_nodes = 12 * scale
    node_t, arc_t = _network_types()
    node_p = PointerType(node_t)
    arc_p = PointerType(arc_t)

    mb = ModuleBuilder(NAME)
    declare_common_externals(mb)
    add_message_global(mb, "mcf.banner", "mcf: scheduling fleet\n")

    # addArc(tail: Node*, head: Node*, cost: int64)
    aa, b = mb.define("addArc", INT32, [node_p, node_p, INT64], ["tail", "head", "cost"])
    arc = b.malloc(arc_t, hint="arc")
    b.store(b.field_addr(arc, 0), aa.params[1])
    b.store(b.field_addr(arc, 1), aa.params[2])
    first_slot = b.field_addr(aa.params[0], 1)
    b.store(b.field_addr(arc, 2), b.load(first_slot))
    b.store(first_slot, arc)
    b.ret(b.i32(0))

    fn, b = mb.define("main", INT32)
    print_message(mb, b, "mcf.banner")
    rng = lcg_init(b, 0x3CF)

    nodes = b.malloc(node_t, b.i64(n_nodes), hint="nodes")
    base_cost = b.malloc(INT64, b.i64(n_nodes), hint="basecost")
    with b.for_range(b.i64(n_nodes)) as i:
        nd = b.elem_addr(nodes, i)
        b.store(b.field_addr(nd, 0), b.i64(INFINITY))
        b.store(b.field_addr(nd, 1), b.null(arc_t))
        b.store(b.elem_addr(base_cost, i), b.add(lcg_next(b, rng, 20), b.i64(1)))
    src0 = b.elem_addr(nodes, b.i64(0))
    b.store(b.field_addr(src0, 0), b.i64(0))  # source potential

    # Arcs: forward chain plus two pseudo-random shortcuts per node.
    with b.for_range(b.i64(n_nodes - 1)) as i:
        tail = b.elem_addr(nodes, i)
        head = b.elem_addr(nodes, b.add(i, b.i64(1)))
        cost = b.load(b.elem_addr(base_cost, i))
        b.call("addArc", [tail, head, cost])
    with b.for_range(b.i64(n_nodes)) as i:
        tail = b.elem_addr(nodes, i)
        with b.for_range(b.i64(2)):
            j = lcg_next(b, rng, n_nodes)
            head = b.elem_addr(nodes, j)
            cost = b.add(lcg_next(b, rng, 40), b.i64(5))
            b.call("addArc", [tail, head, cost])

    # Bellman–Ford label correction: relax every arc, n_nodes - 1 rounds
    # (with early exit when a round changes nothing).
    changed = b.alloca(INT64)
    cur = b.alloca(arc_p)
    with b.for_range(b.i64(n_nodes - 1)):
        b.store(changed, b.i64(0))
        with b.for_range(b.i64(n_nodes)) as i:
            tail = b.elem_addr(nodes, i)
            pot = b.load(b.field_addr(tail, 0))
            reachable = b.slt(pot, b.i64(INFINITY))
            with b.if_then(reachable):
                b.store(cur, b.load(b.field_addr(tail, 1)))

                def more(bb):
                    return bb.ne(bb.load(cur), bb.null(arc_t))

                with b.while_loop(more):
                    a = b.load(cur)
                    head = b.load(b.field_addr(a, 0))
                    cost = b.load(b.field_addr(a, 1))
                    cand = b.add(pot, cost)
                    head_pot_slot = b.field_addr(head, 0)
                    better = b.slt(cand, b.load(head_pot_slot))
                    with b.if_then(better):
                        b.store(head_pot_slot, cand)
                        b.store(changed, b.i64(1))
                    b.store(cur, b.load(b.field_addr(a, 2)))

    # Result: total potential over reachable nodes; potentials must be
    # non-negative (costs are positive) or the network was corrupted.
    total = b.alloca(INT64)
    b.store(total, b.i64(0))
    with b.for_range(b.i64(n_nodes)) as i:
        pot = b.load(b.field_addr(b.elem_addr(nodes, i), 0))
        negative = b.slt(pot, b.i64(0))
        emit_app_error_if(b, negative, 50)
        reachable = b.slt(pot, b.i64(INFINITY))
        with b.if_then(reachable):
            b.store(total, b.add(b.load(total), pot))
    b.call("print_i64", [b.load(total)])

    # Tear down arc lists, then the node array.
    with b.for_range(b.i64(n_nodes)) as i:
        nd = b.elem_addr(nodes, i)
        b.store(cur, b.load(b.field_addr(nd, 1)))

        def more2(bb):
            return bb.ne(bb.load(cur), bb.null(arc_t))

        with b.while_loop(more2):
            a = b.load(cur)
            b.store(cur, b.load(b.field_addr(a, 2)))
            b.free(a)
    b.free(base_cost)
    b.free(nodes)
    b.ret(b.i32(0))
    return mb.module
