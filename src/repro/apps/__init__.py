"""Analog benchmark workloads (§3.3).

Four applications matching the memory character of the paper's SPEC CPU2000
selection: ``art`` (float, array-heavy), ``bzip2`` (integer, in-memory
buffers), ``equake`` (float, pointer-linked mesh), ``mcf`` (integer,
pointer-linked network).
"""

from functools import partial
from typing import Callable, Dict

from ..ir.module import Module
from . import art, bzip2, equake, mcf

#: name → build(scale) factory
APP_BUILDERS: Dict[str, Callable[[int], Module]] = {
    art.NAME: art.build,
    bzip2.NAME: bzip2.build,
    equake.NAME: equake.build,
    mcf.NAME: mcf.build,
}

APP_NAMES = tuple(APP_BUILDERS)

#: the paper's evaluation order
WORKLOAD_ORDER = ("art", "bzip2", "equake", "mcf")


def app_factory(name: str, scale: int = 1) -> Callable[[], Module]:
    """A zero-argument deterministic program factory for campaigns."""
    builder = APP_BUILDERS[name]
    return partial(builder, scale)


__all__ = [
    "APP_BUILDERS",
    "APP_NAMES",
    "WORKLOAD_ORDER",
    "app_factory",
    "art",
    "bzip2",
    "equake",
    "mcf",
]
