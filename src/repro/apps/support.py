"""Shared IR-level helpers for the analog benchmark applications.

The workloads generate their own input data *inside the IR* with a
deterministic 64-bit LCG, so application and replica behaviour is
reproducible and the golden output is stable across runs and machines.
"""

from __future__ import annotations

from typing import Optional

from ..ir.builder import IRBuilder, ModuleBuilder
from ..ir.types import FLOAT64, INT64, VOID, VOID_PTR, INT32, INT8, ArrayType
from ..ir.values import ConstInt, Register, Value

LCG_MUL = 6364136223846793005
LCG_ADD = 1442695040888963407


def declare_common_externals(mb: ModuleBuilder) -> None:
    """Externals every app uses (printing and error signalling)."""
    mb.declare_external("print_i64", VOID, [INT64])
    mb.declare_external("print_f64", VOID, [FLOAT64])
    mb.declare_external("print_str", VOID, [VOID_PTR])
    mb.declare_external("app_error", VOID, [INT32])


def lcg_init(b: IRBuilder, seed: int) -> Register:
    """Allocate and seed an LCG state slot (stack memory, replicated)."""
    slot = b.alloca(INT64, hint="lcg")
    b.store(slot, b.i64(seed))
    return slot


def lcg_next(b: IRBuilder, slot: Register, bound: Optional[int] = None) -> Register:
    """Advance the LCG; returns a non-negative value (mod ``bound`` if given)."""
    state = b.load(slot, hint="lcg")
    nxt = b.add(b.mul(state, b.i64(LCG_MUL)), b.i64(LCG_ADD))
    b.store(slot, nxt)
    val = b.binop("shr", nxt, b.i64(17), hint="lcg")
    val = b.binop("and", val, b.i64(0x7FFF_FFFF), hint="lcg")
    if bound is not None:
        val = b.srem(val, b.i64(bound))
    return val


def emit_app_error_if(b: IRBuilder, cond: Value, code: int) -> None:
    """``if (cond) app_error(code)`` — an application-level sanity check.

    These checks are the analog of the benchmarks' own error messages and
    error-identifying exits; when they fire, the evaluation counts the run
    as *naturally detected* (§3.6).
    """
    with b.if_then(cond):
        b.call("app_error", [ConstInt(INT32, code)])


def print_message(mb: ModuleBuilder, b: IRBuilder, global_name: str) -> None:
    """Print a NUL-terminated global byte-array message via ``print_str``."""
    g = mb.module.globals[global_name]
    b.call("print_str", [g.ref()])


def add_message_global(mb: ModuleBuilder, name: str, text: str) -> None:
    data = text.encode("latin-1") + b"\x00"
    mb.add_global(name, ArrayType(INT8, len(data)), bytes(data))
