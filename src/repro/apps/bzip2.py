"""``bzip2`` analog: integer, in-memory compression round trip.

Mirrors the memory character of SPEC CPU2000 ``bzip2`` as modified by SPEC
(§3.3): all compression and decompression happens entirely in memory, in
flat byte buffers, integer-only, with few pointers stored to memory.

The kernel is run-length encoding over a run-structured pseudo-random
buffer, a decompression pass, a ``memcpy`` of the recovered data (exercising
the external-code wrappers of §2.8), and a full round-trip verification — a
mismatch is application-detected (error exit), giving the workload a strong
*natural detection* path, just as real bzip2 has with its CRC checks.
"""

from __future__ import annotations

from ..ir.module import Module
from ..ir.builder import ModuleBuilder
from ..ir.types import INT8, INT32, INT64, VOID, VOID_PTR
from .support import (
    add_message_global,
    declare_common_externals,
    emit_app_error_if,
    lcg_init,
    lcg_next,
    print_message,
)

NAME = "bzip2"

#: sentinel byte terminating the source buffer (never appears in data)
SENTINEL = 255


def build(scale: int = 1) -> Module:
    """Build the bzip2 workload; ``scale`` multiplies the buffer size."""
    n = 96 * scale
    mb = ModuleBuilder(NAME)
    declare_common_externals(mb)
    mb.declare_external("memcpy", VOID, [VOID_PTR, VOID_PTR, INT64])
    add_message_global(mb, "bzip2.banner", "bzip2: compressing\n")

    fn, b = mb.define("main", INT32)
    print_message(mb, b, "bzip2.banner")
    rng = lcg_init(b, 0xB212)

    # +1 for the run-terminating sentinel.
    src = b.malloc(INT8, b.i64(n + 1), hint="src")
    comp = b.malloc(INT8, b.i64(2 * n + 16), hint="comp")
    out = b.malloc(INT8, b.i64(n), hint="out")
    final = b.malloc(INT8, b.i64(n), hint="final")

    # Fill the source with runs: run lengths 1..8, byte values 0..15.
    pos = b.alloca(INT64)
    b.store(pos, b.i64(0))
    with b.while_loop(lambda bb: bb.slt(bb.load(pos), bb.i64(n))):
        run = b.add(lcg_next(b, rng, 8), b.i64(1))
        byte8 = b.num_cast(lcg_next(b, rng, 16), INT8)
        with b.for_range(run):
            p = b.load(pos)
            in_range = b.slt(p, b.i64(n))
            with b.if_then(in_range):
                b.store(b.elem_addr(src, p), byte8)
                b.store(pos, b.add(p, b.i64(1)))
    b.store(b.elem_addr(src, b.i64(n)), b.i8(SENTINEL))

    # Compress into (count, value) pairs.
    clen = b.alloca(INT64)  # number of pairs
    b.store(clen, b.i64(0))
    i_slot = b.alloca(INT64)
    b.store(i_slot, b.i64(0))
    cnt = b.alloca(INT64)
    with b.while_loop(lambda bb: bb.slt(bb.load(i_slot), bb.i64(n))):
        i = b.load(i_slot)
        cur = b.load(b.elem_addr(src, i))
        b.store(cnt, b.i64(1))

        def run_cond(bb):
            j = bb.add(bb.load(i_slot), bb.load(cnt))
            nxt = bb.load(bb.elem_addr(src, j))  # sentinel keeps this in-bounds
            same = bb.eq(nxt, cur)
            short = bb.slt(bb.load(cnt), bb.i64(127))
            return bb.binop("and", same, short)

        with b.while_loop(run_cond):
            b.store(cnt, b.add(b.load(cnt), b.i64(1)))

        pair = b.load(clen)
        off = b.mul(pair, b.i64(2))
        b.store(b.elem_addr(comp, off), b.num_cast(b.load(cnt), INT8))
        b.store(
            b.elem_addr(comp, b.add(off, b.i64(1))), cur
        )
        b.store(clen, b.add(pair, b.i64(1)))
        b.store(i_slot, b.add(i, b.load(cnt)))

    # Decompress.
    k_slot = b.alloca(INT64)
    b.store(k_slot, b.i64(0))
    with b.for_range(b.load(clen)) as t:
        off = b.mul(t, b.i64(2))
        rl = b.num_cast(b.load(b.elem_addr(comp, off)), INT64)
        val = b.load(b.elem_addr(comp, b.add(off, b.i64(1))))
        with b.for_range(rl):
            k = b.load(k_slot)
            b.store(b.elem_addr(out, k), val)
            b.store(k_slot, b.add(k, b.i64(1)))

    # Recovered data must be exactly n bytes.
    wrong_len = b.ne(b.load(k_slot), b.i64(n))
    emit_app_error_if(b, wrong_len, 30)

    # Copy through memcpy (external code) and verify the round trip.
    b.call("memcpy", [final, out, b.i64(n)])
    with b.for_range(b.i64(n)) as i:
        a = b.load(b.elem_addr(final, i))
        c = b.load(b.elem_addr(src, i))
        differs = b.ne(a, c)
        emit_app_error_if(b, differs, 31)

    # Output: pair count and a positional checksum of the compressed stream.
    b.call("print_i64", [b.load(clen)])
    check = b.alloca(INT64)
    b.store(check, b.i64(0))
    with b.for_range(b.mul(b.load(clen), b.i64(2))) as i:
        v = b.num_cast(b.load(b.elem_addr(comp, i)), INT64)
        mixed = b.add(b.mul(b.load(check), b.i64(33)), v)
        b.store(check, b.binop("and", mixed, b.i64(0xFFFF_FFFF)))
    b.call("print_i64", [b.load(check)])

    b.free(src)
    b.free(comp)
    b.free(out)
    b.free(final)
    b.ret(b.i32(0))
    return mb.module
