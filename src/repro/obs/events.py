"""Typed trace events emitted by the observability layer.

Every event is a small frozen dataclass with a ``KIND`` tag and a
``to_dict`` serialization; the JSONL tracer writes one event per line as
``{"ev": KIND, "run": <run id>, ...}``.  Cycle stamps (``cyc``) use the
machine's deterministic simulated-cycle clock, so anything the evaluation
derives from cycles — detection latency (T2D) above all — is recomputable
from a trace alone (see :mod:`repro.obs.replay`).

Event vocabulary (the schema documented in DESIGN.md §7):

=================  ==========================================================
kind               meaning
=================  ==========================================================
``run-start``      one experiment begins; carries its identity (workload,
                   variant, site, run/seed) and the golden output so per-run
                   classification needs nothing outside the trace
``run-end``        the experiment finished: exit status, exit code, final
                   cycle/instruction counts, output, optional counters
``fault``          first execution of an injected instruction (successful
                   fault injection, §3.6), stamped with its cycle
``compare``        one DPMR load check ran; ``failed`` is True when the
                   application and replica values differed
``detect``         the ``dpmr_detect`` intrinsic fired (detection committed)
``replica``        replica heap sync: a ``dpmr_replica_malloc``/``free``
``heap``           application heap churn: one malloc/free with size
=================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

RUN_START = "run-start"
RUN_END = "run-end"
FAULT = "fault"
COMPARE = "compare"
DETECT = "detect"
REPLICA = "replica"
HEAP = "heap"

#: Every event kind, in schema order (``DPMR_TRACE_EVENTS`` validates
#: against this).
EVENT_KINDS = (RUN_START, RUN_END, FAULT, COMPARE, DETECT, REPLICA, HEAP)


@dataclass(frozen=True)
class RunStart:
    """One experiment begins."""

    run_id: str
    workload: str
    variant: str
    site: Optional[str]
    run: int
    seed: int
    golden_output: str

    KIND = RUN_START

    def to_dict(self) -> Dict:
        return {
            "ev": self.KIND,
            "run": self.run_id,
            "workload": self.workload,
            "variant": self.variant,
            "site": self.site,
            "seq": self.run,
            "seed": self.seed,
            "golden": self.golden_output,
        }


@dataclass(frozen=True)
class RunEnd:
    """The experiment finished (normally or not)."""

    run_id: str
    status: str
    exit_code: int
    cycles: int
    instructions: int
    output: str
    detail: str = ""
    counters: Optional[Dict[str, int]] = None

    KIND = RUN_END

    def to_dict(self) -> Dict:
        d = {
            "ev": self.KIND,
            "run": self.run_id,
            "status": self.status,
            "exit_code": self.exit_code,
            "cyc": self.cycles,
            "instructions": self.instructions,
            "output": self.output,
            "detail": self.detail,
        }
        if self.counters is not None:
            d["counters"] = {k: self.counters[k] for k in sorted(self.counters)}
        return d


@dataclass(frozen=True)
class FaultActivation:
    """First execution of an instruction carrying a fault-site id."""

    run_id: str
    site: str
    cycle: int

    KIND = FAULT

    def to_dict(self) -> Dict:
        return {"ev": self.KIND, "run": self.run_id, "site": self.site, "cyc": self.cycle}


@dataclass(frozen=True)
class DpmrCompare:
    """One DPMR state comparison (load check) was performed."""

    run_id: str
    cycle: int
    failed: bool

    KIND = COMPARE

    def to_dict(self) -> Dict:
        return {"ev": self.KIND, "run": self.run_id, "cyc": self.cycle, "failed": self.failed}


@dataclass(frozen=True)
class DpmrDetection:
    """The ``dpmr_detect`` intrinsic committed a detection."""

    run_id: str
    code: int
    cycle: int

    KIND = DETECT

    def to_dict(self) -> Dict:
        return {"ev": self.KIND, "run": self.run_id, "code": self.code, "cyc": self.cycle}


@dataclass(frozen=True)
class ReplicaSync:
    """Replica heap kept in sync with the application heap."""

    run_id: str
    op: str  # "malloc" | "free"
    address: int
    size: int  # 0 for frees
    cycle: int

    KIND = REPLICA

    def to_dict(self) -> Dict:
        return {
            "ev": self.KIND,
            "run": self.run_id,
            "op": self.op,
            "addr": self.address,
            "size": self.size,
            "cyc": self.cycle,
        }


@dataclass(frozen=True)
class HeapEvent:
    """Application heap alloc/free."""

    run_id: str
    op: str  # "malloc" | "free"
    address: int
    size: int
    cycle: int

    KIND = HEAP

    def to_dict(self) -> Dict:
        return {
            "ev": self.KIND,
            "run": self.run_id,
            "op": self.op,
            "addr": self.address,
            "size": self.size,
            "cyc": self.cycle,
        }
