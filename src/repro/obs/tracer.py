"""Tracer protocol, the null implementation, and the JSONL backend.

The machine, DPMR runtime, and campaign executor all talk to a
:class:`Tracer` — never to a file — so tracing backends are swappable and
the *disabled* path stays free: a machine constructed without a tracer (or
with :class:`NullTracer`) executes the exact pre-observability interpreter
loop; instrumentation is selected once at machine construction, not checked
per instruction (see ``Machine._exec`` in :mod:`repro.machine.interpreter`).

``JsonlTracer`` writes one event per line (``DPMR_TRACE=path`` enables it
through :class:`repro.eval.config.ExecConfig`).  It is fork-aware: the
campaign executor forks workers after the tracer exists, so the tracer
reopens its file (append mode) whenever it notices a new pid, and flushes
at every run boundary so a run's events land in one write.  Every line
carries the run id, so readers never rely on line order across processes;
for strictly ordered traces run the campaign serially (``jobs=1``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional, Set, TextIO

from . import events as ev


class Tracer:
    """Protocol (and no-op base) for trace backends.

    Subclasses override :meth:`_write` plus, optionally, :meth:`wants` to
    narrow which event kinds the instrumentation bothers generating —
    ``wants`` is consulted at *decode* time, so unwanted events cost nothing
    at execution time.
    """

    #: False only for the null tracer: lets consumers fast-path it away.
    enabled = True

    def __init__(self) -> None:
        self._run: Optional[str] = None

    # -- gating --------------------------------------------------------------

    def wants(self, kind: str) -> bool:
        return True

    # -- typed event emission -----------------------------------------------

    def run_start(
        self,
        run_id: str,
        workload: str,
        variant: str,
        site: Optional[str],
        run: int,
        seed: int,
        golden_output: str = "",
    ) -> None:
        self._run = run_id
        if self.wants(ev.RUN_START):
            self._write(
                ev.RunStart(run_id, workload, variant, site, run, seed, golden_output)
            )

    def run_end(
        self,
        status: str,
        exit_code: int,
        cycles: int,
        instructions: int,
        output: str,
        detail: str = "",
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        if self.wants(ev.RUN_END):
            self._write(
                ev.RunEnd(
                    self._run or "?",
                    status,
                    exit_code,
                    cycles,
                    instructions,
                    output,
                    detail,
                    counters,
                )
            )
        self._run = None
        self.flush()

    def fault_activation(self, site: str, cycle: int) -> None:
        self._write(ev.FaultActivation(self._run or "?", site, cycle))

    def dpmr_compare(self, cycle: int, failed: bool) -> None:
        self._write(ev.DpmrCompare(self._run or "?", cycle, failed))

    def dpmr_detection(self, code: int, cycle: int) -> None:
        self._write(ev.DpmrDetection(self._run or "?", code, cycle))

    def replica_sync(self, op: str, address: int, size: int, cycle: int) -> None:
        self._write(ev.ReplicaSync(self._run or "?", op, address, size, cycle))

    def heap_event(self, op: str, address: int, size: int, cycle: int) -> None:
        self._write(ev.HeapEvent(self._run or "?", op, address, size, cycle))

    # -- backend hooks --------------------------------------------------------

    def _write(self, event) -> None:  # pragma: no cover - abstract-ish
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTracer(Tracer):
    """The explicit no-op tracer: never wants anything, never writes.

    A machine given a ``NullTracer`` (or ``tracer=None``) stays on the
    uninstrumented interpreter fast path — this class exists so callers can
    pass "a tracer" unconditionally.
    """

    enabled = False

    def wants(self, kind: str) -> bool:
        return False

    def _write(self, event) -> None:
        pass


class CollectingTracer(Tracer):
    """In-memory backend (tests, ad-hoc inspection): events as dicts."""

    def __init__(self, events: Optional[Iterable[str]] = None) -> None:
        super().__init__()
        self.events: list = []
        self._kinds: Optional[Set[str]] = None if events is None else set(events)

    def wants(self, kind: str) -> bool:
        return self._kinds is None or kind in self._kinds

    def _write(self, event) -> None:
        self.events.append(event.to_dict())


class JsonlTracer(Tracer):
    """Append-only JSON-lines backend (the ``DPMR_TRACE=path`` tracer)."""

    def __init__(
        self,
        path: str,
        events: Optional[Iterable[str]] = None,
        flush_every: int = 4096,
    ) -> None:
        super().__init__()
        self.path = os.fspath(path)
        self._kinds: Optional[Set[str]] = None if events is None else set(events)
        if self._kinds is not None:
            unknown = self._kinds - set(ev.EVENT_KINDS)
            if unknown:
                raise ValueError(
                    f"unknown trace event kind(s) {sorted(unknown)}; "
                    f"valid: {', '.join(ev.EVENT_KINDS)}"
                )
        self._flush_every = flush_every
        self._buf: list = []
        self._fh: Optional[TextIO] = None
        self._pid: Optional[int] = None

    def wants(self, kind: str) -> bool:
        return self._kinds is None or kind in self._kinds

    def _write(self, event) -> None:
        self._buf.append(json.dumps(event.to_dict(), separators=(",", ":")))
        if len(self._buf) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        if not self._buf:
            return
        pid = os.getpid()
        if self._fh is None or pid != self._pid:
            # Forked worker (or first write): (re)open in append mode so all
            # processes of one campaign share the file at line granularity.
            self._fh = open(self.path, "a", encoding="utf-8")
            self._pid = pid
        self._fh.write("\n".join(self._buf) + "\n")
        self._fh.flush()
        self._buf.clear()

    def close(self) -> None:
        self.flush()
        if self._fh is not None and self._pid == os.getpid():
            self._fh.close()
        self._fh = None


def real_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Normalize "no tracing": None and disabled tracers both become None."""
    if tracer is None or not tracer.enabled:
        return None
    return tracer
