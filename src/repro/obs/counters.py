"""Lightweight machine counters: opcode classes and DPMR-specific roles.

Counters are a plain ``dict[str, int]`` living on the machine (and copied
onto :class:`~repro.machine.process.ProcessResult`): no classes in the hot
loop, one dict increment per counted occurrence, and *nothing at all* when
counters are disabled — the interpreter only installs counting handlers
when a machine is constructed with observability on.

Two classification layers:

* **opcode class** — every executed instruction increments exactly one
  ``op.<class>`` counter (:data:`OPCODE_CLASSES`);
* **DPMR role** — instructions *emitted by the DPMR transformation* are
  recognized at block-decode time by the transform's register-naming
  conventions (replica registers are ``<name>_r``; transform-internal
  temporaries use ``dpmr.*`` hints, comparison results specifically
  ``dpmr.df``) and additionally bump ``dpmr.replica_load``,
  ``dpmr.replica_store``, ``dpmr.compare`` / ``dpmr.compare_failed``.
  Role detection only applies to machines running with a DPMR runtime, so
  a standard application register that happens to end in ``_r`` is never
  misclassified.

The heap/replica churn counters (``heap.*``, ``dpmr.replica_malloc`` /
``dpmr.replica_free``) are bumped by the machine's allocator entry points
and the DPMR runtime rather than by instruction dispatch.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..ir import instructions as ins

#: instruction type → ``op.<class>`` counter key.
OPCODE_CLASSES = {
    ins.Load: "op.load",
    ins.Store: "op.store",
    ins.Call: "op.call",
    ins.BinOp: "op.arith",
    ins.Cmp: "op.cmp",
    ins.Alloca: "op.alloca",
    ins.Malloc: "op.malloc",
    ins.Free: "op.free",
    ins.FieldAddr: "op.addr",
    ins.ElemAddr: "op.addr",
    ins.PtrCast: "op.cast",
    ins.PtrToInt: "op.cast",
    ins.IntToPtr: "op.cast",
    ins.NumCast: "op.cast",
    ins.FuncAddr: "op.cast",
    ins.Branch: "op.branch",
    ins.Jump: "op.jump",
    ins.Ret: "op.ret",
    ins.Unreachable: "op.unreachable",
}

#: DPMR-role counter keys (see module docstring).
REPLICA_LOAD = "dpmr.replica_load"
REPLICA_STORE = "dpmr.replica_store"
COMPARE = "dpmr.compare"
COMPARE_FAILED = "dpmr.compare_failed"
REPLICA_MALLOC = "dpmr.replica_malloc"
REPLICA_FREE = "dpmr.replica_free"

HEAP_ALLOC = "heap.alloc"
HEAP_FREE = "heap.free"
HEAP_ALLOC_BYTES = "heap.alloc_bytes"
HEAP_FREE_BYTES = "heap.free_bytes"


def new_counters() -> Dict[str, int]:
    """A fresh counter dict (plain dict; missing keys mean zero)."""
    return {}


def bump(counters: Dict[str, int], key: str, by: int = 1) -> None:
    counters[key] = counters.get(key, 0) + by


def _is_dpmr_name(name: str) -> bool:
    return name.endswith("_r") or name.startswith("dpmr.")


def is_replica_load(inst) -> bool:
    """A load emitted by the transform to read replica (or shadow) memory."""
    if type(inst) is not ins.Load:
        return False
    r = inst.result
    return r is not None and _is_dpmr_name(r.name)


def is_replica_store(inst) -> bool:
    """A store emitted by the transform into replica (or shadow) memory."""
    if type(inst) is not ins.Store:
        return False
    p = inst.pointer
    name = getattr(p, "name", None)
    return name is not None and _is_dpmr_name(name)


def is_dpmr_compare(inst) -> bool:
    """The ``ne`` comparison of a DPMR load check (hint ``dpmr.df``)."""
    if type(inst) is not ins.Cmp:
        return False
    r = inst.result
    return r is not None and r.name.startswith("dpmr.df")


def merge_counters(
    totals: Dict[str, int], counters: Optional[Dict[str, int]]
) -> Dict[str, int]:
    """Accumulate one run's counters into ``totals`` (None is a no-op)."""
    if counters:
        for k, v in counters.items():
            totals[k] = totals.get(k, 0) + v
    return totals


def total_counters(counter_dicts: Iterable[Optional[Dict[str, int]]]) -> Dict[str, int]:
    """Sum many per-run counter dicts into campaign-level totals."""
    totals: Dict[str, int] = {}
    for c in counter_dicts:
        merge_counters(totals, c)
    return totals
