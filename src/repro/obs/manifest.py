"""Machine-readable run manifests for campaigns and clean runs.

A :class:`RunManifest` is the campaign executor's flight recorder: every
decision that used to be silent (worker count chosen and *why*, serial
fallback reason, incremental cache behaviour per job) plus campaign-level
aggregates (record counts by exit status, machine counter totals).  It is
returned alongside the records by the :func:`repro.eval.run` facade and —
when a manifest or trace path is configured — persisted as JSON next to
the records so a benchmark run is auditable after the fact.

The manifest is deliberately plain data (dicts/lists/scalars only below
the dataclass surface) so ``to_dict()`` round-trips through JSON.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: Manifest schema version; bump on incompatible shape changes.
MANIFEST_SCHEMA = 5


@dataclass
class QuarantineRecord:
    """One fault site excluded from a campaign after exhausting retries.

    Quarantine is the executor's graceful-degradation escape hatch: a site
    whose experiments keep failing at the *infrastructure* level (worker
    death, per-experiment timeout, build machinery exceptions) is dropped
    from the result set instead of killing the whole campaign, and the
    decision is recorded here so no degradation is ever silent.
    """

    workload: str
    kind: str
    site: str
    attempts: int
    reason: str


@dataclass
class ShardManifest:
    """Per-shard provenance of one sharded campaign (schema 5).

    One entry per worker node that executed at least one lease.  The
    coordinator aggregates these from the per-lease manifests the shard
    workers return, so a merged manifest records *which* shard ran how
    much of the tuple space — the audit trail behind the merge-identity
    guarantee.
    """

    shard: int
    #: tuple-batch leases this shard completed.
    leases: int = 0
    #: experiment records this shard produced (store hits it served count
    #: toward its records, exactly like a single-node run's ``n_records``).
    n_records: int = 0
    #: entries this shard wrote into its shard-local store.
    store_writes: int = 0
    #: inner-pool retries within this shard's leases.
    retries: int = 0
    #: summed wall-clock of this shard's leases (overlaps across shards).
    wall_s: float = 0.0


@dataclass
class JobManifest:
    """Per-(workload, fault-kind) telemetry of one campaign job."""

    workload: str
    kind: str
    n_sites: int
    n_variants: int
    n_seeds: int
    sites: List[str] = field(default_factory=list)
    #: function-level transform cache behaviour (all-zero when the job ran
    #: on the full-rebuild path).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_full_rebuilds: int = 0
    #: finished (site, variant) builds retained on the job's build state.
    builds_cached: int = 0


@dataclass
class RunManifest:
    """Everything one executor invocation decided and observed."""

    mode: str  # "campaign" | "clean" | "service"
    schema: int = MANIFEST_SCHEMA
    # -- executor decisions -------------------------------------------------
    requested_jobs: int = 1
    effective_jobs: int = 1
    worker_reason: str = ""
    serial_fallback: Optional[str] = None  # set when parallelism was refused
    incremental: bool = True
    # -- configuration snapshot --------------------------------------------
    trace_path: Optional[str] = None
    counters_enabled: bool = False
    #: execution engine chosen for bare runs: "interp" (reference
    #: interpreter) or "compiled" (repro.machine.compile); observability
    #: always forces the instrumented interpreter regardless.
    engine: str = "interp"
    #: IR→Python codegen cache behaviour (coordinator process view; both
    #: stay 0 under the interpreter engine).
    codegen_hits: int = 0
    codegen_misses: int = 0
    timeout_factor: Optional[int] = None
    # -- workload shape -----------------------------------------------------
    n_jobs: int = 0
    n_items: int = 0
    n_records: int = 0
    jobs: List[JobManifest] = field(default_factory=list)
    # -- resilience ---------------------------------------------------------
    #: persistent result store in use (None: store disabled).
    store_path: Optional[str] = None
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0
    #: experiment tuples this request shared with concurrent requests — they
    #: executed once (or were in flight / already finished in-memory) and the
    #: record was fanned out.  Only the campaign service (mode="service")
    #: sets this; batch runs leave it 0.
    shared_hits: int = 0
    #: corrupt/truncated store entries discarded and recomputed.
    store_corrupt: int = 0
    #: experiment attempts repeated after an infrastructure failure.
    retries: int = 0
    #: supervised workers respawned after dying or being killed.
    worker_restarts: int = 0
    #: experiments killed for exceeding the per-experiment wall budget.
    exp_timeouts: int = 0
    #: sites excluded after exhausting retries (never silent).
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    # -- shard fabric (schema 5; all-zero/empty for single-node runs) -------
    #: worker nodes the campaign was partitioned across (0: not sharded).
    n_shards: int = 0
    #: tuple-batch leases granted by the coordinator (first grants only).
    lease_grants: int = 0
    #: leases re-granted after a shard worker died or was killed mid-lease.
    lease_reassignments: int = 0
    #: leases revoked because a shard exceeded the lease wall budget.
    lease_expiries: int = 0
    #: shard-local store entries synced into the coordinator store.
    store_synced: int = 0
    #: per-shard provenance (one entry per worker node that ran a lease).
    shards: List[ShardManifest] = field(default_factory=list)
    # -- outcome aggregates -------------------------------------------------
    status_counts: Dict[str, int] = field(default_factory=dict)
    counter_totals: Dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    # -- provenance ---------------------------------------------------------
    python: str = field(default_factory=platform.python_version)
    cpu_count: int = field(default_factory=lambda: os.cpu_count() or 1)
    #: where this manifest was persisted, if anywhere.
    path: Optional[str] = None

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        d = asdict(self)
        d["status_counts"] = {k: self.status_counts[k] for k in sorted(self.status_counts)}
        d["counter_totals"] = {k: self.counter_totals[k] for k in sorted(self.counter_totals)}
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def write(self, path: str) -> str:
        """Persist as JSON; records and returns the path."""
        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        self.path = path
        return path

    @classmethod
    def from_dict(cls, d: Dict) -> "RunManifest":
        jobs = [JobManifest(**j) for j in d.get("jobs", ())]
        quarantined = [QuarantineRecord(**q) for q in d.get("quarantined", ())]
        shards = [ShardManifest(**s) for s in d.get("shards", ())]
        fields = {
            k: v
            for k, v in d.items()
            if k not in ("jobs", "quarantined", "shards")
        }
        return cls(jobs=jobs, quarantined=quarantined, shards=shards, **fields)

    @classmethod
    def read(cls, path: str) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
