"""Machine-readable run manifests for campaigns and clean runs.

A :class:`RunManifest` is the campaign executor's flight recorder: every
decision that used to be silent (worker count chosen and *why*, serial
fallback reason, incremental cache behaviour per job) plus campaign-level
aggregates (record counts by exit status, machine counter totals).  It is
returned alongside the records by the :func:`repro.eval.run` facade and —
when a manifest or trace path is configured — persisted as JSON next to
the records so a benchmark run is auditable after the fact.

The manifest is deliberately plain data (dicts/lists/scalars only below
the dataclass surface) so ``to_dict()`` round-trips through JSON.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: Manifest schema version; bump on incompatible shape changes.
MANIFEST_SCHEMA = 1


@dataclass
class JobManifest:
    """Per-(workload, fault-kind) telemetry of one campaign job."""

    workload: str
    kind: str
    n_sites: int
    n_variants: int
    n_seeds: int
    sites: List[str] = field(default_factory=list)
    #: function-level transform cache behaviour (all-zero when the job ran
    #: on the full-rebuild path).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_full_rebuilds: int = 0
    #: finished (site, variant) builds retained on the job's build state.
    builds_cached: int = 0


@dataclass
class RunManifest:
    """Everything one executor invocation decided and observed."""

    mode: str  # "campaign" | "clean"
    schema: int = MANIFEST_SCHEMA
    # -- executor decisions -------------------------------------------------
    requested_jobs: int = 1
    effective_jobs: int = 1
    worker_reason: str = ""
    serial_fallback: Optional[str] = None  # set when parallelism was refused
    incremental: bool = True
    # -- configuration snapshot --------------------------------------------
    trace_path: Optional[str] = None
    counters_enabled: bool = False
    timeout_factor: Optional[int] = None
    # -- workload shape -----------------------------------------------------
    n_jobs: int = 0
    n_items: int = 0
    n_records: int = 0
    jobs: List[JobManifest] = field(default_factory=list)
    # -- outcome aggregates -------------------------------------------------
    status_counts: Dict[str, int] = field(default_factory=dict)
    counter_totals: Dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    # -- provenance ---------------------------------------------------------
    python: str = field(default_factory=platform.python_version)
    cpu_count: int = field(default_factory=lambda: os.cpu_count() or 1)
    #: where this manifest was persisted, if anywhere.
    path: Optional[str] = None

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        d = asdict(self)
        d["status_counts"] = {k: self.status_counts[k] for k in sorted(self.status_counts)}
        d["counter_totals"] = {k: self.counter_totals[k] for k in sorted(self.counter_totals)}
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def write(self, path: str) -> str:
        """Persist as JSON; records and returns the path."""
        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        self.path = path
        return path

    @classmethod
    def from_dict(cls, d: Dict) -> "RunManifest":
        jobs = [JobManifest(**j) for j in d.get("jobs", ())]
        fields = {k: v for k, v in d.items() if k != "jobs"}
        return cls(jobs=jobs, **fields)

    @classmethod
    def read(cls, path: str) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
