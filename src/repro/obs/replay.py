"""Recompute evaluation quantities from a JSONL trace alone.

The point of the trace schema (DESIGN.md §7) is that detection latency is
*auditable*: given only ``run-start`` / ``fault`` / ``run-end`` events, the
per-run classification (SF/CO/Ndet/Ddet) and T2D of §3.6 are recomputable
bit-identically to what :class:`repro.eval.experiment.ExperimentRecord`
derives from the in-process :class:`ProcessResult` — the test suite asserts
exact equality over full fault campaigns.

Events may interleave across runs (parallel workers share one file); every
event carries its run id, so replay groups by id rather than by bracketing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from . import events as ev


def read_events(path: str) -> Iterator[dict]:
    """Iterate the events of a JSONL trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


@dataclass
class TracedRun:
    """One experiment reassembled from its trace events."""

    run_id: str
    workload: str = ""
    variant: str = ""
    site: Optional[str] = None
    run: int = 0
    seed: int = 0
    golden_output: str = ""
    status: Optional[str] = None
    exit_code: int = 0
    cycles: int = 0
    instructions: int = 0
    output: str = ""
    detail: str = ""
    counters: Optional[Dict[str, int]] = None
    #: site id → cycle of first activation (mirrors ``fault_activations``).
    activations: Dict[str, int] = field(default_factory=dict)
    compares: int = 0
    compare_failures: int = 0

    # -- §3.6 classification, recomputed from trace data alone ------------

    @property
    def sf(self) -> bool:
        return self.site is not None and self.site in self.activations

    @property
    def co(self) -> bool:
        return (
            self.status == "normal"
            and self.exit_code == 0
            and self.output == self.golden_output
        )

    @property
    def ddet(self) -> bool:
        return self.status == "dpmr-detected"

    @property
    def ndet(self) -> bool:
        if self.status in ("crash", "app-error"):
            return True
        return self.status == "normal" and self.exit_code != 0

    @property
    def detection_time(self) -> Optional[int]:
        if self.ddet or self.ndet:
            return self.cycles
        return None

    @property
    def t2d(self) -> Optional[int]:
        """Eq. 3.4, from the trace: detection cycle minus activation cycle."""
        if self.co or not self.sf:
            return None
        d = self.detection_time
        a = self.activations.get(self.site)
        if d is None or a is None:
            return None
        return max(d - a, 0)


def runs_from_events(events: Iterable[dict]) -> Dict[str, TracedRun]:
    """Group a trace's events into per-run :class:`TracedRun` objects."""
    runs: Dict[str, TracedRun] = {}

    def run(run_id: str) -> TracedRun:
        if run_id not in runs:
            runs[run_id] = TracedRun(run_id)
        return runs[run_id]

    for e in events:
        kind = e.get("ev")
        r = run(e.get("run", "?"))
        if kind == ev.RUN_START:
            r.workload = e.get("workload", "")
            r.variant = e.get("variant", "")
            r.site = e.get("site")
            r.run = e.get("seq", 0)
            r.seed = e.get("seed", 0)
            r.golden_output = e.get("golden", "")
        elif kind == ev.RUN_END:
            r.status = e.get("status")
            r.exit_code = e.get("exit_code", 0)
            r.cycles = e.get("cyc", 0)
            r.instructions = e.get("instructions", 0)
            r.output = e.get("output", "")
            r.detail = e.get("detail", "")
            r.counters = e.get("counters")
        elif kind == ev.FAULT:
            site = e["site"]
            if site not in r.activations:
                r.activations[site] = e["cyc"]
        elif kind == ev.COMPARE:
            r.compares += 1
            if e.get("failed"):
                r.compare_failures += 1
    return runs


def load_runs(path: str) -> Dict[str, TracedRun]:
    """Read a JSONL trace file into per-run objects."""
    return runs_from_events(read_events(path))


def t2d_by_run(path: str) -> Dict[str, Optional[int]]:
    """run id → T2D (cycles), recomputed from the trace alone."""
    return {rid: r.t2d for rid, r in load_runs(path).items()}
