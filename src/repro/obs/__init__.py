"""Structured observability: tracing, counters, run manifests.

Zero-cost when disabled — a machine without a tracer and with counters off
runs the identical pre-observability interpreter loop (guarded by the
``benchmarks/perf_interp.py --smoke`` throughput gate).  When enabled:

* :class:`Tracer` backends receive typed events (run boundaries, fault
  activations, DPMR comparisons, replica syncs, heap churn) with cycle
  stamps; :class:`JsonlTracer` persists them one JSON object per line
  (``DPMR_TRACE=path``), and :mod:`repro.obs.replay` recomputes §3.6
  classifications and T2D from the file alone;
* per-run machine counters (instructions by opcode class, comparisons,
  replica loads/stores, heap churn) surface on ``ProcessResult.counters``
  and aggregate into campaign totals;
* :class:`RunManifest` records every executor decision (worker count and
  why, incremental cache behaviour, serial fallback) next to the records.

This package is dependency-light by design: it may import :mod:`repro.ir`
but never :mod:`repro.machine` or :mod:`repro.eval`, which both import it.
"""

from .counters import (
    OPCODE_CLASSES,
    merge_counters,
    new_counters,
    total_counters,
)
from .events import EVENT_KINDS
from .manifest import (
    MANIFEST_SCHEMA,
    JobManifest,
    QuarantineRecord,
    RunManifest,
    ShardManifest,
)
from .replay import TracedRun, load_runs, read_events, runs_from_events, t2d_by_run
from .tracer import CollectingTracer, JsonlTracer, NullTracer, Tracer, real_tracer

__all__ = [
    "CollectingTracer",
    "EVENT_KINDS",
    "JobManifest",
    "JsonlTracer",
    "MANIFEST_SCHEMA",
    "NullTracer",
    "QuarantineRecord",
    "OPCODE_CLASSES",
    "RunManifest",
    "ShardManifest",
    "TracedRun",
    "Tracer",
    "load_runs",
    "merge_counters",
    "new_counters",
    "read_events",
    "real_tracer",
    "runs_from_events",
    "t2d_by_run",
    "total_counters",
]
