"""Compiler-based software fault injection (§3.4).

Faults are injected into the IR *before* the DPMR transformation runs, just
as real software bugs would be present before compilation.  Injected code
executes every time the injected location executes (unlike one-shot runtime
injectors, which the paper argues cannot model software memory faults).

Two fault types drive the dissertation's evaluation:

* **heap array resize** — reduces the element count requested at a heap
  array allocation site (by 50% in the experiments), producing out-of-bounds
  accesses;
* **immediate free** — deallocates a heap buffer immediately after its
  allocation, producing reads/writes/frees after free.

A *successful* injection is one whose injected code executed at least once
(§3.6); the machine records the cycle stamp of the first execution of any
instruction whose ``fault_site`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ir import instructions as ins
from ..ir.module import Module
from ..ir.types import INT64, IntType, sizeof
from ..ir.values import ConstInt, Register

HEAP_ARRAY_RESIZE = "heap-array-resize"
IMMEDIATE_FREE = "immediate-free"

FAULT_KINDS = (HEAP_ARRAY_RESIZE, IMMEDIATE_FREE)


@dataclass(frozen=True)
class FaultSite:
    """One potential injection location."""

    kind: str
    function: str
    block: str
    index: int  # instruction index within the block

    @property
    def site_id(self) -> str:
        return f"{self.kind}@{self.function}/{self.block}/{self.index}"

    def to_dict(self) -> dict:
        """Plain-data form for run manifests and trace tooling."""
        return {
            "kind": self.kind,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "site_id": self.site_id,
        }

    def __str__(self) -> str:  # pragma: no cover
        return self.site_id


class InjectionError(Exception):
    """The requested site does not exist in the module."""


def enumerate_sites(module: Module, kind: str) -> List[FaultSite]:
    """All injectable sites of ``kind`` in ``module``.

    Heap array resizes target heap *array* allocation sites (``malloc`` with
    a count); immediate frees target all heap allocation sites.
    """
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {kind!r}")
    sites: List[FaultSite] = []
    for fn in module.defined_functions():
        for block in fn.blocks:
            for idx, inst in enumerate(block.instructions):
                if not isinstance(inst, ins.Malloc):
                    continue
                if kind == HEAP_ARRAY_RESIZE and inst.count is None:
                    continue
                sites.append(FaultSite(kind, fn.name, block.label, idx))
    return sites


def would_definitely_not_manifest(
    module: Module, site: FaultSite, percent: int = 50
) -> bool:
    """Static filter (§3.4): constant-size requests that still round up to
    the original chunk size cannot manifest and are filtered out."""
    if site.kind != HEAP_ARRAY_RESIZE:
        return False
    inst = _find_site_instruction(module, site)
    if not isinstance(inst.count, ConstInt):
        return False
    from ..machine.heap import HeapAllocator, MIN_PAYLOAD, ALIGN

    unit = sizeof(inst.allocated_type)
    orig = inst.count.value * unit
    reduced = (inst.count.value * (100 - percent) // 100) * unit
    round_up = lambda n: max(n, MIN_PAYLOAD) + (-max(n, MIN_PAYLOAD)) % ALIGN
    return round_up(orig) == round_up(reduced)


def inject(module: Module, site: FaultSite, percent: int = 50) -> Module:
    """Inject ``site``'s fault into ``module`` (mutating it in place).

    Returns the module for chaining.  The injected/marked instructions carry
    ``fault_site = site.site_id`` so the machine can record activation.
    """
    inst = _find_site_instruction(module, site)
    fn = module.functions[site.function]
    block = fn.block(site.block)
    if site.kind == HEAP_ARRAY_RESIZE:
        _inject_resize(block, site, inst, percent)
    elif site.kind == IMMEDIATE_FREE:
        _inject_immediate_free(block, site, inst)
    else:  # pragma: no cover - guarded by enumerate
        raise InjectionError(f"unknown kind {site.kind}")
    return module


def _find_site_instruction(module: Module, site: FaultSite) -> ins.Malloc:
    try:
        fn = module.functions[site.function]
        block = fn.block(site.block)
        inst = block.instructions[site.index]
    except (KeyError, IndexError) as exc:
        raise InjectionError(f"no such site {site.site_id}") from exc
    if not isinstance(inst, ins.Malloc):
        raise InjectionError(f"site {site.site_id} is not a malloc")
    return inst


def _inject_resize(block, site: FaultSite, inst: ins.Malloc, percent: int) -> None:
    """Shrink the allocation request by ``percent``%."""
    count = inst.count
    if count is None:
        raise InjectionError("heap array resize requires an array allocation")
    if isinstance(count, ConstInt):
        reduced_val = count.value * (100 - percent) // 100
        inst.count = ConstInt(count.type, reduced_val)
    else:
        ity = count.type if isinstance(count.type, IntType) else INT64
        scaled = Register(f"fi.scale.{site.index}", ity)
        reduced = Register(f"fi.count.{site.index}", ity)
        pos = block.instructions.index(inst)
        mul = ins.BinOp(scaled, "mul", count, ConstInt(ity, 100 - percent))
        div = ins.BinOp(reduced, "sdiv", scaled, ConstInt(ity, 100))
        mul.fault_site = site.site_id
        div.fault_site = site.site_id
        block.instructions[pos:pos] = [mul, div]
        inst.count = reduced
    inst.fault_site = site.site_id
    inst.origin = f"injected {site.kind}"


def _inject_immediate_free(block, site: FaultSite, inst: ins.Malloc) -> None:
    """Insert ``free(p)`` immediately after the allocation."""
    free = ins.Free(inst.result)
    free.fault_site = site.site_id
    free.origin = f"injected {site.kind}"
    pos = block.instructions.index(inst)
    block.instructions.insert(pos + 1, free)
