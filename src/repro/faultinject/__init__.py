"""Compiler-based software fault injection (§3.4)."""

from .injector import (
    FAULT_KINDS,
    HEAP_ARRAY_RESIZE,
    IMMEDIATE_FREE,
    FaultSite,
    InjectionError,
    enumerate_sites,
    inject,
    would_definitely_not_manifest,
)
from .campaign import Campaign, ProgramFactory, campaign_sites

__all__ = [
    "Campaign",
    "campaign_sites",
    "FAULT_KINDS",
    "FaultSite",
    "HEAP_ARRAY_RESIZE",
    "IMMEDIATE_FREE",
    "InjectionError",
    "ProgramFactory",
    "enumerate_sites",
    "inject",
    "would_definitely_not_manifest",
]
