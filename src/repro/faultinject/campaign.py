"""Fault-injection campaigns: enumerate sites, build faulty program variants.

A campaign pairs a deterministic *program factory* (a callable building a
fresh IR module — our analog of recompiling the benchmark) with a fault kind
and yields, per site, a module with that one fault injected.  The paper's
per-injection variant builds (§3.5) rebuilt the whole benchmark per fault;
here the factory runs **once** per campaign to produce a pristine snapshot,
and each faulty module is a copy-on-write clone of that snapshot
(``Module.clone``) in which only the function containing the fault site is
deep-copied before injection.  Callers still observe per-site isolation —
injecting one site never affects the pristine snapshot or any sibling
faulty module — at O(changed function) build cost instead of O(program).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from ..ir.module import Module
from .injector import (
    FAULT_KINDS,
    FaultSite,
    enumerate_sites,
    inject,
    would_definitely_not_manifest,
)

ProgramFactory = Callable[[], Module]


def campaign_sites(
    factory: ProgramFactory,
    kind: str,
    percent: int = 50,
    apply_static_filter: bool = True,
    module: Optional[Module] = None,
) -> List[FaultSite]:
    """Enumerate (and statically filter) the injectable sites of one program.

    Shared by :class:`Campaign` and the parallel campaign executor: sites are
    enumerated exactly once in the coordinating process, so every worker
    agrees on site identity and ordering.  Pass ``module`` to enumerate an
    already-built pristine module instead of paying an extra ``factory()``
    call; enumeration and the static filter only read the module.
    """
    if module is None:
        module = factory()
    sites = enumerate_sites(module, kind)
    if apply_static_filter:
        sites = [
            s for s in sites if not would_definitely_not_manifest(module, s, percent)
        ]
    return sites


@dataclass
class Campaign:
    """All injectable sites of one fault kind for one program."""

    factory: ProgramFactory
    kind: str
    percent: int = 50
    apply_static_filter: bool = True
    _sites: Optional[List[FaultSite]] = field(default=None, repr=False)
    _pristine: Optional[Module] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    @property
    def pristine(self) -> Module:
        """The campaign's pristine snapshot — built once, **never mutated**.

        Faulty modules share this snapshot's unchanged functions, so it must
        be treated as frozen; use :meth:`pristine_module` for a build that
        may be freely mutated.
        """
        if self._pristine is None:
            self._pristine = self.factory()
        return self._pristine

    @property
    def sites(self) -> List[FaultSite]:
        if self._sites is None:
            self._sites = campaign_sites(
                self.factory,
                self.kind,
                percent=self.percent,
                apply_static_filter=self.apply_static_filter,
                module=self.pristine,
            )
        return self._sites

    def pristine_module(self) -> Module:
        """A fresh, fully isolated un-injected build (mutate freely)."""
        return self.pristine.clone()

    def faulty_module(self, site: FaultSite) -> Module:
        """A build with ``site``'s fault injected.

        Copy-on-write: only the function containing the site is cloned; all
        other functions are shared (frozen) with the pristine snapshot.
        """
        clone = self.pristine.clone(mutable_functions=(site.function,))
        return inject(clone, site, self.percent)

    def faulty_modules(self) -> Iterator[Tuple[FaultSite, Module]]:
        for site in self.sites:
            yield site, self.faulty_module(site)
