"""Fault-injection campaigns: enumerate sites, build faulty program variants.

A campaign pairs a deterministic *program factory* (a callable building a
fresh IR module — our analog of recompiling the benchmark) with a fault kind,
and yields, per site, a freshly built module with that one fault injected.
Building fresh modules per experiment mirrors the paper's per-injection
variant builds (§3.5) while keeping modules immutable from the caller's
perspective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from ..ir.module import Module
from .injector import (
    FAULT_KINDS,
    FaultSite,
    enumerate_sites,
    inject,
    would_definitely_not_manifest,
)

ProgramFactory = Callable[[], Module]


@dataclass
class Campaign:
    """All injectable sites of one fault kind for one program."""

    factory: ProgramFactory
    kind: str
    percent: int = 50
    apply_static_filter: bool = True
    _sites: Optional[List[FaultSite]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    @property
    def sites(self) -> List[FaultSite]:
        if self._sites is None:
            module = self.factory()
            sites = enumerate_sites(module, self.kind)
            if self.apply_static_filter:
                sites = [
                    s
                    for s in sites
                    if not would_definitely_not_manifest(module, s, self.percent)
                ]
            self._sites = sites
        return self._sites

    def pristine_module(self) -> Module:
        """A fresh, un-injected build of the program."""
        return self.factory()

    def faulty_module(self, site: FaultSite) -> Module:
        """A fresh build with ``site``'s fault injected."""
        return inject(self.factory(), site, self.percent)

    def faulty_modules(self) -> Iterator[Tuple[FaultSite, Module]]:
        for site in self.sites:
            yield site, self.faulty_module(site)
