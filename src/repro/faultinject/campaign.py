"""Fault-injection campaigns: enumerate sites, build faulty program variants.

A campaign pairs a deterministic *program factory* (a callable building a
fresh IR module — our analog of recompiling the benchmark) with a fault kind,
and yields, per site, a freshly built module with that one fault injected.
Building fresh modules per experiment mirrors the paper's per-injection
variant builds (§3.5) while keeping modules immutable from the caller's
perspective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from ..ir.module import Module
from .injector import (
    FAULT_KINDS,
    FaultSite,
    enumerate_sites,
    inject,
    would_definitely_not_manifest,
)

ProgramFactory = Callable[[], Module]


def campaign_sites(
    factory: ProgramFactory,
    kind: str,
    percent: int = 50,
    apply_static_filter: bool = True,
) -> List[FaultSite]:
    """Enumerate (and statically filter) the injectable sites of one program.

    Shared by :class:`Campaign` and the parallel campaign executor: sites are
    enumerated exactly once in the coordinating process, so every worker
    agrees on site identity and ordering.
    """
    module = factory()
    sites = enumerate_sites(module, kind)
    if apply_static_filter:
        sites = [
            s for s in sites if not would_definitely_not_manifest(module, s, percent)
        ]
    return sites


@dataclass
class Campaign:
    """All injectable sites of one fault kind for one program."""

    factory: ProgramFactory
    kind: str
    percent: int = 50
    apply_static_filter: bool = True
    _sites: Optional[List[FaultSite]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    @property
    def sites(self) -> List[FaultSite]:
        if self._sites is None:
            self._sites = campaign_sites(
                self.factory,
                self.kind,
                percent=self.percent,
                apply_static_filter=self.apply_static_filter,
            )
        return self._sites

    def pristine_module(self) -> Module:
        """A fresh, un-injected build of the program."""
        return self.factory()

    def faulty_module(self, site: FaultSite) -> Module:
        """A fresh build with ``site``'s fault injected."""
        return inject(self.factory(), site, self.percent)

    def faulty_modules(self) -> Iterator[Tuple[FaultSite, Module]]:
        for site in self.sites:
            yield site, self.faulty_module(site)
