"""IR → specialized Python source for the compiled execution tier.

The interpreter (:mod:`repro.machine.interpreter`) pays a decoded-dispatch
tax on every instruction: a tuple unpack, bookkeeping, a handler call, and
one `regs` dict access per operand.  This module removes that tax by
emitting one specialized Python function per IR function:

* registers become Python locals;
* struct layouts (`field_offset`/`sizeof`), global addresses, and function
  addresses are folded into literals at generation time;
* scalar loads/stores inline a segment-bounds fast path over pre-bound
  ``struct.Struct`` methods, falling back to ``Memory.read_scalar`` /
  ``write_scalar`` for the trap cases so every fault is bit-identical;
* the simulated-cycle cost model is compiled in: consecutive side-effect-
  free instructions form a *batch* charged with one constant add at the
  batch boundary, and a batch that would cross ``max_cycles`` replays the
  exact per-instruction accounting (:func:`repro.machine.compile._bto`)
  so Timeout state matches the interpreter to the cycle.

Call lowering splits into an inline fast path and a re-entrant slow path:

* direct internal calls are plain global lookups in the shared exec
  namespace, one Python frame per call;
* generic intrinsic and indirect calls re-enter the machine through
  ``call_intrinsic`` / ``call_by_address`` and pay one argument-container
  allocation per call — a tuple display (folded into the code object's
  constants) when every argument is a literal, a fresh list otherwise;
* the DPMR hooks (``dpmr_detect`` / ``dpmr_replica_malloc`` /
  ``dpmr_replica_free``) specialize against the machine's runtime when
  :func:`repro.machine.compile.runtime_spec_for` proves it safe (stateless
  diversity policy, no tracer/counters — the compiled tier already
  guarantees the latter).  ``dpmr_detect`` lowers to a direct ``raise``;
  the replica alloc/free hooks lower to the *parametric* fast-path
  globals ``_rmal`` / ``_rfree``, which the binding
  :class:`~repro.machine.compile.CompiledProgram` resolves from the
  spec at bind time (plain ``Machine.heap_malloc``, a pad-folding
  closure, or the diversity method).  Emitted source is therefore
  identical for every specialized runtime — all diversity variants share
  one entry in every codegen cache layer, and only the *program* (the
  exec namespace) is per-spec.  Tracing, counters, stateful policies,
  and any call shape the transform does not emit keep the exact
  ``call_intrinsic`` re-entry as the fallback.

Bit-identity ground rules (the interpreter stays the reference engine):

* an instruction with a ``fault_site`` always terminates its batch, so the
  recorded activation cycle equals the interpreter's per-instruction stamp;
* anything the generator cannot prove it lowers exactly raises
  :class:`CodegenUnsupported`; the machine then interprets that one
  function (callers still run compiled — calls route through a shim);
* heap behaviour is never reimplemented — every allocation path, inlined
  or not, ends in ``Machine.heap_malloc`` / ``heap_free`` (or the
  configured diversity policy), which own the cycle charges and the trap
  mapping.

Known, accepted divergences (pathological programs only — all are outside
what :func:`repro.ir.verify.verify_module` admits): an execution path that
uses a register whose defining block never ran raises
``UnboundLocalError`` instead of the undefined-register trap, and deep
recursion hits the host recursion limit at a different depth because a
compiled call chain uses fewer Python frames than an interpreted one.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir import instructions as ins
from ..ir.printer import format_instruction
from ..ir.types import FloatType, IntType, PointerType, field_offset, sizeof
from ..ir.values import (
    ConstFloat,
    ConstInt,
    ConstNull,
    FunctionRef,
    GlobalRef,
    Register,
    Value,
)
from .interpreter import COSTS, _EXPENSIVE_BINOPS

#: Bumped whenever the shape of generated source changes; part of every
#: persistent code-cache key so stale entries from older generators can
#: never be loaded (see repro.machine.compile).
CODEGEN_VERSION = 4


class CodegenUnsupported(Exception):
    """This function cannot be lowered; interpret it instead."""


@dataclass(frozen=True)
class ProgramContext:
    """Module-wide facts a generated function folds into its source.

    ``fn_info`` maps every module function name to ``(python name,
    parameter count, is_external)``; ``global_layout`` / ``func_addrs``
    are the address assignments the machine will make for the default
    memory geometry (the machine cross-checks at bind time).
    """

    global_layout: Dict[str, int]
    func_addrs: Dict[str, int]
    fn_info: Dict[str, Tuple[str, int, bool]]
    #: runtime-specialization spec (see ``DpmrRuntime.codegen_spec`` /
    #: ``repro.machine.compile.runtime_spec_for``) or None for the generic
    #: program.  Generation only depends on whether a spec is *present*
    #: (hook emission is parametric over the spec's contents), so the
    #: context digest folds the presence marker — specialized and generic
    #: code never share cache entries, while all specialized variants do.
    rt_spec: Optional[Tuple] = None


_U64_LIT = "18446744073709551615"

_PURE_BINOPS = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "and": "&",
    "or": "|",
    "xor": "^",
    "fadd": "+",
    "fsub": "-",
    "fmul": "*",
}

#: BinOps with a pure inline lowering (everything except sdiv/srem, whose
#: zero-divisor trap makes them checkpoints).
_PURE_BINOP_OPS = frozenset(_PURE_BINOPS) | {"shl", "shr", "fdiv"}

_CMP_SYMS = {
    "eq": "==",
    "ne": "!=",
    "slt": "<",
    "sle": "<=",
    "sgt": ">",
    "sge": ">=",
}

#: scalar type → (unpack name, pack name, byte size) in the shared exec
#: namespace (see repro.machine.compile.BASE_NS); int widths share the
#: interpreter's formats ("b" covers both int1 and int8).
_INT_ACCESS = {1: ("_up_b", "_pk_b", 1), 8: ("_up_b", "_pk_b", 1),
               16: ("_up_h", "_pk_h", 2), 32: ("_up_i", "_pk_i", 4),
               64: ("_up_q", "_pk_q", 8)}
_FLOAT_ACCESS = {32: ("_up_f", "_pk_f", 4), 64: ("_up_d", "_pk_d", 8)}


def _scalar_access(ty) -> Tuple[str, str, int, str]:
    """(unpack, pack, size, slow-path type name) for a loadable scalar."""
    if isinstance(ty, PointerType):
        return "_up_Q", "_pk_Q", 8, "_PTR"
    k = type(ty)
    if k is IntType:
        acc = _INT_ACCESS.get(ty.bits)
        if acc is not None:
            return acc[0], acc[1], acc[2], f"_Ti{ty.bits}"
    elif k is FloatType:
        acc = _FLOAT_ACCESS.get(ty.bits)
        if acc is not None:
            return acc[0], acc[1], acc[2], f"_Tf{ty.bits}"
    raise CodegenUnsupported(f"not a loadable scalar type: {ty}")


def _wrap_expr(expr: str, bits: int) -> str:
    """Python source equivalent of ``wrap_int(expr, max(bits, 8))``."""
    b = bits if bits > 8 else 8
    mask = (1 << b) - 1
    half = 1 << (b - 1)
    return f"(({expr} & {mask} ^ {half}) - {half})"


def _int_lit(v: int) -> str:
    return f"({v})" if v < 0 else str(v)


def _float_lit(x: float) -> str:
    if x != x:
        return 'float("nan")'
    if x == float("inf"):
        return 'float("inf")'
    if x == float("-inf"):
        return '(float("-inf"))'
    r = repr(float(x))
    return f"({r})" if r.startswith("-") else r


def _cost_of(inst) -> int:
    k = type(inst)
    if k is ins.BinOp:
        return _EXPENSIVE_BINOPS.get(inst.op, 1)
    if k is ins.Unreachable:
        return COSTS.get(k, 0)
    return COSTS.get(k, 1)


_SANITIZE = re.compile(r"[^0-9A-Za-z_]")


def sanitize(name: str) -> str:
    return _SANITIZE.sub("_", name)


# -- delta codegen data model ------------------------------------------------
#
# A generated function is recorded as a *frame* (header, prelude, dispatch
# skeleton, alloca try/finally) plus one ``ChainChunk`` per leader chain.
# Fault injection edits a handful of blocks in one function, so a per-site
# regeneration only re-emits the chains whose IR actually changed and
# splices the untouched chunks' lines back in **by identity** — sound
# because a chunk's text is a pure function of (its chain's instructions,
# the register→local mapping entries it used, the leader index table, and
# the module context folds), all of which the reuse check pins.


@dataclass
class ChainChunk:
    """One emitted leader chain: the unit of delta reuse."""

    leader: str
    labels: Tuple[str, ...]
    blocks: Tuple[object, ...]  # the IR BasicBlocks emitted (for comparison)
    lines: Tuple[str, ...]
    prelude: FrozenSet[str]
    used: Tuple[Tuple[str, str], ...]  # (IR register, python local) referenced
    indent: int


@dataclass
class GeneratedFunction:
    """Source plus the structure needed to delta-regenerate it later."""

    source: str
    src_sha: str
    fn_name: str
    pyname: str
    params: Tuple[str, ...]
    leader_labels: Tuple[str, ...]
    splice: FrozenSet[str]
    has_alloca: bool
    needs_loop: bool
    body: List[str]
    spans: Dict[str, Tuple[int, int]]
    chunks: Dict[str, ChainChunk]
    reused_leaders: Tuple[str, ...] = ()


@dataclass
class DeltaPlan:
    """A delta generation split at the point where its fingerprint is known
    (so callers can consult caches before paying for chain emission)."""

    emitter: "_FnEmitter"
    params: Tuple[str, ...]
    changed: List
    reused: Dict[str, ChainChunk]
    delta_fp: str


def _value_eq(a, b) -> bool:
    if a is b:
        return True
    k = type(a)
    if k is not type(b):
        return False
    if k is Register:
        return a.name == b.name and a.type == b.type
    if k is ConstInt:
        return a.value == b.value and a.type == b.type
    if k is ConstFloat:
        # repr distinguishes -0.0 from 0.0 and unifies NaNs, matching the
        # literal the emitter would produce.
        return repr(a.value) == repr(b.value) and a.type == b.type
    if k is ConstNull:
        return a.type == b.type
    if k is GlobalRef or k is FunctionRef:
        return a.name == b.name and a.type == b.type
    return False


def _field_eq(va, vb) -> bool:
    if va is vb:
        return True
    if isinstance(va, Value) and isinstance(vb, Value):
        return _value_eq(va, vb)
    if isinstance(va, Value) or isinstance(vb, Value):
        return False
    if isinstance(va, list) and isinstance(vb, list):
        return len(va) == len(vb) and all(
            _field_eq(x, y) for x, y in zip(va, vb)
        )
    return va == vb  # str/int/None/Type (types define structural __eq__)


def _inst_eq(a, b) -> bool:
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    da, db = a.__dict__, b.__dict__
    if da.keys() != db.keys():
        return False
    return all(_field_eq(va, db[k]) for k, va in da.items())


def _block_eq(a, b) -> bool:
    ia, ib = a.instructions, b.instructions
    if len(ia) != len(ib):
        return False
    return all(_inst_eq(x, y) for x, y in zip(ia, ib))


def _chain_matches(bchunk: ChainChunk, chain: List, regmap: Dict[str, str]) -> bool:
    """Whether ``bchunk``'s lines are exact for this function's chain: same
    blocks (structurally) and every register name the chunk referenced maps
    to the same Python local in the new function."""
    if len(chain) != len(bchunk.blocks):
        return False
    for fb, bb in zip(chain, bchunk.blocks):
        if fb.label != bb.label:
            return False
        if fb is not bb and not _block_eq(fb, bb):
            return False
    for ir_name, py in bchunk.used:
        if regmap.get(ir_name) != py:
            return False
    return True


class _FnEmitter:
    """Lowers one IR function to Python source."""

    def __init__(self, fn, ctx: ProgramContext, pyname: str):
        self.fn = fn
        self.ctx = ctx
        self.pyname = pyname
        self.body: List[str] = []
        self.indent = 0
        self.regmap: Dict[str, str] = {}
        self.taken: Set[str] = set()
        self.prelude: Set[str] = set()
        self.chunks: Dict[str, ChainChunk] = {}
        self.spans: Dict[str, Tuple[int, int]] = {}
        self._used: Optional[Set[Tuple[str, str]]] = None
        self._chain_prelude: Optional[Set[str]] = None

    # -- small helpers ------------------------------------------------------

    def line(self, text: str) -> None:
        self.body.append("    " * self.indent + text)

    def reg(self, name: str) -> str:
        py = self.regmap.get(name)
        if py is None:
            py = base = "r_" + sanitize(name)
            n = 2
            while py in self.taken:
                py = f"{base}_{n}"
                n += 1
            self.taken.add(py)
            self.regmap[name] = py
        if self._used is not None:
            self._used.add((name, py))
        return py

    def need(self, *items: str) -> None:
        """Request prelude bindings; per-chain needs are recorded in full
        (not as a diff) so a delta reassembly can rebuild the prelude from
        any subset of chunks."""
        self.prelude.update(items)
        if self._chain_prelude is not None:
            self._chain_prelude.update(items)

    def operand(self, v) -> str:
        k = type(v)
        if k is Register:
            return self.reg(v.name)
        if k is ConstInt:
            return _int_lit(v.value)
        if k is ConstFloat:
            return _float_lit(v.value)
        if k is ConstNull:
            return "0"
        if k is GlobalRef:
            addr = self.ctx.global_layout.get(v.name)
            if addr is None:
                raise CodegenUnsupported(f"unknown global {v.name}")
            return str(addr)
        if k is FunctionRef:
            addr = self.ctx.func_addrs.get(v.name)
            if addr is None:
                raise CodegenUnsupported(f"unknown function ref {v.name}")
            return str(addr)
        raise CodegenUnsupported(f"operand {v!r}")

    def arith(self, ty, raw: str) -> str:
        """The interpreter's ``_arith_result`` as a source transform."""
        if type(ty) is IntType:
            return _wrap_expr(f"int({raw})", ty.bits)
        if type(ty) is FloatType and ty.bits == 32:
            return f"_f32({raw})"
        return f"({raw})"

    # -- classification -----------------------------------------------------

    def is_pure(self, inst) -> bool:
        """True when the instruction can sit mid-batch: no side effects,
        no traps of its own, and no fault site to stamp."""
        if inst.fault_site is not None:
            return False
        k = type(inst)
        if k is ins.BinOp:
            return inst.op in _PURE_BINOP_OPS
        if k is ins.Cmp:
            return inst.op in _CMP_SYMS
        if k in (ins.FieldAddr, ins.ElemAddr, ins.PtrCast, ins.PtrToInt,
                 ins.IntToPtr):
            return True
        if k is ins.NumCast:
            return type(inst.result.type) in (IntType, FloatType)
        if k is ins.FuncAddr:
            return inst.function_name in self.ctx.func_addrs
        return False

    # -- batch accounting ----------------------------------------------------

    def flush(self, pure: List, final=None) -> None:
        """Charge one batch: ``pure`` instructions plus the optional
        ``final`` checkpoint/terminator, bit-identical to per-instruction
        bookkeeping (crossing batches replay through ``_bto``)."""
        insts = pure + ([final] if final is not None else [])
        if not insts:
            return
        costs = tuple(_cost_of(i) for i in insts)
        self.need("_mx")
        self.line(f"_c = m.cycles + {sum(costs)}")
        self.line("if _c > _mx:")
        self.line(f"    _bto(m, {costs!r})")
        self.line("m.cycles = _c")
        self.line(f"m.instructions_executed += {len(insts)}")
        for i in pure:
            self.emit_pure(i)
        if final is not None and final.fault_site is not None:
            self.need("_act")
            site = final.fault_site
            self.line(f"if {site!r} not in _act:")
            self.line(f"    _act[{site!r}] = _c")

    # -- instruction bodies --------------------------------------------------

    def emit_pure(self, i) -> None:
        k = type(i)
        if k is ins.BinOp:
            a, b = self.operand(i.lhs), self.operand(i.rhs)
            op = i.op
            if op == "shl":
                raw = f"{a} << ({b} & 63)"
            elif op == "shr":
                raw = f"{a} >> ({b} & 63)"
            elif op == "fdiv":
                raw = f"_fdiv({a}, {b})"
            else:
                raw = f"{a} {_PURE_BINOPS[op]} {b}"
            self.line(f"{self.reg(i.result.name)} = {self.arith(i.result.type, raw)}")
        elif k is ins.Cmp:
            a, b = self.operand(i.lhs), self.operand(i.rhs)
            sym = _CMP_SYMS[i.op]
            self.line(f"{self.reg(i.result.name)} = 1 if {a} {sym} {b} else 0")
        elif k is ins.FieldAddr:
            base = self.operand(i.pointer)
            off = field_offset(i.pointer.type.pointee, i.index)
            expr = base if off == 0 else f"{base} + {off}"
            self.line(f"{self.reg(i.result.name)} = {expr}")
        elif k is ins.ElemAddr:
            base = self.operand(i.pointer)
            esz = sizeof(i.pointer.type.pointee.element)
            if type(i.index) is ConstInt:
                off = i.index.value * esz
                expr = base if off == 0 else f"{base} + {_int_lit(off)}"
            else:
                idx = self.operand(i.index)
                expr = f"{base} + {idx}" if esz == 1 else f"{base} + {idx} * {esz}"
            self.line(f"{self.reg(i.result.name)} = {expr}")
        elif k in (ins.PtrCast, ins.PtrToInt):
            self.line(f"{self.reg(i.result.name)} = {self.operand(i.pointer)}")
        elif k is ins.IntToPtr:
            self.line(f"{self.reg(i.result.name)} = {self.operand(i.value)} & {_U64_LIT}")
        elif k is ins.NumCast:
            v = self.operand(i.value)
            ty = i.result.type
            if type(ty) is IntType:
                expr = _wrap_expr(f"int({v})", ty.bits)
            elif ty.bits == 32:
                expr = f"_f32(float({v}))"
            else:
                expr = f"float({v})"
            self.line(f"{self.reg(i.result.name)} = {expr}")
        elif k is ins.FuncAddr:
            addr = self.ctx.func_addrs[i.function_name]
            self.line(f"{self.reg(i.result.name)} = {addr}")
        elif k is ins.Jump:
            pass  # spliced fault-free jump: cost only, no body
        else:  # pragma: no cover - is_pure and emit_pure agree by inspection
            raise CodegenUnsupported(f"no pure body for {k.__name__}")

    def emit_checkpoint(self, i) -> None:
        k = type(i)
        if k is ins.Load:
            self.emit_load(i)
        elif k is ins.Store:
            self.emit_store(i)
        elif k is ins.Call:
            self.emit_call(i)
        elif k is ins.Alloca:
            self.need("_salloc")
            self.line(f"{self.reg(i.result.name)} = _salloc({self.alloc_size(i)})")
        elif k is ins.Malloc:
            self.need("_hmalloc")
            self.line(f"{self.reg(i.result.name)} = _hmalloc({self.alloc_size(i)})")
        elif k is ins.Free:
            self.need("_hfree")
            self.line(f"_hfree({self.operand(i.pointer)})")
        elif k is ins.BinOp and i.op in ("sdiv", "srem"):
            self.emit_division(i)
        elif k is ins.NumCast:
            # is_pure rejected it: result type is neither int nor float.
            self.line(f"raise ExecutionTrap('bad-cast', {str(i.result.type)!r})")
        elif k is ins.FuncAddr:
            # Unknown function name: the interpreter's dict lookup raises
            # a bare KeyError (not an ExecutionTrap); reproduce that.
            self.line(f"raise KeyError({i.function_name!r})")
        elif self.is_faultable_pure(i):
            self.emit_pure(i)
        elif k is ins.BinOp or k is ins.Cmp:
            # Unknown op: the interpreter raises KeyError at block-decode
            # time; falling back to interpretation reproduces it exactly.
            raise CodegenUnsupported(f"unknown {k.__name__} op {i.op}")
        else:
            # Unknown instruction type: the interpreter traps when the
            # instruction executes; emit the identical trap.
            self.line(f"raise ExecutionTrap('bad-instruction', {k.__name__!r})")

    def is_faultable_pure(self, i) -> bool:
        """Pure shape that only became a checkpoint via its fault site."""
        k = type(i)
        if k is ins.BinOp:
            return i.op in _PURE_BINOP_OPS
        if k is ins.Cmp:
            return i.op in _CMP_SYMS
        if k in (ins.FieldAddr, ins.ElemAddr, ins.PtrCast, ins.PtrToInt,
                 ins.IntToPtr):
            return True
        if k is ins.NumCast:
            return type(i.result.type) in (IntType, FloatType)
        if k is ins.FuncAddr:
            return i.function_name in self.ctx.func_addrs
        return False

    def alloc_size(self, i) -> str:
        size = sizeof(i.allocated_type)
        if i.count is None:
            return str(size)
        if type(i.count) is ConstInt:
            return _int_lit(size * i.count.value)
        return f"{size} * {self.operand(i.count)}"

    def emit_load(self, i) -> None:
        up, _pk, sz, tname = _scalar_access(i.result.type)
        self.need("_seg", "_rs")
        res = self.reg(i.result.name)
        self.line(f"_a = {self.operand(i.pointer)}")
        self.line(f"if _hb <= _a and _a + {sz} <= _he:")
        self.line(f"    {res} = {up}(_hd, _a - _hb)[0]")
        self.line(f"elif _sb <= _a and _a + {sz} <= _se:")
        self.line(f"    {res} = {up}(_sd, _a - _sb)[0]")
        self.line("else:")
        self.line(f"    {res} = _rs(_a, {tname})")

    def emit_store(self, i) -> None:
        _up, pk, sz, tname = _scalar_access(i.value.type)
        self.need("_seg", "_ws")
        val = self.operand(i.value)
        ty = i.value.type
        if isinstance(ty, PointerType):
            packed = f"{val} & {_U64_LIT}"
        elif type(ty) is IntType:
            packed = _wrap_expr(f"int({val})", ty.bits)
        else:
            packed = val
        self.line(f"_a = {self.operand(i.pointer)}")
        self.line(f"if _hb <= _a and _a + {sz} <= _he:")
        self.line(f"    {pk}(_hd, _a - _hb, {packed})")
        self.line(f"elif _sb <= _a and _a + {sz} <= _se:")
        self.line(f"    {pk}(_sd, _a - _sb, {packed})")
        self.line("else:")
        self.line(f"    _ws(_a, {tname}, {val})")

    def emit_division(self, i) -> None:
        a, b = self.operand(i.lhs), self.operand(i.rhs)
        self.line(f"_da = {a}")
        self.line(f"_db = {b}")
        self.line("if _db == 0:")
        self.line("    raise ExecutionTrap('divide-by-zero')")
        self.line("_q = abs(_da) // abs(_db)")
        self.line("if (_da < 0) != (_db < 0):")
        self.line("    _q = -_q")
        raw = "_q" if i.op == "sdiv" else "_da - _q * _db"
        self.line(f"{self.reg(i.result.name)} = {self.arith(i.result.type, raw)}")

    def emit_call(self, i) -> None:
        args = [self.operand(a) for a in i.args]
        if i.is_direct:
            info = self.ctx.fn_info.get(i.callee)
            if info is None:
                self.line(f"raise ExecutionTrap('unresolved-call', {str(i.callee)!r})")
                return
            pyname, nparams, is_external = info
            if is_external:
                if self.ctx.rt_spec is not None and self.emit_dpmr_call(i, args):
                    return
                self.need("_ci")
                call = f"_ci({i.callee!r}, {self.arg_container(i, args)})"
            elif nparams != len(args):
                msg = f"{i.callee} expects {nparams} args, got {len(args)}"
                self.line(f"raise ExecutionTrap('bad-call', {msg!r})")
                return
            else:
                arglist = ", ".join(args)
                call = f"{pyname}(m, {arglist})" if args else f"{pyname}(m)"
        else:
            self.need("_cba")
            call = f"_cba({self.operand(i.callee)}, {self.arg_container(i, args)})"
        if i.result is not None:
            self.line(f"_r = {call}")
            self.line(f"{self.reg(i.result.name)} = 0 if _r is None else _r")
        else:
            self.line(call)

    def arg_container(self, i, args: List[str]) -> str:
        """Argument container for a ``call_intrinsic``/``call_by_address``
        re-entry.  A fully-literal argument vector becomes a tuple display
        that CPython folds into the code object's constants, so the call
        site allocates nothing per execution; any register operand forces a
        fresh list.  Sound because every receiver (intrinsics, wrappers,
        ``Machine.call``) only reads the container."""
        if any(type(a) is Register for a in i.args):
            return f"[{', '.join(args)}]"
        if len(args) == 1:
            return f"({args[0]},)"
        return f"({', '.join(args)})"

    def emit_dpmr_call(self, i, args: List[str]) -> bool:
        """Inline one DPMR hook against the program's runtime spec.

        Covers exactly the call shapes the DPMR transform emits (hook
        arity, result use matching the declared signature); anything else
        returns False and takes the ``call_intrinsic`` slow path, whose
        behaviour is the reference.  ``dpmr_detect`` raises directly; the
        replica alloc/free hooks call the ``_rmal`` / ``_rfree`` namespace
        globals, which the binding program derives from the spec — the
        emitted *source* is the same for every spec, so specialized code
        shares cache entries across diversity variants.  Cycle parity
        holds because the Call's own cost was charged by the batch flush
        and the fast-path bindings reach the same ``heap_malloc`` /
        ``heap_free`` / diversity methods the intrinsic would, so every
        remaining charge happens in the same place with the same
        arguments.
        """
        name = i.callee
        if name == "dpmr_detect":
            if i.result is not None:
                return False
            if not i.args:
                code = "0"
            elif type(i.args[0]) is ConstInt:
                code = _int_lit(int(i.args[0].value))
            else:
                code = f"int({args[0]})"
            self.line(f"raise _DD({code})")
            return True
        if len(i.args) != 1:
            return False
        a0 = i.args[0]
        arg = _int_lit(int(a0.value)) if type(a0) is ConstInt else f"int({args[0]})"
        if name == "dpmr_replica_malloc":
            if i.result is None:
                self.line(f"_rmal(m, {arg})")
            else:
                # The interpreter's generic call path converts a None
                # result to 0; keep that for every binding.
                self.line(f"_r = _rmal(m, {arg})")
                self.line(f"{self.reg(i.result.name)} = 0 if _r is None else _r")
            return True
        if name == "dpmr_replica_free":
            if i.result is not None:
                return False
            self.line(f"_rfree(m, {arg})")
            return True
        return False

    # -- control flow --------------------------------------------------------

    def decode(self, block) -> Tuple[List, Optional[object]]:
        """Mirror of ``_decode_block``: first terminator ends the block."""
        steps: List = []
        for inst in block.instructions:
            k = type(inst)
            if k in (ins.Branch, ins.Jump, ins.Ret, ins.Unreachable):
                return steps, inst
            steps.append(inst)
        return steps, None

    def emit_arm(self, label: str) -> None:
        if label in self.leader_idx:
            self.line(f"    _b = {self.leader_idx[label]}")
            self.line("    continue")
        else:
            self.line(f"    raise KeyError({label!r})")

    def emit_chain(self, block) -> None:
        """Emit a leader block plus every single-predecessor block its
        fault-free jumps splice in (batches run across the splice)."""
        fn = self.fn
        batch: List = []
        emitted: Set[str] = set()
        while True:
            if block.label in emitted:  # pragma: no cover - splice guard
                raise CodegenUnsupported("splice cycle")
            emitted.add(block.label)
            steps, term = self.decode(block)
            for inst in steps:
                if self.is_pure(inst):
                    batch.append(inst)
                else:
                    self.flush(batch, final=inst)
                    batch = []
                    self.emit_checkpoint(inst)
            if term is None:
                self.flush(batch)
                detail = f"{fn.name}/{block.label}"
                self.line(f"raise ExecutionTrap('fell-off-block', {detail!r})")
                return
            k = type(term)
            if k is ins.Jump:
                if term.target in self.splice:
                    if term.fault_site is None:
                        batch.append(term)
                    else:
                        self.flush(batch, final=term)
                        batch = []
                    block = fn.find_block(term.target)
                    continue
                self.flush(batch, final=term)
                if term.target in self.leader_idx:
                    self.line(f"_b = {self.leader_idx[term.target]}")
                    self.line("continue")
                else:
                    self.line(f"raise KeyError({term.target!r})")
                return
            self.flush(batch, final=term)
            if k is ins.Branch:
                self.line(f"if {self.operand(term.cond)}:")
                self.emit_arm(term.then_target)
                self.line("else:")
                self.emit_arm(term.else_target)
            elif k is ins.Ret:
                if term.value is None:
                    self.line("return None")
                else:
                    self.line(f"return {self.operand(term.value)}")
            else:  # Unreachable
                self.line(f"raise ExecutionTrap('unreachable', {'in ' + fn.name!r})")
            return

    def chain_blocks(self, leader) -> List:
        """The blocks ``emit_chain`` will emit for this leader, in order."""
        fn = self.fn
        out: List = []
        seen: Set[str] = set()
        block = leader
        while True:
            if block.label in seen:
                raise CodegenUnsupported("splice cycle")
            seen.add(block.label)
            out.append(block)
            _steps, term = self.decode(block)
            if type(term) is ins.Jump and term.target in self.splice:
                block = fn.find_block(term.target)
                continue
            return out

    def emit_chain_recorded(self, leader) -> None:
        """Emit one leader chain and record it as a :class:`ChainChunk`."""
        start = len(self.body)
        indent = self.indent
        chain = self.chain_blocks(leader)
        self._used = set()
        self._chain_prelude = set()
        self.emit_chain(leader)
        self.chunks[leader.label] = ChainChunk(
            leader=leader.label,
            labels=tuple(b.label for b in chain),
            blocks=tuple(chain),
            lines=tuple(self.body[start:]),
            prelude=frozenset(self._chain_prelude),
            used=tuple(sorted(self._used)),
            indent=indent,
        )
        self.spans[leader.label] = (start, len(self.body))
        self._used = None
        self._chain_prelude = None

    def emit_dispatch(self, lo: int, hi: int) -> None:
        """Binary if-tree over leader indices: log2 depth, so deep CFGs
        never approach CPython's nesting limit the way inlining would."""
        if hi - lo == 1:
            self.emit_chain_recorded(self.leaders[lo])
            return
        mid = (lo + hi) // 2
        if lo + 1 == mid:
            self.line(f"if _b == {lo}:")
        else:
            self.line(f"if _b < {mid}:")
        self.indent += 1
        self.emit_dispatch(lo, mid)
        self.indent -= 1
        self.line("else:")
        self.indent += 1
        self.emit_dispatch(mid, hi)
        self.indent -= 1

    # -- assembly ------------------------------------------------------------

    def _analyze(self) -> None:
        """Leader selection: entry and every branch target dispatch through
        the loop; a block whose only predecessor is a single jump splices
        into that jump's chain.  Reachable splice cycles are impossible
        (a cycle's entry edge gives some member two predecessors)."""
        fn = self.fn
        blocks = fn.reachable_blocks()
        if not blocks:
            raise CodegenUnsupported("no blocks")
        pred: Dict[str, int] = {b.label: 0 for b in blocks}
        pred[blocks[0].label] += 1  # implicit entry edge
        branch_targets: Set[str] = set()
        has_alloca = False
        for b in blocks:
            steps, term = self.decode(b)
            if any(type(s) is ins.Alloca for s in steps):
                has_alloca = True
            k = type(term)
            if k is ins.Branch:
                for t in (term.then_target, term.else_target):
                    if t in pred:
                        pred[t] += 1
                        branch_targets.add(t)
            elif k is ins.Jump:
                if term.target in pred:
                    pred[term.target] += 1
        self.blocks = blocks
        self.splice = {
            lbl for lbl, n in pred.items()
            if n == 1 and lbl not in branch_targets and lbl != blocks[0].label
        }
        self.leaders = [b for b in blocks if b.label not in self.splice]
        self.leader_idx = {b.label: i for i, b in enumerate(self.leaders)}
        self.has_alloca = has_alloca
        self.needs_loop = len(self.leaders) > 1 or pred[blocks[0].label] > 1

    def _prescan(self) -> Tuple[str, ...]:
        """Assign every register's Python local up front, in chain emission
        order, so names are independent of *which* chains a later delta
        generation re-emits."""
        params = tuple(self.reg(p.name) for p in self.fn.params)
        if len(set(params)) != len(params):
            raise CodegenUnsupported("duplicate parameter names")
        for leader in self.leaders:
            for block in self.chain_blocks(leader):
                for inst in block.instructions:
                    for v in inst.operands():
                        if type(v) is Register:
                            self.reg(v.name)
                    r = inst.result
                    if r is not None:
                        self.reg(r.name)
        return params

    def _emit_body(self) -> None:
        self.indent = 1
        if self.has_alloca:
            self.line("_ss = m.stack_top")
            self.line("try:")
            self.indent += 1
        if self.needs_loop:
            self.line("_b = 0")
            self.line("while True:")
            self.indent += 1
            self.emit_dispatch(0, len(self.leaders))
            self.indent -= 1
        else:
            self.emit_chain_recorded(self.blocks[0])
        if self.has_alloca:
            self.indent -= 1
            self.line("finally:")
            self.line("    m.stack_top = _ss")

    def generate(self) -> GeneratedFunction:
        self._analyze()
        params = self._prescan()
        self._emit_body()
        source = _assemble_source(self.pyname, params, self.prelude, self.body)
        return GeneratedFunction(
            source=source,
            src_sha=hashlib.sha256(source.encode()).hexdigest(),
            fn_name=self.fn.name,
            pyname=self.pyname,
            params=params,
            leader_labels=tuple(b.label for b in self.leaders),
            splice=frozenset(self.splice),
            has_alloca=self.has_alloca,
            needs_loop=self.needs_loop,
            body=self.body,
            spans=self.spans,
            chunks=self.chunks,
        )


def _prelude_lines(u: FrozenSet[str]) -> List[str]:
    out = []
    if u & {"_seg", "_rs", "_ws"}:
        out.append("_mem = m.memory")
    if "_seg" in u:
        out.append("_h = _mem.heap; _hb = _h.base; _he = _h.end; _hd = _h.data")
        out.append("_s = _mem.stack; _sb = _s.base; _se = _s.end; _sd = _s.data")
    if "_rs" in u:
        out.append("_rs = _mem.read_scalar")
    if "_ws" in u:
        out.append("_ws = _mem.write_scalar")
    if "_mx" in u:
        out.append("_mx = m.max_cycles")
    if "_act" in u:
        out.append("_act = m.fault_activations")
    if "_ci" in u:
        out.append("_ci = m.call_intrinsic")
    if "_cba" in u:
        out.append("_cba = m.call_by_address")
    if "_salloc" in u:
        out.append("_salloc = m.stack_alloc")
    if "_hmalloc" in u:
        out.append("_hmalloc = m.heap_malloc")
    if "_hfree" in u:
        out.append("_hfree = m.heap_free")
    return out


def _assemble_source(
    pyname: str, params: Tuple[str, ...], prelude, body: List[str]
) -> str:
    header = f"def {pyname}(m{''.join(', ' + p for p in params)}):"
    lines = [header]
    lines.extend("    " + p for p in _prelude_lines(prelude))
    lines.extend(body)
    return "\n".join(lines) + "\n"


def generate_function(fn, ctx: ProgramContext, pyname: str) -> GeneratedFunction:
    """Full generation for one IR function (raises :class:`CodegenUnsupported`)."""
    return _FnEmitter(fn, ctx, pyname).generate()


def generate_function_source(fn, ctx: ProgramContext, pyname: str) -> str:
    """Python source for one IR function, or raise :class:`CodegenUnsupported`."""
    return _FnEmitter(fn, ctx, pyname).generate().source


def plan_function_delta(
    fn, ctx: ProgramContext, pyname: str, base: GeneratedFunction
) -> Optional[DeltaPlan]:
    """Decide which of ``base``'s chains survive for ``fn`` verbatim.

    Returns None when the function's shape diverged (different leaders,
    splices, params, or frame) — the caller falls back to full generation.
    On success the plan's ``delta_fp`` fingerprints exactly the changed
    chains (printed IR, which covers fault-site markers), so together with
    ``base.src_sha`` it content-addresses the assembled source *before*
    any emission happens.
    """
    em = _FnEmitter(fn, ctx, pyname)
    em._analyze()
    if (
        fn.name != base.fn_name
        or pyname != base.pyname
        or tuple(b.label for b in em.leaders) != base.leader_labels
        or frozenset(em.splice) != base.splice
        or em.has_alloca != base.has_alloca
        or em.needs_loop != base.needs_loop
    ):
        return None
    params = em._prescan()
    if params != base.params:
        return None
    changed: List = []
    reused: Dict[str, ChainChunk] = {}
    fp = hashlib.sha256()
    for leader in em.leaders:
        bchunk = base.chunks[leader.label]
        chain = em.chain_blocks(leader)
        if _chain_matches(bchunk, chain, em.regmap):
            reused[leader.label] = bchunk
            continue
        changed.append(leader)
        fp.update(f"\x00chain {leader.label}\n".encode())
        for b in chain:
            fp.update(f"\x01block {b.label}\n".encode())
            for inst in b.instructions:
                fp.update(format_instruction(inst).encode())
                fp.update(b"\n")
    return DeltaPlan(em, params, changed, reused, fp.hexdigest())


def complete_function_delta(
    plan: DeltaPlan, base: GeneratedFunction
) -> GeneratedFunction:
    """Emit the plan's changed chains and splice them into ``base``'s frame.

    Untouched chains' chunk objects — including their ``lines`` tuples —
    are reused by identity; only the changed chains pay emission cost.
    """
    em = plan.emitter
    new_chunks: Dict[str, ChainChunk] = dict(plan.reused)
    for leader in plan.changed:
        em.body = []
        em.indent = base.chunks[leader.label].indent
        em.emit_chain_recorded(leader)
        new_chunks[leader.label] = em.chunks[leader.label]
    body: List[str] = []
    spans: Dict[str, Tuple[int, int]] = {}
    prelude: Set[str] = set()
    prev_end = 0
    for label in base.leader_labels:
        bstart, bend = base.spans[label]
        body.extend(base.body[prev_end:bstart])
        prev_end = bend
        chunk = new_chunks[label]
        start = len(body)
        body.extend(chunk.lines)
        spans[label] = (start, len(body))
        prelude |= chunk.prelude
    body.extend(base.body[prev_end:])
    source = _assemble_source(plan.emitter.pyname, plan.params, prelude, body)
    return GeneratedFunction(
        source=source,
        src_sha=hashlib.sha256(source.encode()).hexdigest(),
        fn_name=base.fn_name,
        pyname=base.pyname,
        params=plan.params,
        leader_labels=base.leader_labels,
        splice=base.splice,
        has_alloca=base.has_alloca,
        needs_loop=base.needs_loop,
        body=body,
        spans=spans,
        chunks=new_chunks,
        reused_leaders=tuple(plan.reused),
    )
