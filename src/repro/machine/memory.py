"""Flat byte-addressable simulated memory with segments and protection.

Everything DPMR cares about — overflow corruption, dangling reads picking up
allocator metadata, wild pointers trapping on unmapped pages — falls out of
modelling memory as *real bytes*.  Pointers are integer addresses into a
single address space containing a protected null page, a globals segment, a
stack segment, and a heap segment, with unmapped guard gaps between them.
"""

from __future__ import annotations

import mmap
import os
import random
import struct
from typing import Dict, List, Optional, Tuple

from ..ir.types import (
    FloatType,
    IntType,
    PointerType,
    Type,
)
from ..ir.values import wrap_int

NULL_PAGE_SIZE = 0x1000
GLOBALS_BASE = 0x0001_0000
STACK_BASE = 0x0020_0000
HEAP_BASE = 0x0100_0000

DEFAULT_GLOBALS_SIZE = 1 << 18  # 256 KiB
DEFAULT_STACK_SIZE = 1 << 19  # 512 KiB
DEFAULT_HEAP_SIZE = 1 << 22  # 4 MiB

_SCALAR_FORMATS = {
    ("int", 1): "b",
    ("int", 8): "b",
    ("int", 16): "<h",
    ("int", 32): "<i",
    ("int", 64): "<q",
    ("float", 32): "<f",
    ("float", 64): "<d",
}

#: Prebuilt ``struct.Struct`` per (kind, width): scalar loads/stores run on
#: every interpreted memory access, so the format string must be parsed once
#: at import, not per access.
_SCALAR_STRUCTS = {key: struct.Struct(fmt) for key, fmt in _SCALAR_FORMATS.items()}

#: The same prebuilt Structs keyed directly by the (singleton) scalar type
#: instance, giving a one-dict-lookup fast path in read/write_scalar.
_STRUCTS_BY_TYPE: Dict[Type, struct.Struct] = {}
for (_kind, _bits), _s in _SCALAR_STRUCTS.items():
    _ty = IntType(_bits) if _kind == "int" else FloatType(_bits)
    _STRUCTS_BY_TYPE[_ty] = _s
del _kind, _bits, _s, _ty

_U64 = struct.Struct("<Q")
_U64_MASK = (1 << 64) - 1


class MemoryTrap(Exception):
    """A hardware-style memory fault (natural detection by crash, §3.6)."""

    def __init__(self, kind: str, address: int, message: str = ""):
        self.kind = kind
        self.address = address
        super().__init__(f"{kind} at {address:#x} {message}".rstrip())


class Segment:
    """One contiguous mapped region of the address space."""

    def __init__(self, name: str, base: int, size: int, fill_seed: Optional[int] = None):
        self.name = name
        self.base = base
        self.size = size
        # Plain attribute (not a property): segment_for runs on every memory
        # access and the bound is fixed for the segment's lifetime.
        self.end = base + size
        if fill_seed is not None and _COW_GARBAGE:
            # Deterministic "garbage" (uninitialized reads see junk that
            # differs between addresses, which is what lets DPMR's replica
            # comparison catch them), mapped copy-on-write from a memfd
            # holding the memoized template.  Byte-for-byte identical to a
            # bytearray copy, but a multi-megabyte segment costs one mmap
            # call instead of a full memcpy, and only pages the run
            # actually writes are ever copied — the dominant fixed cost of
            # a campaign experiment before this was resetting 4 MiB of
            # heap garbage per run.
            try:
                self.data = mmap.mmap(
                    _garbage_fd(fill_seed ^ base, size),
                    size,
                    flags=mmap.MAP_PRIVATE,
                )
                return
            except OSError:
                pass  # fall through to the plain buffer path
        if fill_seed is None:
            template = _zero_bytes(size)
        else:
            template = _garbage_bytes(fill_seed ^ base, size)
        pool = _BUFFER_POOL.get(size)
        if pool:
            # Reused buffers are overwritten wholesale from the template, so
            # their contents are byte-identical to a fresh allocation; the
            # win is skipping the multi-megabyte alloc + page-fault churn
            # every Machine of a campaign would otherwise pay.
            self.data = pool.pop()
            self.data[:] = template
        else:
            self.data = bytearray(template)

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.end

    def release(self) -> None:
        """Return this segment's buffer to the process-wide pool.

        Only call when the owning Machine is provably done (run_process does
        this after the result is materialized).  The segment keeps an empty
        buffer afterwards, so accidental post-release access raises instead
        of silently aliasing the next run's memory.
        """
        buf = self.data
        self.data = bytearray(0)
        if isinstance(buf, mmap.mmap):
            try:
                buf.close()  # unmap now instead of at GC time
            except BufferError:  # pragma: no cover — a live exported view
                pass
        elif len(buf) == self.size:
            pool = _BUFFER_POOL.setdefault(self.size, [])
            if len(pool) < _BUFFER_POOL_MAX:
                pool.append(buf)


#: Memoized garbage fills.  The fill is a pure function of (seed, size), and
#: every Machine of a campaign rebuilds identical multi-megabyte segments, so
#: generating the bytes once and copying them beats re-running the PRNG by
#: orders of magnitude.  Keyed by the already-XORed seed; bounded in practice
#: by the handful of (seed, segment-size) configurations a process uses.
_GARBAGE_CACHE: Dict[Tuple[int, int], bytes] = {}

#: Memoized all-zero fills (globals segments), same rationale.
_ZERO_CACHE: Dict[int, bytes] = {}

#: Retired segment buffers by size, reused by the next Segment of that size.
#: Bounded per size class; a process only ever uses a handful of sizes.
_BUFFER_POOL: Dict[int, List[bytearray]] = {}
_BUFFER_POOL_MAX = 8


def _garbage_bytes(seed: int, size: int) -> bytes:
    key = (seed, size)
    data = _GARBAGE_CACHE.get(key)
    if data is None:
        data = _GARBAGE_CACHE[key] = random.Random(seed).randbytes(size)
    return data


def _zero_bytes(size: int) -> bytes:
    data = _ZERO_CACHE.get(size)
    if data is None:
        data = _ZERO_CACHE[size] = bytes(size)
    return data


#: Copy-on-write garbage segments need memfd_create (Linux); elsewhere the
#: pooled-bytearray path below provides the same bytes, just with a memcpy.
_COW_GARBAGE = hasattr(os, "memfd_create")

#: memfd holding each memoized garbage template, keyed like _GARBAGE_CACHE.
#: The fds live for the whole process (a handful of configurations) and are
#: inherited by forked campaign workers along with their mappings.
_GARBAGE_FDS: Dict[Tuple[int, int], int] = {}


def _garbage_fd(seed: int, size: int) -> int:
    key = (seed, size)
    fd = _GARBAGE_FDS.get(key)
    if fd is None:
        fd = os.memfd_create(f"dpmr-garbage-{seed & 0xFFFFFFFF:08x}")
        data = _garbage_bytes(seed, size)
        view = memoryview(data)
        while view:
            view = view[os.write(fd, view):]
        _GARBAGE_FDS[key] = fd
    return fd


class Memory:
    """The process address space."""

    def __init__(
        self,
        globals_size: int = DEFAULT_GLOBALS_SIZE,
        stack_size: int = DEFAULT_STACK_SIZE,
        heap_size: int = DEFAULT_HEAP_SIZE,
        garbage_seed: Optional[int] = 0xD19E5,
    ):
        self.globals = Segment("globals", GLOBALS_BASE, globals_size)
        self.stack = Segment("stack", STACK_BASE, stack_size, fill_seed=garbage_seed)
        self.heap = Segment("heap", HEAP_BASE, heap_size, fill_seed=garbage_seed)
        self._segments: List[Segment] = [self.globals, self.stack, self.heap]

    def release(self) -> None:
        """Return every segment buffer to the reuse pool.

        Only for owners that know no further access can happen;
        :func:`repro.machine.process.run_process` calls this once the
        result is fully materialized.
        """
        for seg in self._segments:
            seg.release()

    # -- raw byte access --------------------------------------------------

    def segment_for(self, address: int, length: int = 1) -> Segment:
        # Heap first: it absorbs the overwhelming majority of accesses in the
        # paper's workloads.  Segments are disjoint (guard gaps between them)
        # and none overlaps the null page, so probe order cannot change which
        # segment — if any — matches.
        hi = address + length
        for seg in (self.heap, self.stack, self.globals):
            if seg.base <= address and hi <= seg.end:
                return seg
        if 0 <= address < NULL_PAGE_SIZE:
            raise MemoryTrap("null-dereference", address)
        raise MemoryTrap("segmentation-fault", address, "(unmapped)")

    def read_bytes(self, address: int, length: int) -> bytes:
        if length == 0:
            return b""
        seg = self.segment_for(address, length)
        off = address - seg.base
        return bytes(seg.data[off : off + length])

    def write_bytes(self, address: int, data: bytes) -> None:
        if not data:
            return
        seg = self.segment_for(address, len(data))
        off = address - seg.base
        seg.data[off : off + len(data)] = data

    def fill(self, address: int, value: int, length: int) -> None:
        if length < 0:
            raise MemoryTrap("bad-fill", address, f"negative length {length}")
        if length == 0:
            return
        # Validate the range *before* materializing the fill bytes, so a
        # corrupted (huge) size becomes a memory fault, not host exhaustion.
        seg = self.segment_for(address, length)
        off = address - seg.base
        seg.data[off : off + length] = bytes([value & 0xFF]) * length

    # -- typed scalar access ----------------------------------------------

    def read_scalar(self, address: int, ty: Type):
        # Pointer check first: PointerType hashes recursively, so it must
        # never reach the dict lookup on the hot path.  unpack_from reads
        # straight out of the segment bytearray without a bytes copy.
        if isinstance(ty, PointerType):
            seg = self.segment_for(address, 8)
            return _U64.unpack_from(seg.data, address - seg.base)[0]
        s = _STRUCTS_BY_TYPE.get(ty)
        if s is None:
            raise TypeError(f"not a loadable scalar type: {ty}")
        seg = self.segment_for(address, s.size)
        return s.unpack_from(seg.data, address - seg.base)[0]

    def write_scalar(self, address: int, ty: Type, value) -> None:
        if isinstance(ty, PointerType):
            seg = self.segment_for(address, 8)
            _U64.pack_into(seg.data, address - seg.base, value & _U64_MASK)
            return
        s = _STRUCTS_BY_TYPE.get(ty)
        if s is None:
            raise TypeError(f"not a loadable scalar type: {ty}")
        if type(ty) is IntType:
            value = wrap_int(int(value), max(ty.bits, 8))
        seg = self.segment_for(address, s.size)
        s.pack_into(seg.data, address - seg.base, value)

    @staticmethod
    def _format_for(ty: Type) -> str:
        return Memory._struct_for(ty).format

    @staticmethod
    def _struct_for(ty: Type) -> struct.Struct:
        """The prebuilt Struct for a scalar (non-pointer) type."""
        s = _STRUCTS_BY_TYPE.get(ty)
        if s is None:
            raise TypeError(f"not a loadable scalar type: {ty}")
        return s

    # -- C-string helpers ---------------------------------------------------

    def read_cstring(self, address: int, max_len: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string (trapping on unmapped memory)."""
        out = bytearray()
        addr = address
        while len(out) < max_len:
            b = self.read_bytes(addr, 1)[0]
            if b == 0:
                return bytes(out)
            out.append(b)
            addr += 1
        raise MemoryTrap("runaway-string", address)

    def write_cstring(self, address: int, data: bytes) -> None:
        self.write_bytes(address, data + b"\x00")
