"""Flat byte-addressable simulated memory with segments and protection.

Everything DPMR cares about — overflow corruption, dangling reads picking up
allocator metadata, wild pointers trapping on unmapped pages — falls out of
modelling memory as *real bytes*.  Pointers are integer addresses into a
single address space containing a protected null page, a globals segment, a
stack segment, and a heap segment, with unmapped guard gaps between them.
"""

from __future__ import annotations

import random
import struct
from typing import Dict, List, Optional, Tuple

from ..ir.types import (
    FloatType,
    IntType,
    PointerType,
    Type,
)
from ..ir.values import wrap_int

NULL_PAGE_SIZE = 0x1000
GLOBALS_BASE = 0x0001_0000
STACK_BASE = 0x0020_0000
HEAP_BASE = 0x0100_0000

DEFAULT_GLOBALS_SIZE = 1 << 18  # 256 KiB
DEFAULT_STACK_SIZE = 1 << 19  # 512 KiB
DEFAULT_HEAP_SIZE = 1 << 22  # 4 MiB

_SCALAR_FORMATS = {
    ("int", 1): "b",
    ("int", 8): "b",
    ("int", 16): "<h",
    ("int", 32): "<i",
    ("int", 64): "<q",
    ("float", 32): "<f",
    ("float", 64): "<d",
}


class MemoryTrap(Exception):
    """A hardware-style memory fault (natural detection by crash, §3.6)."""

    def __init__(self, kind: str, address: int, message: str = ""):
        self.kind = kind
        self.address = address
        super().__init__(f"{kind} at {address:#x} {message}".rstrip())


class Segment:
    """One contiguous mapped region of the address space."""

    def __init__(self, name: str, base: int, size: int, fill_seed: Optional[int] = None):
        self.name = name
        self.base = base
        self.size = size
        if fill_seed is None:
            self.data = bytearray(size)
        else:
            # Deterministic "garbage": uninitialized reads see junk that
            # differs between addresses, which is what lets DPMR's replica
            # comparison catch them (the app object and its replica hold
            # different junk).
            self.data = bytearray(random.Random(fill_seed ^ base).randbytes(size))

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.end


class Memory:
    """The process address space."""

    def __init__(
        self,
        globals_size: int = DEFAULT_GLOBALS_SIZE,
        stack_size: int = DEFAULT_STACK_SIZE,
        heap_size: int = DEFAULT_HEAP_SIZE,
        garbage_seed: Optional[int] = 0xD19E5,
    ):
        self.globals = Segment("globals", GLOBALS_BASE, globals_size)
        self.stack = Segment("stack", STACK_BASE, stack_size, fill_seed=garbage_seed)
        self.heap = Segment("heap", HEAP_BASE, heap_size, fill_seed=garbage_seed)
        self._segments: List[Segment] = [self.globals, self.stack, self.heap]

    # -- raw byte access --------------------------------------------------

    def segment_for(self, address: int, length: int = 1) -> Segment:
        if 0 <= address < NULL_PAGE_SIZE:
            raise MemoryTrap("null-dereference", address)
        for seg in self._segments:
            if seg.contains(address, length):
                return seg
        raise MemoryTrap("segmentation-fault", address, "(unmapped)")

    def read_bytes(self, address: int, length: int) -> bytes:
        if length == 0:
            return b""
        seg = self.segment_for(address, length)
        off = address - seg.base
        return bytes(seg.data[off : off + length])

    def write_bytes(self, address: int, data: bytes) -> None:
        if not data:
            return
        seg = self.segment_for(address, len(data))
        off = address - seg.base
        seg.data[off : off + len(data)] = data

    def fill(self, address: int, value: int, length: int) -> None:
        if length < 0:
            raise MemoryTrap("bad-fill", address, f"negative length {length}")
        if length == 0:
            return
        # Validate the range *before* materializing the fill bytes, so a
        # corrupted (huge) size becomes a memory fault, not host exhaustion.
        seg = self.segment_for(address, length)
        off = address - seg.base
        seg.data[off : off + length] = bytes([value & 0xFF]) * length

    # -- typed scalar access ----------------------------------------------

    def read_scalar(self, address: int, ty: Type):
        if isinstance(ty, PointerType):
            raw = self.read_bytes(address, 8)
            return struct.unpack("<Q", raw)[0]
        fmt = self._format_for(ty)
        raw = self.read_bytes(address, struct.calcsize(fmt))
        return struct.unpack(fmt, raw)[0]

    def write_scalar(self, address: int, ty: Type, value) -> None:
        if isinstance(ty, PointerType):
            self.write_bytes(address, struct.pack("<Q", value & ((1 << 64) - 1)))
            return
        fmt = self._format_for(ty)
        if isinstance(ty, IntType):
            value = wrap_int(int(value), max(ty.bits, 8))
        self.write_bytes(address, struct.pack(fmt, value))

    @staticmethod
    def _format_for(ty: Type) -> str:
        if isinstance(ty, IntType):
            return _SCALAR_FORMATS[("int", ty.bits)]
        if isinstance(ty, FloatType):
            return _SCALAR_FORMATS[("float", ty.bits)]
        raise TypeError(f"not a loadable scalar type: {ty}")

    # -- C-string helpers ---------------------------------------------------

    def read_cstring(self, address: int, max_len: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string (trapping on unmapped memory)."""
        out = bytearray()
        addr = address
        while len(out) < max_len:
            b = self.read_bytes(addr, 1)[0]
            if b == 0:
                return bytes(out)
            out.append(b)
            addr += 1
        raise MemoryTrap("runaway-string", address)

    def write_cstring(self, address: int, data: bytes) -> None:
        self.write_bytes(address, data + b"\x00")
