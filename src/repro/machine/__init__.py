"""Simulated machine: memory, heap allocator, interpreter, process runner."""

from .memory import Memory, MemoryTrap, Segment
from .heap import HeapAllocator, HeapError, OutOfMemory, MIN_PAYLOAD
from .interpreter import (
    AppError,
    DpmrDetected,
    ExecutionTrap,
    Machine,
    ProgramExit,
    Timeout,
    DEFAULT_MAX_CYCLES,
)
from .process import ExitStatus, ProcessResult, run_process

__all__ = [
    "AppError",
    "DEFAULT_MAX_CYCLES",
    "DpmrDetected",
    "ExecutionTrap",
    "ExitStatus",
    "HeapAllocator",
    "HeapError",
    "MIN_PAYLOAD",
    "Machine",
    "Memory",
    "MemoryTrap",
    "OutOfMemory",
    "ProcessResult",
    "ProgramExit",
    "Segment",
    "Timeout",
    "run_process",
]
