"""IR interpreter with a deterministic cycle cost model.

The interpreter executes one :class:`~repro.ir.module.Module` against the
simulated memory/heap.  Everything the paper measures maps onto machine
state:

* *overhead* — the ``cycles`` counter (every instruction and allocator
  operation charges simulated cycles);
* *natural detection by crash* — :class:`ExecutionTrap` (memory faults,
  allocator aborts, wild function pointers, division by zero);
* *DPMR detection* — the ``dpmr_detect`` intrinsic raising
  :class:`DpmrDetected`;
* *successful fault injection* (§3.6) — first execution of an instruction
  whose ``fault_site`` is set is recorded with its cycle stamp.
"""

from __future__ import annotations

import operator
import random
import struct
from typing import Callable, Dict, List, Optional, Sequence

from ..ir import instructions as ins
from ..ir.module import Function, GlobalVariable, Module
from ..ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    UnionType,
    VoidType,
    alignof,
    field_offset,
    sizeof,
)
from ..ir.values import (
    ConstFloat,
    ConstInt,
    ConstNull,
    FunctionRef,
    GlobalRef,
    Register,
    wrap_int,
)
from .heap import HeapAllocator, HeapError, OutOfMemory
from .memory import Memory, MemoryTrap

FUNC_ADDR_BASE = 0xF000_0000_0000
FUNC_ADDR_STRIDE = 16

DEFAULT_MAX_CYCLES = 200_000_000


class ExecutionTrap(Exception):
    """Abnormal termination equivalent to a signal exit (a crash)."""

    def __init__(self, kind: str, message: str = ""):
        self.kind = kind
        super().__init__(f"{kind}: {message}" if message else kind)


class Timeout(Exception):
    """Cycle budget exhausted (the paper's ~20x-normal-runtime timeout)."""


class DpmrDetected(Exception):
    """A DPMR state comparison failed: a memory error was detected."""

    def __init__(self, code: int = 0, where: str = ""):
        self.code = code
        self.where = where
        super().__init__(f"DPMR detection (code={code}) {where}".rstrip())


class AppError(Exception):
    """Application-level error detection (error output / error exit)."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"application detected error (code={code})")


class ProgramExit(Exception):
    """Explicit ``exit(code)``."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exit({code})")


def compute_global_layout(module: Module, base: int, end: int) -> Dict[str, int]:
    """Address assignment for a module's globals in ``[base, end)``.

    Factored out of the machine so the compiled tier can fold the exact
    addresses the machine will assign (and the machine can cross-check a
    compiled program against its actual memory geometry at bind time).
    """
    layout: Dict[str, int] = {}
    cursor = base
    for g in module.globals.values():
        a = max(alignof(g.value_type), 8)
        cursor = (cursor + a - 1) // a * a
        size = sizeof(g.value_type)
        if cursor + size > end:
            raise ExecutionTrap("globals-overflow", g.name)
        layout[g.name] = cursor
        cursor += size
    return layout


#: Per-instruction cycle costs.
COSTS = {
    ins.Alloca: 2,
    ins.Load: 2,
    ins.Store: 2,
    ins.FieldAddr: 1,
    ins.ElemAddr: 1,
    ins.PtrCast: 1,
    ins.PtrToInt: 1,
    ins.IntToPtr: 1,
    ins.BinOp: 1,
    ins.Cmp: 1,
    ins.NumCast: 1,
    ins.Call: 4,
    ins.FuncAddr: 1,
    ins.Jump: 1,
    ins.Branch: 1,
    ins.Ret: 2,
    ins.Unreachable: 0,
    ins.Malloc: 0,  # charged by the allocator
    ins.Free: 0,  # charged by the allocator
}

_EXPENSIVE_BINOPS = {"mul": 3, "sdiv": 12, "srem": 12, "fmul": 4, "fdiv": 12}

IntrinsicFn = Callable[["Machine", List], object]


class Machine:
    """Executes a module; one Machine per process run."""

    def __init__(
        self,
        module: Module,
        memory: Optional[Memory] = None,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        seed: int = 0,
        dpmr_runtime=None,
        tracer=None,
        counters: bool = False,
        compiled: bool = False,
    ):
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.heap = HeapAllocator(self.memory)
        self.max_cycles = max_cycles
        self.cycles = 0
        self.instructions_executed = 0
        self.rng = random.Random(seed)
        self.output: List[str] = []
        self.fault_activations: Dict[str, int] = {}
        self.dpmr_runtime = dpmr_runtime
        self.intrinsics: Dict[str, IntrinsicFn] = {}
        self.stack_top = self.memory.stack.base
        # Observability (repro.obs): both default off.  Instrumentation is
        # selected ONCE here — the disabled path binds the original
        # _exec_function and pays nothing per instruction.
        from ..obs.tracer import real_tracer

        self.tracer = real_tracer(tracer)
        self.counters: Optional[Dict[str, int]] = {} if (counters or self.tracer) else None
        self._exec = (
            self._exec_function_instrumented
            if (self.tracer is not None or self.counters is not None)
            else self._exec_function
        )
        # Per-block decoded dispatch tables (id(block) → (steps, terminator)),
        # built lazily on first entry; see _decode_block.
        self._decoded_blocks: Dict[int, tuple] = {}
        self._globals: Dict[str, int] = {}
        self._func_addrs: Dict[str, int] = {}
        self._addr_funcs: Dict[int, str] = {}
        self._assign_function_addresses()
        self._layout_globals()
        from .intrinsics import register_default_intrinsics

        register_default_intrinsics(self)
        if dpmr_runtime is not None:
            dpmr_runtime.attach(self)
        # Compiled tier (repro.machine.compile): opt-in, and only when no
        # observability is requested — tracing/counters keep the
        # instrumented interpreter so observation semantics are untouched.
        # The interpreter above remains the reference engine.
        if compiled and self.tracer is None and self.counters is None:
            from .compile import compiled_program_for, runtime_spec_for

            try:
                program = compiled_program_for(
                    module, runtime_spec_for(dpmr_runtime)
                )
            except Exception:
                program = None  # uncompilable module: interpret everything
            if program is not None and program.global_layout == self._globals:
                self._compiled_fns = program.functions
                self._exec = self._exec_function_compiled

    # -- setup -------------------------------------------------------------

    def _assign_function_addresses(self) -> None:
        for i, name in enumerate(self.module.functions):
            addr = FUNC_ADDR_BASE + i * FUNC_ADDR_STRIDE
            self._func_addrs[name] = addr
            self._addr_funcs[addr] = name

    def _layout_globals(self) -> None:
        self._globals = compute_global_layout(
            self.module, self.memory.globals.base, self.memory.globals.end
        )
        for g in self.module.globals.values():
            self._init_global(g)

    def _init_global(self, g: GlobalVariable) -> None:
        self._write_initializer(self._globals[g.name], g.value_type, g.initializer)

    def _write_initializer(self, addr: int, ty: Type, init) -> None:
        if init is None:
            return  # memory is zero-initialized in the globals segment
        if isinstance(ty, (IntType, FloatType)):
            self.memory.write_scalar(addr, ty, init)
        elif isinstance(ty, PointerType):
            self.memory.write_scalar(addr, ty, self._resolve_pointer_init(init))
        elif isinstance(ty, ArrayType):
            if isinstance(init, (bytes, bytearray)):
                self.memory.write_bytes(addr, bytes(init))
            else:
                esz = sizeof(ty.element)
                for i, item in enumerate(init):
                    self._write_initializer(addr + i * esz, ty.element, item)
        elif isinstance(ty, StructType):
            for i, item in enumerate(init):
                off = field_offset(ty, i)
                self._write_initializer(addr + off, ty.fields[i], item)
        elif isinstance(ty, UnionType):
            self._write_initializer(addr, ty.members[0], init)
        else:
            raise TypeError(f"cannot initialize global of type {ty}")

    def _resolve_pointer_init(self, init) -> int:
        if init == 0 or init is None:
            return 0
        if isinstance(init, GlobalRef):
            return self._globals[init.name]
        if isinstance(init, FunctionRef):
            return self._func_addrs[init.name]
        if isinstance(init, int):
            return init
        raise TypeError(f"bad pointer initializer {init!r}")

    # -- public helpers -----------------------------------------------------

    def global_address(self, name: str) -> int:
        return self._globals[name]

    def function_address(self, name: str) -> int:
        return self._func_addrs[name]

    def register_intrinsic(self, name: str, fn: IntrinsicFn) -> None:
        self.intrinsics[name] = fn

    def charge(self, cycles: int) -> None:
        self.cycles += cycles
        if self.cycles > self.max_cycles:
            raise Timeout(f"exceeded {self.max_cycles} cycles")

    def heap_malloc(self, size: int) -> int:
        try:
            addr = self.heap.malloc(size)
        except OutOfMemory as exc:
            raise ExecutionTrap("out-of-memory", str(exc)) from exc
        except HeapError as exc:
            raise ExecutionTrap("heap-abort", str(exc)) from exc
        self.charge(self.heap.last_cost)
        if self.counters is not None:
            self._observe_heap("malloc", addr, self.heap.last_payload)
        return addr

    def heap_free(self, addr: int) -> None:
        try:
            self.heap.free(addr)
        except HeapError as exc:
            raise ExecutionTrap("heap-abort", str(exc)) from exc
        self.charge(self.heap.last_cost)
        if self.counters is not None:
            self._observe_heap("free", addr, self.heap.last_payload)

    def _observe_heap(self, op: str, addr: int, size: int) -> None:
        """Heap-churn counters + optional trace event (observability on)."""
        from ..obs import counters as oc

        c = self.counters
        if op == "malloc":
            oc.bump(c, oc.HEAP_ALLOC)
            oc.bump(c, oc.HEAP_ALLOC_BYTES, size)
        else:
            oc.bump(c, oc.HEAP_FREE)
            oc.bump(c, oc.HEAP_FREE_BYTES, size)
        tr = self.tracer
        if tr is not None and tr.wants("heap"):
            tr.heap_event(op, addr, size, self.cycles)

    def stack_alloc(self, size: int) -> int:
        a = (self.stack_top + 7) // 8 * 8
        if a + size > self.memory.stack.end:
            raise ExecutionTrap("stack-overflow", f"{size} bytes")
        self.stack_top = a + size
        return a

    # -- execution ----------------------------------------------------------

    def run(self, entry: str = "main", args: Sequence = ()):
        """Run ``entry``; returns its return value (exceptions propagate)."""
        fn = self.module.functions.get(entry)
        if fn is None:
            raise ExecutionTrap("no-entry", entry)
        return self.call(fn, list(args))

    def call(self, fn: Function, args: List):
        if fn.is_external:
            return self.call_intrinsic(fn.name, args)
        if len(args) != len(fn.params):
            raise ExecutionTrap(
                "bad-call", f"{fn.name} expects {len(fn.params)} args, got {len(args)}"
            )
        saved_stack = self.stack_top
        regs: Dict[str, object] = {
            p.name: a for p, a in zip(fn.params, args)
        }
        try:
            return self._exec(fn, regs)
        finally:
            self.stack_top = saved_stack

    def call_intrinsic(self, name: str, args: List):
        fn = self.intrinsics.get(name)
        if fn is None:
            raise ExecutionTrap("unresolved-external", name)
        return fn(self, args)

    def call_by_address(self, addr: int, args: List):
        name = self._addr_funcs.get(addr)
        if name is None:
            raise ExecutionTrap("wild-function-pointer", f"{addr:#x}")
        return self.call(self.module.functions[name], args)

    def _exec_function(self, fn: Function, regs: Dict[str, object]):
        """Fast-path executor: per-opcode handlers from a pre-decoded table.

        Each basic block is decoded once per machine into a list of
        ``(handler, instruction, cost, fault_site)`` steps plus a resolved
        terminator (see :func:`_decode_block`); the execution loop then
        performs one dict hit and straight-line bookkeeping per instruction
        instead of an isinstance chain.
        """
        decoded = self._decoded_blocks
        max_cycles = self.max_cycles
        activations = self.fault_activations
        block = fn.entry
        while True:
            dec = decoded.get(id(block))
            if dec is None:
                dec = decoded[id(block)] = _decode_block(fn, block)
            steps, term = dec
            for handler, inst, cost, fault in steps:
                self.instructions_executed += 1
                c = self.cycles + cost
                self.cycles = c
                if c > max_cycles:
                    raise Timeout(f"exceeded {max_cycles} cycles")
                if fault is not None and fault not in activations:
                    activations[fault] = c
                handler(self, inst, regs)
            if term is None:
                raise ExecutionTrap("fell-off-block", f"{fn.name}/{block.label}")
            tkind, inst, cost, fault, then_block, else_block = term
            self.instructions_executed += 1
            c = self.cycles + cost
            self.cycles = c
            if c > max_cycles:
                raise Timeout(f"exceeded {max_cycles} cycles")
            if fault is not None and fault not in activations:
                activations[fault] = c
            if tkind == _T_BRANCH:
                cond = self._value(inst.cond, regs)
                block = then_block if cond else else_block
                if block is None:
                    raise KeyError(inst.then_target if cond else inst.else_target)
            elif tkind == _T_JUMP:
                block = then_block
                if block is None:
                    raise KeyError(inst.target)
            elif tkind == _T_RET:
                return self._value(inst.value, regs) if inst.value is not None else None
            else:
                raise ExecutionTrap("unreachable", f"in {fn.name}")

    def _exec_function_compiled(self, fn: Function, regs: Dict[str, object]):
        """Compiled-tier dispatch: hand off to the generated specialized
        function, or interpret this one function if codegen declined it
        (its callees still dispatch back through here)."""
        f = self._compiled_fns.get(fn.name)
        if f is None:
            return self._exec_function(fn, regs)
        params = fn.params
        if params:
            return f(self, *[regs[p.name] for p in params])
        return f(self)

    def _exec_function_instrumented(self, fn: Function, regs: Dict[str, object]):
        """Observability twin of :meth:`_exec_function`.

        Selected at construction when a tracer or counters are requested;
        identical control flow, cycle accounting, and trap behaviour — plus
        per-opcode-class counters and trace events.  Kept as a separate loop
        so the disabled path (the method above) stays byte-for-byte the
        pre-observability fast path.
        """
        decoded = self._decoded_blocks
        max_cycles = self.max_cycles
        activations = self.fault_activations
        counters = self.counters
        tracer = self.tracer
        block = fn.entry
        while True:
            dec = decoded.get(id(block))
            if dec is None:
                dec = decoded[id(block)] = _decode_block_instrumented(fn, block, self)
            steps, term, agg = dec
            for handler, inst, cost, fault in steps:
                self.instructions_executed += 1
                c = self.cycles + cost
                self.cycles = c
                if c > max_cycles:
                    raise Timeout(f"exceeded {max_cycles} cycles")
                if fault is not None and fault not in activations:
                    activations[fault] = c
                    if tracer is not None and tracer.wants("fault"):
                        tracer.fault_activation(fault, c)
                handler(self, inst, regs)
            # Opcode-class counts pre-aggregated at decode time: one bump
            # per (block, class) instead of per instruction.  A block cut
            # short by a trap/timeout contributes nothing — counters are
            # diagnostics, deliberately excluded from record signatures.
            for key, n in agg:
                counters[key] = counters.get(key, 0) + n
            if term is None:
                raise ExecutionTrap("fell-off-block", f"{fn.name}/{block.label}")
            tkind, inst, cost, fault, then_block, else_block = term
            self.instructions_executed += 1
            c = self.cycles + cost
            self.cycles = c
            if c > max_cycles:
                raise Timeout(f"exceeded {max_cycles} cycles")
            if fault is not None and fault not in activations:
                activations[fault] = c
                if tracer is not None and tracer.wants("fault"):
                    tracer.fault_activation(fault, c)
            if counters is not None:
                key = _TERMINATOR_KEYS[tkind]
                counters[key] = counters.get(key, 0) + 1
            if tkind == _T_BRANCH:
                cond = self._value(inst.cond, regs)
                block = then_block if cond else else_block
                if block is None:
                    raise KeyError(inst.then_target if cond else inst.else_target)
            elif tkind == _T_JUMP:
                block = then_block
                if block is None:
                    raise KeyError(inst.target)
            elif tkind == _T_RET:
                return self._value(inst.value, regs) if inst.value is not None else None
            else:
                raise ExecutionTrap("unreachable", f"in {fn.name}")

    # -- operand & op evaluation ---------------------------------------------

    def _value(self, v, regs):
        kind = type(v)
        if kind is Register:
            try:
                return regs[v.name]
            except KeyError:
                raise ExecutionTrap("undefined-register", v.name) from None
        if kind is ConstInt:
            return v.value
        if kind is ConstFloat:
            return v.value
        if kind is ConstNull:
            return 0
        if kind is GlobalRef:
            return self._globals[v.name]
        if kind is FunctionRef:
            return self._func_addrs[v.name]
        raise ExecutionTrap("bad-operand", repr(v))

    def _do_call(self, i: ins.Call, regs) -> None:
        args = [self._value(a, regs) for a in i.args]
        if i.is_direct:
            fn = self.module.functions.get(i.callee)
            if fn is None:
                raise ExecutionTrap("unresolved-call", str(i.callee))
            result = self.call(fn, args)
        else:
            addr = self._value(i.callee, regs)
            result = self.call_by_address(addr, args)
        if i.result is not None:
            regs[i.result.name] = result if result is not None else 0


# -- fast-path dispatch -------------------------------------------------------
#
# Each non-terminator opcode gets a module-level handler ``h(machine, inst,
# regs)``; _decode_block resolves handlers, per-instruction cycle costs,
# fault-site ids, and branch targets once per (machine, block), so the inner
# execution loop is a flat iteration over prebound tuples.

_T_BRANCH, _T_JUMP, _T_RET, _T_UNREACHABLE = 0, 1, 2, 3

_F32 = struct.Struct("<f")
_U64_MASK = (1 << 64) - 1


def _arith_result(ty: Type, r):
    if type(ty) is IntType:
        return wrap_int(int(r), ty.bits if ty.bits > 8 else 8)
    if type(ty) is FloatType and ty.bits == 32:
        return _F32.unpack(_F32.pack(r))[0]
    return r


def _make_binop(op_fn):
    def handler(m: "Machine", i: ins.BinOp, regs) -> None:
        r = op_fn(m._value(i.lhs, regs), m._value(i.rhs, regs))
        regs[i.result.name] = _arith_result(i.result.type, r)

    return handler


def _bh_sdiv(m: "Machine", i: ins.BinOp, regs) -> None:
    a = m._value(i.lhs, regs)
    b = m._value(i.rhs, regs)
    if b == 0:
        raise ExecutionTrap("divide-by-zero")
    r = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        r = -r
    regs[i.result.name] = _arith_result(i.result.type, r)


def _bh_srem(m: "Machine", i: ins.BinOp, regs) -> None:
    a = m._value(i.lhs, regs)
    b = m._value(i.rhs, regs)
    if b == 0:
        raise ExecutionTrap("divide-by-zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    regs[i.result.name] = _arith_result(i.result.type, a - q * b)


def _bh_fdiv(m: "Machine", i: ins.BinOp, regs) -> None:
    a = m._value(i.lhs, regs)
    b = m._value(i.rhs, regs)
    if b == 0.0:
        r = float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
    else:
        r = a / b
    regs[i.result.name] = _arith_result(i.result.type, r)


_BINOP_HANDLERS = {
    "add": _make_binop(operator.add),
    "sub": _make_binop(operator.sub),
    "mul": _make_binop(operator.mul),
    "sdiv": _bh_sdiv,
    "srem": _bh_srem,
    "and": _make_binop(operator.and_),
    "or": _make_binop(operator.or_),
    "xor": _make_binop(operator.xor),
    "shl": _make_binop(lambda a, b: a << (b & 63)),
    "shr": _make_binop(lambda a, b: a >> (b & 63)),
    "fadd": _make_binop(operator.add),
    "fsub": _make_binop(operator.sub),
    "fmul": _make_binop(operator.mul),
    "fdiv": _bh_fdiv,
}


def _make_cmp(op_fn):
    def handler(m: "Machine", i: ins.Cmp, regs) -> None:
        regs[i.result.name] = int(op_fn(m._value(i.lhs, regs), m._value(i.rhs, regs)))

    return handler


_CMP_HANDLERS = {
    "eq": _make_cmp(operator.eq),
    "ne": _make_cmp(operator.ne),
    "slt": _make_cmp(operator.lt),
    "sle": _make_cmp(operator.le),
    "sgt": _make_cmp(operator.gt),
    "sge": _make_cmp(operator.ge),
}


def _h_load(m: "Machine", i: ins.Load, regs) -> None:
    addr = m._value(i.pointer, regs)
    regs[i.result.name] = m.memory.read_scalar(addr, i.result.type)


def _h_store(m: "Machine", i: ins.Store, regs) -> None:
    addr = m._value(i.pointer, regs)
    m.memory.write_scalar(addr, i.value.type, m._value(i.value, regs))


def _h_field_addr(m: "Machine", i: ins.FieldAddr, regs) -> None:
    base = m._value(i.pointer, regs)
    regs[i.result.name] = base + field_offset(i.pointer.type.pointee, i.index)


def _h_elem_addr(m: "Machine", i: ins.ElemAddr, regs) -> None:
    base = m._value(i.pointer, regs)
    idx = m._value(i.index, regs)
    regs[i.result.name] = base + idx * sizeof(i.pointer.type.pointee.element)


def _h_call(m: "Machine", i: ins.Call, regs) -> None:
    m._do_call(i, regs)


def _h_alloca(m: "Machine", i: ins.Alloca, regs) -> None:
    count = m._value(i.count, regs) if i.count is not None else 1
    regs[i.result.name] = m.stack_alloc(sizeof(i.allocated_type) * count)


def _h_malloc(m: "Machine", i: ins.Malloc, regs) -> None:
    count = m._value(i.count, regs) if i.count is not None else 1
    regs[i.result.name] = m.heap_malloc(sizeof(i.allocated_type) * count)


def _h_free(m: "Machine", i: ins.Free, regs) -> None:
    m.heap_free(m._value(i.pointer, regs))


def _h_ptrcast(m: "Machine", i, regs) -> None:
    regs[i.result.name] = m._value(i.pointer, regs)


def _h_inttoptr(m: "Machine", i: ins.IntToPtr, regs) -> None:
    regs[i.result.name] = m._value(i.value, regs) & _U64_MASK


def _h_numcast(m: "Machine", i: ins.NumCast, regs) -> None:
    v = m._value(i.value, regs)
    ty = i.result.type
    if type(ty) is IntType:
        regs[i.result.name] = wrap_int(int(v), ty.bits if ty.bits > 8 else 8)
    elif type(ty) is FloatType:
        f = float(v)
        regs[i.result.name] = _F32.unpack(_F32.pack(f))[0] if ty.bits == 32 else f
    else:
        raise ExecutionTrap("bad-cast", str(ty))


def _h_funcaddr(m: "Machine", i: ins.FuncAddr, regs) -> None:
    regs[i.result.name] = m._func_addrs[i.function_name]


def _h_bad_instruction(m: "Machine", i, regs) -> None:
    raise ExecutionTrap("bad-instruction", type(i).__name__)


_HANDLERS = {
    ins.Load: _h_load,
    ins.Store: _h_store,
    ins.FieldAddr: _h_field_addr,
    ins.ElemAddr: _h_elem_addr,
    ins.Call: _h_call,
    ins.Alloca: _h_alloca,
    ins.Malloc: _h_malloc,
    ins.Free: _h_free,
    ins.PtrCast: _h_ptrcast,
    ins.PtrToInt: _h_ptrcast,  # both copy .pointer through unchanged
    ins.IntToPtr: _h_inttoptr,
    ins.NumCast: _h_numcast,
    ins.FuncAddr: _h_funcaddr,
}


def _decode_block(fn: Function, block):
    """Decode ``block`` into (steps, terminator).

    ``steps`` is a list of ``(handler, inst, cost, fault_site)`` for every
    instruction up to (not including) the first terminator; ``terminator``
    is ``(tag, inst, cost, fault_site, then_block, else_block)`` with branch
    targets pre-resolved to block objects (``None`` for unknown labels, which
    trap at execution time exactly like the unresolved lookup used to), or
    ``None`` if the block falls off its end.
    """
    steps: list = []
    for inst in block.instructions:
        k = type(inst)
        if k is ins.Branch:
            return steps, (
                _T_BRANCH,
                inst,
                COSTS.get(k, 1),
                inst.fault_site,
                fn.find_block(inst.then_target),
                fn.find_block(inst.else_target),
            )
        if k is ins.Jump:
            return steps, (
                _T_JUMP,
                inst,
                COSTS.get(k, 1),
                inst.fault_site,
                fn.find_block(inst.target),
                None,
            )
        if k is ins.Ret:
            return steps, (_T_RET, inst, COSTS.get(k, 1), inst.fault_site, None, None)
        if k is ins.Unreachable:
            return steps, (
                _T_UNREACHABLE,
                inst,
                COSTS.get(k, 0),
                inst.fault_site,
                None,
                None,
            )
        if k is ins.BinOp:
            handler = _BINOP_HANDLERS[inst.op]
            cost = _EXPENSIVE_BINOPS.get(inst.op, 1)
        elif k is ins.Cmp:
            handler = _CMP_HANDLERS[inst.op]
            cost = COSTS.get(k, 1)
        else:
            handler = _HANDLERS.get(k, _h_bad_instruction)
            cost = COSTS.get(k, 1)
        steps.append((handler, inst, cost, inst.fault_site))
    return steps, None


# -- instrumented dispatch ----------------------------------------------------
#
# The instrumented executor reuses _decode_block and wraps each step handler
# in a counting closure resolved once at decode time (opcode class, DPMR role
# per repro.obs.counters), so the per-instruction overhead when observability
# IS enabled stays one or two dict increments — and the disabled path above is
# untouched.

_TERMINATOR_KEYS = {
    _T_BRANCH: "op.branch",
    _T_JUMP: "op.jump",
    _T_RET: "op.ret",
    _T_UNREACHABLE: "op.unreachable",
}


def _make_compare_step(handler, key: str, result_name: str):
    from ..obs.counters import COMPARE, COMPARE_FAILED

    def step(m: "Machine", inst, regs) -> None:
        c = m.counters
        c[key] = c.get(key, 0) + 1
        c[COMPARE] = c.get(COMPARE, 0) + 1
        handler(m, inst, regs)
        failed = bool(regs[result_name])
        if failed:
            c[COMPARE_FAILED] = c.get(COMPARE_FAILED, 0) + 1
        tr = m.tracer
        if tr is not None and tr.wants("compare"):
            tr.dpmr_compare(m.cycles, failed)

    return step


def _decode_block_instrumented(fn: Function, block, machine: "Machine"):
    """Like :func:`_decode_block` but returns ``(steps, term, agg)``.

    Opcode-class (and replica-role) counts are pre-aggregated here into
    ``agg`` — a tuple of ``(counter key, count)`` pairs the execution loop
    applies once per block entry — so ordinary instructions keep their raw
    handlers instead of per-instruction counting closures.  Only DPMR
    detection compares still wrap: they observe their result value and may
    emit a trace event, which cannot be aggregated.

    DPMR-role classification (replica loads/stores, detection compares) only
    applies when the machine runs with a DPMR runtime — the transform's
    register-naming conventions are meaningless for plain applications.
    """
    from ..obs import counters as oc

    steps, term = _decode_block(fn, block)
    dpmr = machine.dpmr_runtime is not None
    agg: Dict[str, int] = {}
    wrapped: list = []
    for handler, inst, cost, fault in steps:
        key = oc.OPCODE_CLASSES.get(type(inst), "op.other")
        if dpmr and oc.is_dpmr_compare(inst):
            wrapped.append(
                (_make_compare_step(handler, key, inst.result.name), inst, cost, fault)
            )
            continue
        agg[key] = agg.get(key, 0) + 1
        if dpmr:
            if oc.is_replica_load(inst):
                agg[oc.REPLICA_LOAD] = agg.get(oc.REPLICA_LOAD, 0) + 1
            elif oc.is_replica_store(inst):
                agg[oc.REPLICA_STORE] = agg.get(oc.REPLICA_STORE, 0) + 1
        wrapped.append((handler, inst, cost, fault))
    return wrapped, term, tuple(agg.items())
