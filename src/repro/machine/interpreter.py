"""IR interpreter with a deterministic cycle cost model.

The interpreter executes one :class:`~repro.ir.module.Module` against the
simulated memory/heap.  Everything the paper measures maps onto machine
state:

* *overhead* — the ``cycles`` counter (every instruction and allocator
  operation charges simulated cycles);
* *natural detection by crash* — :class:`ExecutionTrap` (memory faults,
  allocator aborts, wild function pointers, division by zero);
* *DPMR detection* — the ``dpmr_detect`` intrinsic raising
  :class:`DpmrDetected`;
* *successful fault injection* (§3.6) — first execution of an instruction
  whose ``fault_site`` is set is recorded with its cycle stamp.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Dict, List, Optional, Sequence

from ..ir import instructions as ins
from ..ir.module import Function, GlobalVariable, Module
from ..ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    UnionType,
    VoidType,
    alignof,
    field_offset,
    sizeof,
)
from ..ir.values import (
    ConstFloat,
    ConstInt,
    ConstNull,
    FunctionRef,
    GlobalRef,
    Register,
    wrap_int,
)
from .heap import HeapAllocator, HeapError, OutOfMemory
from .memory import Memory, MemoryTrap

FUNC_ADDR_BASE = 0xF000_0000_0000
FUNC_ADDR_STRIDE = 16

DEFAULT_MAX_CYCLES = 200_000_000


class ExecutionTrap(Exception):
    """Abnormal termination equivalent to a signal exit (a crash)."""

    def __init__(self, kind: str, message: str = ""):
        self.kind = kind
        super().__init__(f"{kind}: {message}" if message else kind)


class Timeout(Exception):
    """Cycle budget exhausted (the paper's ~20x-normal-runtime timeout)."""


class DpmrDetected(Exception):
    """A DPMR state comparison failed: a memory error was detected."""

    def __init__(self, code: int = 0, where: str = ""):
        self.code = code
        self.where = where
        super().__init__(f"DPMR detection (code={code}) {where}".rstrip())


class AppError(Exception):
    """Application-level error detection (error output / error exit)."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"application detected error (code={code})")


class ProgramExit(Exception):
    """Explicit ``exit(code)``."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exit({code})")


#: Per-instruction cycle costs.
COSTS = {
    ins.Alloca: 2,
    ins.Load: 2,
    ins.Store: 2,
    ins.FieldAddr: 1,
    ins.ElemAddr: 1,
    ins.PtrCast: 1,
    ins.PtrToInt: 1,
    ins.IntToPtr: 1,
    ins.BinOp: 1,
    ins.Cmp: 1,
    ins.NumCast: 1,
    ins.Call: 4,
    ins.FuncAddr: 1,
    ins.Jump: 1,
    ins.Branch: 1,
    ins.Ret: 2,
    ins.Unreachable: 0,
    ins.Malloc: 0,  # charged by the allocator
    ins.Free: 0,  # charged by the allocator
}

_EXPENSIVE_BINOPS = {"mul": 3, "sdiv": 12, "srem": 12, "fmul": 4, "fdiv": 12}

IntrinsicFn = Callable[["Machine", List], object]


class Machine:
    """Executes a module; one Machine per process run."""

    def __init__(
        self,
        module: Module,
        memory: Optional[Memory] = None,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        seed: int = 0,
        dpmr_runtime=None,
    ):
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.heap = HeapAllocator(self.memory)
        self.max_cycles = max_cycles
        self.cycles = 0
        self.instructions_executed = 0
        self.rng = random.Random(seed)
        self.output: List[str] = []
        self.fault_activations: Dict[str, int] = {}
        self.dpmr_runtime = dpmr_runtime
        self.intrinsics: Dict[str, IntrinsicFn] = {}
        self.stack_top = self.memory.stack.base
        self._globals: Dict[str, int] = {}
        self._func_addrs: Dict[str, int] = {}
        self._addr_funcs: Dict[int, str] = {}
        self._assign_function_addresses()
        self._layout_globals()
        from .intrinsics import register_default_intrinsics

        register_default_intrinsics(self)
        if dpmr_runtime is not None:
            dpmr_runtime.attach(self)

    # -- setup -------------------------------------------------------------

    def _assign_function_addresses(self) -> None:
        for i, name in enumerate(self.module.functions):
            addr = FUNC_ADDR_BASE + i * FUNC_ADDR_STRIDE
            self._func_addrs[name] = addr
            self._addr_funcs[addr] = name

    def _layout_globals(self) -> None:
        cursor = self.memory.globals.base
        for g in self.module.globals.values():
            a = max(alignof(g.value_type), 8)
            cursor = (cursor + a - 1) // a * a
            size = sizeof(g.value_type)
            if cursor + size > self.memory.globals.end:
                raise ExecutionTrap("globals-overflow", g.name)
            self._globals[g.name] = cursor
            cursor += size
        for g in self.module.globals.values():
            self._init_global(g)

    def _init_global(self, g: GlobalVariable) -> None:
        self._write_initializer(self._globals[g.name], g.value_type, g.initializer)

    def _write_initializer(self, addr: int, ty: Type, init) -> None:
        if init is None:
            return  # memory is zero-initialized in the globals segment
        if isinstance(ty, (IntType, FloatType)):
            self.memory.write_scalar(addr, ty, init)
        elif isinstance(ty, PointerType):
            self.memory.write_scalar(addr, ty, self._resolve_pointer_init(init))
        elif isinstance(ty, ArrayType):
            if isinstance(init, (bytes, bytearray)):
                self.memory.write_bytes(addr, bytes(init))
            else:
                esz = sizeof(ty.element)
                for i, item in enumerate(init):
                    self._write_initializer(addr + i * esz, ty.element, item)
        elif isinstance(ty, StructType):
            for i, item in enumerate(init):
                off = field_offset(ty, i)
                self._write_initializer(addr + off, ty.fields[i], item)
        elif isinstance(ty, UnionType):
            self._write_initializer(addr, ty.members[0], init)
        else:
            raise TypeError(f"cannot initialize global of type {ty}")

    def _resolve_pointer_init(self, init) -> int:
        if init == 0 or init is None:
            return 0
        if isinstance(init, GlobalRef):
            return self._globals[init.name]
        if isinstance(init, FunctionRef):
            return self._func_addrs[init.name]
        if isinstance(init, int):
            return init
        raise TypeError(f"bad pointer initializer {init!r}")

    # -- public helpers -----------------------------------------------------

    def global_address(self, name: str) -> int:
        return self._globals[name]

    def function_address(self, name: str) -> int:
        return self._func_addrs[name]

    def register_intrinsic(self, name: str, fn: IntrinsicFn) -> None:
        self.intrinsics[name] = fn

    def charge(self, cycles: int) -> None:
        self.cycles += cycles
        if self.cycles > self.max_cycles:
            raise Timeout(f"exceeded {self.max_cycles} cycles")

    def heap_malloc(self, size: int) -> int:
        try:
            addr = self.heap.malloc(size)
        except OutOfMemory as exc:
            raise ExecutionTrap("out-of-memory", str(exc)) from exc
        except HeapError as exc:
            raise ExecutionTrap("heap-abort", str(exc)) from exc
        self.charge(self.heap.last_cost)
        return addr

    def heap_free(self, addr: int) -> None:
        try:
            self.heap.free(addr)
        except HeapError as exc:
            raise ExecutionTrap("heap-abort", str(exc)) from exc
        self.charge(self.heap.last_cost)

    def stack_alloc(self, size: int) -> int:
        a = (self.stack_top + 7) // 8 * 8
        if a + size > self.memory.stack.end:
            raise ExecutionTrap("stack-overflow", f"{size} bytes")
        self.stack_top = a + size
        return a

    # -- execution ----------------------------------------------------------

    def run(self, entry: str = "main", args: Sequence = ()):
        """Run ``entry``; returns its return value (exceptions propagate)."""
        fn = self.module.functions.get(entry)
        if fn is None:
            raise ExecutionTrap("no-entry", entry)
        return self.call(fn, list(args))

    def call(self, fn: Function, args: List):
        if fn.is_external:
            return self.call_intrinsic(fn.name, args)
        if len(args) != len(fn.params):
            raise ExecutionTrap(
                "bad-call", f"{fn.name} expects {len(fn.params)} args, got {len(args)}"
            )
        saved_stack = self.stack_top
        regs: Dict[str, object] = {
            p.name: a for p, a in zip(fn.params, args)
        }
        try:
            return self._exec_function(fn, regs)
        finally:
            self.stack_top = saved_stack

    def call_intrinsic(self, name: str, args: List):
        fn = self.intrinsics.get(name)
        if fn is None:
            raise ExecutionTrap("unresolved-external", name)
        return fn(self, args)

    def call_by_address(self, addr: int, args: List):
        name = self._addr_funcs.get(addr)
        if name is None:
            raise ExecutionTrap("wild-function-pointer", f"{addr:#x}")
        return self.call(self.module.functions[name], args)

    def _exec_function(self, fn: Function, regs: Dict[str, object]):
        block = fn.entry
        memory = self.memory
        while True:
            jumped = False
            for i in block.instructions:
                self.instructions_executed += 1
                cost = COSTS.get(type(i), 1)
                if isinstance(i, ins.BinOp):
                    cost = _EXPENSIVE_BINOPS.get(i.op, 1)
                self.charge(cost)
                if i.fault_site is not None and i.fault_site not in self.fault_activations:
                    self.fault_activations[i.fault_site] = self.cycles

                kind = type(i)
                if kind is ins.Load:
                    addr = self._value(i.pointer, regs)
                    regs[i.result.name] = memory.read_scalar(addr, i.result.type)
                elif kind is ins.Store:
                    addr = self._value(i.pointer, regs)
                    memory.write_scalar(addr, i.value.type, self._value(i.value, regs))
                elif kind is ins.BinOp:
                    regs[i.result.name] = self._binop(i, regs)
                elif kind is ins.Cmp:
                    regs[i.result.name] = self._cmp(i, regs)
                elif kind is ins.FieldAddr:
                    base = self._value(i.pointer, regs)
                    st = i.pointer.type.pointee
                    regs[i.result.name] = base + field_offset(st, i.index)
                elif kind is ins.ElemAddr:
                    base = self._value(i.pointer, regs)
                    elem = i.pointer.type.pointee.element
                    idx = self._value(i.index, regs)
                    regs[i.result.name] = base + idx * sizeof(elem)
                elif kind is ins.Call:
                    self._do_call(i, regs)
                elif kind is ins.Branch:
                    cond = self._value(i.cond, regs)
                    target = i.then_target if cond else i.else_target
                    block = fn.block(target)
                    jumped = True
                    break
                elif kind is ins.Jump:
                    block = fn.block(i.target)
                    jumped = True
                    break
                elif kind is ins.Ret:
                    return self._value(i.value, regs) if i.value is not None else None
                elif kind is ins.Alloca:
                    count = self._value(i.count, regs) if i.count is not None else 1
                    regs[i.result.name] = self.stack_alloc(
                        sizeof(i.allocated_type) * count
                    )
                elif kind is ins.Malloc:
                    count = self._value(i.count, regs) if i.count is not None else 1
                    regs[i.result.name] = self.heap_malloc(
                        sizeof(i.allocated_type) * count
                    )
                elif kind is ins.Free:
                    self.heap_free(self._value(i.pointer, regs))
                elif kind is ins.PtrCast:
                    regs[i.result.name] = self._value(i.pointer, regs)
                elif kind is ins.PtrToInt:
                    regs[i.result.name] = self._value(i.pointer, regs)
                elif kind is ins.IntToPtr:
                    regs[i.result.name] = self._value(i.value, regs) & ((1 << 64) - 1)
                elif kind is ins.NumCast:
                    regs[i.result.name] = self._numcast(i, regs)
                elif kind is ins.FuncAddr:
                    regs[i.result.name] = self._func_addrs[i.function_name]
                elif kind is ins.Unreachable:
                    raise ExecutionTrap("unreachable", f"in {fn.name}")
                else:  # pragma: no cover - defensive
                    raise ExecutionTrap("bad-instruction", type(i).__name__)
            if not jumped:
                raise ExecutionTrap("fell-off-block", f"{fn.name}/{block.label}")

    # -- operand & op evaluation ---------------------------------------------

    def _value(self, v, regs):
        kind = type(v)
        if kind is Register:
            try:
                return regs[v.name]
            except KeyError:
                raise ExecutionTrap("undefined-register", v.name) from None
        if kind is ConstInt:
            return v.value
        if kind is ConstFloat:
            return v.value
        if kind is ConstNull:
            return 0
        if kind is GlobalRef:
            return self._globals[v.name]
        if kind is FunctionRef:
            return self._func_addrs[v.name]
        raise ExecutionTrap("bad-operand", repr(v))

    def _binop(self, i: ins.BinOp, regs):
        a = self._value(i.lhs, regs)
        b = self._value(i.rhs, regs)
        op = i.op
        if op == "add":
            r = a + b
        elif op == "sub":
            r = a - b
        elif op == "mul":
            r = a * b
        elif op == "sdiv":
            if b == 0:
                raise ExecutionTrap("divide-by-zero")
            r = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                r = -r
        elif op == "srem":
            if b == 0:
                raise ExecutionTrap("divide-by-zero")
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            r = a - q * b
        elif op == "and":
            r = a & b
        elif op == "or":
            r = a | b
        elif op == "xor":
            r = a ^ b
        elif op == "shl":
            r = a << (b & 63)
        elif op == "shr":
            r = a >> (b & 63)
        elif op == "fadd":
            r = a + b
        elif op == "fsub":
            r = a - b
        elif op == "fmul":
            r = a * b
        elif op == "fdiv":
            if b == 0.0:
                r = float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
            else:
                r = a / b
        else:  # pragma: no cover - verified at construction
            raise ExecutionTrap("bad-op", op)
        ty = i.result.type
        if isinstance(ty, IntType):
            return wrap_int(int(r), max(ty.bits, 8))
        if isinstance(ty, FloatType) and ty.bits == 32:
            return struct.unpack("<f", struct.pack("<f", r))[0]
        return r

    def _cmp(self, i: ins.Cmp, regs) -> int:
        a = self._value(i.lhs, regs)
        b = self._value(i.rhs, regs)
        op = i.op
        if op == "eq":
            return int(a == b)
        if op == "ne":
            return int(a != b)
        if op == "slt":
            return int(a < b)
        if op == "sle":
            return int(a <= b)
        if op == "sgt":
            return int(a > b)
        return int(a >= b)

    def _numcast(self, i: ins.NumCast, regs):
        v = self._value(i.value, regs)
        ty = i.result.type
        if isinstance(ty, IntType):
            return wrap_int(int(v), max(ty.bits, 8))
        if isinstance(ty, FloatType):
            f = float(v)
            if ty.bits == 32:
                return struct.unpack("<f", struct.pack("<f", f))[0]
            return f
        raise ExecutionTrap("bad-cast", str(ty))

    def _do_call(self, i: ins.Call, regs) -> None:
        args = [self._value(a, regs) for a in i.args]
        if i.is_direct:
            fn = self.module.functions.get(i.callee)
            if fn is None:
                raise ExecutionTrap("unresolved-call", str(i.callee))
            result = self.call(fn, args)
        else:
            addr = self._value(i.callee, regs)
            result = self.call_by_address(addr, args)
        if i.result is not None:
            regs[i.result.name] = result if result is not None else 0
