"""Process-level runner: executes a module's ``main`` and classifies the exit.

Maps interpreter outcomes onto the exit statuses of the experimental
framework (§3.6): normal exit, crash (signal exit), timeout, DPMR detection,
and application-level error detection.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.module import Module
from ..ir.types import IntType, PointerType, VoidType
from ..obs.tracer import real_tracer
from .interpreter import (
    AppError,
    DpmrDetected,
    ExecutionTrap,
    Machine,
    ProgramExit,
    Timeout,
    DEFAULT_MAX_CYCLES,
)
from .memory import MemoryTrap


class ExitStatus(enum.Enum):
    """How a run ended."""

    NORMAL = "normal"
    CRASH = "crash"
    TIMEOUT = "timeout"
    DPMR_DETECTED = "dpmr-detected"
    APP_ERROR = "app-error"


@dataclass
class ProcessResult:
    """Everything the evaluation framework records about one run (§3.6)."""

    status: ExitStatus
    exit_code: int
    output: List[str]
    cycles: int
    instructions: int
    fault_activations: Dict[str, int] = field(default_factory=dict)
    detail: str = ""
    #: machine counters (repro.obs.counters), present only when the run was
    #: executed with observability enabled; excluded from record signatures.
    counters: Optional[Dict[str, int]] = None

    @property
    def output_text(self) -> str:
        return "".join(self.output)

    @property
    def crashed(self) -> bool:
        return self.status is ExitStatus.CRASH

    @property
    def first_activation(self) -> Optional[int]:
        """Cycle stamp of the first successful fault injection, if any."""
        if not self.fault_activations:
            return None
        return min(self.fault_activations.values())


def run_process(
    module: Module,
    argv: Sequence[str] = (),
    max_cycles: int = DEFAULT_MAX_CYCLES,
    seed: int = 0,
    dpmr_runtime=None,
    entry: str = "main",
    tracer=None,
    counters: bool = False,
    trace_meta: Optional[Dict] = None,
    compiled: bool = False,
) -> ProcessResult:
    """Run ``module`` to completion and classify the outcome.

    ``argv`` strings are materialized on the heap and passed as
    ``(argc, argv)`` when ``main`` declares parameters (§3.1.1); a
    zero-parameter ``main`` is also accepted.

    ``tracer``/``counters`` enable observability (repro.obs); ``trace_meta``
    identifies the run in the trace (keys ``run_id``, ``workload``,
    ``variant``, ``site``, ``run``, ``golden_output``) — run-start/run-end
    events bracket the execution so the trace alone reproduces the record.

    ``compiled`` selects the compiled execution tier (bit-identical records;
    ignored whenever observability forces the instrumented interpreter).
    """
    # Raising the recursion limit is cheap but not free on the campaign hot
    # path (thousands of runs); skip the set/restore pair entirely once the
    # process-wide limit is already high enough.
    old_limit = sys.getrecursionlimit()
    raised_limit = old_limit < 20000
    if raised_limit:
        sys.setrecursionlimit(20000)
    machine = Machine(
        module,
        max_cycles=max_cycles,
        seed=seed,
        dpmr_runtime=dpmr_runtime,
        tracer=tracer,
        counters=counters,
        compiled=compiled,
    )
    tr = real_tracer(tracer)
    if tr is not None:
        meta = trace_meta or {}
        tr.run_start(
            run_id=meta.get("run_id", entry),
            workload=meta.get("workload", ""),
            variant=meta.get("variant", ""),
            site=meta.get("site"),
            run=meta.get("run", 0),
            seed=seed,
            golden_output=meta.get("golden_output", ""),
        )
    try:
        args = _build_main_args(machine, module, argv, entry)
        try:
            rv = machine.run(entry, args)
            code = int(rv) if rv is not None else 0
            status = ExitStatus.NORMAL
            detail = ""
        except ProgramExit as exc:
            code = exc.code
            status = ExitStatus.NORMAL
            detail = ""
        except DpmrDetected as exc:
            code = 0
            status = ExitStatus.DPMR_DETECTED
            detail = str(exc)
        except AppError as exc:
            code = exc.code
            status = ExitStatus.APP_ERROR
            detail = str(exc)
        except Timeout as exc:
            code = 0
            status = ExitStatus.TIMEOUT
            detail = str(exc)
        except (ExecutionTrap, MemoryTrap) as exc:
            code = 0
            status = ExitStatus.CRASH
            detail = str(exc)
        except RecursionError:
            code = 0
            status = ExitStatus.CRASH
            detail = "stack overflow (host recursion limit)"
        result = ProcessResult(
            status=status,
            exit_code=code,
            output=machine.output,
            cycles=machine.cycles,
            instructions=machine.instructions_executed,
            fault_activations=dict(machine.fault_activations),
            detail=detail,
            counters=dict(machine.counters) if machine.counters is not None else None,
        )
        if tr is not None:
            tr.run_end(
                status=status.value,
                exit_code=code,
                cycles=machine.cycles,
                instructions=machine.instructions_executed,
                output=result.output_text,
                detail=detail,
                counters=result.counters,
            )
        return result
    finally:
        # The machine is private to this call and the result is fully
        # materialized (output strings, copied dicts) before we get here, so
        # its segment buffers can go back to the reuse pool.
        machine.memory.release()
        if raised_limit:
            sys.setrecursionlimit(old_limit)


def _build_main_args(
    machine: Machine, module: Module, argv: Sequence[str], entry: str
) -> List:
    fn = module.functions.get(entry)
    if fn is None:
        return []
    nparams = len(fn.type.params)
    if nparams == 0:
        return []
    if nparams >= 2 and isinstance(fn.type.params[0], IntType):
        argc, argv_addr = _materialize_argv(machine, argv)
        extra = [0] * (nparams - 2)  # replica/shadow argv filled by DPMR main
        return [argc, argv_addr] + extra
    raise ValueError(f"unsupported main signature: {fn.type}")


def _materialize_argv(machine: Machine, argv: Sequence[str]):
    """Write ``argv`` strings and the pointer array to the heap."""
    ptrs: List[int] = []
    for arg in argv:
        data = arg.encode("latin-1")
        addr = machine.heap_malloc(len(data) + 1)
        machine.memory.write_cstring(addr, data)
        ptrs.append(addr)
    table = machine.heap_malloc(8 * (len(ptrs) + 1))
    for i, p in enumerate(ptrs):
        machine.memory.write_scalar(table + 8 * i, _PTR, p)
    machine.memory.write_scalar(table + 8 * len(ptrs), _PTR, 0)
    return len(ptrs), table


from ..ir.types import VOID  # noqa: E402

_PTR = PointerType(VOID)
