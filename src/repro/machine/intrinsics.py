"""Default external ("intrinsic") functions.

These play the role of libc and the OS in the paper: they are *external code*
that the DPMR transformation does not see (§2.8).  DPMR-transformed modules
do not call these directly — the transformation reroutes every external call
to an *external function wrapper* (``<name>_efw``, see
:mod:`repro.core.wrappers`) that performs the replica/shadow bookkeeping and
then invokes the underlying intrinsic.

Each intrinsic charges simulated cycles proportional to the work performed so
that external work participates in the overhead metric.
"""

from __future__ import annotations

from typing import List

from .interpreter import (
    AppError,
    DpmrDetected,
    ExecutionTrap,
    Machine,
    ProgramExit,
)


def register_default_intrinsics(machine: Machine) -> None:
    reg = machine.register_intrinsic
    reg("print_i64", _print_i64)
    reg("print_f64", _print_f64)
    reg("print_str", _print_str)
    reg("putchar", _putchar)
    reg("exit", _exit)
    reg("abort", _abort)
    reg("app_error", _app_error)
    reg("strlen", _strlen)
    reg("strcpy", _strcpy)
    reg("strcmp", _strcmp)
    reg("atoi", _atoi)
    reg("atof", _atof)
    reg("memcpy", _memcpy)
    reg("memmove", _memmove)
    reg("memset", _memset)
    reg("qsort", _qsort)
    reg("dpmr_detect", _dpmr_detect)
    reg("dpmr_replica_malloc", _dpmr_replica_malloc)
    reg("dpmr_replica_free", _dpmr_replica_free)


# -- output / control ---------------------------------------------------------


def _print_i64(m: Machine, args: List):
    m.charge(10)
    m.output.append(str(args[0]))
    return None


def _print_f64(m: Machine, args: List):
    m.charge(12)
    m.output.append(f"{args[0]:.6g}")
    return None


def _print_str(m: Machine, args: List):
    data = m.memory.read_cstring(args[0])
    m.charge(5 + len(data))
    m.output.append(data.decode("latin-1"))
    return None


def _putchar(m: Machine, args: List):
    m.charge(3)
    m.output.append(chr(args[0] & 0xFF))
    return None


def _exit(m: Machine, args: List):
    raise ProgramExit(int(args[0]))


def _abort(m: Machine, args: List):
    raise ExecutionTrap("abort", "program called abort()")


def _app_error(m: Machine, args: List):
    raise AppError(int(args[0]))


# -- string functions ----------------------------------------------------------


def _strlen(m: Machine, args: List):
    s = m.memory.read_cstring(args[0])
    m.charge(2 + len(s))
    return len(s)


def _strcpy(m: Machine, args: List):
    dest, src = args
    data = m.memory.read_cstring(src)
    m.charge(3 + 2 * len(data))
    m.memory.write_cstring(dest, data)
    return dest


def _strcmp(m: Machine, args: List):
    a = m.memory.read_cstring(args[0])
    b = m.memory.read_cstring(args[1])
    m.charge(2 + min(len(a), len(b)))
    if a == b:
        return 0
    return -1 if a < b else 1


def _atoi(m: Machine, args: List):
    s = m.memory.read_cstring(args[0]).decode("latin-1").strip()
    m.charge(5 + len(s))
    digits = ""
    for i, c in enumerate(s):
        if i == 0 and c in "+-":
            digits += c
        elif c.isdigit():
            digits += c
        else:
            break
    try:
        return int(digits)
    except ValueError:
        return 0


def _atof(m: Machine, args: List):
    s = m.memory.read_cstring(args[0]).decode("latin-1").strip()
    m.charge(8 + len(s))
    prefix = _float_prefix(s)
    try:
        return float(prefix) if prefix else 0.0
    except ValueError:
        return 0.0


def _float_prefix(s: str) -> str:
    """The longest prefix of ``s`` parseable as a float (atof semantics)."""
    best = ""
    cur = ""
    for ch in s:
        cand = cur + ch
        if not _could_extend_to_float(cand):
            break
        cur = cand
        try:
            float(cand)
            best = cand
        except ValueError:
            pass
    return best


def _could_extend_to_float(text: str) -> bool:
    """Whether ``text`` is (or could still grow into) a valid float literal."""
    if text in ("", "+", "-", ".", "+.", "-."):
        return True
    for suffix in ("", "0", "e0"):
        try:
            float(text + suffix)
            return True
        except ValueError:
            continue
    return False


# -- memory functions ------------------------------------------------------------


def _memcpy(m: Machine, args: List):
    dest, src, n = args
    n = max(0, n)
    m.charge(4 + n // 4)
    data = m.memory.read_bytes(src, n)
    m.memory.write_bytes(dest, data)
    return dest


def _memmove(m: Machine, args: List):
    return _memcpy(m, args)  # byte-level snapshot copy is move-safe


def _memset(m: Machine, args: List):
    dest, c, n = args
    n = max(0, n)
    m.charge(4 + n // 8)
    m.memory.fill(dest, c, n)
    return dest


def _qsort(m: Machine, args: List):
    base, nmemb, size, cmp_fn = args
    _qsort_run(m, base, nmemb, size, lambda a, b: m.call_by_address(cmp_fn, [a, b]))
    return None


def _qsort_run(m: Machine, base: int, nmemb: int, size: int, compare) -> None:
    """Sort ``nmemb`` elements of ``size`` bytes in place (insertion sort).

    Insertion sort keeps the element movement observable byte-by-byte and is
    fine at simulator scales; comparison callbacks charge their own cycles.
    """
    mem = m.memory
    for i in range(1, nmemb):
        key = mem.read_bytes(base + i * size, size)
        j = i - 1
        while j >= 0:
            m.charge(6 + size // 4)
            if compare(base + j * size, base + i * size) <= 0:
                break
            j -= 1
        # shift (j+1 .. i-1) right by one slot
        if j + 1 != i:
            block = mem.read_bytes(base + (j + 1) * size, (i - j - 1) * size)
            mem.write_bytes(base + (j + 2) * size, block)
            mem.write_bytes(base + (j + 1) * size, key)


# -- DPMR runtime hooks -------------------------------------------------------------


def _dpmr_detect(m: Machine, args: List):
    code = int(args[0]) if args else 0
    tr = m.tracer
    if tr is not None and tr.wants("detect"):
        tr.dpmr_detection(code, m.cycles)
    raise DpmrDetected(code)


def _dpmr_replica_malloc(m: Machine, args: List):
    size = int(args[0])
    runtime = m.dpmr_runtime
    if runtime is not None:
        return runtime.replica_malloc(m, size)
    return m.heap_malloc(size)


def _dpmr_replica_free(m: Machine, args: List):
    addr = int(args[0])
    runtime = m.dpmr_runtime
    if runtime is not None:
        runtime.replica_free(m, addr)
        return None
    m.heap_free(addr)
    return None
