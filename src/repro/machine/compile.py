"""Compiled execution tier: codegen caching and program binding.

:func:`compiled_program_for` turns a :class:`~repro.ir.module.Module` into
a :class:`CompiledProgram` — one specialized Python callable per internal
function (see :mod:`repro.machine.codegen`) sharing a single exec
namespace so direct calls are plain global lookups.

Caching is content-addressed with the same key discipline as
``IncrementalDpmrCompiler`` (which imports :func:`content_cache_key` from
here): a code object is cached under ``(function name, sha256 of the
generated source)``.  The generated source embeds every context-dependent
fold (global/function addresses, the callee table), so the key subsumes
the variant fingerprint — two variants whose transform produced the same
function text share one code object, and a warm campaign compiles each
faulty function exactly once.  A second, cheaper level memoizes the code
object directly on the ``Function`` (keyed by a digest of the module
context): ``Module.clone`` shares untouched functions by identity, so
campaign clones skip even source generation.

Fallback rules (the interpreter is always the reference engine):

* a function the generator rejects (or whose generation raises) gets no
  compiled body; callers reach it through a shim that re-enters
  ``Machine.call``, which interprets it;
* a machine whose memory geometry gives globals different addresses than
  the default layout refuses the compiled program entirely (checked by
  ``Machine.__init__`` against ``global_layout``).
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Callable, Dict, Optional, Tuple

from ..ir.module import Function, Module
from ..ir.types import FloatType, IntType, VOID_PTR
from .codegen import CodegenUnsupported, ProgramContext, generate_function_source, sanitize
from .interpreter import (
    FUNC_ADDR_BASE,
    FUNC_ADDR_STRIDE,
    ExecutionTrap,
    Timeout,
    compute_global_layout,
)
from .memory import _SCALAR_STRUCTS, _U64, DEFAULT_GLOBALS_SIZE, GLOBALS_BASE

import struct as _struct

_F32 = _struct.Struct("<f")


def content_cache_key(name: str, content_hash: str) -> Tuple[str, str]:
    """The shared cache key shape: ``(unit name, content digest)``.

    Used both by the codegen code cache below and by
    ``IncrementalDpmrCompiler``'s per-function transform memo, so every
    content-addressed cache in the pipeline keys the same way.
    """
    return (name, content_hash)


#: Codegen cache behaviour for the current process.  "hits" counts code
#: objects served from either cache level; "misses" counts fresh
#: generations (including generations that concluded "unsupported").
CODEGEN_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def codegen_stats() -> Dict[str, int]:
    """A snapshot of :data:`CODEGEN_STATS` (safe to diff across calls)."""
    return dict(CODEGEN_STATS)


def reset_codegen_stats() -> None:
    CODEGEN_STATS["hits"] = 0
    CODEGEN_STATS["misses"] = 0


#: content-addressed code objects: content_cache_key(...) → code object.
_CODE_CACHE: Dict[Tuple[str, str], object] = {}


def _bto(m, costs) -> None:
    """Batch-timeout replay: the batch accounting proved this batch crosses
    ``max_cycles``, so re-run the interpreter's exact per-instruction
    bookkeeping until the crossing instruction raises.  Always raises."""
    c = m.cycles
    mx = m.max_cycles
    for cost in costs:
        m.instructions_executed += 1
        c += cost
        m.cycles = c
        if c > mx:
            raise Timeout(f"exceeded {mx} cycles")
    raise AssertionError("batch flagged as crossing but no step crossed")


def _f32(r):
    """The interpreter's float32 round-trip (``_arith_result``)."""
    return _F32.unpack(_F32.pack(r))[0]


def _fdiv(a, b):
    """Bit-exact twin of the interpreter's ``_bh_fdiv`` core."""
    if b == 0.0:
        return float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
    return a / b


def _base_namespace() -> Dict[str, object]:
    ns: Dict[str, object] = {
        "ExecutionTrap": ExecutionTrap,
        "_bto": _bto,
        "_f32": _f32,
        "_fdiv": _fdiv,
        "_PTR": VOID_PTR,
    }
    # The same prebuilt Structs the memory system uses, pre-bound to their
    # unpack_from/pack_into methods ("b" covers int1 and int8; "<Q" is the
    # raw-pointer format).
    for (kind, bits), s in _SCALAR_STRUCTS.items():
        suffix = s.format.lstrip("<")
        ns[f"_up_{suffix}"] = s.unpack_from
        ns[f"_pk_{suffix}"] = s.pack_into
        ty = IntType(bits) if kind == "int" else FloatType(bits)
        ns[f"_T{'i' if kind == 'int' else 'f'}{bits}"] = ty
    ns["_up_Q"] = _U64.unpack_from
    ns["_pk_Q"] = _U64.pack_into
    return ns


BASE_NS = _base_namespace()


def _interp_shim(fn: Function) -> Callable:
    """Callable standing in for a function codegen could not lower: re-enter
    the machine, whose compiled dispatch misses and interprets it."""

    def shim(m, *args):
        return m.call(fn, list(args))

    return shim


class CompiledProgram:
    """Everything a Machine needs to run a module on the compiled tier."""

    def __init__(self, module: Module):
        self.global_layout = compute_global_layout(
            module, GLOBALS_BASE, GLOBALS_BASE + DEFAULT_GLOBALS_SIZE
        )
        func_addrs = {
            name: FUNC_ADDR_BASE + i * FUNC_ADDR_STRIDE
            for i, name in enumerate(module.functions)
        }
        fn_info: Dict[str, Tuple[str, int, bool]] = {}
        for i, (name, fn) in enumerate(module.functions.items()):
            fn_info[name] = (f"_f{i}_{sanitize(name)[:40]}", len(fn.params), fn.is_external)
        ctx = ProgramContext(self.global_layout, func_addrs, fn_info)
        ctx_key = self._context_digest(ctx)

        ns = dict(BASE_NS)
        #: IR function name → compiled callable; misses interpret.
        self.functions: Dict[str, Callable] = {}
        for name, fn in module.functions.items():
            if fn.is_external:
                continue
            pyname = fn_info[name][0]
            code = _code_for(fn, ctx, ctx_key, pyname)
            if code is None:
                ns[pyname] = _interp_shim(fn)
                continue
            exec(code, ns)
            self.functions[name] = ns[pyname]

    @staticmethod
    def _context_digest(ctx: ProgramContext) -> str:
        h = hashlib.sha256()
        for name, info in ctx.fn_info.items():
            h.update(f"{name}\x00{info}\x00".encode())
        for name, addr in ctx.global_layout.items():
            h.update(f"{name}\x01{addr}\x00".encode())
        return h.hexdigest()


def _code_for(fn: Function, ctx: ProgramContext, ctx_key: str, pyname: str):
    """Code object for ``fn`` (or None if uncompilable), through both cache
    levels: the on-Function memo, then the content-addressed code cache."""
    memo = getattr(fn, "_cg_cache", None)
    if memo is not None and memo[0] == ctx_key:
        CODEGEN_STATS["hits"] += 1
        return memo[1]
    try:
        src = generate_function_source(fn, ctx, pyname)
    except Exception:
        # CodegenUnsupported, or anything layout/operand-shaped the
        # generator tripped over at fold time: interpret this function.
        CODEGEN_STATS["misses"] += 1
        fn._cg_cache = (ctx_key, None)
        return None
    key = content_cache_key(fn.name, hashlib.sha256(src.encode()).hexdigest())
    code = _CODE_CACHE.get(key)
    if code is None:
        CODEGEN_STATS["misses"] += 1
        code = compile(src, f"<dpmr-codegen:{fn.name}>", "exec")
        _CODE_CACHE[key] = code
    else:
        CODEGEN_STATS["hits"] += 1
    fn._cg_cache = (ctx_key, code)
    return code


#: module → CompiledProgram, weak on the module so campaign clones are
#: collectable (CompiledProgram must hold no strong module reference).
_PROGRAMS: "weakref.WeakKeyDictionary[Module, CompiledProgram]" = (
    weakref.WeakKeyDictionary()
)


def compiled_program_for(module: Module) -> CompiledProgram:
    program = _PROGRAMS.get(module)
    if program is None:
        program = CompiledProgram(module)
        _PROGRAMS[module] = program
    return program
