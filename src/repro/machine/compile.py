"""Compiled execution tier: codegen caching and program binding.

:func:`compiled_program_for` turns a :class:`~repro.ir.module.Module` into
a :class:`CompiledProgram` — one specialized Python callable per internal
function (see :mod:`repro.machine.codegen`) sharing a single exec
namespace so direct calls are plain global lookups.

Caching is content-addressed with the same key discipline as
``IncrementalDpmrCompiler`` (which imports :func:`content_cache_key` from
here): a code object is cached under ``(function name, sha256 of the
generated source)``.  The generated source embeds every context-dependent
fold (global/function addresses, the callee table), so the key subsumes
the variant fingerprint — two variants whose transform produced the same
function text share one code object, and a warm campaign compiles each
faulty function exactly once.  A second, cheaper level memoizes the code
object directly on the ``Function`` (keyed by a digest of the module
context): ``Module.clone`` shares untouched functions by identity, so
campaign clones skip even source generation.

Fallback rules (the interpreter is always the reference engine):

* a function the generator rejects (or whose generation raises) gets no
  compiled body; callers reach it through a shim that re-enters
  ``Machine.call``, which interprets it;
* a machine whose memory geometry gives globals different addresses than
  the default layout refuses the compiled program entirely (checked by
  ``Machine.__init__`` against ``global_layout``).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import weakref
from typing import Callable, Dict, Optional, Tuple

from ..ir.module import Function, Module
from ..ir.types import FloatType, IntType, VOID_PTR
from .codegen import (
    CODEGEN_VERSION,
    CodegenUnsupported,
    GeneratedFunction,
    ProgramContext,
    complete_function_delta,
    generate_function,
    plan_function_delta,
    sanitize,
)
from .interpreter import (
    FUNC_ADDR_BASE,
    FUNC_ADDR_STRIDE,
    ExecutionTrap,
    Timeout,
    compute_global_layout,
)
from .memory import _SCALAR_STRUCTS, _U64, DEFAULT_GLOBALS_SIZE, GLOBALS_BASE

import struct as _struct

_F32 = _struct.Struct("<f")


def content_cache_key(name: str, content_hash: str) -> Tuple[str, str]:
    """The shared cache key shape: ``(unit name, content digest)``.

    Used both by the codegen code cache below and by
    ``IncrementalDpmrCompiler``'s per-function transform memo, so every
    content-addressed cache in the pipeline keys the same way.
    """
    return (name, content_hash)


#: Codegen cache behaviour for the current process.  "hits" counts code
#: objects served without compiling fresh source (on-Function memo, delta
#: cache, persistent cache, or the content-addressed code cache after a
#: delta reassembly); "misses" counts freshly compiled generations
#: (including generations that concluded "unsupported").  The remaining
#: keys break hits down: "delta_hits" were served from the in-process or
#: persistent per-site delta cache, "persistent_hits" from the on-disk
#: source cache specifically, and "delta_builds" counts delta
#: *assemblies* (partial regenerations — cheaper than a full generation
#: whichever way the resulting source then resolves).
CODEGEN_STATS: Dict[str, int] = {
    "hits": 0,
    "misses": 0,
    "delta_hits": 0,
    "delta_builds": 0,
    "persistent_hits": 0,
}


def codegen_stats() -> Dict[str, int]:
    """A snapshot of :data:`CODEGEN_STATS` (safe to diff across calls)."""
    return dict(CODEGEN_STATS)


def reset_codegen_stats() -> None:
    for key in CODEGEN_STATS:
        CODEGEN_STATS[key] = 0


#: content-addressed code objects: content_cache_key(...) → code object.
_CODE_CACHE: Dict[Tuple[str, str], object] = {}

#: (ctx_key, fn name) → the first full generation seen: the delta base.
#: The campaign executor warms this with the transformed-*pristine* module
#: of each variant, so every per-site generation deltas against pristine
#: and re-emits only the chains the fault transform touched.
_BASE_INFO: Dict[Tuple[str, str], GeneratedFunction] = {}
_BASE_INFO_MAX = 512

#: per-site delta cache: key digest (see :func:`_delta_key`) → code object.
#: A repeat of the same (pristine, site-delta) pair — diversity variants
#: sharing transformed text, campaign clones, resumed reps — skips even
#: the partial re-emission.
_DELTA_CACHE: Dict[str, object] = {}
_DELTA_CACHE_MAX = 4096

#: directory of the persistent source cache (None = disabled).  Lives in
#: the DPMR_STORE layout (``<store>/codegen/``); entries are generated
#: *source*, never code objects, keyed by a digest that includes
#: CODEGEN_VERSION so a generator change invalidates everything at once.
_PERSIST_DIR: Optional[str] = None


def set_persistent_code_cache(path: Optional[str]) -> Optional[str]:
    """Point the persistent source cache at ``path`` (None disables).

    Returns the previous path so callers can restore it."""
    global _PERSIST_DIR
    prev = _PERSIST_DIR
    _PERSIST_DIR = path
    return prev


def persistent_code_cache_dir() -> Optional[str]:
    return _PERSIST_DIR


def reset_codegen_caches() -> None:
    """Drop delta bases and the delta cache (test isolation helper).

    The content-addressed code cache survives: it is keyed purely by
    generated source, so stale entries are impossible."""
    _BASE_INFO.clear()
    _DELTA_CACHE.clear()


def _delta_key(ctx_key: str, name: str, base_sha: str, delta_fp: str) -> str:
    payload = f"{CODEGEN_VERSION}\x00{ctx_key}\x00{name}\x00{base_sha}\x00{delta_fp}"
    return hashlib.sha256(payload.encode()).hexdigest()


def _persist_path(key_hash: str) -> str:
    return os.path.join(_PERSIST_DIR, key_hash[:2], key_hash + ".py")


def _persist_read(key_hash: str) -> Optional[str]:
    """Source for ``key_hash``, or None.  The first line carries a sha256
    of the rest; a mismatch (torn write, external corruption) deletes the
    entry and reports a miss — the source is then regenerated."""
    path = _persist_path(key_hash)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return None
    nl = text.find("\n")
    head, src = text[: nl + 1], text[nl + 1 :]
    if nl < 0 or not head.startswith("# sha256:") or (
        head[9:].strip() != hashlib.sha256(src.encode()).hexdigest()
    ):
        try:
            os.unlink(path)
        except OSError:
            pass
        return None
    return src


def _persist_write(key_hash: str, src: str) -> None:
    path = _persist_path(key_hash)
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".cg-", suffix=".tmp"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(f"# sha256:{hashlib.sha256(src.encode()).hexdigest()}\n")
            f.write(src)
        os.replace(tmp, path)
    except OSError:
        pass  # best-effort: a failed write just costs a future regeneration


def _bto(m, costs) -> None:
    """Batch-timeout replay: the batch accounting proved this batch crosses
    ``max_cycles``, so re-run the interpreter's exact per-instruction
    bookkeeping until the crossing instruction raises.  Always raises."""
    c = m.cycles
    mx = m.max_cycles
    for cost in costs:
        m.instructions_executed += 1
        c += cost
        m.cycles = c
        if c > mx:
            raise Timeout(f"exceeded {mx} cycles")
    raise AssertionError("batch flagged as crossing but no step crossed")


def _f32(r):
    """The interpreter's float32 round-trip (``_arith_result``)."""
    return _F32.unpack(_F32.pack(r))[0]


def _fdiv(a, b):
    """Bit-exact twin of the interpreter's ``_bh_fdiv`` core."""
    if b == 0.0:
        return float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
    return a / b


def _base_namespace() -> Dict[str, object]:
    ns: Dict[str, object] = {
        "ExecutionTrap": ExecutionTrap,
        "_bto": _bto,
        "_f32": _f32,
        "_fdiv": _fdiv,
        "_PTR": VOID_PTR,
    }
    # The same prebuilt Structs the memory system uses, pre-bound to their
    # unpack_from/pack_into methods ("b" covers int1 and int8; "<Q" is the
    # raw-pointer format).
    for (kind, bits), s in _SCALAR_STRUCTS.items():
        suffix = s.format.lstrip("<")
        ns[f"_up_{suffix}"] = s.unpack_from
        ns[f"_pk_{suffix}"] = s.pack_into
        ty = IntType(bits) if kind == "int" else FloatType(bits)
        ns[f"_T{'i' if kind == 'int' else 'f'}{bits}"] = ty
    ns["_up_Q"] = _U64.unpack_from
    ns["_pk_Q"] = _U64.pack_into
    return ns


BASE_NS = _base_namespace()


def _interp_shim(fn: Function) -> Callable:
    """Callable standing in for a function codegen could not lower: re-enter
    the machine, whose compiled dispatch misses and interprets it."""

    def shim(m, *args):
        return m.call(fn, list(args))

    return shim


class CompiledProgram:
    """Everything a Machine needs to run a module on the compiled tier."""

    def __init__(self, module: Module):
        self.global_layout = compute_global_layout(
            module, GLOBALS_BASE, GLOBALS_BASE + DEFAULT_GLOBALS_SIZE
        )
        func_addrs = {
            name: FUNC_ADDR_BASE + i * FUNC_ADDR_STRIDE
            for i, name in enumerate(module.functions)
        }
        fn_info: Dict[str, Tuple[str, int, bool]] = {}
        for i, (name, fn) in enumerate(module.functions.items()):
            fn_info[name] = (f"_f{i}_{sanitize(name)[:40]}", len(fn.params), fn.is_external)
        ctx = ProgramContext(self.global_layout, func_addrs, fn_info)
        ctx_key = self._context_digest(ctx)

        ns = dict(BASE_NS)
        #: IR function name → compiled callable; misses interpret.
        self.functions: Dict[str, Callable] = {}
        for name, fn in module.functions.items():
            if fn.is_external:
                continue
            pyname = fn_info[name][0]
            code = _code_for(fn, ctx, ctx_key, pyname)
            if code is None:
                ns[pyname] = _interp_shim(fn)
                continue
            exec(code, ns)
            self.functions[name] = ns[pyname]

    @staticmethod
    def _context_digest(ctx: ProgramContext) -> str:
        h = hashlib.sha256()
        for name, info in ctx.fn_info.items():
            h.update(f"{name}\x00{info}\x00".encode())
        for name, addr in ctx.global_layout.items():
            h.update(f"{name}\x01{addr}\x00".encode())
        return h.hexdigest()


_DELTA_MISS = object()  # sentinel: delta path could not produce code


def _code_from_source(name: str, src: str, src_sha: Optional[str] = None):
    """Code object for generated source through the content cache."""
    if src_sha is None:
        src_sha = hashlib.sha256(src.encode()).hexdigest()
    key = content_cache_key(name, src_sha)
    code = _CODE_CACHE.get(key)
    if code is None:
        CODEGEN_STATS["misses"] += 1
        code = compile(src, f"<dpmr-codegen:{name}>", "exec")
        _CODE_CACHE[key] = code
    else:
        CODEGEN_STATS["hits"] += 1
    return code


def _register_base(ctx_key: str, name: str, gen: GeneratedFunction) -> None:
    if len(_BASE_INFO) >= _BASE_INFO_MAX:
        _BASE_INFO.clear()
    _BASE_INFO.setdefault((ctx_key, name), gen)


def _delta_code_for(fn: Function, ctx, ctx_key: str, pyname: str, base):
    """Serve ``fn`` through the delta pipeline, or ``_DELTA_MISS``.

    Order of escalation, cheapest first: structural comparison against the
    base (no string work for unchanged chains) → in-process delta cache →
    persistent source cache → partial re-emission of only the changed
    chains, spliced into the base frame."""
    plan = plan_function_delta(fn, ctx, pyname, base)
    if plan is None:
        return _DELTA_MISS
    key_hash = _delta_key(ctx_key, fn.name, base.src_sha, plan.delta_fp)
    code = _DELTA_CACHE.get(key_hash)
    if code is not None:
        CODEGEN_STATS["hits"] += 1
        CODEGEN_STATS["delta_hits"] += 1
        return code
    if _PERSIST_DIR is not None:
        src = _persist_read(key_hash)
        if src is not None:
            key = content_cache_key(fn.name, hashlib.sha256(src.encode()).hexdigest())
            code = _CODE_CACHE.get(key)
            try:
                if code is None:
                    code = compile(src, f"<dpmr-codegen:{fn.name}>", "exec")
                    _CODE_CACHE[key] = code
            except SyntaxError:
                try:
                    os.unlink(_persist_path(key_hash))
                except OSError:
                    pass
            else:
                # Served from disk: a hit even when this process still had
                # to byte-compile it (no source was generated).
                CODEGEN_STATS["hits"] += 1
                CODEGEN_STATS["delta_hits"] += 1
                CODEGEN_STATS["persistent_hits"] += 1
                if len(_DELTA_CACHE) >= _DELTA_CACHE_MAX:
                    _DELTA_CACHE.clear()
                _DELTA_CACHE[key_hash] = code
                return code
    gen = complete_function_delta(plan, base)
    CODEGEN_STATS["delta_builds"] += 1
    code = _code_from_source(fn.name, gen.source, gen.src_sha)
    if len(_DELTA_CACHE) >= _DELTA_CACHE_MAX:
        _DELTA_CACHE.clear()
    _DELTA_CACHE[key_hash] = code
    if _PERSIST_DIR is not None:
        _persist_write(key_hash, gen.source)
    return code


def _code_for(fn: Function, ctx: ProgramContext, ctx_key: str, pyname: str):
    """Code object for ``fn`` (or None if uncompilable), through the cache
    hierarchy: the on-Function memo, then the delta pipeline against the
    registered pristine base, then full generation plus the
    content-addressed code cache."""
    memo = getattr(fn, "_cg_cache", None)
    if memo is not None and memo[0] == ctx_key:
        CODEGEN_STATS["hits"] += 1
        return memo[1]
    base = _BASE_INFO.get((ctx_key, fn.name))
    if base is not None:
        try:
            code = _delta_code_for(fn, ctx, ctx_key, pyname, base)
        except Exception:
            # A changed chain the generator rejects fails the full path
            # identically below; anything else falls back conservatively.
            code = _DELTA_MISS
        if code is not _DELTA_MISS:
            fn._cg_cache = (ctx_key, code)
            return code
    try:
        gen = generate_function(fn, ctx, pyname)
    except Exception:
        # CodegenUnsupported, or anything layout/operand-shaped the
        # generator tripped over at fold time: interpret this function.
        CODEGEN_STATS["misses"] += 1
        fn._cg_cache = (ctx_key, None)
        return None
    _register_base(ctx_key, fn.name, gen)
    code = _code_from_source(fn.name, gen.source, gen.src_sha)
    fn._cg_cache = (ctx_key, code)
    return code


#: module → CompiledProgram, weak on the module so campaign clones are
#: collectable (CompiledProgram must hold no strong module reference).
_PROGRAMS: "weakref.WeakKeyDictionary[Module, CompiledProgram]" = (
    weakref.WeakKeyDictionary()
)


def compiled_program_for(module: Module) -> CompiledProgram:
    program = _PROGRAMS.get(module)
    if program is None:
        program = CompiledProgram(module)
        _PROGRAMS[module] = program
    return program
