"""Compiled execution tier: codegen caching and program binding.

:func:`compiled_program_for` turns a :class:`~repro.ir.module.Module` into
a :class:`CompiledProgram` — one specialized Python callable per internal
function (see :mod:`repro.machine.codegen`) sharing a single exec
namespace so direct calls are plain global lookups.

Caching is content-addressed with the same key discipline as
``IncrementalDpmrCompiler`` (which imports :func:`content_cache_key` from
here): a code object is cached under ``(function name, sha256 of the
generated source)``.  The generated source embeds every context-dependent
fold (global/function addresses, the callee table), so the key subsumes
the variant fingerprint — two variants whose transform produced the same
function text share one code object, and a warm campaign compiles each
faulty function exactly once.  Hook emission is *parametric* over the
runtime spec (see ``codegen.emit_dpmr_call``), so the context digest
folds only the spec's presence: every specialized diversity variant
shares one entry per function in every code-level cache, and the
per-spec differences live in the program namespace bindings (``_rmal`` /
``_rfree``).  A second, cheaper level memoizes the code object directly
on the ``Function`` (keyed by a digest of the module context):
``Module.clone`` shares untouched functions by identity, so campaign
clones skip even source generation.  Two further levels close the loop
with the delta *transform*: a spliced function carries a provenance
stamp (``_dpmr_stamp``, set by ``IncrementalDpmrCompiler``) that
content-addresses its generated code without any structural delta
planning, and whole :class:`CompiledProgram` objects are reused when
every member function resolved to the identical code object.

Fallback rules (the interpreter is always the reference engine):

* a function the generator rejects (or whose generation raises) gets no
  compiled body; callers reach it through a shim that re-enters
  ``Machine.call``, which interprets it;
* a machine whose memory geometry gives globals different addresses than
  the default layout refuses the compiled program entirely (checked by
  ``Machine.__init__`` against ``global_layout``).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import weakref
from typing import Callable, Dict, Optional, Tuple

from ..ir.module import Function, Module
from ..ir.types import FloatType, IntType, VOID_PTR
from .codegen import (
    CODEGEN_VERSION,
    CodegenUnsupported,
    GeneratedFunction,
    ProgramContext,
    complete_function_delta,
    generate_function,
    plan_function_delta,
    sanitize,
)
from .interpreter import (
    FUNC_ADDR_BASE,
    FUNC_ADDR_STRIDE,
    DpmrDetected,
    ExecutionTrap,
    Machine,
    Timeout,
    compute_global_layout,
)
from .memory import _SCALAR_STRUCTS, _U64, DEFAULT_GLOBALS_SIZE, GLOBALS_BASE

import struct as _struct

_F32 = _struct.Struct("<f")


#: process-wide runtime-inlining override; None = defer to the environment
#: (``DPMR_INLINE_RT``), parsed once on first use.
_INLINE_RT: Optional[bool] = None


def inline_runtime_enabled() -> bool:
    """Whether compiled programs may specialize against a DPMR runtime."""
    global _INLINE_RT
    if _INLINE_RT is None:
        import os as _os

        from ..eval.config import INLINE_RT_ENV_VAR, _parse_flag

        _INLINE_RT = _parse_flag(_os.environ, INLINE_RT_ENV_VAR, True)
    return _INLINE_RT


def set_inline_runtime(enabled: Optional[bool]) -> Optional[bool]:
    """Process-wide runtime-inlining override (the executor applies its
    :class:`~repro.eval.config.ExecConfig` here so forked workers inherit
    it).  ``None`` resets to the lazily-parsed environment default.
    Returns the previous override so callers can restore it."""
    global _INLINE_RT
    prev = _INLINE_RT
    _INLINE_RT = enabled
    return prev


def runtime_spec_for(dpmr_runtime) -> Optional[Tuple]:
    """The codegen specialization spec for a machine's runtime, or None.

    None — the generic program — whenever there is no runtime, the
    ``DPMR_INLINE_RT`` opt-out is active, or the runtime itself declines
    (stateful diversity policy).  The spec participates in the program
    context digest, so specialized and generic programs never share cache
    entries at any level of the codegen hierarchy.
    """
    if dpmr_runtime is None or not inline_runtime_enabled():
        return None
    spec_of = getattr(dpmr_runtime, "codegen_spec", None)
    if spec_of is None:
        return None
    return spec_of()


def content_cache_key(name: str, content_hash: str) -> Tuple[str, str]:
    """The shared cache key shape: ``(unit name, content digest)``.

    Used both by the codegen code cache below and by
    ``IncrementalDpmrCompiler``'s per-function transform memo, so every
    content-addressed cache in the pipeline keys the same way.
    """
    return (name, content_hash)


#: Codegen cache behaviour for the current process.  "hits" counts code
#: objects served without compiling fresh source (on-Function memo, delta
#: cache, persistent cache, or the content-addressed code cache after a
#: delta reassembly); "misses" counts freshly compiled generations
#: (including generations that concluded "unsupported").  The remaining
#: keys break hits down: "delta_hits" were served from the in-process or
#: persistent per-site delta cache, "persistent_hits" from the on-disk
#: source cache specifically, and "delta_builds" counts delta
#: *assemblies* (partial regenerations — cheaper than a full generation
#: whichever way the resulting source then resolves).  "stamp_hits"
#: counts hits served purely by a delta-transform provenance stamp (no
#: structural planning at all), and "program_hits" counts whole
#: CompiledProgram reuses (no per-function work whatsoever).
CODEGEN_STATS: Dict[str, int] = {
    "hits": 0,
    "misses": 0,
    "delta_hits": 0,
    "delta_builds": 0,
    "persistent_hits": 0,
    "stamp_hits": 0,
    "program_hits": 0,
}


def codegen_stats() -> Dict[str, int]:
    """A snapshot of :data:`CODEGEN_STATS` (safe to diff across calls)."""
    return dict(CODEGEN_STATS)


def reset_codegen_stats() -> None:
    for key in CODEGEN_STATS:
        CODEGEN_STATS[key] = 0


#: content-addressed code objects: content_cache_key(...) → code object.
_CODE_CACHE: Dict[Tuple[str, str], object] = {}

#: (ctx_key, fn name) → the first full generation seen: the delta base.
#: The campaign executor warms this with the transformed-*pristine* module
#: of each variant, so every per-site generation deltas against pristine
#: and re-emits only the chains the fault transform touched.
_BASE_INFO: Dict[Tuple[str, str], GeneratedFunction] = {}
_BASE_INFO_MAX = 512

#: per-site delta cache: key digest (see :func:`_delta_key`) → code object.
#: A repeat of the same (pristine, site-delta) pair — diversity variants
#: sharing transformed text, campaign clones, resumed reps — skips even
#: the partial re-emission.
_DELTA_CACHE: Dict[str, object] = {}
_DELTA_CACHE_MAX = 4096

#: provenance-stamp cache: (ctx_key, fn name, stamp) → code object (or
#: None for a function the generator rejected).  A stamp is set by the
#: incremental compiler's delta pipeline and content-addresses the
#: transformed function — (transform config, policy pre-state, source
#: fingerprint) — so a stamped function's code resolves with two dict
#: probes and no structural delta planning.  Because transformed text is
#: independent of the diversity policy and generated source is parametric
#: over the spec, one entry serves every diversity variant of a site.
_STAMP_CACHE: Dict[Tuple, Optional[object]] = {}
_STAMP_CACHE_MAX = 16384

#: whole-program reuse: (ctx_key, spec repr, per-function code identity)
#: → CompiledProgram.  Code identity pins the exact behaviour of every
#: member function, so a campaign re-running a (site, variant) pair —
#: repeated reps, resumed shards — skips namespace assembly and exec
#: entirely.  Entries hold their code objects strongly (via the compiled
#: function objects), keeping the id()-based identity tokens stable.
_PROGRAM_CACHE: Dict[Tuple, "CompiledProgram"] = {}
_PROGRAM_CACHE_MAX = 2048

#: directory of the persistent source cache (None = disabled).  Lives in
#: the DPMR_STORE layout (``<store>/codegen/``); entries are generated
#: *source*, never code objects, keyed by a digest that includes
#: CODEGEN_VERSION so a generator change invalidates everything at once.
_PERSIST_DIR: Optional[str] = None


def set_persistent_code_cache(path: Optional[str]) -> Optional[str]:
    """Point the persistent source cache at ``path`` (None disables).

    Returns the previous path so callers can restore it."""
    global _PERSIST_DIR
    prev = _PERSIST_DIR
    _PERSIST_DIR = path
    return prev


def persistent_code_cache_dir() -> Optional[str]:
    return _PERSIST_DIR


def reset_codegen_caches(code_cache: bool = False) -> None:
    """Drop delta bases, the delta/stamp caches, and program reuse (test
    isolation helper).

    The content-addressed code cache survives by default: it is keyed
    purely by generated source, so stale entries are impossible.  Pass
    ``code_cache=True`` to drop it too — benchmarks use this to compare
    truly cold configurations fairly."""
    _BASE_INFO.clear()
    _DELTA_CACHE.clear()
    _STAMP_CACHE.clear()
    _PROGRAM_CACHE.clear()
    if code_cache:
        _CODE_CACHE.clear()


def _delta_key(ctx_key: str, name: str, base_sha: str, delta_fp: str) -> str:
    payload = f"{CODEGEN_VERSION}\x00{ctx_key}\x00{name}\x00{base_sha}\x00{delta_fp}"
    return hashlib.sha256(payload.encode()).hexdigest()


def _persist_path(key_hash: str) -> str:
    return os.path.join(_PERSIST_DIR, key_hash[:2], key_hash + ".py")


def _persist_read(key_hash: str) -> Optional[str]:
    """Source for ``key_hash``, or None.  The first line carries a sha256
    of the rest; a mismatch (torn write, external corruption) deletes the
    entry and reports a miss — the source is then regenerated."""
    path = _persist_path(key_hash)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return None
    nl = text.find("\n")
    head, src = text[: nl + 1], text[nl + 1 :]
    if nl < 0 or not head.startswith("# sha256:") or (
        head[9:].strip() != hashlib.sha256(src.encode()).hexdigest()
    ):
        try:
            os.unlink(path)
        except OSError:
            pass
        return None
    return src


def _persist_write(key_hash: str, src: str) -> None:
    path = _persist_path(key_hash)
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".cg-", suffix=".tmp"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(f"# sha256:{hashlib.sha256(src.encode()).hexdigest()}\n")
            f.write(src)
        os.replace(tmp, path)
    except OSError:
        pass  # best-effort: a failed write just costs a future regeneration


def _bto(m, costs) -> None:
    """Batch-timeout replay: the batch accounting proved this batch crosses
    ``max_cycles``, so re-run the interpreter's exact per-instruction
    bookkeeping until the crossing instruction raises.  Always raises."""
    c = m.cycles
    mx = m.max_cycles
    for cost in costs:
        m.instructions_executed += 1
        c += cost
        m.cycles = c
        if c > mx:
            raise Timeout(f"exceeded {mx} cycles")
    raise AssertionError("batch flagged as crossing but no step crossed")


def _f32(r):
    """The interpreter's float32 round-trip (``_arith_result``)."""
    return _F32.unpack(_F32.pack(r))[0]


def _fdiv(a, b):
    """Bit-exact twin of the interpreter's ``_bh_fdiv`` core."""
    if b == 0.0:
        return float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
    return a / b


def _base_namespace() -> Dict[str, object]:
    ns: Dict[str, object] = {
        "ExecutionTrap": ExecutionTrap,
        "_bto": _bto,
        "_f32": _f32,
        "_fdiv": _fdiv,
        "_PTR": VOID_PTR,
        "_DD": DpmrDetected,
    }
    # The same prebuilt Structs the memory system uses, pre-bound to their
    # unpack_from/pack_into methods ("b" covers int1 and int8; "<Q" is the
    # raw-pointer format).
    for (kind, bits), s in _SCALAR_STRUCTS.items():
        suffix = s.format.lstrip("<")
        ns[f"_up_{suffix}"] = s.unpack_from
        ns[f"_pk_{suffix}"] = s.pack_into
        ty = IntType(bits) if kind == "int" else FloatType(bits)
        ns[f"_T{'i' if kind == 'int' else 'f'}{bits}"] = ty
    ns["_up_Q"] = _U64.unpack_from
    ns["_pk_Q"] = _U64.pack_into
    return ns


BASE_NS = _base_namespace()


def _interp_shim(fn: Function) -> Callable:
    """Callable standing in for a function codegen could not lower: re-enter
    the machine, whose compiled dispatch misses and interprets it."""

    def shim(m, *args):
        return m.call(fn, list(args))

    return shim


def _spec_bindings(rt_spec: Tuple) -> Tuple[Callable, Callable]:
    """The ``(_rmal, _rfree)`` namespace bindings for a runtime spec.

    Generated source calls these as ``_rmal(m, count)`` / ``_rfree(m,
    address)``; the spec decides how much of the diversity dispatch is
    folded away.  The ``("method",)`` arm is the generic form — it routes
    through the machine's diversity object exactly as the
    ``call_intrinsic`` reference path does — so any unrecognized mode is
    still bit-identical, just unfolded."""
    _ver, malloc_mode, free_mode = rt_spec
    if malloc_mode[0] == "plain":
        rmal: Callable = Machine.heap_malloc
    elif malloc_mode[0] == "pad":
        pad = malloc_mode[1]

        def rmal(m, count, _pad=pad):
            return m.heap_malloc(count + _pad)

    else:

        def rmal(m, count):
            return m.dpmr_runtime.diversity.replica_malloc(m, count)

    if free_mode == "plain":
        rfree: Callable = Machine.heap_free
    else:

        def rfree(m, address):
            return m.dpmr_runtime.diversity.replica_free(m, address)

    return rmal, rfree


class CompiledProgram:
    """Everything a Machine needs to run a module on the compiled tier."""

    def __init__(self, module: Module, rt_spec: Optional[Tuple] = None):
        global_layout, fn_info, ctx, ctx_key = _program_parts(module, rt_spec)
        codes = [
            (name, fn, _code_for(fn, ctx, ctx_key, fn_info[name][0]))
            for name, fn in module.functions.items()
            if not fn.is_external
        ]
        self._bind(global_layout, fn_info, rt_spec, codes)

    @classmethod
    def _from_parts(cls, global_layout, fn_info, rt_spec, codes):
        program = cls.__new__(cls)
        program._bind(global_layout, fn_info, rt_spec, codes)
        return program

    def _bind(self, global_layout, fn_info, rt_spec, codes) -> None:
        self.global_layout = global_layout
        self.rt_spec = rt_spec
        ns = dict(BASE_NS)
        if rt_spec is not None:
            ns["_rmal"], ns["_rfree"] = _spec_bindings(rt_spec)
        #: IR function name → compiled callable; misses interpret.
        self.functions: Dict[str, Callable] = {}
        for name, fn, code in codes:
            pyname = fn_info[name][0]
            if code is None:
                ns[pyname] = _interp_shim(fn)
                continue
            exec(code, ns)
            self.functions[name] = ns[pyname]
        # Keep the namespace alive: it pins every code object and interp
        # shim this program was keyed on, so the id()-based tokens in
        # _PROGRAM_CACHE stay unambiguous for the program's lifetime.
        self._ns = ns

    @staticmethod
    def _context_digest(ctx: ProgramContext) -> str:
        h = hashlib.sha256()
        for name, info in ctx.fn_info.items():
            h.update(f"{name}\x00{info}\x00".encode())
        for name, addr in ctx.global_layout.items():
            h.update(f"{name}\x01{addr}\x00".encode())
        # Presence marker only: generated source is parametric over the
        # spec's contents, so all specialized variants share code caches.
        h.update(f"rt\x02{ctx.rt_spec is not None}".encode())
        return h.hexdigest()


def _program_parts(
    module: Module, rt_spec: Optional[Tuple]
) -> Tuple[Dict[str, int], Dict[str, Tuple[str, int, bool]], ProgramContext, str]:
    """Layout, function table, context, and context digest for a module."""
    global_layout = compute_global_layout(
        module, GLOBALS_BASE, GLOBALS_BASE + DEFAULT_GLOBALS_SIZE
    )
    func_addrs = {
        name: FUNC_ADDR_BASE + i * FUNC_ADDR_STRIDE
        for i, name in enumerate(module.functions)
    }
    fn_info: Dict[str, Tuple[str, int, bool]] = {}
    for i, (name, fn) in enumerate(module.functions.items()):
        fn_info[name] = (
            f"_f{i}_{sanitize(name)[:40]}",
            len(fn.params),
            fn.is_external,
        )
    ctx = ProgramContext(global_layout, func_addrs, fn_info, rt_spec)
    return global_layout, fn_info, ctx, CompiledProgram._context_digest(ctx)


_DELTA_MISS = object()  # sentinel: delta path could not produce code


def _code_from_source(name: str, src: str, src_sha: Optional[str] = None):
    """Code object for generated source through the content cache."""
    if src_sha is None:
        src_sha = hashlib.sha256(src.encode()).hexdigest()
    key = content_cache_key(name, src_sha)
    code = _CODE_CACHE.get(key)
    if code is None:
        CODEGEN_STATS["misses"] += 1
        code = compile(src, f"<dpmr-codegen:{name}>", "exec")
        _CODE_CACHE[key] = code
    else:
        CODEGEN_STATS["hits"] += 1
    return code


def _register_base(ctx_key: str, name: str, gen: GeneratedFunction) -> None:
    if len(_BASE_INFO) >= _BASE_INFO_MAX:
        _BASE_INFO.clear()
    _BASE_INFO.setdefault((ctx_key, name), gen)


def _delta_code_for(fn: Function, ctx, ctx_key: str, pyname: str, base):
    """Serve ``fn`` through the delta pipeline, or ``_DELTA_MISS``.

    Order of escalation, cheapest first: structural comparison against the
    base (no string work for unchanged chains) → in-process delta cache →
    persistent source cache → partial re-emission of only the changed
    chains, spliced into the base frame."""
    plan = plan_function_delta(fn, ctx, pyname, base)
    if plan is None:
        return _DELTA_MISS
    key_hash = _delta_key(ctx_key, fn.name, base.src_sha, plan.delta_fp)
    code = _DELTA_CACHE.get(key_hash)
    if code is not None:
        CODEGEN_STATS["hits"] += 1
        CODEGEN_STATS["delta_hits"] += 1
        return code
    if _PERSIST_DIR is not None:
        src = _persist_read(key_hash)
        if src is not None:
            key = content_cache_key(fn.name, hashlib.sha256(src.encode()).hexdigest())
            code = _CODE_CACHE.get(key)
            try:
                if code is None:
                    code = compile(src, f"<dpmr-codegen:{fn.name}>", "exec")
                    _CODE_CACHE[key] = code
            except SyntaxError:
                try:
                    os.unlink(_persist_path(key_hash))
                except OSError:
                    pass
            else:
                # Served from disk: a hit even when this process still had
                # to byte-compile it (no source was generated).
                CODEGEN_STATS["hits"] += 1
                CODEGEN_STATS["delta_hits"] += 1
                CODEGEN_STATS["persistent_hits"] += 1
                if len(_DELTA_CACHE) >= _DELTA_CACHE_MAX:
                    _DELTA_CACHE.clear()
                _DELTA_CACHE[key_hash] = code
                return code
    gen = complete_function_delta(plan, base)
    CODEGEN_STATS["delta_builds"] += 1
    code = _code_from_source(fn.name, gen.source, gen.src_sha)
    if len(_DELTA_CACHE) >= _DELTA_CACHE_MAX:
        _DELTA_CACHE.clear()
    _DELTA_CACHE[key_hash] = code
    if _PERSIST_DIR is not None:
        _persist_write(key_hash, gen.source)
    return code


def _stamp_store(skey: Tuple, code) -> None:
    if len(_STAMP_CACHE) >= _STAMP_CACHE_MAX:
        _STAMP_CACHE.clear()
    _STAMP_CACHE[skey] = code


def _code_for(fn: Function, ctx: ProgramContext, ctx_key: str, pyname: str):
    """Code object for ``fn`` (or None if uncompilable), through the cache
    hierarchy: the on-Function memo, then the provenance-stamp cache, then
    the delta pipeline against the registered pristine base, then full
    generation plus the content-addressed code cache."""
    memo = getattr(fn, "_cg_cache", None)
    if memo is not None and memo[0] == ctx_key:
        CODEGEN_STATS["hits"] += 1
        return memo[1]
    stamp = getattr(fn, "_dpmr_stamp", None)
    skey = (ctx_key, fn.name, stamp) if stamp is not None else None
    if skey is not None and skey in _STAMP_CACHE:
        code = _STAMP_CACHE[skey]
        CODEGEN_STATS["hits"] += 1
        CODEGEN_STATS["stamp_hits"] += 1
        fn._cg_cache = (ctx_key, code)
        return code
    base = _BASE_INFO.get((ctx_key, fn.name))
    if base is not None:
        try:
            code = _delta_code_for(fn, ctx, ctx_key, pyname, base)
        except Exception:
            # A changed chain the generator rejects fails the full path
            # identically below; anything else falls back conservatively.
            code = _DELTA_MISS
        if code is not _DELTA_MISS:
            fn._cg_cache = (ctx_key, code)
            if skey is not None:
                _stamp_store(skey, code)
            return code
    try:
        gen = generate_function(fn, ctx, pyname)
    except Exception:
        # CodegenUnsupported, or anything layout/operand-shaped the
        # generator tripped over at fold time: interpret this function.
        CODEGEN_STATS["misses"] += 1
        fn._cg_cache = (ctx_key, None)
        if skey is not None:
            _stamp_store(skey, None)
        return None
    _register_base(ctx_key, fn.name, gen)
    code = _code_from_source(fn.name, gen.source, gen.src_sha)
    fn._cg_cache = (ctx_key, code)
    if skey is not None:
        _stamp_store(skey, code)
    return code


#: module → {rt_spec: CompiledProgram}, weak on the module so campaign
#: clones are collectable (CompiledProgram must hold no strong module
#: reference).  The inner dict holds one program per specialization spec —
#: in practice one (generic *or* the campaign variant's spec) per module.
_PROGRAMS: "weakref.WeakKeyDictionary[Module, Dict[Optional[Tuple], CompiledProgram]]" = (
    weakref.WeakKeyDictionary()
)


def _program_for(module: Module, rt_spec: Optional[Tuple]) -> CompiledProgram:
    """Build (or reuse) the program for ``module`` through the content-
    keyed program cache: if every member function resolves to the exact
    code object (or interp-shimmed Function) of a cached program under the
    same context and spec, that program is behaviourally identical and is
    returned without namespace assembly.  The id() tokens are unambiguous
    because each cached program strongly pins its code objects and shim
    targets (see ``CompiledProgram._bind``)."""
    global_layout, fn_info, ctx, ctx_key = _program_parts(module, rt_spec)
    codes = []
    tokens = []
    for name, fn in module.functions.items():
        if fn.is_external:
            continue
        code = _code_for(fn, ctx, ctx_key, fn_info[name][0])
        codes.append((name, fn, code))
        tokens.append(id(code) if code is not None else ("shim", id(fn)))
    pkey = (ctx_key, repr(rt_spec), tuple(tokens))
    program = _PROGRAM_CACHE.get(pkey)
    if program is not None:
        CODEGEN_STATS["program_hits"] += 1
        return program
    program = CompiledProgram._from_parts(global_layout, fn_info, rt_spec, codes)
    if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_MAX:
        _PROGRAM_CACHE.clear()
    _PROGRAM_CACHE[pkey] = program
    return program


def compiled_program_for(
    module: Module, rt_spec: Optional[Tuple] = None
) -> CompiledProgram:
    per_spec = _PROGRAMS.get(module)
    if per_spec is None:
        per_spec = {}
        _PROGRAMS[module] = per_spec
    program = per_spec.get(rt_spec)
    if program is None:
        program = _program_for(module, rt_spec)
        per_spec[rt_spec] = program
    return program
