"""Heap allocator over the simulated heap segment.

Deliberately models the glibc-style behaviours the paper's results depend on
(§2.5.3, §3.4, §3.7):

* request sizes are rounded up to a multiple of 8 with a minimum payload of
  24 bytes — so a "heap array resize" injection that shrinks a request may
  still receive enough memory and produce *correct output*;
* free-list metadata is written **into the freed payload**, so dangling reads
  observe allocator junk (detectable by replica comparison);
* a 16-byte chunk header holds size and a state magic, so frees of pointers
  that do not point at the start of a live chunk usually abort (a crash —
  *natural detection*), while a chunk reallocated in between frees is freed
  "successfully", prematurely deallocating someone else's buffer;
* the free list is LIFO first-fit, so recently freed chunks are reused first,
  making dangling-pointer reuse likely (as in real allocators).
"""

from __future__ import annotations

from typing import List, Optional

from .memory import Memory, MemoryTrap

HEADER_SIZE = 16
MIN_PAYLOAD = 24
ALIGN = 8

MAGIC_ALLOCATED = 0xA110CA7ED0000000
MAGIC_FREED = 0xF2EEF2EEF2EE0000

#: Cost-model parameters (simulated cycles).
MALLOC_BASE_COST = 30
MALLOC_BYTE_COST_SHIFT = 5  # + size >> 5 models page/cache-crossing work
FREE_COST = 20


class HeapError(Exception):
    """Allocator-detected invalid operation: aborts the program (a crash)."""


class OutOfMemory(HeapError):
    """Heap exhaustion."""


class HeapAllocator:
    """First-fit free-list allocator with bump-pointer fallback."""

    def __init__(self, memory: Memory):
        self.memory = memory
        self.base = memory.heap.base
        self.limit = memory.heap.end
        self.top = self.base
        self.free_head = 0  # address of first free chunk header, 0 = empty
        self.live_chunks = 0
        self.bytes_in_use = 0
        #: cycles charged by the most recent operation (read by the machine)
        self.last_cost = 0
        #: payload bytes of the most recent malloc/free (for heap-churn
        #: counters; free(NULL) leaves 0)
        self.last_payload = 0

    # -- chunk header helpers ---------------------------------------------

    def _read_header(self, header_addr: int) -> tuple:
        size = self.memory.read_scalar(header_addr, _U64)
        magic = self.memory.read_scalar(header_addr + 8, _U64)
        return size, magic

    def _write_header(self, header_addr: int, size: int, magic: int) -> None:
        self.memory.write_scalar(header_addr, _U64, size)
        self.memory.write_scalar(header_addr + 8, _U64, magic)

    # -- allocation ---------------------------------------------------------

    def round_request(self, size: int) -> int:
        """The size actually reserved for a request of ``size`` bytes."""
        size = max(size, MIN_PAYLOAD)
        return (size + ALIGN - 1) // ALIGN * ALIGN

    def malloc(self, size: int) -> int:
        """Allocate ``size`` payload bytes; returns the payload address."""
        if size < 0:
            raise HeapError(f"negative allocation size {size}")
        payload = self.round_request(size)
        self.last_cost = MALLOC_BASE_COST + (payload >> MALLOC_BYTE_COST_SHIFT)
        self.last_payload = payload
        addr = self._take_from_free_list(payload)
        if addr == 0:
            addr = self._bump(payload)
        self.live_chunks += 1
        # A recycled chunk may be larger than the rounded request; account
        # for what was actually reserved (last_payload) so free()'s debit of
        # the chunk's true size keeps bytes_in_use balanced.
        self.bytes_in_use += self.last_payload
        return addr

    def _take_from_free_list(self, payload: int) -> int:
        prev = 0
        cur = self.free_head
        steps = 0
        while cur != 0:
            steps += 1
            size, magic = self._read_header(cur)
            nxt = self.memory.read_scalar(cur + HEADER_SIZE, _U64)
            if magic == MAGIC_FREED and size >= payload:
                if prev == 0:
                    self.free_head = nxt
                else:
                    self.memory.write_scalar(prev + HEADER_SIZE, _U64, nxt)
                self._write_header(cur, size, MAGIC_ALLOCATED)
                self.last_cost += steps
                # Reused chunks keep their original (possibly larger) size;
                # report what was actually handed out.
                self.last_payload = size
                return cur + HEADER_SIZE
            prev = cur
            cur = nxt
            if steps > 1 << 20:
                raise HeapError("free list cycle (heap metadata corrupted)")
        self.last_cost += steps
        return 0

    def _bump(self, payload: int) -> int:
        header = self.top
        if header + HEADER_SIZE + payload > self.limit:
            raise OutOfMemory(
                f"heap exhausted ({self.top - self.base} bytes used)"
            )
        self._write_header(header, payload, MAGIC_ALLOCATED)
        self.top = header + HEADER_SIZE + payload
        return header + HEADER_SIZE

    # -- deallocation ---------------------------------------------------------

    def free(self, address: int) -> None:
        """Free the chunk whose payload starts at ``address``.

        Raises :class:`HeapError` (program abort) for frees the allocator can
        detect as invalid: null-adjacent/unaligned pointers, pointers whose
        header is not a live chunk header, and double frees.
        """
        self.last_cost = FREE_COST
        self.last_payload = 0
        if address == 0:
            return  # free(NULL) is a no-op, as in C
        if address % ALIGN != 0:
            raise HeapError(f"invalid free of misaligned pointer {address:#x}")
        header = address - HEADER_SIZE
        if not (self.base <= header and address <= self.limit):
            raise HeapError(f"invalid free of non-heap pointer {address:#x}")
        try:
            size, magic = self._read_header(header)
        except MemoryTrap as exc:
            raise HeapError(f"invalid free: {exc}") from exc
        if magic == MAGIC_FREED:
            raise HeapError(f"double free of {address:#x}")
        if magic != MAGIC_ALLOCATED or size <= 0 or header + HEADER_SIZE + size > self.top:
            raise HeapError(f"invalid free of {address:#x} (corrupt header)")
        self._write_header(header, size, MAGIC_FREED)
        # Free-list link written into the payload: dangling readers will see
        # this metadata instead of their data.
        self.memory.write_scalar(address, _U64, self.free_head)
        if size >= 16:
            self.memory.write_scalar(address + 8, _U64, 0xDEADBEEFDEADBEEF)
        self.free_head = header
        self.live_chunks -= 1
        self.bytes_in_use -= size
        self.last_payload = size

    # -- queries ----------------------------------------------------------------

    def payload_size(self, address: int) -> int:
        """Allocated payload size of a live chunk (``heapBufSize`` in 2.8)."""
        header = address - HEADER_SIZE
        if not (self.base <= header and header + HEADER_SIZE <= self.limit):
            raise HeapError(f"payload_size of non-heap pointer {address:#x}")
        try:
            size, magic = self._read_header(header)
        except MemoryTrap as exc:
            raise HeapError(f"payload_size: {exc}") from exc
        if magic != MAGIC_ALLOCATED:
            raise HeapError(f"payload_size of non-live chunk {address:#x}")
        if size <= 0 or header + HEADER_SIZE + size > self.top:
            raise HeapError(
                f"payload_size of {address:#x}: corrupt size {size}"
            )
        return size

    def is_live_chunk(self, address: int) -> bool:
        header = address - HEADER_SIZE
        if not (self.base <= header and header + HEADER_SIZE <= self.limit):
            return False
        try:
            size, magic = self._read_header(header)
        except MemoryTrap:
            return False
        return magic == MAGIC_ALLOCATED and 0 < size <= self.top - header


# Raw 64-bit unsigned header words are accessed through the pointer-width
# path of Memory (PointerType is stored as little-endian u64).
from ..ir.types import PointerType, VOID  # noqa: E402

_U64 = PointerType(VOID)
