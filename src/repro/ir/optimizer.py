"""Post-transformation IR optimizations (the *optimize* stages of Fig. 3.5).

The paper's tool chain runs LLVM's optimizer over the DPMR-transformed
bitcode before code generation (Fig. 3.4).  This module provides the
equivalent cleanup passes for our IR:

* :func:`fold_constants` — evaluates integer arithmetic/comparisons with
  constant operands and forward-substitutes the results;
* :func:`eliminate_dead_code` — removes side-effect-free instructions whose
  results are never used (dead address arithmetic and casts are common
  after DPMR's mirroring when shadow pointers degrade to null);
* :func:`simplify_branches` — rewrites conditional branches on constant
  conditions into jumps and drops unreachable blocks.

All passes are semantics-preserving on verified modules (property-tested in
``tests/test_optimizer.py``) and DPMR-transparent: they never remove loads,
stores, calls, allocations, or frees, so detection behaviour is unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from . import instructions as ins
from .module import Function, Module
from .types import IntType
from .values import ConstInt, Register, Value, wrap_int

#: instruction kinds that must never be removed (side effects / memory)
_EFFECTFUL = (
    ins.Load,  # loads participate in DPMR comparison semantics
    ins.Store,
    ins.Call,
    ins.Malloc,
    ins.Alloca,
    ins.Free,
    ins.Terminator,
)


def optimize_module(module: Module, max_iterations: int = 4) -> Dict[str, int]:
    """Run all passes to a (bounded) fixpoint; returns removal statistics."""
    stats = {"folded": 0, "dead_removed": 0, "branches_simplified": 0,
             "blocks_removed": 0}
    for fn in module.defined_functions():
        for _ in range(max_iterations):
            changed = 0
            changed += _fold_function(fn, stats)
            changed += _dce_function(fn, stats)
            changed += _simplify_branches_function(fn, stats)
            if not changed:
                break
    return stats


def fold_constants(module: Module) -> int:
    """Constant-fold every defined function; returns fold count."""
    stats = {"folded": 0, "dead_removed": 0, "branches_simplified": 0,
             "blocks_removed": 0}
    for fn in module.defined_functions():
        _fold_function(fn, stats)
    return stats["folded"]


def eliminate_dead_code(module: Module) -> int:
    stats = {"folded": 0, "dead_removed": 0, "branches_simplified": 0,
             "blocks_removed": 0}
    for fn in module.defined_functions():
        _dce_function(fn, stats)
    return stats["dead_removed"]


def simplify_branches(module: Module) -> int:
    stats = {"folded": 0, "dead_removed": 0, "branches_simplified": 0,
             "blocks_removed": 0}
    for fn in module.defined_functions():
        _simplify_branches_function(fn, stats)
    return stats["branches_simplified"] + stats["blocks_removed"]


# -- constant folding -----------------------------------------------------------


def _fold_function(fn: Function, stats: Dict[str, int]) -> int:
    constants: Dict[str, ConstInt] = {}
    folded = 0
    for block in fn.blocks:
        for inst in block.instructions:
            _substitute_operands(inst, constants)
            result = _try_fold(inst)
            if result is not None and inst.result is not None:
                constants[inst.result.name] = result
                folded += 1
    if folded:
        # Replace folded instructions' uses; the defining instructions
        # themselves become dead and are cleaned up by DCE.
        for block in fn.blocks:
            for inst in block.instructions:
                _substitute_operands(inst, constants)
    stats["folded"] += folded
    return folded


def _substitute_operands(inst: ins.Instruction, constants: Dict[str, ConstInt]) -> None:
    for attr in ("lhs", "rhs", "value", "cond", "index", "count"):
        v = getattr(inst, attr, None)
        if isinstance(v, Register) and v.name in constants:
            setattr(inst, attr, constants[v.name])
    if isinstance(inst, ins.Call):
        inst.args = [
            constants[a.name] if isinstance(a, Register) and a.name in constants else a
            for a in inst.args
        ]
    if isinstance(inst, ins.Ret) and isinstance(inst.value, Register):
        if inst.value.name in constants:
            inst.value = constants[inst.value.name]


def _try_fold(inst: ins.Instruction) -> Optional[ConstInt]:
    if isinstance(inst, ins.BinOp):
        if not (isinstance(inst.lhs, ConstInt) and isinstance(inst.rhs, ConstInt)):
            return None
        if not isinstance(inst.result.type, IntType):
            return None
        a, c = inst.lhs.value, inst.rhs.value
        op = inst.op
        if op == "add":
            r = a + c
        elif op == "sub":
            r = a - c
        elif op == "mul":
            r = a * c
        elif op == "and":
            r = a & c
        elif op == "or":
            r = a | c
        elif op == "xor":
            r = a ^ c
        elif op == "shl":
            r = a << (c & 63)
        elif op == "shr":
            r = a >> (c & 63)
        elif op == "sdiv" and c != 0:
            r = abs(a) // abs(c)
            if (a < 0) != (c < 0):
                r = -r
        elif op == "srem" and c != 0:
            q = abs(a) // abs(c)
            if (a < 0) != (c < 0):
                q = -q
            r = a - q * c
        else:
            return None
        return ConstInt(inst.result.type, wrap_int(r, max(inst.result.type.bits, 8)))
    if isinstance(inst, ins.Cmp):
        if not (isinstance(inst.lhs, ConstInt) and isinstance(inst.rhs, ConstInt)):
            return None
        a, c = inst.lhs.value, inst.rhs.value
        table = {
            "eq": a == c,
            "ne": a != c,
            "slt": a < c,
            "sle": a <= c,
            "sgt": a > c,
            "sge": a >= c,
        }
        return ConstInt(inst.result.type, int(table[inst.op]))
    if isinstance(inst, ins.NumCast):
        if isinstance(inst.value, ConstInt) and isinstance(inst.result.type, IntType):
            return ConstInt(
                inst.result.type,
                wrap_int(inst.value.value, max(inst.result.type.bits, 8)),
            )
    return None


# -- dead code elimination ------------------------------------------------------------


def _dce_function(fn: Function, stats: Dict[str, int]) -> int:
    used: Set[str] = set()
    for block in fn.blocks:
        for inst in block.instructions:
            for op in inst.operands():
                if isinstance(op, Register):
                    used.add(op.name)
            if isinstance(inst, ins.Call) and isinstance(inst.callee, Register):
                used.add(inst.callee.name)
    removed = 0
    for block in fn.blocks:
        kept: List[ins.Instruction] = []
        for inst in block.instructions:
            if (
                not isinstance(inst, _EFFECTFUL)
                and inst.result is not None
                and inst.result.name not in used
            ):
                removed += 1
                continue
            kept.append(inst)
        block.instructions = kept
    stats["dead_removed"] += removed
    return removed


# -- branch simplification --------------------------------------------------------------


def _simplify_branches_function(fn: Function, stats: Dict[str, int]) -> int:
    changed = 0
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, ins.Branch) and isinstance(term.cond, ConstInt):
            target = term.then_target if term.cond.value else term.else_target
            block.instructions[-1] = ins.Jump(target)
            changed += 1
    stats["branches_simplified"] += changed
    changed += _remove_unreachable_blocks(fn, stats)
    return changed


def _remove_unreachable_blocks(fn: Function, stats: Dict[str, int]) -> int:
    if not fn.blocks:
        return 0
    reachable: Set[str] = set()
    stack = [fn.blocks[0].label]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        term = fn.block(label).terminator
        if term is not None:
            stack.extend(term.successors())
    removed = [b for b in fn.blocks if b.label not in reachable]
    if not removed:
        return 0
    fn.blocks = [b for b in fn.blocks if b.label in reachable]
    for b in removed:
        fn._block_index.pop(b.label, None)
    stats["blocks_removed"] += len(removed)
    return len(removed)
