"""IRBuilder: ergonomic construction of IR functions.

The builder keeps an insertion point (a basic block) and offers typed helper
methods for every instruction, plus structured-control-flow sugar
(:meth:`IRBuilder.if_then`, :meth:`IRBuilder.if_else`,
:meth:`IRBuilder.while_loop`, :meth:`IRBuilder.for_range`).

Loop-carried and otherwise mutable values live in ``alloca`` slots, matching
the paper's model in which programs interact with memory only through loads
and stores (and making that state subject to DPMR stack replication).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence, Union

from . import instructions as inst
from .instructions import (
    BINARY_OPS,
    CMP_OPS,
    FLOAT_OPS,
)
from .module import BasicBlock, Function, Module
from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VoidType,
    INT8,
    INT32,
    INT64,
    FLOAT64,
)
from .values import (
    ConstFloat,
    ConstInt,
    ConstNull,
    Register,
    Value,
)


class IRBuilder:
    """Builds instructions into a function at a movable insertion point."""

    def __init__(self, function: Function, block: Optional[BasicBlock] = None):
        self.function = function
        if block is None:
            block = function.blocks[0] if function.blocks else function.add_block("entry")
        self.block = block

    # -- positioning -----------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def new_block(self, label: Optional[str] = None) -> BasicBlock:
        return self.function.add_block(label)

    def emit(self, instruction: inst.Instruction) -> inst.Instruction:
        self.block.append(instruction)
        return instruction

    # -- constants -------------------------------------------------------

    def i8(self, v: int) -> ConstInt:
        return ConstInt(INT8, v)

    def i32(self, v: int) -> ConstInt:
        return ConstInt(INT32, v)

    def i64(self, v: int) -> ConstInt:
        return ConstInt(INT64, v)

    def f64(self, v: float) -> ConstFloat:
        return ConstFloat(FLOAT64, v)

    def null(self, pointee: Type) -> ConstNull:
        return ConstNull(PointerType(pointee))

    # -- memory ----------------------------------------------------------

    def alloca(self, ty: Type, count: Optional[Value] = None, hint: str = "sl") -> Register:
        r = self.function.new_register(self._alloc_result_type(ty, count), hint)
        self.emit(inst.Alloca(r, ty, count))
        return r

    def malloc(self, ty: Type, count: Optional[Value] = None, hint: str = "hp") -> Register:
        r = self.function.new_register(self._alloc_result_type(ty, count), hint)
        self.emit(inst.Malloc(r, ty, count))
        return r

    @staticmethod
    def _alloc_result_type(ty: Type, count: Optional[Value]) -> PointerType:
        if count is not None:
            return PointerType(ArrayType(ty, None))
        return PointerType(ty)

    def free(self, pointer: Value) -> None:
        self.emit(inst.Free(pointer))

    def load(self, pointer: Value, hint: str = "v") -> Register:
        pt = pointer.type
        if not isinstance(pt, PointerType):
            raise TypeError(f"load requires a pointer operand, got {pt}")
        if not pt.pointee.is_scalar():
            raise TypeError(f"loads move one scalar; pointee is {pt.pointee}")
        r = self.function.new_register(pt.pointee, hint)
        self.emit(inst.Load(r, pointer))
        return r

    def store(self, pointer: Value, value: Value) -> None:
        self.emit(inst.Store(pointer, value))

    def field_addr(self, pointer: Value, index: int, hint: str = "fp") -> Register:
        rt = inst.result_type_of_field_addr(pointer.type, index)
        r = self.function.new_register(rt, hint)
        self.emit(inst.FieldAddr(r, pointer, index))
        return r

    def elem_addr(self, pointer: Value, index: Value, hint: str = "ep") -> Register:
        rt = inst.result_type_of_elem_addr(pointer.type)
        r = self.function.new_register(rt, hint)
        self.emit(inst.ElemAddr(r, pointer, index))
        return r

    def ptr_cast(self, pointer: Value, to_pointee: Type, hint: str = "pc") -> Register:
        r = self.function.new_register(PointerType(to_pointee), hint)
        self.emit(inst.PtrCast(r, pointer))
        return r

    def ptr_to_int(self, pointer: Value, hint: str = "pi") -> Register:
        r = self.function.new_register(INT64, hint)
        self.emit(inst.PtrToInt(r, pointer))
        return r

    def int_to_ptr(self, value: Value, to_pointee: Type, hint: str = "ip") -> Register:
        r = self.function.new_register(PointerType(to_pointee), hint)
        self.emit(inst.IntToPtr(r, value))
        return r

    # -- arithmetic ------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, hint: str = "t") -> Register:
        if op in FLOAT_OPS:
            rt = lhs.type
        elif op in BINARY_OPS:
            rt = lhs.type
        else:
            raise ValueError(f"unknown op {op!r}")
        r = self.function.new_register(rt, hint)
        self.emit(inst.BinOp(r, op, lhs, rhs))
        return r

    def add(self, a: Value, b: Value) -> Register:
        return self.binop("add", a, b)

    def sub(self, a: Value, b: Value) -> Register:
        return self.binop("sub", a, b)

    def mul(self, a: Value, b: Value) -> Register:
        return self.binop("mul", a, b)

    def sdiv(self, a: Value, b: Value) -> Register:
        return self.binop("sdiv", a, b)

    def srem(self, a: Value, b: Value) -> Register:
        return self.binop("srem", a, b)

    def fadd(self, a: Value, b: Value) -> Register:
        return self.binop("fadd", a, b)

    def fsub(self, a: Value, b: Value) -> Register:
        return self.binop("fsub", a, b)

    def fmul(self, a: Value, b: Value) -> Register:
        return self.binop("fmul", a, b)

    def fdiv(self, a: Value, b: Value) -> Register:
        return self.binop("fdiv", a, b)

    def cmp(self, op: str, lhs: Value, rhs: Value, hint: str = "c") -> Register:
        if op not in CMP_OPS:
            raise ValueError(f"unknown comparison {op!r}")
        r = self.function.new_register(INT8, hint)
        self.emit(inst.Cmp(r, op, lhs, rhs))
        return r

    def eq(self, a: Value, b: Value) -> Register:
        return self.cmp("eq", a, b)

    def ne(self, a: Value, b: Value) -> Register:
        return self.cmp("ne", a, b)

    def slt(self, a: Value, b: Value) -> Register:
        return self.cmp("slt", a, b)

    def sle(self, a: Value, b: Value) -> Register:
        return self.cmp("sle", a, b)

    def sgt(self, a: Value, b: Value) -> Register:
        return self.cmp("sgt", a, b)

    def sge(self, a: Value, b: Value) -> Register:
        return self.cmp("sge", a, b)

    def num_cast(self, value: Value, to_type: Type, hint: str = "nc") -> Register:
        if not to_type.is_scalar() or isinstance(to_type, PointerType):
            raise TypeError(f"numeric cast target must be int/float, got {to_type}")
        r = self.function.new_register(to_type, hint)
        self.emit(inst.NumCast(r, value))
        return r

    # -- calls -----------------------------------------------------------

    def call(
        self,
        callee: Union[str, Function, Value],
        args: Sequence[Value] = (),
        hint: str = "cr",
    ) -> Optional[Register]:
        if isinstance(callee, Function):
            fn_type = callee.type
            target: Union[str, Value] = callee.name
        elif isinstance(callee, str):
            fn = self._lookup_function_type(callee)
            fn_type = fn
            target = callee
        else:
            fn_type = inst.callee_function_type(callee.type)
            target = callee
        result: Optional[Register] = None
        if not isinstance(fn_type.ret, VoidType):
            result = self.function.new_register(fn_type.ret, hint)
        self.emit(inst.Call(result, target, args))
        return result

    def _lookup_function_type(self, name: str) -> FunctionType:
        # Builders constructed via ModuleBuilder can resolve names.
        module = getattr(self, "_module", None)
        if module is None or name not in module.functions:
            raise ValueError(
                f"cannot resolve callee {name!r}; pass a Function object instead"
            )
        return module.functions[name].type

    def func_addr(self, fn: Function, hint: str = "fa") -> Register:
        r = self.function.new_register(PointerType(fn.type), hint)
        self.emit(inst.FuncAddr(r, fn.name))
        return r

    # -- terminators -----------------------------------------------------

    def jump(self, target: BasicBlock) -> None:
        self.emit(inst.Jump(target.label))

    def branch(self, cond: Value, then_block: BasicBlock, else_block: BasicBlock) -> None:
        self.emit(inst.Branch(cond, then_block.label, else_block.label))

    def ret(self, value: Optional[Value] = None) -> None:
        self.emit(inst.Ret(value))

    def unreachable(self) -> None:
        self.emit(inst.Unreachable())

    # -- structured control flow -----------------------------------------

    @contextmanager
    def if_then(self, cond: Value) -> Iterator[None]:
        """``if (cond) { body }`` — body is built inside the ``with``."""
        then_block = self.new_block()
        end_block = self.new_block()
        self.branch(cond, then_block, end_block)
        self.position_at_end(then_block)
        yield
        if not self.block.is_terminated:
            self.jump(end_block)
        self.position_at_end(end_block)

    @contextmanager
    def if_else(self, cond: Value) -> Iterator["_IfArms"]:
        """``if/else``; use ``arms.then()`` and ``arms.otherwise()``."""
        then_block = self.new_block()
        else_block = self.new_block()
        end_block = self.new_block()
        self.branch(cond, then_block, else_block)
        arms = _IfArms(self, then_block, else_block, end_block)
        yield arms
        self.position_at_end(end_block)

    @contextmanager
    def while_loop(self, cond_fn: Callable[["IRBuilder"], Value]) -> Iterator["LoopHandle"]:
        """``while (cond_fn(builder)) { body }``.

        Yields a :class:`LoopHandle`; call ``handle.break_()`` /
        ``handle.continue_()`` inside the body (typically under
        :meth:`if_then`) for early exits.
        """
        cond_block = self.new_block()
        body_block = self.new_block()
        end_block = self.new_block()
        self.jump(cond_block)
        self.position_at_end(cond_block)
        cond = cond_fn(self)
        self.branch(cond, body_block, end_block)
        self.position_at_end(body_block)
        yield LoopHandle(self, cond_block, end_block)
        if not self.block.is_terminated:
            self.jump(cond_block)
        self.position_at_end(end_block)

    @contextmanager
    def for_range(
        self,
        stop: Value,
        start: Optional[Value] = None,
        step: Optional[Value] = None,
        ty: IntType = INT64,
    ) -> Iterator[Register]:
        """Counted loop; yields the loaded counter value for the body.

        The counter lives in an ``alloca`` slot (loop-carried state must be in
        memory in this IR), so it participates in DPMR stack replication.
        """
        start = start if start is not None else ConstInt(ty, 0)
        step = step if step is not None else ConstInt(ty, 1)
        slot = self.alloca(ty, hint="i")
        self.store(slot, start)
        cond_block = self.new_block()
        body_block = self.new_block()
        end_block = self.new_block()
        self.jump(cond_block)
        self.position_at_end(cond_block)
        i = self.load(slot, hint="i")
        cond = self.slt(i, stop)
        self.branch(cond, body_block, end_block)
        self.position_at_end(body_block)
        i_body = self.load(slot, hint="i")
        yield i_body
        if not self.block.is_terminated:
            nxt = self.add(self.load(slot, hint="i"), step)
            self.store(slot, nxt)
            self.jump(cond_block)
        self.position_at_end(end_block)


class LoopHandle:
    """Early-exit handle for :meth:`IRBuilder.while_loop`."""

    def __init__(self, builder: IRBuilder, cond_block: "BasicBlock", end_block: "BasicBlock"):
        self._builder = builder
        self._cond = cond_block
        self._end = end_block

    def break_(self) -> None:
        """Jump out of the loop (terminates the current block)."""
        self._builder.jump(self._end)

    def continue_(self) -> None:
        """Jump back to the loop condition (terminates the current block)."""
        self._builder.jump(self._cond)


class _IfArms:
    """Handle object yielded by :meth:`IRBuilder.if_else`."""

    def __init__(
        self,
        builder: IRBuilder,
        then_block: BasicBlock,
        else_block: BasicBlock,
        end_block: BasicBlock,
    ):
        self._builder = builder
        self._then = then_block
        self._else = else_block
        self._end = end_block

    @contextmanager
    def then(self) -> Iterator[None]:
        self._builder.position_at_end(self._then)
        yield
        if not self._builder.block.is_terminated:
            self._builder.jump(self._end)

    @contextmanager
    def otherwise(self) -> Iterator[None]:
        self._builder.position_at_end(self._else)
        yield
        if not self._builder.block.is_terminated:
            self._builder.jump(self._end)


class ModuleBuilder:
    """Convenience wrapper that tracks a module and resolves direct callees."""

    def __init__(self, name: str = "module"):
        self.module = Module(name)

    def declare_external(
        self, name: str, ret: Type, params: Sequence[Type]
    ) -> Function:
        fn = Function(name, FunctionType(ret, params), is_external=True)
        return self.module.add_function(fn)

    def define(
        self,
        name: str,
        ret: Type,
        params: Sequence[Type] = (),
        param_names: Optional[Sequence[str]] = None,
    ) -> "tuple[Function, IRBuilder]":
        fn = Function(name, FunctionType(ret, params), param_names)
        self.module.add_function(fn)
        builder = IRBuilder(fn)
        builder._module = self.module
        return fn, builder

    def builder_for(self, fn: Function, block: Optional[BasicBlock] = None) -> IRBuilder:
        builder = IRBuilder(fn, block)
        builder._module = self.module
        return builder

    def add_global(self, name: str, value_type: Type, initializer=None):
        from .module import GlobalVariable

        return self.module.add_global(GlobalVariable(name, value_type, initializer))
