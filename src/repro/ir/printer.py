"""Textual rendering of IR modules (for examples, tests, and debugging).

The printed form doubles as the IR's canonical content encoding:
:func:`function_fingerprint` hashes it to content-address functions in the
incremental-recompilation transform cache.
"""

from __future__ import annotations

import hashlib
from typing import List

from . import instructions as inst
from .module import Function, Module
from .values import Value


def format_value(v: Value) -> str:
    return str(v)


def format_instruction(i: inst.Instruction) -> str:
    text = _format_body(i)
    if i.fault_site is not None:
        text += f"  ; fault-site={i.fault_site}"
    if i.origin is not None:
        text += f"  ; {i.origin}"
    return text


def _format_body(i: inst.Instruction) -> str:
    if isinstance(i, inst.Alloca):
        count = f", {i.count}" if i.count is not None else ""
        return f"{i.result} = alloca {i.allocated_type}{count}"
    if isinstance(i, inst.Malloc):
        count = f", {i.count}" if i.count is not None else ""
        return f"{i.result} = malloc {i.allocated_type}{count}"
    if isinstance(i, inst.Free):
        return f"free {i.pointer}"
    if isinstance(i, inst.Load):
        return f"{i.result} = load {i.result.type}, {i.pointer}"
    if isinstance(i, inst.Store):
        return f"store {i.value} -> {i.pointer}"
    if isinstance(i, inst.FieldAddr):
        return f"{i.result} = fieldaddr {i.pointer}, {i.index}"
    if isinstance(i, inst.ElemAddr):
        return f"{i.result} = elemaddr {i.pointer}, [{i.index}]"
    if isinstance(i, inst.PtrCast):
        return f"{i.result} = ptrcast {i.pointer} to {i.result.type}"
    if isinstance(i, inst.PtrToInt):
        return f"{i.result} = ptrtoint {i.pointer}"
    if isinstance(i, inst.IntToPtr):
        return f"{i.result} = inttoptr {i.value} to {i.result.type}"
    if isinstance(i, inst.BinOp):
        return f"{i.result} = {i.op} {i.lhs}, {i.rhs}"
    if isinstance(i, inst.Cmp):
        return f"{i.result} = cmp {i.op} {i.lhs}, {i.rhs}"
    if isinstance(i, inst.NumCast):
        return f"{i.result} = numcast {i.value} to {i.result.type}"
    if isinstance(i, inst.Call):
        target = f"@{i.callee}" if i.is_direct else str(i.callee)
        args = ", ".join(str(a) for a in i.args)
        if i.result is not None:
            return f"{i.result} = call {target}({args})"
        return f"call {target}({args})"
    if isinstance(i, inst.FuncAddr):
        return f"{i.result} = funcaddr @{i.function_name}"
    if isinstance(i, inst.Jump):
        return f"jump {i.target}"
    if isinstance(i, inst.Branch):
        return f"branch {i.cond}, {i.then_target}, {i.else_target}"
    if isinstance(i, inst.Ret):
        return f"ret {i.value}" if i.value is not None else "ret"
    if isinstance(i, inst.Unreachable):
        return "unreachable"
    return f"<unknown {type(i).__name__}>"


def format_function(fn: Function) -> str:
    params = ", ".join(f"{p} : {p.type}" for p in fn.params)
    header = f"func @{fn.name}({params}) -> {fn.type.ret}"
    if fn.is_external:
        return f"extern {header}"
    lines: List[str] = [header + " {"]
    for block in fn.blocks:
        lines.append(f"  {block.label}:")
        for i in block.instructions:
            lines.append(f"    {format_instruction(i)}")
    lines.append("}")
    return "\n".join(lines)


def function_fingerprint(fn: Function) -> str:
    """Content hash of one function's printed form.

    Covers the signature, block structure, every instruction (including
    malloc counts and allocated types), and the ``fault_site``/``origin``
    markers, so any fault injection changes the fingerprint.  Functions
    produced by the same deterministic program factory collide only when
    structurally identical, which is exactly the equivalence the
    function-level DPMR transform cache needs.
    """
    return hashlib.sha256(format_function(fn).encode("utf-8")).hexdigest()


def format_module(module: Module) -> str:
    parts: List[str] = [f"; module {module.name}"]
    for g in module.globals.values():
        parts.append(f"global @{g.name} : {g.value_type} = {g.initializer!r}")
    for fn in module.functions.values():
        parts.append(format_function(fn))
    return "\n\n".join(parts)
