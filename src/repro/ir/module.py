"""Module-level IR containers: basic blocks, functions, globals, modules."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Union

from .instructions import Instruction, Terminator
from .types import FunctionType, PointerType, Type
from .values import FunctionRef, GlobalRef, Register


class BasicBlock:
    """A labeled straight-line instruction sequence ending in a terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instructions: List[Instruction] = []

    @property
    def terminator(self) -> Optional[Terminator]:
        if self.instructions and isinstance(self.instructions[-1], Terminator):
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(f"block {self.label} is already terminated")
        self.instructions.append(inst)
        return inst

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BasicBlock({self.label}, {len(self.instructions)} insts)"


class Function:
    """A function definition or external declaration.

    External functions (``is_external=True``) have no blocks; they are
    resolved at run time against the machine's intrinsic registry
    (the paper's *external code*, §2.8).
    """

    def __init__(
        self,
        name: str,
        type: FunctionType,
        param_names: Optional[Sequence[str]] = None,
        is_external: bool = False,
    ):
        self.name = name
        self.type = type
        self.is_external = is_external
        self.blocks: List[BasicBlock] = []
        self._block_index: Dict[str, BasicBlock] = {}
        names = list(param_names) if param_names is not None else [
            f"arg{i}" for i in range(len(type.params))
        ]
        if len(names) != len(type.params):
            raise ValueError("parameter name count does not match type")
        self.params: List[Register] = [
            Register(n, t) for n, t in zip(names, type.params)
        ]
        self._next_reg = 0
        self._next_label = 0

    # -- construction helpers -------------------------------------------

    def new_register(self, type: Type, hint: str = "r") -> Register:
        name = f"{hint}{self._next_reg}"
        self._next_reg += 1
        return Register(name, type)

    def add_block(self, label: Optional[str] = None) -> BasicBlock:
        if label is None:
            label = f"bb{self._next_label}"
            self._next_label += 1
        if label in self._block_index:
            raise ValueError(f"duplicate block label {label!r} in {self.name}")
        block = BasicBlock(label)
        self.blocks.append(block)
        self._block_index[label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        return self._block_index[label]

    def find_block(self, label: str) -> Optional[BasicBlock]:
        """Like :meth:`block`, but returns ``None`` for an unknown label."""
        return self._block_index.get(label)

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def ref(self) -> FunctionRef:
        """A function-pointer value referring to this function."""
        return FunctionRef(self.name, PointerType(self.type))

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:  # pragma: no cover
        kind = "external " if self.is_external else ""
        return f"<{kind}Function {self.name}: {self.type}>"


#: Global initializers are nested Python data:
#: ints/floats for scalars, ``None`` for null pointers, ``bytes`` for byte
#: arrays, lists for arrays/structs, and GlobalRef/FunctionRef for pointers.
Initializer = Union[int, float, None, bytes, list, GlobalRef, FunctionRef]


class GlobalVariable:
    """A module global.

    Per the paper's assumptions, a global named ``g`` of declared value type
    ``T`` is a *pointer to memory*: references to ``g`` in code have type
    ``T*`` and the memory is allocated (and initialized) at program start.
    """

    def __init__(self, name: str, value_type: Type, initializer: Initializer = None):
        self.name = name
        self.value_type = value_type
        self.initializer = initializer

    def ref(self) -> GlobalRef:
        return GlobalRef(self.name, PointerType(self.value_type))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<GlobalVariable {self.name}: {self.value_type}>"


class Module:
    """A whole program: functions plus global variables."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def add_global(self, g: GlobalVariable) -> GlobalVariable:
        if g.name in self.globals:
            raise ValueError(f"duplicate global {g.name!r}")
        self.globals[g.name] = g
        return g

    def function(self, name: str) -> Function:
        return self.functions[name]

    def defined_functions(self) -> Iterator[Function]:
        for fn in self.functions.values():
            if not fn.is_external:
                yield fn

    def external_functions(self) -> Iterator[Function]:
        for fn in self.functions.values():
            if fn.is_external:
                yield fn

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
