"""Module-level IR containers: basic blocks, functions, globals, modules."""

from __future__ import annotations

import copy
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from .instructions import Instruction, Terminator
from .types import FunctionType, PointerType, Type
from .values import FunctionRef, GlobalRef, Register


def _clone_instruction(inst: Instruction) -> Instruction:
    """Structural copy of one instruction.

    Operand values (registers, constants, refs) are immutable once built and
    are shared; every mutable container attribute (e.g. ``Call.args``) gets a
    fresh list so in-place rewrites — the fault injector replacing a malloc
    count, stamping ``fault_site`` — never reach the original.
    """
    c = copy.copy(inst)
    for name, value in vars(c).items():
        if isinstance(value, list):
            setattr(c, name, list(value))
    return c


class BasicBlock:
    """A labeled straight-line instruction sequence ending in a terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instructions: List[Instruction] = []

    @property
    def terminator(self) -> Optional[Terminator]:
        if self.instructions and isinstance(self.instructions[-1], Terminator):
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(f"block {self.label} is already terminated")
        self.instructions.append(inst)
        return inst

    def clone(self) -> "BasicBlock":
        """Structural copy: same label, per-instruction copies (see
        :func:`_clone_instruction` for the sharing contract)."""
        b = BasicBlock(self.label)
        b.instructions = [_clone_instruction(i) for i in self.instructions]
        return b

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BasicBlock({self.label}, {len(self.instructions)} insts)"


class Function:
    """A function definition or external declaration.

    External functions (``is_external=True``) have no blocks; they are
    resolved at run time against the machine's intrinsic registry
    (the paper's *external code*, §2.8).
    """

    def __init__(
        self,
        name: str,
        type: FunctionType,
        param_names: Optional[Sequence[str]] = None,
        is_external: bool = False,
    ):
        self.name = name
        self.type = type
        self.is_external = is_external
        self.blocks: List[BasicBlock] = []
        self._block_index: Dict[str, BasicBlock] = {}
        names = list(param_names) if param_names is not None else [
            f"arg{i}" for i in range(len(type.params))
        ]
        if len(names) != len(type.params):
            raise ValueError("parameter name count does not match type")
        self.params: List[Register] = [
            Register(n, t) for n, t in zip(names, type.params)
        ]
        self._next_reg = 0
        self._next_label = 0

    # -- construction helpers -------------------------------------------

    def new_register(self, type: Type, hint: str = "r") -> Register:
        name = f"{hint}{self._next_reg}"
        self._next_reg += 1
        return Register(name, type)

    def add_block(self, label: Optional[str] = None) -> BasicBlock:
        if label is None:
            label = f"bb{self._next_label}"
            self._next_label += 1
        if label in self._block_index:
            raise ValueError(f"duplicate block label {label!r} in {self.name}")
        block = BasicBlock(label)
        self.blocks.append(block)
        self._block_index[label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        return self._block_index[label]

    def find_block(self, label: str) -> Optional[BasicBlock]:
        """Like :meth:`block`, but returns ``None`` for an unknown label."""
        return self._block_index.get(label)

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def ref(self) -> FunctionRef:
        """A function-pointer value referring to this function."""
        return FunctionRef(self.name, PointerType(self.type))

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def reachable_blocks(self) -> List[BasicBlock]:
        """Blocks reachable from the entry, in ``blocks`` order.

        Codegen-facing metadata mirroring the machine's decode rules
        exactly: a block ends at its *first* terminator (dead instructions
        after it contribute nothing), and a branch/jump label that does not
        resolve simply has no successor edge (executing it traps; it never
        makes anything reachable).
        """
        from .instructions import Branch, Jump, Ret, Unreachable

        def successors(block: BasicBlock) -> List[str]:
            for inst in block.instructions:
                k = type(inst)
                if k is Branch:
                    return [inst.then_target, inst.else_target]
                if k is Jump:
                    return [inst.target]
                if k is Ret or k is Unreachable:
                    return []
            return []

        if not self.blocks:
            return []
        seen = {self.blocks[0].label}
        work = [self.blocks[0]]
        while work:
            for label in successors(work.pop()):
                target = self._block_index.get(label)
                if target is not None and target.label not in seen:
                    seen.add(target.label)
                    work.append(target)
        return [b for b in self.blocks if b.label in seen]

    def clone(self) -> "Function":
        """Structural copy sharing types, params, and operand values.

        The copy has its own block list, block objects, and instruction
        objects, so mutating it (fault injection, block edits) leaves the
        original untouched; register-name counters carry over so code built
        on top of the clone allocates the same fresh names the original
        would.  Cost is one shallow instruction copy per instruction —
        orders of magnitude cheaper than re-running a program factory.
        """
        fn = Function.__new__(Function)
        fn.name = self.name
        fn.type = self.type
        fn.is_external = self.is_external
        fn.params = list(self.params)
        fn._next_reg = self._next_reg
        fn._next_label = self._next_label
        fn.blocks = [b.clone() for b in self.blocks]
        fn._block_index = {b.label: b for b in fn.blocks}
        return fn

    def __repr__(self) -> str:  # pragma: no cover
        kind = "external " if self.is_external else ""
        return f"<{kind}Function {self.name}: {self.type}>"


#: Global initializers are nested Python data:
#: ints/floats for scalars, ``None`` for null pointers, ``bytes`` for byte
#: arrays, lists for arrays/structs, and GlobalRef/FunctionRef for pointers.
Initializer = Union[int, float, None, bytes, list, GlobalRef, FunctionRef]


class GlobalVariable:
    """A module global.

    Per the paper's assumptions, a global named ``g`` of declared value type
    ``T`` is a *pointer to memory*: references to ``g`` in code have type
    ``T*`` and the memory is allocated (and initialized) at program start.
    """

    def __init__(self, name: str, value_type: Type, initializer: Initializer = None):
        self.name = name
        self.value_type = value_type
        self.initializer = initializer

    def ref(self) -> GlobalRef:
        return GlobalRef(self.name, PointerType(self.value_type))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<GlobalVariable {self.name}: {self.value_type}>"


class Module:
    """A whole program: functions plus global variables."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def add_global(self, g: GlobalVariable) -> GlobalVariable:
        if g.name in self.globals:
            raise ValueError(f"duplicate global {g.name!r}")
        self.globals[g.name] = g
        return g

    def function(self, name: str) -> Function:
        return self.functions[name]

    def defined_functions(self) -> Iterator[Function]:
        for fn in self.functions.values():
            if not fn.is_external:
                yield fn

    def external_functions(self) -> Iterator[Function]:
        for fn in self.functions.values():
            if fn.is_external:
                yield fn

    def clone(self, mutable_functions: Optional[Iterable[str]] = None) -> "Module":
        """Structural snapshot of the whole program.

        With ``mutable_functions=None`` every function body is copied — a
        fully isolated clone that may be mutated freely.  Passing an iterable
        of function names copies *only those* bodies and shares the remaining
        :class:`Function` objects with the original (copy-on-write): the
        campaign fast path, where exactly one function per fault site is ever
        mutated, clones a whole module in O(changed function).  Shared
        functions must be treated as frozen by the caller; the interpreter
        and the DPMR transformation only read IR, so sharing is safe there.

        Globals get fresh :class:`GlobalVariable` wrappers but share their
        (never-mutated) initializer structure; function/global dict ordering
        is preserved, which keeps machine address assignment — and therefore
        execution — identical between a clone and its original.
        """
        m = Module(self.name)
        if mutable_functions is None:
            m.functions = {name: fn.clone() for name, fn in self.functions.items()}
        else:
            mutable = set(mutable_functions)
            m.functions = {
                name: (fn.clone() if name in mutable else fn)
                for name, fn in self.functions.items()
            }
        m.globals = {
            name: GlobalVariable(g.name, g.value_type, g.initializer)
            for name, g in self.globals.items()
        }
        return m

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
