"""IR well-formedness verification.

The verifier enforces the structural assumptions the DPMR transformation
relies on (Ch. 2): blocks terminate, loads/stores move scalars, branch
targets exist, call signatures match, and registers are defined before use
along every path (checked conservatively: defined somewhere in the
function).
"""

from __future__ import annotations

from typing import List

from . import instructions as inst
from .module import Function, Module
from .types import FunctionType, PointerType, VoidType
from .values import ConstFloat, ConstInt, ConstNull, FunctionRef, GlobalRef, Register


class VerificationError(Exception):
    """Raised when a module violates IR invariants."""


def verify_module(module: Module) -> None:
    """Verify every defined function in ``module``; raise on first error."""
    for fn in module.defined_functions():
        verify_function(fn, module)
    for g in module.globals.values():
        if isinstance(g.value_type, VoidType):
            raise VerificationError(f"global {g.name} has void value type")


def verify_function(fn: Function, module: Module) -> None:
    if not fn.blocks:
        raise VerificationError(f"{fn.name}: no blocks")
    labels = {b.label for b in fn.blocks}
    defined = {p.name for p in fn.params}
    for block in fn.blocks:
        for i in block.instructions:
            if i.result is not None:
                defined.add(i.result.name)
    for block in fn.blocks:
        term = block.terminator
        if term is None:
            raise VerificationError(f"{fn.name}/{block.label}: not terminated")
        for idx, i in enumerate(block.instructions):
            if isinstance(i, inst.Terminator) and idx != len(block.instructions) - 1:
                raise VerificationError(
                    f"{fn.name}/{block.label}: terminator not last"
                )
            _verify_instruction(fn, module, block.label, i, defined)
        for succ in term.successors():
            if succ not in labels:
                raise VerificationError(
                    f"{fn.name}/{block.label}: unknown successor {succ!r}"
                )


def _verify_instruction(fn, module, label, i, defined) -> None:
    where = f"{fn.name}/{label}"
    for op in i.operands():
        if op is None:
            raise VerificationError(f"{where}: null operand in {i!r}")
        if isinstance(op, Register) and op.name not in defined:
            raise VerificationError(f"{where}: use of undefined register {op}")
        if isinstance(op, GlobalRef) and op.name not in module.globals:
            raise VerificationError(f"{where}: unknown global {op}")
        if isinstance(op, FunctionRef) and op.name not in module.functions:
            raise VerificationError(f"{where}: unknown function ref {op}")
    if isinstance(i, inst.Load):
        pt = i.pointer.type
        if not isinstance(pt, PointerType) or not pt.pointee.is_scalar():
            raise VerificationError(f"{where}: bad load pointer type {pt}")
        if i.result.type != pt.pointee:
            raise VerificationError(
                f"{where}: load result {i.result.type} != pointee {pt.pointee}"
            )
    elif isinstance(i, inst.Store):
        pt = i.pointer.type
        if not isinstance(pt, PointerType):
            raise VerificationError(f"{where}: store through non-pointer {pt}")
        if not i.value.type.is_scalar():
            raise VerificationError(f"{where}: store of non-scalar {i.value.type}")
        if pt.pointee != i.value.type and not isinstance(pt.pointee, VoidType):
            raise VerificationError(
                f"{where}: store type mismatch {i.value.type} -> {pt}"
            )
    elif isinstance(i, inst.FieldAddr):
        expected = inst.result_type_of_field_addr(i.pointer.type, i.index)
        if i.result.type != expected:
            raise VerificationError(
                f"{where}: fieldaddr result {i.result.type} != {expected}"
            )
    elif isinstance(i, inst.ElemAddr):
        expected = inst.result_type_of_elem_addr(i.pointer.type)
        if i.result.type != expected:
            raise VerificationError(
                f"{where}: elemaddr result {i.result.type} != {expected}"
            )
    elif isinstance(i, inst.Call):
        if i.is_direct:
            if i.callee not in module.functions:
                raise VerificationError(f"{where}: call to unknown @{i.callee}")
            fn_type = module.functions[i.callee].type
        else:
            fn_type = inst.callee_function_type(i.callee.type)
        _verify_call_signature(where, i, fn_type)
    elif isinstance(i, inst.Ret):
        want = fn.type.ret
        if isinstance(want, VoidType):
            if i.value is not None:
                raise VerificationError(f"{where}: ret value in void function")
        else:
            if i.value is None:
                raise VerificationError(f"{where}: missing return value")
            if i.value.type != want:
                raise VerificationError(
                    f"{where}: ret type {i.value.type} != {want}"
                )
    elif isinstance(i, inst.FuncAddr):
        if i.function_name not in module.functions:
            raise VerificationError(f"{where}: funcaddr of unknown @{i.function_name}")


def _verify_call_signature(where: str, call: inst.Call, fn_type: FunctionType) -> None:
    if len(call.args) != len(fn_type.params):
        raise VerificationError(
            f"{where}: call arg count {len(call.args)} != {len(fn_type.params)}"
        )
    for idx, (arg, want) in enumerate(zip(call.args, fn_type.params)):
        have = arg.type
        if have == want:
            continue
        # void* is compatible with any pointer argument (external wrappers).
        if isinstance(have, PointerType) and isinstance(want, PointerType):
            if isinstance(want.pointee, VoidType) or isinstance(have.pointee, VoidType):
                continue
        raise VerificationError(
            f"{where}: call arg {idx} type {have} != {want}"
        )
    if call.result is not None and call.result.type != fn_type.ret:
        if not (
            isinstance(call.result.type, PointerType)
            and isinstance(fn_type.ret, PointerType)
        ):
            raise VerificationError(
                f"{where}: call result {call.result.type} != {fn_type.ret}"
            )
