"""Values: virtual registers and constants.

The paper assumes an architecture in which virtual registers and memory are
distinct; registers hold only scalars (integers, floating point values, and
pointers).  :class:`Register` models a virtual register; the ``Const*``
classes model immediate scalar operands.
"""

from __future__ import annotations

from typing import Optional, Union

from .types import (
    FloatType,
    IntType,
    PointerType,
    Type,
)


class Value:
    """Base class for anything usable as an instruction operand."""

    type: Type

    def __init__(self, type: Type):
        self.type = type


class Register(Value):
    """A virtual register holding one scalar value."""

    def __init__(self, name: str, type: Type):
        if not type.is_scalar():
            raise TypeError(f"registers hold scalars only, got {type}")
        super().__init__(type)
        self.name = name

    def __str__(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"Register({self.name}: {self.type})"


class ConstInt(Value):
    """An integer immediate."""

    def __init__(self, type: IntType, value: int):
        if not isinstance(type, IntType):
            raise TypeError(f"ConstInt requires an IntType, got {type}")
        super().__init__(type)
        self.value = _wrap_int(value, type.bits)

    def __str__(self) -> str:
        return f"{self.value}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstInt)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("ci", self.type, self.value))


class ConstFloat(Value):
    """A floating point immediate."""

    def __init__(self, type: FloatType, value: float):
        if not isinstance(type, FloatType):
            raise TypeError(f"ConstFloat requires a FloatType, got {type}")
        super().__init__(type)
        self.value = float(value)

    def __str__(self) -> str:
        return f"{self.value}"


class ConstNull(Value):
    """The null pointer constant of a given pointer type."""

    def __init__(self, type: PointerType):
        if not isinstance(type, PointerType):
            raise TypeError(f"ConstNull requires a PointerType, got {type}")
        super().__init__(type)

    def __str__(self) -> str:
        return "null"


class GlobalRef(Value):
    """A reference to a module global variable.

    Per the paper's assumptions all global variables are pointers to memory,
    so a :class:`GlobalRef` always has pointer type (pointer to the global's
    declared value type).
    """

    def __init__(self, name: str, type: PointerType):
        super().__init__(type)
        self.name = name

    def __str__(self) -> str:
        return f"@{self.name}"


class FunctionRef(Value):
    """A direct reference to a function (for calls and address-of)."""

    def __init__(self, name: str, type: PointerType):
        super().__init__(type)
        self.name = name

    def __str__(self) -> str:
        return f"@{self.name}"


Operand = Union[Register, ConstInt, ConstFloat, ConstNull, GlobalRef, FunctionRef]


def _wrap_int(value: int, bits: int) -> int:
    """Wrap ``value`` to the two's-complement range of ``bits``."""
    mask = (1 << bits) - 1
    value &= mask
    if bits > 1 and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def wrap_int(value: int, bits: int) -> int:
    """Public two's-complement wrapping helper (used by the interpreter)."""
    return _wrap_int(value, bits)


def const_like(value: int, type: Optional[Type] = None) -> ConstInt:
    """Convenience: an int constant, defaulting to ``int64``."""
    from .types import INT64

    ty = type if isinstance(type, IntType) else INT64
    return ConstInt(ty, value)
