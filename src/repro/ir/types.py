"""Type system for the DPMR intermediate representation.

This implements the type system assumed at the start of Chapter 2 of the
paper: primitive integer and floating point types of predefined sizes, a
``void`` type, and five derived types (pointers, structures, unions, arrays,
and functions).  All pointers have the same predefined size.  Array types do
*not* decay to pointers; ``struct{int32; int32; int32;}`` is layout-equivalent
to ``int32[3]``.

Structs come in two flavours, mirroring LLVM:

* *literal* structs, identified structurally (``StructType((INT32, INT8))``),
* *identified* structs, created by name with :func:`StructType.opaque` and
  later given a body via :meth:`StructType.set_fields`.  Identified structs
  compare by identity, which is what makes recursive types (e.g. linked
  lists) representable and hashable.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

#: Size in bytes of every pointer type (the paper assumes one predefined size).
POINTER_SIZE = 8

#: Maximum alignment used for memory layout.
MAX_ALIGN = 8


class Type:
    """Base class for all IR types."""

    def is_scalar(self) -> bool:
        """Whether values of this type fit in a virtual register.

        Per the paper's assumptions, registers hold only integers, floating
        point values, and pointers.
        """
        return False

    def is_aggregate(self) -> bool:
        return isinstance(self, (StructType, UnionType, ArrayType))

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return str(self)


class VoidType(Type):
    """The ``void`` type."""

    _instance: Optional["VoidType"] = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """A primitive integer type of a predefined bit width."""

    _cache: dict = {}

    def __new__(cls, bits: int) -> "IntType":
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        if bits not in cls._cache:
            obj = super().__new__(cls)
            obj.bits = bits
            cls._cache[bits] = obj
        return cls._cache[bits]

    bits: int

    def is_scalar(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"int{self.bits}"


class FloatType(Type):
    """A primitive floating point type of a predefined bit width."""

    _cache: dict = {}

    def __new__(cls, bits: int) -> "FloatType":
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        if bits not in cls._cache:
            obj = super().__new__(cls)
            obj.bits = bits
            cls._cache[bits] = obj
        return cls._cache[bits]

    bits: int

    def is_scalar(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"float{self.bits}"


class PointerType(Type):
    """A pointer to a pointee type."""

    def __init__(self, pointee: Type):
        if not isinstance(pointee, Type):
            raise TypeError(f"pointee must be a Type, got {pointee!r}")
        self.pointee = pointee

    def is_scalar(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and self.pointee == other.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    """An array of a fixed (or unspecified) number of elements.

    ``count=None`` denotes an unsized array (``int8[]`` in the paper's
    notation), usable behind pointers but not directly allocatable.
    """

    def __init__(self, element: Type, count: Optional[int] = None):
        if isinstance(element, VoidType):
            raise TypeError("arrays of void are not allowed")
        if count is not None and count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and self.element == other.element
            and self.count == other.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))

    def __str__(self) -> str:
        n = "" if self.count is None else str(self.count)
        return f"{self.element}[{n}]"


class StructType(Type):
    """A structure type.

    Literal structs are structural: two literal structs with the same field
    list are equal.  Identified structs (created via :func:`StructType.opaque`
    or by passing ``name=``) compare by identity and may be recursive.
    """

    def __init__(
        self,
        fields: Optional[Sequence[Type]] = None,
        name: Optional[str] = None,
    ):
        self.name = name
        self._fields: Optional[Tuple[Type, ...]] = (
            None if fields is None else tuple(fields)
        )
        if self._fields is None and name is None:
            raise ValueError("literal structs require a field list")

    @classmethod
    def opaque(cls, name: str) -> "StructType":
        """Create a named struct with no body yet (for recursive types)."""
        return cls(fields=None, name=name)

    def set_fields(self, fields: Sequence[Type]) -> None:
        if self._fields is not None:
            raise ValueError(f"struct {self.name} already has a body")
        self._fields = tuple(fields)

    @property
    def fields(self) -> Tuple[Type, ...]:
        if self._fields is None:
            raise ValueError(f"struct {self.name} is opaque (no body set)")
        return self._fields

    @property
    def is_opaque(self) -> bool:
        return self._fields is None

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if self.name is not None or not isinstance(other, StructType):
            return False
        if other.name is not None:
            return False
        return self._fields == other._fields

    def __hash__(self) -> int:
        if self.name is not None:
            return hash(("named-struct", id(self)))
        return hash(("struct", self._fields))

    def __str__(self) -> str:
        if self.name is not None:
            return f"%{self.name}"
        inner = " ".join(f"{f};" for f in self.fields)
        return "struct{" + inner + "}"


class UnionType(Type):
    """A union of member types (size of the largest member)."""

    def __init__(self, members: Sequence[Type], name: Optional[str] = None):
        if not members:
            raise ValueError("unions require at least one member")
        self.name = name
        self.members: Tuple[Type, ...] = tuple(members)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if self.name is not None or not isinstance(other, UnionType):
            return False
        if other.name is not None:
            return False
        return self.members == other.members

    def __hash__(self) -> int:
        if self.name is not None:
            return hash(("named-union", id(self)))
        return hash(("union", self.members))

    def __str__(self) -> str:
        if self.name is not None:
            return f"%{self.name}"
        inner = " ".join(f"{m};" for m in self.members)
        return "union{" + inner + "}"


class FunctionType(Type):
    """A function type ``ret(param0, ..., paramN)``.

    Per the paper's assumptions, functions return at most one scalar value and
    parameters are scalars (or void return).
    """

    def __init__(self, ret: Type, params: Sequence[Type]):
        self.ret = ret
        self.params: Tuple[Type, ...] = tuple(params)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and self.ret == other.ret
            and self.params == other.params
        )

    def __hash__(self) -> int:
        return hash(("fn", self.ret, self.params))

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        return f"{self.ret}({ps})"


# Singleton instances of the primitive types.
VOID = VoidType()
INT1 = IntType(1)
INT8 = IntType(8)
INT16 = IntType(16)
INT32 = IntType(32)
INT64 = IntType(64)
FLOAT32 = FloatType(32)
FLOAT64 = FloatType(64)

#: Generic byte pointer (``void*``).
VOID_PTR = PointerType(VOID)


def ptr(t: Type) -> PointerType:
    """Shorthand constructor for pointer types."""
    return PointerType(t)


def array(t: Type, n: Optional[int] = None) -> ArrayType:
    """Shorthand constructor for array types."""
    return ArrayType(t, n)


def alignof(t: Type) -> int:
    """Natural alignment of ``t`` in bytes, capped at :data:`MAX_ALIGN`.

    Memoized on the type instance: layout queries run on every interpreted
    address computation, so the recursive walk must happen only once per
    type object.  Types are immutable once built (opaque structs gain a body
    exactly once, and raise before that), so the cache can never go stale.
    """
    try:
        return t._alignof  # type: ignore[attr-defined]
    except AttributeError:
        a = _alignof_uncached(t)
        t._alignof = a  # type: ignore[attr-defined]
        return a


def _alignof_uncached(t: Type) -> int:
    if isinstance(t, IntType):
        return max(1, min(t.bits // 8, MAX_ALIGN))
    if isinstance(t, FloatType):
        return min(t.bits // 8, MAX_ALIGN)
    if isinstance(t, PointerType):
        return POINTER_SIZE
    if isinstance(t, ArrayType):
        return alignof(t.element)
    if isinstance(t, StructType):
        if not t.fields:
            return 1
        return max(alignof(f) for f in t.fields)
    if isinstance(t, UnionType):
        return max(alignof(m) for m in t.members)
    if isinstance(t, VoidType):
        return 1
    raise TypeError(f"no alignment for {t}")


def sizeof(t: Type) -> int:
    """Number of bytes reserved when ``t`` is allocated (with padding).

    Matches the paper's ``sizeof()`` symbol: the reserved byte count includes
    any alignment padding.  Memoized on the type instance (see
    :func:`alignof` for why that is safe).
    """
    try:
        return t._sizeof  # type: ignore[attr-defined]
    except AttributeError:
        s = _sizeof_uncached(t)
        t._sizeof = s  # type: ignore[attr-defined]
        return s


def _sizeof_uncached(t: Type) -> int:
    if isinstance(t, IntType):
        return max(1, t.bits // 8)
    if isinstance(t, FloatType):
        return t.bits // 8
    if isinstance(t, PointerType):
        return POINTER_SIZE
    if isinstance(t, ArrayType):
        if t.count is None:
            raise TypeError(f"cannot take sizeof unsized array {t}")
        return sizeof(t.element) * t.count
    if isinstance(t, StructType):
        size = 0
        for f in t.fields:
            a = alignof(f)
            size = _align_up(size, a)
            size += sizeof(f)
        size = _align_up(size, alignof(t)) if t.fields else 0
        return size
    if isinstance(t, UnionType):
        size = max(sizeof(m) for m in t.members)
        return _align_up(size, alignof(t))
    if isinstance(t, VoidType):
        raise TypeError("cannot take sizeof void")
    if isinstance(t, FunctionType):
        raise TypeError("cannot take sizeof a function type")
    raise TypeError(f"no size for {t}")


def _align_up(n: int, a: int) -> int:
    return (n + a - 1) // a * a


def field_offset(t: StructType, index: int) -> int:
    """Byte offset of field ``index`` within struct ``t``.

    All field offsets are computed once per struct instance and memoized,
    since ``field_addr`` instructions query them on every execution.
    """
    try:
        offsets = t._field_offsets  # type: ignore[attr-defined]
    except AttributeError:
        offsets = []
        off = 0
        for f in t.fields:
            off = _align_up(off, alignof(f))
            offsets.append(off)
            off += sizeof(f)
        offsets = tuple(offsets)
        t._field_offsets = offsets  # type: ignore[attr-defined]
    if index < 0 or index >= len(offsets):
        raise IndexError(f"field index {index} out of range for {t}")
    return offsets[index]


def contains_pointer_outside_function_types(t: Type) -> bool:
    """Whether ``t`` transitively contains a pointer, ignoring function types.

    Function types never contribute (the paper's
    ``containsPointerOutsideFunType``): a function pointer field *is* a
    pointer and counts, but pointer *parameters* of a function type do not.
    """
    return _contains_ptr(t, set())


def _contains_ptr(t: Type, seen: set) -> bool:
    if isinstance(t, PointerType):
        return True
    if isinstance(t, ArrayType):
        return _contains_ptr(t.element, seen)
    if isinstance(t, StructType):
        key = id(t)
        if key in seen:
            return False
        seen.add(key)
        return any(_contains_ptr(f, seen) for f in t.fields)
    if isinstance(t, UnionType):
        key = id(t)
        if key in seen:
            return False
        seen.add(key)
        return any(_contains_ptr(m, seen) for m in t.members)
    return False


def scalarize(t: Type) -> Tuple[Type, ...]:
    """The paper's ``σ()``: flatten ``t`` into its sequence of scalar leaves.

    The result is a structure composed only of scalar types, structurally
    equivalent to ``t`` (pointers and non-pointers are *not* equivalent in
    this context).  Unions scalarize through their largest member.
    """
    out: list = []
    _scalarize_into(t, out)
    return tuple(out)


def _scalarize_into(t: Type, out: list) -> None:
    if t.is_scalar():
        out.append(t)
    elif isinstance(t, ArrayType):
        count = t.count if t.count is not None else 0
        for _ in range(count):
            _scalarize_into(t.element, out)
    elif isinstance(t, StructType):
        for f in t.fields:
            _scalarize_into(f, out)
    elif isinstance(t, UnionType):
        largest = max(t.members, key=sizeof)
        _scalarize_into(largest, out)
    elif isinstance(t, VoidType):
        pass
    else:
        raise TypeError(f"cannot scalarize {t}")


def walk(t: Type) -> Iterator[Type]:
    """Iterate over ``t`` and all component types (cycle-safe, preorder)."""
    seen: set = set()
    stack = [t]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (StructType, UnionType)):
            if id(cur) in seen:
                continue
            seen.add(id(cur))
        yield cur
        if isinstance(cur, PointerType):
            stack.append(cur.pointee)
        elif isinstance(cur, ArrayType):
            stack.append(cur.element)
        elif isinstance(cur, StructType):
            if not cur.is_opaque:
                stack.extend(cur.fields)
        elif isinstance(cur, UnionType):
            stack.extend(cur.members)
        elif isinstance(cur, FunctionType):
            stack.append(cur.ret)
            stack.extend(cur.params)
