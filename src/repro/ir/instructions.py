"""Instruction set of the DPMR intermediate representation.

Programs interact with memory only through loads and stores; each load/store
moves exactly one scalar value (paper, Ch. 2 assumptions).  Address
computation is explicit (:class:`FieldAddr`, :class:`ElemAddr`), which is
what lets the DPMR transformation mirror addressing arithmetic onto replica
and shadow memory.

Every instruction carries:

* ``result`` — the :class:`~repro.ir.values.Register` it defines (or None),
* ``fault_site`` — an optional fault-injection site id (set by the
  compiler-based injector of §3.4 *before* the DPMR transformation runs),
* ``origin`` — a free-form provenance note used by the printer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
)
from .values import Register, Value

BINARY_OPS = ("add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "shr")
FLOAT_OPS = ("fadd", "fsub", "fmul", "fdiv")
CMP_OPS = ("eq", "ne", "slt", "sle", "sgt", "sge")


class Instruction:
    """Base class for all instructions."""

    result: Optional[Register] = None

    def __init__(self) -> None:
        self.fault_site: Optional[str] = None
        self.origin: Optional[str] = None

    def operands(self) -> List[Value]:
        """All value operands (for generic traversal/verification)."""
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import format_instruction

        return format_instruction(self)


class Alloca(Instruction):
    """Stack allocation: ``result <- alloca(ty [, count])``."""

    def __init__(self, result: Register, allocated_type: Type, count: Optional[Value] = None):
        super().__init__()
        self.result = result
        self.allocated_type = allocated_type
        self.count = count

    def operands(self) -> List[Value]:
        return [self.count] if self.count is not None else []


class Malloc(Instruction):
    """Heap allocation: ``result <- malloc(ty [, count])``.

    ``count`` (an operand) requests an array of ``count`` elements of
    ``allocated_type``; heap array allocations are the targets of the
    *heap array resize* fault injection (§3.4).
    """

    def __init__(self, result: Register, allocated_type: Type, count: Optional[Value] = None):
        super().__init__()
        self.result = result
        self.allocated_type = allocated_type
        self.count = count

    def operands(self) -> List[Value]:
        return [self.count] if self.count is not None else []


class Free(Instruction):
    """Heap deallocation: ``free(ptr)``."""

    def __init__(self, pointer: Value):
        super().__init__()
        self.pointer = pointer

    def operands(self) -> List[Value]:
        return [self.pointer]


class Load(Instruction):
    """Memory read of one scalar: ``result <- *ptr``."""

    def __init__(self, result: Register, pointer: Value):
        super().__init__()
        self.result = result
        self.pointer = pointer

    def operands(self) -> List[Value]:
        return [self.pointer]


class Store(Instruction):
    """Memory write of one scalar: ``*ptr <- value``."""

    def __init__(self, pointer: Value, value: Value):
        super().__init__()
        self.pointer = pointer
        self.value = value

    def operands(self) -> List[Value]:
        return [self.pointer, self.value]


class FieldAddr(Instruction):
    """Address of a structure field: ``result <- &(ptr->field)``."""

    def __init__(self, result: Register, pointer: Value, index: int):
        super().__init__()
        self.result = result
        self.pointer = pointer
        self.index = index

    def operands(self) -> List[Value]:
        return [self.pointer]


class ElemAddr(Instruction):
    """Address of an array element: ``result <- &ptr[index]``.

    ``pointer`` has type ``τ[]*`` (pointer to array); the result has type
    ``τ*``.
    """

    def __init__(self, result: Register, pointer: Value, index: Value):
        super().__init__()
        self.result = result
        self.pointer = pointer
        self.index = index

    def operands(self) -> List[Value]:
        return [self.pointer, self.index]


class PtrCast(Instruction):
    """Pointer-to-pointer cast: ``result <- (ty*)ptr``."""

    def __init__(self, result: Register, pointer: Value):
        super().__init__()
        self.result = result
        self.pointer = pointer

    def operands(self) -> List[Value]:
        return [self.pointer]


class PtrToInt(Instruction):
    """Pointer-to-int cast (recognized only under DSA scope expansion)."""

    def __init__(self, result: Register, pointer: Value):
        super().__init__()
        self.result = result
        self.pointer = pointer

    def operands(self) -> List[Value]:
        return [self.pointer]


class IntToPtr(Instruction):
    """Int-to-pointer cast (forbidden by SDS/MDS; handled via DSA, Ch. 5)."""

    def __init__(self, result: Register, value: Value):
        super().__init__()
        self.result = result
        self.value = value

    def operands(self) -> List[Value]:
        return [self.value]


class BinOp(Instruction):
    """Integer or float arithmetic: ``result <- lhs op rhs``."""

    def __init__(self, result: Register, op: str, lhs: Value, rhs: Value):
        if op not in BINARY_OPS and op not in FLOAT_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        super().__init__()
        self.result = result
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]


class Cmp(Instruction):
    """Comparison producing an ``int8`` 0/1: ``result <- lhs op rhs``."""

    def __init__(self, result: Register, op: str, lhs: Value, rhs: Value):
        if op not in CMP_OPS:
            raise ValueError(f"unknown comparison op {op!r}")
        super().__init__()
        self.result = result
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]


class NumCast(Instruction):
    """Numeric conversion between scalar non-pointer types."""

    def __init__(self, result: Register, value: Value):
        super().__init__()
        self.result = result
        self.value = value

    def operands(self) -> List[Value]:
        return [self.value]


class Call(Instruction):
    """Function call, direct (by name) or indirect (function pointer).

    ``callee`` is a ``str`` naming a module function for direct calls, or a
    :class:`Value` of function-pointer type for indirect calls.
    """

    def __init__(
        self,
        result: Optional[Register],
        callee: Union[str, Value],
        args: Sequence[Value],
    ):
        super().__init__()
        self.result = result
        self.callee = callee
        self.args = list(args)

    @property
    def is_direct(self) -> bool:
        return isinstance(self.callee, str)

    def operands(self) -> List[Value]:
        ops = list(self.args)
        if isinstance(self.callee, Value):
            ops.append(self.callee)
        return ops


class FuncAddr(Instruction):
    """Take the address of a function: ``result <- &fun``."""

    def __init__(self, result: Register, function_name: str):
        super().__init__()
        self.result = result
        self.function_name = function_name


# --- Terminators ------------------------------------------------------------


class Terminator(Instruction):
    """Base class for block terminators."""

    def successors(self) -> List[str]:
        return []


class Jump(Terminator):
    """Unconditional branch to a block label."""

    def __init__(self, target: str):
        super().__init__()
        self.target = target

    def successors(self) -> List[str]:
        return [self.target]


class Branch(Terminator):
    """Conditional branch: nonzero ``cond`` goes to ``then_target``."""

    def __init__(self, cond: Value, then_target: str, else_target: str):
        super().__init__()
        self.cond = cond
        self.then_target = then_target
        self.else_target = else_target

    def operands(self) -> List[Value]:
        return [self.cond]

    def successors(self) -> List[str]:
        return [self.then_target, self.else_target]


class Ret(Terminator):
    """Function return with an optional scalar value."""

    def __init__(self, value: Optional[Value] = None):
        super().__init__()
        self.value = value

    def operands(self) -> List[Value]:
        return [self.value] if self.value is not None else []


class Unreachable(Terminator):
    """Trap terminator; executing it is a crash (natural detection)."""


def result_type_of_field_addr(pointer_type: Type, index: int) -> PointerType:
    """Result type of ``&(p->f_index)`` given ``type(p)``."""
    if not isinstance(pointer_type, PointerType):
        raise TypeError(f"field address requires a pointer, got {pointer_type}")
    pointee = pointer_type.pointee
    if not isinstance(pointee, StructType):
        raise TypeError(f"field address requires struct pointee, got {pointee}")
    return PointerType(pointee.fields[index])


def result_type_of_elem_addr(pointer_type: Type) -> PointerType:
    """Result type of ``&p[i]`` given ``type(p) = τ[]*``."""
    if not isinstance(pointer_type, PointerType):
        raise TypeError(f"element address requires a pointer, got {pointer_type}")
    pointee = pointer_type.pointee
    if not isinstance(pointee, ArrayType):
        raise TypeError(f"element address requires array pointee, got {pointee}")
    return PointerType(pointee.element)


def is_pointer_value(v: Value) -> bool:
    """Whether operand ``v`` is typed as a pointer."""
    return isinstance(v.type, PointerType)


def callee_function_type(callee_type: Type) -> FunctionType:
    """Extract the :class:`FunctionType` from a function-pointer type."""
    if isinstance(callee_type, PointerType) and isinstance(
        callee_type.pointee, FunctionType
    ):
        return callee_type.pointee
    raise TypeError(f"not a function pointer type: {callee_type}")


def int_type_of(v: Value) -> IntType:
    if not isinstance(v.type, IntType):
        raise TypeError(f"expected integer operand, got {v.type}")
    return v.type
