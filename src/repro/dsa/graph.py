"""DS graphs: nodes, cells, flags, unification (§5.1).

A DS graph is a points-to graph whose nodes each represent a set of memory
objects.  Nodes carry the flag set of §5.1:

=====  =============================================================
flag   meaning
=====  =============================================================
``H``  may reside on the heap
``S``  may reside on the stack
``G``  may reside in global memory
``A``  represents one or more array objects
``O``  collapsed (used non-type-homogeneously; fields folded)
``P``  pointer-to-int behaviour observed (address escapes to integers)
``2``  int-to-pointer behaviour observed (addresses conjured from ints)
``U``  unknown: allocation source unrecognized / int-to-pointer
``I``  incomplete: not all information processed (may alias anything)
``C``  complete
=====  =============================================================

Field sensitivity is maintained per byte offset while memory is used
type-homogeneously; offset conflicts during unification *collapse* the node
(flag ``O``), folding all fields into offset 0 — exactly the degradation DSA
performs.

Unification uses union-find: :meth:`DSGraph.merge` forwards one node into
another, merging flags, types, globals, and out-edges (recursively unifying
field targets).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Set, Tuple

FLAG_HEAP = "H"
FLAG_STACK = "S"
FLAG_GLOBAL = "G"
FLAG_ARRAY = "A"
FLAG_COLLAPSED = "O"
FLAG_PTR_TO_INT = "P"
FLAG_INT_TO_PTR = "2"
FLAG_UNKNOWN = "U"
FLAG_INCOMPLETE = "I"
FLAG_COMPLETE = "C"

_ids = itertools.count()


class DSNode:
    """One node of a DS graph (union-find element)."""

    __slots__ = ("id", "flags", "types", "globals", "fields", "forward")

    def __init__(self) -> None:
        self.id = next(_ids)
        self.flags: Set[str] = set()
        self.types: Set[object] = set()
        self.globals: Set[str] = set()
        #: byte offset → target Cell
        self.fields: Dict[int, "Cell"] = {}
        self.forward: Optional["DSNode"] = None

    def find(self) -> "DSNode":
        node = self
        while node.forward is not None:
            node = node.forward
        # path compression
        cur = self
        while cur.forward is not None:
            nxt = cur.forward
            cur.forward = node
            cur = nxt
        return node

    @property
    def is_collapsed(self) -> bool:
        return FLAG_COLLAPSED in self.find().flags

    def has(self, flag: str) -> bool:
        return flag in self.find().flags

    def __repr__(self) -> str:  # pragma: no cover
        n = self.find()
        return f"<DSNode {n.id} {''.join(sorted(n.flags))} fields={sorted(n.fields)}>"


class Cell:
    """A (node, offset) pair: where a pointer may point."""

    __slots__ = ("node", "offset")

    def __init__(self, node: DSNode, offset: int = 0):
        self.node = node
        self.offset = offset

    def resolved(self) -> "Cell":
        node = self.node.find()
        offset = 0 if FLAG_COLLAPSED in node.flags else self.offset
        return Cell(node, offset)

    def __repr__(self) -> str:  # pragma: no cover
        c = self.resolved()
        return f"<Cell {c.node.id}+{c.offset}>"


class DSGraph:
    """A DS graph plus the value map for one function (or the module)."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: List[DSNode] = []
        #: register name / "@global" / "ret" → Cell
        self.values: Dict[str, Cell] = {}

    # -- construction ------------------------------------------------------

    def make_node(self, *flags: str) -> DSNode:
        node = DSNode()
        node.flags.update(flags)
        self._nodes.append(node)
        return node

    def nodes(self) -> List[DSNode]:
        """Current representative nodes."""
        seen: Dict[int, DSNode] = {}
        for n in self._nodes:
            rep = n.find()
            seen[rep.id] = rep
        return list(seen.values())

    def cell_for(self, key: str) -> Optional[Cell]:
        c = self.values.get(key)
        return c.resolved() if c is not None else None

    def set_cell(self, key: str, cell: Cell) -> None:
        existing = self.values.get(key)
        if existing is None:
            self.values[key] = cell
        else:
            self.unify_cells(existing, cell)

    # -- unification ----------------------------------------------------------

    def unify_cells(self, a: Cell, b: Cell) -> Cell:
        a = a.resolved()
        b = b.resolved()
        if a.node is b.node:
            if a.offset != b.offset:
                self.collapse(a.node)
            return a.resolved()
        if a.offset != b.offset:
            self.collapse(a.node)
            self.collapse(b.node)
            a = a.resolved()
            b = b.resolved()
        self.merge(a.node, b.node)
        return a.resolved()

    def merge(self, a: DSNode, b: DSNode) -> DSNode:
        a = a.find()
        b = b.find()
        if a is b:
            return a
        # merge b into a
        b.forward = a
        a.flags |= b.flags
        a.types |= b.types
        a.globals |= b.globals
        b_fields = b.fields
        b.fields = {}
        if FLAG_COLLAPSED in a.flags:
            for cell in b_fields.values():
                self._fold_into(a, cell)
        else:
            for off, cell in b_fields.items():
                self._set_field(a, off, cell)
        return a.find()

    def _set_field(self, node: DSNode, offset: int, cell: Cell) -> None:
        node = node.find()
        if FLAG_COLLAPSED in node.flags:
            offset = 0
        existing = node.fields.get(offset)
        if existing is None:
            node.fields[offset] = cell
        else:
            self.unify_cells(existing, cell)

    def _fold_into(self, node: DSNode, cell: Cell) -> None:
        self._set_field(node, 0, cell)

    def collapse(self, node: DSNode) -> None:
        """Fold all fields into offset 0 and mark the node collapsed."""
        node = node.find()
        if FLAG_COLLAPSED in node.flags:
            return
        node.flags.add(FLAG_COLLAPSED)
        node.flags.add(FLAG_ARRAY)
        fields = node.fields
        node.fields = {}
        for cell in fields.values():
            self._set_field(node, 0, cell)

    # -- field access ------------------------------------------------------------

    def field_target(self, cell: Cell) -> Cell:
        """The cell a pointer stored at ``cell`` points to (creating it)."""
        cell = cell.resolved()
        node = cell.node
        offset = 0 if FLAG_COLLAPSED in node.flags else cell.offset
        target = node.fields.get(offset)
        if target is None:
            target = Cell(self.make_node(), 0)
            node.fields[offset] = target
        return target.resolved()

    # -- queries -----------------------------------------------------------------

    def reachable_from(self, cells: Iterable[Cell]) -> List[DSNode]:
        out: Dict[int, DSNode] = {}
        stack = [c.resolved().node for c in cells]
        while stack:
            node = stack.pop().find()
            if node.id in out:
                continue
            out[node.id] = node
            for cell in node.fields.values():
                stack.append(cell.resolved().node)
        return list(out.values())
