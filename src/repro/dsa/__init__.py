"""Data Structure Analysis and replication-scope expansion (Chapter 5)."""

from .analysis import DataStructureAnalysis
from .graph import (
    Cell,
    DSGraph,
    DSNode,
    FLAG_ARRAY,
    FLAG_COLLAPSED,
    FLAG_COMPLETE,
    FLAG_GLOBAL,
    FLAG_HEAP,
    FLAG_INCOMPLETE,
    FLAG_INT_TO_PTR,
    FLAG_PTR_TO_INT,
    FLAG_STACK,
    FLAG_UNKNOWN,
)
from .local import EXTERNAL_SUMMARIES, LocalResult, local_phase
from .bottom_up import bottom_up_phase
from .top_down import completeness_pass, top_down_phase
from .scope import DsaReplicationPlan, mark_unknown_closure

__all__ = [
    "Cell",
    "DSGraph",
    "DSNode",
    "DataStructureAnalysis",
    "DsaReplicationPlan",
    "EXTERNAL_SUMMARIES",
    "FLAG_ARRAY",
    "FLAG_COLLAPSED",
    "FLAG_COMPLETE",
    "FLAG_GLOBAL",
    "FLAG_HEAP",
    "FLAG_INCOMPLETE",
    "FLAG_INT_TO_PTR",
    "FLAG_PTR_TO_INT",
    "FLAG_STACK",
    "FLAG_UNKNOWN",
    "LocalResult",
    "bottom_up_phase",
    "completeness_pass",
    "local_phase",
    "mark_unknown_closure",
    "top_down_phase",
]
