"""Data Structure Analysis driver: local → bottom-up → top-down (§5.1).

``DataStructureAnalysis(module).run()`` produces per-function DS graphs
(with shared global nodes) whose flags reflect heap/stack/global residence,
array-ness, collapsing, pointer-to-int / int-to-pointer behaviour, and
completeness.  :mod:`repro.dsa.scope` consumes these to build Ch. 5
replication plans.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.module import Module
from .bottom_up import bottom_up_phase
from .graph import Cell, DSGraph
from .local import LocalResult, local_phase
from .top_down import completeness_pass, top_down_phase


class DataStructureAnalysis:
    """Three-phase DSA over a module."""

    def __init__(self, module: Module):
        self.module = module
        self.results: Optional[Dict[str, LocalResult]] = None

    def run(self) -> "DataStructureAnalysis":
        results = local_phase(self.module)
        bottom_up_phase(self.module, results)
        top_down_phase(self.module, results)
        completeness_pass(results)
        self.results = results
        return self

    # -- queries -------------------------------------------------------------

    def graph(self, function_name: str) -> DSGraph:
        self._require_run()
        return self.results[function_name].graph

    def cell_for_register(self, function_name: str, reg_name: str) -> Optional[Cell]:
        self._require_run()
        result = self.results.get(function_name)
        if result is None:
            return None
        return result.graph.cell_for(reg_name)

    def _require_run(self) -> None:
        if self.results is None:
            raise RuntimeError("call run() first")
