"""Scope expansion: DSA-driven replication plans (§5.2–5.5).

Mirrored Data Structures forbids int-to-pointer casts and storing pointers
that masquerade as integers because DPMR would have no way to maintain ROPs
for them (§5.2).  Chapter 5 eliminates those restrictions by *refining the
partial replica*: objects whose nodes DSA flags unknown (``U``) — including
everything reachable from them, via the ``markX()`` closure of Fig. 5.7 —
are simply not replicated.  Pointers into such memory alias their own ROPs,
stores there are not mirrored, loads from there are not compared, and frees
of such buffers do not free replicas.

:class:`DsaReplicationPlan` implements :class:`repro.core.plan.ReplicationPlan`
over a completed :class:`~repro.dsa.analysis.DataStructureAnalysis`.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..core.plan import ReplicationPlan
from ..ir import instructions as ins
from ..ir.module import Module
from ..ir.values import ConstNull, GlobalRef, Register
from .analysis import DataStructureAnalysis
from .graph import Cell, DSNode, FLAG_UNKNOWN


def mark_unknown_closure(analysis: DataStructureAnalysis) -> None:
    """Fig. 5.7's ``markX()``: spread ``U`` to everything reachable from an
    unknown node (a masqueraded pointer may denote any reachable object)."""
    for result in analysis.results.values():
        worklist = [n for n in result.graph.nodes() if n.has(FLAG_UNKNOWN)]
        seen: Set[int] = set()
        while worklist:
            node = worklist.pop().find()
            if node.id in seen:
                continue
            seen.add(node.id)
            node.flags.add(FLAG_UNKNOWN)
            for cell in node.fields.values():
                worklist.append(cell.resolved().node)


class DsaReplicationPlan(ReplicationPlan):
    """Per-instruction replication decisions derived from DS graphs."""

    def __init__(self, module: Module, analysis: Optional[DataStructureAnalysis] = None):
        self.module = module
        self.analysis = analysis if analysis is not None else DataStructureAnalysis(module).run()
        mark_unknown_closure(self.analysis)
        self._owner: Dict[int, str] = self._index_instructions()

    def _index_instructions(self) -> Dict[int, str]:
        owner: Dict[int, str] = {}
        for fn in self.module.defined_functions():
            for inst in fn.instructions():
                owner[id(inst)] = fn.name
        return owner

    # -- node lookup --------------------------------------------------------

    def _node_for_pointer(self, inst: ins.Instruction, pointer) -> Optional[DSNode]:
        fn_name = self._owner.get(id(inst))
        if fn_name is None:
            return None
        if isinstance(pointer, Register):
            cell = self.analysis.cell_for_register(fn_name, pointer.name)
        elif isinstance(pointer, GlobalRef):
            cell = None  # globals always replicate (never unknown sources here)
        else:
            cell = None
        if cell is None:
            return None
        return cell.node.find()

    def _is_unknown(self, inst: ins.Instruction, pointer) -> bool:
        node = self._node_for_pointer(inst, pointer)
        return node is not None and node.has(FLAG_UNKNOWN)

    # -- ReplicationPlan interface ----------------------------------------------

    def replicate_alloc(self, inst) -> bool:
        if not isinstance(inst, (ins.Malloc, ins.Alloca)):
            return True
        return not self._is_unknown(inst, inst.result)

    def mirror_store(self, inst: ins.Store) -> bool:
        return not self._is_unknown(inst, inst.pointer)

    def compare_load(self, inst: ins.Load) -> bool:
        return not self._is_unknown(inst, inst.pointer)

    def mirror_free(self, inst: ins.Free) -> bool:
        return not self._is_unknown(inst, inst.pointer)

    def allows_int_to_pointer(self) -> bool:
        return True

    # -- reporting ----------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Counts of replicated vs excluded operations (for reports/tests)."""
        counts = {
            "allocs_replicated": 0,
            "allocs_excluded": 0,
            "loads_compared": 0,
            "loads_excluded": 0,
            "stores_mirrored": 0,
            "stores_excluded": 0,
        }
        for fn in self.module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, (ins.Malloc, ins.Alloca)):
                    key = "allocs_replicated" if self.replicate_alloc(inst) else "allocs_excluded"
                    counts[key] += 1
                elif isinstance(inst, ins.Load):
                    key = "loads_compared" if self.compare_load(inst) else "loads_excluded"
                    counts[key] += 1
                elif isinstance(inst, ins.Store):
                    key = "stores_mirrored" if self.mirror_store(inst) else "stores_excluded"
                    counts[key] += 1
        return counts
