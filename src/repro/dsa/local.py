"""DSA local phase: per-function DS graph construction (§5.1).

Considers only the function's own instructions.  Nodes created here start
*incomplete* where information may still arrive (formal parameters, external
interactions); the bottom-up/top-down phases refine them.

Int-to-pointer behaviour is captured both directly (``IntToPtr``/``PtrToInt``
instructions, Fig. 5.1a) and in layered form (pointers masquerading as
integers flowing through integer registers into memory, Fig. 5.1b): integer
registers derived from ``PtrToInt`` are *tainted*; storing a tainted integer
marks the target node ``P`` and the masqueraded pointee ``U``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir import instructions as ins
from ..ir.module import Function, Module
from ..ir.types import PointerType, StructType, field_offset
from ..ir.values import ConstNull, FunctionRef, GlobalRef, Register, Value
from .graph import (
    Cell,
    DSGraph,
    FLAG_ARRAY,
    FLAG_GLOBAL,
    FLAG_HEAP,
    FLAG_INCOMPLETE,
    FLAG_INT_TO_PTR,
    FLAG_PTR_TO_INT,
    FLAG_STACK,
    FLAG_UNKNOWN,
)

RET_KEY = "ret"


@dataclass
class CallSiteInfo:
    """A recorded call, resolved during the bottom-up/top-down phases."""

    callee: Optional[str]  # None for indirect calls
    arg_cells: List[Optional[Cell]]  # per original argument (None = scalar)
    result_key: Optional[str]  # register holding a returned pointer
    external: bool = False


@dataclass
class LocalResult:
    graph: DSGraph
    call_sites: List[CallSiteInfo] = field(default_factory=list)
    #: ordered register names of the function's formal parameters
    param_keys: List[str] = field(default_factory=list)


#: External DSA summaries (§5.4): how known external functions treat their
#: pointer arguments.  ``ret_aliases`` names the argument index the returned
#: pointer aliases; ``opaque`` args get only the I flag (the external reads/
#: writes them but keeps no hidden handles).
EXTERNAL_SUMMARIES: Dict[str, Dict] = {
    "print_i64": {},
    "print_f64": {},
    "print_str": {},
    "putchar": {},
    "exit": {},
    "abort": {},
    "app_error": {},
    "strlen": {},
    "strcpy": {"ret_aliases": 0},
    "strcmp": {},
    "atoi": {},
    "atof": {},
    "memcpy": {"unify_args": (0, 1)},
    "memmove": {"unify_args": (0, 1)},
    "memset": {},
    "qsort": {},
}


class LocalBuilder:
    """Builds the local DS graph for one function."""

    def __init__(self, fn: Function, module: Module, global_cells: Dict[str, Cell]):
        self.fn = fn
        self.module = module
        self.global_cells = global_cells
        self.graph = DSGraph(fn.name)
        self.call_sites: List[CallSiteInfo] = []
        #: integer registers carrying masqueraded pointers → pointee cell
        self.tainted: Dict[str, Cell] = {}

    def run(self) -> LocalResult:
        for p in self.fn.params:
            if isinstance(p.type, PointerType):
                node = self.graph.make_node(FLAG_INCOMPLETE)
                self.graph.values[p.name] = Cell(node, 0)
        for block in self.fn.blocks:
            for inst in block.instructions:
                self._visit(inst)
        param_keys = [p.name for p in self.fn.params]
        return LocalResult(self.graph, self.call_sites, param_keys)

    # -- operand cells ---------------------------------------------------------

    def cell_of(self, v: Value) -> Optional[Cell]:
        if isinstance(v, ConstNull):
            return None
        if isinstance(v, Register):
            if not isinstance(v.type, PointerType):
                return None
            cell = self.graph.values.get(v.name)
            if cell is None:
                cell = Cell(self.graph.make_node(FLAG_INCOMPLETE), 0)
                self.graph.values[v.name] = cell
            return cell.resolved()
        if isinstance(v, GlobalRef):
            cell = self.global_cells.get(v.name)
            if cell is None:
                node = self.graph.make_node(FLAG_GLOBAL)
                node.globals.add(v.name)
                cell = Cell(node, 0)
                self.global_cells[v.name] = cell
            return cell.resolved()
        if isinstance(v, FunctionRef):
            return self._function_cell(v.name)
        return None

    def _function_cell(self, name: str) -> Cell:
        key = f"@fn.{name}"
        cell = self.global_cells.get(key)
        if cell is None:
            node = self.graph.make_node(FLAG_GLOBAL)
            node.globals.add(name)
            cell = Cell(node, 0)
            self.global_cells[key] = cell
        return cell.resolved()

    # -- instruction visitors ----------------------------------------------------

    def _visit(self, inst: ins.Instruction) -> None:
        if isinstance(inst, (ins.Alloca, ins.Malloc)):
            flag = FLAG_STACK if isinstance(inst, ins.Alloca) else FLAG_HEAP
            node = self.graph.make_node(flag)
            node.types.add(inst.allocated_type)
            if inst.count is not None:
                node.flags.add(FLAG_ARRAY)
            self.graph.values[inst.result.name] = Cell(node, 0)
        elif isinstance(inst, ins.FieldAddr):
            base = self.cell_of(inst.pointer)
            struct = inst.pointer.type.pointee
            off = field_offset(struct, inst.index) if isinstance(struct, StructType) else 0
            target = Cell(base.node, base.offset + off) if not base.node.is_collapsed else Cell(base.node, 0)
            self.graph.set_cell(inst.result.name, target)
        elif isinstance(inst, ins.ElemAddr):
            base = self.cell_of(inst.pointer)
            base.node.find().flags.add(FLAG_ARRAY)
            self.graph.set_cell(inst.result.name, base)
        elif isinstance(inst, ins.PtrCast):
            base = self.cell_of(inst.pointer)
            if base is not None:
                self.graph.set_cell(inst.result.name, base)
        elif isinstance(inst, ins.PtrToInt):
            base = self.cell_of(inst.pointer)
            if base is not None:
                base.node.find().flags.add(FLAG_PTR_TO_INT)
                self.tainted[inst.result.name] = base
        elif isinstance(inst, ins.IntToPtr):
            src = inst.value
            if isinstance(src, Register) and src.name in self.tainted:
                # Round trip within the function: we still cannot prove the
                # integer arithmetic preserved the address, so the target is
                # unknown — but it aliases the original pointee.
                cell = self.tainted[src.name]
            else:
                cell = Cell(self.graph.make_node(), 0)
            node = cell.node.find()
            node.flags.update((FLAG_INT_TO_PTR, FLAG_UNKNOWN))
            self.graph.set_cell(inst.result.name, cell)
        elif isinstance(inst, ins.BinOp):
            self._propagate_taint(inst)
        elif isinstance(inst, ins.NumCast):
            if isinstance(inst.value, Register) and inst.value.name in self.tainted:
                self.tainted[inst.result.name] = self.tainted[inst.value.name]
        elif isinstance(inst, ins.Load):
            base = self.cell_of(inst.pointer)
            if isinstance(inst.result.type, PointerType):
                target = self.graph.field_target(base)
                self.graph.set_cell(inst.result.name, target)
            elif base.node.has(FLAG_PTR_TO_INT):
                # Loading an integer from memory that held masqueraded
                # pointers: the loaded value may be an address (§5.5).
                self.tainted[inst.result.name] = self.graph.field_target(base)
        elif isinstance(inst, ins.Store):
            base = self.cell_of(inst.pointer)
            if isinstance(inst.value.type, PointerType):
                vcell = self.cell_of(inst.value)
                if vcell is not None:
                    target = self.graph.field_target(base)
                    self.graph.unify_cells(target, vcell)
            elif isinstance(inst.value, Register) and inst.value.name in self.tainted:
                # Storing a pointer masquerading as an integer (Fig. 5.3).
                base.node.find().flags.add(FLAG_PTR_TO_INT)
                pointee = self.tainted[inst.value.name]
                pointee.node.find().flags.add(FLAG_UNKNOWN)
                target = self.graph.field_target(base)
                self.graph.unify_cells(target, pointee)
        elif isinstance(inst, ins.Call):
            self._visit_call(inst)
        elif isinstance(inst, ins.FuncAddr):
            self.graph.set_cell(inst.result.name, self._function_cell(inst.function_name))
        elif isinstance(inst, ins.Ret):
            if inst.value is not None and isinstance(inst.value.type, PointerType):
                cell = self.cell_of(inst.value)
                if cell is not None:
                    self.graph.set_cell(RET_KEY, cell)

    def _propagate_taint(self, inst: ins.BinOp) -> None:
        for op in (inst.lhs, inst.rhs):
            if isinstance(op, Register) and op.name in self.tainted:
                self.tainted[inst.result.name] = self.tainted[op.name]
                return

    def _visit_call(self, inst: ins.Call) -> None:
        arg_cells: List[Optional[Cell]] = [self.cell_of(a) for a in inst.args]
        result_key = None
        if inst.result is not None and isinstance(inst.result.type, PointerType):
            result_key = inst.result.name
        if inst.is_direct:
            callee = self.module.functions.get(inst.callee)
            if callee is not None and not callee.is_external:
                self.call_sites.append(
                    CallSiteInfo(inst.callee, arg_cells, result_key)
                )
                # Ensure the result has a cell for BU to unify with.
                if result_key is not None and result_key not in self.graph.values:
                    self.graph.values[result_key] = Cell(self.graph.make_node(), 0)
                return
            self._apply_external_summary(inst, arg_cells, result_key)
            return
        # Indirect call: without resolving targets, every pointer argument
        # escapes to unknown code.
        for cell in arg_cells:
            if cell is not None:
                node = cell.node.find()
                node.flags.update((FLAG_INCOMPLETE, FLAG_UNKNOWN))
        if result_key is not None:
            node = self.graph.make_node(FLAG_INCOMPLETE, FLAG_UNKNOWN)
            self.graph.set_cell(result_key, Cell(node, 0))

    def _apply_external_summary(self, inst, arg_cells, result_key) -> None:
        summary = EXTERNAL_SUMMARIES.get(inst.callee)
        if summary is None:
            # Unsummarized external: pointer args escape and become unknown.
            for cell in arg_cells:
                if cell is not None:
                    cell.node.find().flags.update((FLAG_INCOMPLETE, FLAG_UNKNOWN))
            if result_key is not None:
                node = self.graph.make_node(FLAG_INCOMPLETE, FLAG_UNKNOWN)
                self.graph.set_cell(result_key, Cell(node, 0))
            return
        for cell in arg_cells:
            if cell is not None:
                cell.node.find().flags.add(FLAG_INCOMPLETE)
        unify = summary.get("unify_args")
        if unify is not None:
            a, b = unify
            if arg_cells[a] is not None and arg_cells[b] is not None:
                ta = self.graph.field_target(arg_cells[a])
                tb = self.graph.field_target(arg_cells[b])
                self.graph.unify_cells(ta, tb)
        if result_key is not None:
            alias = summary.get("ret_aliases")
            if alias is not None and arg_cells[alias] is not None:
                self.graph.set_cell(result_key, arg_cells[alias])
            else:
                node = self.graph.make_node(FLAG_INCOMPLETE, FLAG_UNKNOWN)
                self.graph.set_cell(result_key, Cell(node, 0))


def local_phase(module: Module) -> Dict[str, LocalResult]:
    """Run the local phase over every defined function.

    Global variables share node objects across function graphs (merging in
    one graph is visible in all — union-find is object-global), which plays
    the role of DSA's globals graph.
    """
    global_cells: Dict[str, Cell] = {}
    results: Dict[str, LocalResult] = {}
    for fn in module.defined_functions():
        results[fn.name] = LocalBuilder(fn, module, global_cells).run()
    _seed_global_initializers(module, results, global_cells)
    return results


def _seed_global_initializers(module, results, global_cells) -> None:
    """Record points-to edges induced by global pointer initializers."""
    if not results:
        return
    graph = next(iter(results.values())).graph
    for g in module.globals.values():
        init = g.initializer
        if isinstance(init, GlobalRef) and g.name in global_cells:
            src = global_cells[g.name]
            dst = global_cells.get(init.name)
            if dst is None:
                node = graph.make_node(FLAG_GLOBAL)
                node.globals.add(init.name)
                dst = Cell(node, 0)
                global_cells[init.name] = dst
            target = graph.field_target(src)
            graph.unify_cells(target, dst)
