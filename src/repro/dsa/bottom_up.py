"""DSA bottom-up phase: propagate callee information to callers (§5.1).

Callee graphs are *cloned* into callers at each direct call site and the
cloned formal-parameter/return cells are unified with the actual-argument/
result cells, giving callers a context-sensitive summary of callee effects.
Global-flagged nodes are shared rather than cloned (the globals-graph role).

Recursion (a call to a function whose graph is still being processed along
the current DFS path, i.e. an SCC) degrades to direct unification of formals
with actuals — contexts within an SCC merge, as in DSA's SCC handling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.module import Module
from .graph import Cell, DSGraph, DSNode, FLAG_GLOBAL
from .local import RET_KEY, CallSiteInfo, LocalResult


def bottom_up_phase(module: Module, locals_: Dict[str, LocalResult]) -> None:
    """Runs bottom-up propagation in place over the local results."""
    order = _postorder(module, locals_)
    in_progress: Set[str] = set()
    done: Set[str] = set()
    for name in order:
        _process(name, locals_, in_progress, done)


def _postorder(module: Module, locals_: Dict[str, LocalResult]) -> List[str]:
    visited: Set[str] = set()
    order: List[str] = []

    def dfs(name: str) -> None:
        if name in visited or name not in locals_:
            return
        visited.add(name)
        for cs in locals_[name].call_sites:
            if cs.callee is not None:
                dfs(cs.callee)
        order.append(name)

    for name in locals_:
        dfs(name)
    return order


def _process(
    name: str,
    locals_: Dict[str, LocalResult],
    in_progress: Set[str],
    done: Set[str],
) -> None:
    if name in done:
        return
    in_progress.add(name)
    result = locals_[name]
    for cs in result.call_sites:
        if cs.callee is None or cs.callee not in locals_:
            continue
        callee = locals_[cs.callee]
        if cs.callee == name or cs.callee in in_progress and cs.callee not in done:
            _unify_call(result, callee, cs)
        else:
            _clone_call(result, callee, cs)
    in_progress.discard(name)
    done.add(name)


def _unify_call(caller: LocalResult, callee: LocalResult, cs: CallSiteInfo) -> None:
    """Recursive/SCC case: merge formals with actuals directly."""
    graph = caller.graph
    for actual, formal_key in zip(cs.arg_cells, callee.param_keys):
        if actual is None:
            continue
        formal = callee.graph.values.get(formal_key)
        if formal is None:
            callee.graph.values[formal_key] = actual
        else:
            graph.unify_cells(actual, formal)
    if cs.result_key is not None:
        ret = callee.graph.values.get(RET_KEY)
        if ret is not None:
            graph.set_cell(cs.result_key, ret)


def _clone_call(caller: LocalResult, callee: LocalResult, cs: CallSiteInfo) -> None:
    """Standard case: clone the callee's reachable subgraph into the caller."""
    graph = caller.graph
    mapping: Dict[int, DSNode] = {}
    roots: List[Cell] = []
    for key in list(callee.param_keys) + [RET_KEY]:
        cell = callee.graph.values.get(key)
        if cell is not None:
            roots.append(cell)
    for node in callee.graph.reachable_from(roots):
        _clone_node(graph, node, mapping)
    for actual, formal_key in zip(cs.arg_cells, callee.param_keys):
        if actual is None:
            continue
        formal = callee.graph.values.get(formal_key)
        if formal is None:
            continue
        graph.unify_cells(actual, _mapped_cell(formal, mapping))
    if cs.result_key is not None:
        ret = callee.graph.values.get(RET_KEY)
        if ret is not None:
            graph.set_cell(cs.result_key, _mapped_cell(ret, mapping))


def _clone_node(graph: DSGraph, node: DSNode, mapping: Dict[int, DSNode]) -> DSNode:
    node = node.find()
    if node.id in mapping:
        return mapping[node.id]
    if FLAG_GLOBAL in node.flags:
        # Globals are shared, not cloned (the globals-graph role).
        mapping[node.id] = node
        return node
    clone = graph.make_node()
    mapping[node.id] = clone
    clone.flags |= node.flags
    clone.types |= node.types
    clone.globals |= node.globals
    for off, cell in list(node.fields.items()):
        target = _clone_node(graph, cell.resolved().node, mapping)
        clone.fields[off] = Cell(target, 0)
    return clone


def _mapped_cell(cell: Cell, mapping: Dict[int, DSNode]) -> Cell:
    cell = cell.resolved()
    node = mapping.get(cell.node.id, cell.node)
    return Cell(node, cell.offset)
