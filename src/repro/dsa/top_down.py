"""DSA top-down phase: propagate caller information to callees (§5.1).

For every direct call site, the caller's actual-argument cells are walked in
parallel with the callee's formal-parameter cells and their *flags* are
pushed downward (``U``/``2``/``P``/``I`` and friends), recursing through
matching field edges.  Unlike the bottom-up phase this does not merge graph
structure — the callee keeps its own graph — it only ensures that unknown /
int-to-pointer behaviour observed in callers reaches the callee's view of
the same objects, which is what the replication plan needs for soundness.

Afterwards the completeness pass marks every node not flagged incomplete or
unknown as *complete* (``C``): all information about it has been processed
and it cannot alias other complete nodes.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..ir.module import Module
from .graph import (
    Cell,
    DSNode,
    FLAG_COMPLETE,
    FLAG_INCOMPLETE,
    FLAG_UNKNOWN,
)
from .local import RET_KEY, LocalResult

#: flags pushed along matched structure in the top-down walk
_PROPAGATED = frozenset({"U", "2", "P", "I", "O", "A"})


def top_down_phase(module: Module, locals_: Dict[str, LocalResult]) -> None:
    changed = True
    passes = 0
    while changed and passes < 8:
        changed = False
        passes += 1
        for name, result in locals_.items():
            for cs in result.call_sites:
                if cs.callee is None or cs.callee not in locals_:
                    continue
                callee = locals_[cs.callee]
                for actual, formal_key in zip(cs.arg_cells, callee.param_keys):
                    if actual is None:
                        continue
                    formal = callee.graph.values.get(formal_key)
                    if formal is None:
                        continue
                    if _push_flags(actual, formal):
                        changed = True
                # Also pull callee return-node flags back up (keeps the
                # BU summaries fresh across repeated TD passes).
                if cs.result_key is not None:
                    ret = callee.graph.values.get(RET_KEY)
                    res = result.graph.values.get(cs.result_key)
                    if ret is not None and res is not None:
                        if _push_flags(ret, res):
                            changed = True


def _push_flags(src: Cell, dst: Cell) -> bool:
    """Parallel walk OR-ing propagated flags from ``src`` onto ``dst``."""
    changed = False
    seen: Set[Tuple[int, int]] = set()
    stack = [(src.resolved().node, dst.resolved().node)]
    while stack:
        a, b = stack.pop()
        a = a.find()
        b = b.find()
        key = (a.id, b.id)
        if key in seen:
            continue
        seen.add(key)
        add = (a.flags & _PROPAGATED) - b.flags
        back = (b.flags & _PROPAGATED) - a.flags
        if add:
            b.flags |= add
            changed = True
        if back:
            a.flags |= back
            changed = True
        for off, cell_a in list(a.fields.items()):
            cell_b = b.fields.get(0 if b.is_collapsed else off)
            if cell_b is not None:
                stack.append((cell_a.resolved().node, cell_b.resolved().node))
    return changed


def completeness_pass(locals_: Dict[str, LocalResult]) -> None:
    """Mark nodes complete unless flagged incomplete or unknown."""
    for result in locals_.values():
        for node in result.graph.nodes():
            if FLAG_INCOMPLETE in node.flags or FLAG_UNKNOWN in node.flags:
                node.flags.discard(FLAG_COMPLETE)
            else:
                node.flags.add(FLAG_COMPLETE)
