"""The DPMR transformation: the paper's primary contribution.

Exports the two replication designs (SDS, Ch. 2–3; MDS, Ch. 4), the type
machinery (``st()``/``at()``), the diversity transformations (Table 2.8),
the state comparison policies (§2.7), and the compiler facade.
"""

from .aug_types import AugTypeBuilder, ReplicationDesign, TypeMaps
from .diversity import (
    DiversityPolicy,
    NoDiversity,
    PadMalloc,
    RearrangeHeap,
    ZeroBeforeFree,
    standard_diversity_suite,
)
from .incremental import IncrementalDpmrCompiler, TransformCacheStats
from .mds import MdsTransform
from .pipeline import DpmrBuild, DpmrCompiler
from .plan import FULL_REPLICATION, ReplicationPlan
from .policies import (
    AllLoadsPolicy,
    ComparisonPolicy,
    StaticLoadCheckingPolicy,
    TemporalLoadCheckingPolicy,
    static_10,
    static_50,
    static_90,
    temporal_1_2,
    temporal_1_8,
    temporal_7_8,
)
from .runtime import DpmrRuntime
from .sds import SdsTransform
from .shadow_types import NSOP_FIELD, ROP_FIELD, ShadowTypeBuilder
from .transform import DpmrTransformError
from .wrappers import WrapperSpec, get_wrapper_spec

__all__ = [
    "AllLoadsPolicy",
    "AugTypeBuilder",
    "ComparisonPolicy",
    "DiversityPolicy",
    "DpmrBuild",
    "DpmrCompiler",
    "DpmrRuntime",
    "DpmrTransformError",
    "FULL_REPLICATION",
    "IncrementalDpmrCompiler",
    "MdsTransform",
    "TransformCacheStats",
    "NSOP_FIELD",
    "NoDiversity",
    "PadMalloc",
    "ROP_FIELD",
    "RearrangeHeap",
    "ReplicationDesign",
    "ReplicationPlan",
    "SdsTransform",
    "ShadowTypeBuilder",
    "StaticLoadCheckingPolicy",
    "TemporalLoadCheckingPolicy",
    "TypeMaps",
    "WrapperSpec",
    "ZeroBeforeFree",
    "get_wrapper_spec",
    "standard_diversity_suite",
    "static_10",
    "static_50",
    "static_90",
    "temporal_1_2",
    "temporal_1_8",
    "temporal_7_8",
]
