"""The DPMR code transformation (Tables 2.6/2.7 and 4.3/4.4).

:class:`BaseTransform` drives a whole-module rewrite; the SDS and MDS
designs subclass it (:mod:`repro.core.sds`, :mod:`repro.core.mds`) to supply
the design-specific handling of pointers stored in memory.

Structure of the rewrite:

* every global ``g`` gains a replica ``g_r`` (and, under SDS, a shadow
  ``g_s``) with matching initializers;
* every defined function is re-declared with its augmented type; ``main`` is
  renamed ``mainAug`` and a fresh ``main`` stub replicates the command-line
  arguments before calling it (§3.1.1);
* every external function call is rerouted to an *external function wrapper*
  ``<name>_efw`` (§2.8) declared with the augmented type (plus any
  wrapper-specific leading parameters, e.g. ``qsort``'s shadow size,
  Fig. 3.3);
* instruction-by-instruction, original behaviour is mirrored onto replica
  (and shadow) state, with load checks emitted according to the configured
  state comparison policy and replica heap allocation routed through the
  diversity runtime (``dpmr_replica_malloc``/``dpmr_replica_free``).

Output blocks corresponding to source blocks are labeled ``o.<label>``;
blocks introduced by DPMR (branchy load checks, shadow-free null checks)
use fresh ``bb<n>`` labels.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Union

from ..ir import instructions as ins
from ..ir.builder import IRBuilder
from ..ir.module import Function, GlobalVariable, Module
from ..ir.types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    UnionType,
    VoidType,
    INT32,
    INT64,
    VOID,
    VOID_PTR,
    sizeof,
)
from ..ir.values import (
    ConstFloat,
    ConstInt,
    ConstNull,
    FunctionRef,
    GlobalRef,
    Register,
    Value,
)
from .aug_types import ReplicationDesign, TypeMaps
from .plan import FULL_REPLICATION, ReplicationPlan
from .policies import AllLoadsPolicy, ComparisonPolicy, StaticLoadCheckingPolicy
from .shadow_types import NSOP_FIELD, ROP_FIELD

ENTRY_FUNCTION = "main"
RENAMED_ENTRY = "mainAug"

#: dpmr runtime externals injected into every transformed module.
RUNTIME_EXTERNALS = {
    "dpmr_detect": FunctionType(VOID, [INT32]),
    "dpmr_replica_malloc": FunctionType(VOID_PTR, [INT64]),
    "dpmr_replica_free": FunctionType(VOID, [VOID_PTR]),
    "dpmr_argv_replica": FunctionType(VOID_PTR, [INT32, VOID_PTR]),
    "dpmr_argv_shadow": FunctionType(VOID_PTR, [INT32, VOID_PTR, VOID_PTR]),
}


class DpmrTransformError(Exception):
    """An input program violates the active design's restrictions (§2.9/§4.4)."""


class BaseTransform:
    """Module-level driver shared by the SDS and MDS designs."""

    design: ReplicationDesign

    def __init__(
        self,
        module: Module,
        policy: Optional[ComparisonPolicy] = None,
        plan: Optional[ReplicationPlan] = None,
    ):
        self.src = module
        self.policy = policy if policy is not None else AllLoadsPolicy()
        self.plan = plan if plan is not None else FULL_REPLICATION
        self.maps = TypeMaps(self.design)
        self.out_module: Optional[Module] = None
        self._fn_name_map: Dict[str, str] = {}

    @property
    def with_shadow(self) -> bool:
        return self.design is ReplicationDesign.SDS

    # -- driver ------------------------------------------------------------

    def run(self) -> Module:
        out = self.begin_module()
        for fn in self.src.defined_functions():
            self.translate_function(fn)
        self._generate_main_stub(out)
        return out

    def begin_module(self) -> Module:
        """Module-level setup: globals, declarations, runtime externals.

        Split out of :meth:`run` so the incremental recompiler can drive
        function translation itself (snapshotting policy state between
        functions).
        """
        out = Module(f"{self.src.name}.{self.design.value}")
        self.out_module = out
        if isinstance(self.policy, StaticLoadCheckingPolicy):
            self.policy.reset()
        self.policy.setup_module(out)
        self._declare_runtime_externals(out)
        self._transform_globals(out)
        self._declare_functions(out)
        return out

    def translate_function(self, fn: Function) -> Function:
        """Translate one defined source function into its declared slot."""
        out_fn = self.out_module.functions[self._fn_name_map[fn.name]]
        self._translator_class()(self, fn, out_fn).translate()
        return out_fn

    def out_name(self, src_name: str) -> str:
        """Output-module name of a source function (wrapper/rename aware)."""
        return self._fn_name_map[src_name]

    def fresh_declaration(self, fn: Function) -> Function:
        """A new, empty output function declared exactly as
        :meth:`_declare_functions` would declare ``fn`` — fresh
        register/label counters included, so re-translating into it yields
        byte-identical code to a full-module rebuild."""
        name = RENAMED_ENTRY if fn.name == ENTRY_FUNCTION else fn.name
        aug = self.maps.aug.aug_function_type(fn.type)
        return Function(name, aug, param_names=self._param_names(fn))

    def _translator_class(self):
        raise NotImplementedError

    # -- module pieces -------------------------------------------------------

    def _declare_runtime_externals(self, out: Module) -> None:
        for name, fn_type in RUNTIME_EXTERNALS.items():
            out.add_function(Function(name, fn_type, is_external=True))

    def _transform_globals(self, out: Module) -> None:
        maps = self.maps
        for g in self.src.globals.values():
            at = maps.at(g.value_type)
            out.add_global(GlobalVariable(g.name, at, g.initializer))
            out.add_global(
                GlobalVariable(
                    f"{g.name}_r", at, self._replica_initializer(g.initializer)
                )
            )
            if self.with_shadow:
                sat = maps.sat(g.value_type)
                if sat is not None:
                    out.add_global(
                        GlobalVariable(
                            f"{g.name}_s",
                            sat,
                            self._shadow_initializer(g.value_type, g.initializer),
                        )
                    )

    def _replica_initializer(self, init):
        """Initializer for a replica global (design-specific for pointers)."""
        raise NotImplementedError

    def _shadow_initializer(self, value_type: Type, init):
        """Initializer for a shadow global (SDS only)."""
        if init is None:
            return None
        return _shadow_init_walk(self, value_type, init)

    def _declare_functions(self, out: Module) -> None:
        from .wrappers import get_wrapper_spec

        for fn in self.src.functions.values():
            if fn.is_external:
                if fn.name in RUNTIME_EXTERNALS:
                    raise DpmrTransformError(
                        f"input program uses reserved name {fn.name}"
                    )
                spec = get_wrapper_spec(fn.name)
                wrapper_name = f"{fn.name}_efw"
                wrapper_type = spec.wrapper_type(self, fn.type)
                out.add_function(
                    Function(wrapper_name, wrapper_type, is_external=True)
                )
                self._fn_name_map[fn.name] = wrapper_name
            else:
                name = RENAMED_ENTRY if fn.name == ENTRY_FUNCTION else fn.name
                aug = self.maps.aug.aug_function_type(fn.type)
                out.add_function(
                    Function(name, aug, param_names=self._param_names(fn))
                )
                self._fn_name_map[fn.name] = name

    def _param_names(self, fn: Function) -> List[str]:
        names: List[str] = []
        ret = self.maps.at(fn.type.ret)
        if isinstance(ret, PointerType):
            names.append("rvSop" if self.with_shadow else "rvRopPtr")
        for p in fn.params:
            names.append(p.name)
            if isinstance(self.maps.at(p.type), PointerType):
                names.append(f"{p.name}_r")
                if self.with_shadow:
                    names.append(f"{p.name}_s")
        return names

    # -- main stub (§3.1.1) ----------------------------------------------------

    def _generate_main_stub(self, out: Module) -> None:
        if ENTRY_FUNCTION not in self.src.functions:
            return
        orig_main = self.src.functions[ENTRY_FUNCTION]
        if orig_main.is_external:
            return
        aug_main = out.functions[RENAMED_ENTRY]
        stub = Function(ENTRY_FUNCTION, orig_main.type,
                        [p.name for p in orig_main.params])
        out.add_function(stub)
        b = IRBuilder(stub)
        if not orig_main.params:
            r = None
            if not isinstance(orig_main.type.ret, VoidType):
                r = Register("mainrv", self.maps.at(orig_main.type.ret))
            b.emit(ins.Call(r, RENAMED_ENTRY, []))
            b.ret(r)
            return
        if len(orig_main.params) != 2 or not isinstance(
            orig_main.params[1].type, PointerType
        ):
            raise DpmrTransformError(
                f"unsupported main signature {orig_main.type}"
            )
        argc, argv = stub.params
        argv_void = b.ptr_cast(argv, VOID, hint="dpmr.av")
        raw_r = Register("dpmr.argvr", VOID_PTR)
        b.emit(ins.Call(raw_r, "dpmr_argv_replica", [argc, argv_void]))
        argv_r = b.ptr_cast(raw_r, argv.type.pointee, hint="dpmr.avr")
        args: List[Value] = [argc, argv, argv_r]
        if self.with_shadow:
            raw_s = Register("dpmr.argvs", VOID_PTR)
            b.emit(ins.Call(raw_s, "dpmr_argv_shadow", [argc, argv_void, raw_r]))
            spt = self.maps.aug.spt(argv.type)
            argv_s = b.ptr_cast(raw_s, spt.pointee, hint="dpmr.avs")
            args.append(argv_s)
        r = None
        if not isinstance(orig_main.type.ret, VoidType):
            r = Register("mainrv", self.maps.at(orig_main.type.ret))
        b.emit(ins.Call(r, RENAMED_ENTRY, args))
        b.ret(r)

    # -- hooks implemented by the designs -----------------------------------------

    def makes_pointers_comparable(self) -> bool:
        """SDS stores identical pointers in replica memory; MDS does not."""
        raise NotImplementedError


def _shadow_init_walk(tx: BaseTransform, ty: Type, init):
    """Build a shadow initializer mirroring :func:`ShadowTypeBuilder` rules."""
    maps = tx.maps
    if isinstance(ty, PointerType):
        if init is None or init == 0:
            return [None, None]
        if isinstance(init, GlobalRef):
            target = init.name
            rop = GlobalRef(f"{target}_r", init.type)
            nsop = None
            if f"{target}_s" in tx.out_module.globals:
                nsop = tx.out_module.globals[f"{target}_s"].ref()
            return [rop, nsop]
        if isinstance(init, FunctionRef):
            return [init, None]
        raise DpmrTransformError(f"bad pointer initializer {init!r}")
    if isinstance(ty, ArrayType):
        if maps.sat(ty.element) is None:
            return None
        items = init if isinstance(init, list) else []
        return [_shadow_init_walk(tx, ty.element, item) for item in items]
    if isinstance(ty, StructType):
        out = []
        for i, f in enumerate(ty.fields):
            if maps.sat(f) is None:
                continue
            item = init[i] if isinstance(init, list) and i < len(init) else None
            out.append(_shadow_init_walk(tx, f, item))
        return out
    if isinstance(ty, UnionType):
        return None
    return None


class FunctionTranslator:
    """Translates one source function into its augmented counterpart."""

    def __init__(self, parent: BaseTransform, src_fn: Function, out_fn: Function):
        self.parent = parent
        self.src_fn = src_fn
        self.out_fn = out_fn
        self.maps = parent.maps
        self.policy = parent.policy
        self.plan = parent.plan
        self.out_module = parent.out_module
        self.vmap: Dict[str, Value] = {}
        self.rops: Dict[str, Value] = {}
        self.nsops: Dict[str, Value] = {}
        self.builder: Optional[IRBuilder] = None
        self.rv_param: Optional[Register] = None
        #: allocation results known to alias their replica (Ch. 5 plans)
        self.unreplicated: set = set()

    @property
    def with_shadow(self) -> bool:
        return self.parent.with_shadow

    # -- setup ------------------------------------------------------------

    def translate(self, observer=None) -> None:
        """Translate the whole source function.

        ``observer`` (see ``repro.core.incremental``) is notified around
        every step — ``attach(self)`` after the builder exists,
        ``enter_block(block)`` per source block, ``instruction(inst)``
        immediately *before* each instruction is translated, and
        ``finish()`` at the end — so an instruction-granular journal of the
        translation can be recorded without altering emission order.
        """
        self._bind_params()
        for block in self.src_fn.blocks:
            self.out_fn.add_block(f"o.{block.label}")
        self.builder = IRBuilder(self.out_fn, self.out_fn.block(f"o.{self.src_fn.blocks[0].label}"))
        if observer is not None:
            observer.attach(self)
        for block in self.src_fn.blocks:
            if observer is not None:
                # before repositioning: the previous block's end token must
                # capture the builder position its translation finished at
                observer.enter_block(block)
            self.builder.position_at_end(self.out_fn.block(f"o.{block.label}"))
            for inst in block.instructions:
                if observer is not None:
                    observer.instruction(inst)
                self._translate_instruction(inst)
        if observer is not None:
            observer.finish()

    def _bind_params(self) -> None:
        out_params = list(self.out_fn.params)
        idx = 0
        ret = self.maps.at(self.src_fn.type.ret)
        if isinstance(ret, PointerType):
            self.rv_param = out_params[0]
            idx = 1
        for p in self.src_fn.params:
            new_p = out_params[idx]
            idx += 1
            self.vmap[p.name] = new_p
            if isinstance(new_p.type, PointerType):
                self.rops[p.name] = out_params[idx]
                idx += 1
                if self.with_shadow:
                    self.nsops[p.name] = out_params[idx]
                    idx += 1

    # -- operand mapping -------------------------------------------------------

    def val(self, v: Optional[Value]) -> Optional[Value]:
        if v is None:
            return None
        if isinstance(v, Register):
            try:
                return self.vmap[v.name]
            except KeyError:
                raise DpmrTransformError(
                    f"{self.src_fn.name}: unmapped register {v}"
                ) from None
        if isinstance(v, (ConstInt, ConstFloat)):
            return v
        if isinstance(v, ConstNull):
            return ConstNull(PointerType(self.maps.at(v.type.pointee)))
        if isinstance(v, GlobalRef):
            return self.out_module.globals[v.name].ref()
        if isinstance(v, FunctionRef):
            name = self.parent._fn_name_map[v.name]
            return self.out_module.functions[name].ref()
        raise DpmrTransformError(f"bad operand {v!r}")

    def rop(self, v: Value) -> Value:
        if isinstance(v, Register):
            try:
                return self.rops[v.name]
            except KeyError:
                raise DpmrTransformError(
                    f"{self.src_fn.name}: pointer register {v} has no ROP "
                    "(restriction violation?)"
                ) from None
        if isinstance(v, ConstNull):
            return self.val(v)
        if isinstance(v, GlobalRef):
            return self.out_module.globals[f"{v.name}_r"].ref()
        if isinstance(v, FunctionRef):
            return self.val(v)
        raise DpmrTransformError(f"no ROP for operand {v!r}")

    def nsop(self, v: Value) -> Value:
        assert self.with_shadow
        if isinstance(v, Register):
            try:
                return self.nsops[v.name]
            except KeyError:
                raise DpmrTransformError(
                    f"{self.src_fn.name}: pointer register {v} has no NSOP"
                ) from None
        if isinstance(v, ConstNull):
            spt = self.maps.aug.spt(PointerType(self.maps.at(v.type.pointee)))
            return ConstNull(spt if isinstance(spt, PointerType) else VOID_PTR)
        if isinstance(v, GlobalRef):
            name = f"{v.name}_s"
            if name in self.out_module.globals:
                return self.out_module.globals[name].ref()
            return ConstNull(VOID_PTR)
        if isinstance(v, FunctionRef):
            return ConstNull(VOID_PTR)
        raise DpmrTransformError(f"no NSOP for operand {v!r}")

    # -- emission helpers --------------------------------------------------------

    def emit(self, inst: ins.Instruction, origin: Optional[ins.Instruction] = None):
        if origin is not None and origin.fault_site is not None:
            inst.fault_site = origin.fault_site
        self.builder.emit(inst)
        return inst

    def new_named(self, name: str, ty: Type) -> Register:
        return Register(name, ty)

    @contextmanager
    def aux_if(self, cond: Value):
        with self.builder.if_then(cond):
            yield

    def coerce_ptr(self, v: Value, want: PointerType) -> Value:
        """Insert a ptrcast when pointer types differ (generic-type slots)."""
        if v.type == want:
            return v
        if isinstance(v, ConstNull):
            return ConstNull(want)
        if isinstance(v.type, PointerType) and isinstance(want, PointerType):
            return self.builder.ptr_cast(v, want.pointee, hint="dpmr.cz")
        raise DpmrTransformError(f"cannot coerce {v.type} to {want}")

    def emit_compare_and_detect(self, loaded: Register, replica_ptr: Value, code: int = 1) -> None:
        """``assert(x == *p_r)`` lowered to a branch + ``dpmr_detect`` call."""
        b = self.builder
        rp = self.coerce_ptr(replica_ptr, PointerType(loaded.type))
        replica_val = b.load(rp, hint="dpmr.rv")
        differs = b.cmp("ne", loaded, replica_val, hint="dpmr.df")
        with b.if_then(differs):
            b.emit(ins.Call(None, "dpmr_detect", [ConstInt(INT32, code)]))
            b.unreachable()

    # -- instruction dispatch ----------------------------------------------------

    def _translate_instruction(self, inst: ins.Instruction) -> None:
        name = _HANDLERS.get(type(inst))
        if name is None:
            raise DpmrTransformError(f"no handler for {type(inst).__name__}")
        getattr(self, name)(inst)

    # -- straight-line value ops --------------------------------------------------

    def _tx_binop(self, i: ins.BinOp) -> None:
        r = self.new_named(i.result.name, self.maps.at(i.result.type))
        self.vmap[i.result.name] = r
        self.emit(ins.BinOp(r, i.op, self.val(i.lhs), self.val(i.rhs)), i)

    def _tx_cmp(self, i: ins.Cmp) -> None:
        r = self.new_named(i.result.name, i.result.type)
        self.vmap[i.result.name] = r
        self.emit(ins.Cmp(r, i.op, self.val(i.lhs), self.val(i.rhs)), i)

    def _tx_numcast(self, i: ins.NumCast) -> None:
        r = self.new_named(i.result.name, i.result.type)
        self.vmap[i.result.name] = r
        self.emit(ins.NumCast(r, self.val(i.value)), i)

    # -- memory allocation ----------------------------------------------------------

    def _alloc_result_type(self, ty: Type, count: Optional[Value]) -> PointerType:
        if count is not None:
            return PointerType(ArrayType(ty, None))
        return PointerType(ty)

    def _tx_alloca(self, i: ins.Alloca) -> None:
        at = self.maps.at(i.allocated_type)
        count = self.val(i.count)
        p = self.new_named(i.result.name, self._alloc_result_type(at, count))
        self.vmap[i.result.name] = p
        self.emit(ins.Alloca(p, at, count), i)
        if not self.plan.replicate_alloc(i):
            self._bind_unreplicated(i.result.name, p)
            return
        p_r = self.new_named(f"{i.result.name}_r", p.type)
        self.rops[i.result.name] = p_r
        self.emit(ins.Alloca(p_r, at, count), i)
        if self.with_shadow:
            self._emit_shadow_alloc(i, at, count, stack=True)

    def _tx_malloc(self, i: ins.Malloc) -> None:
        at = self.maps.at(i.allocated_type)
        count = self.val(i.count)
        p = self.new_named(i.result.name, self._alloc_result_type(at, count))
        self.vmap[i.result.name] = p
        self.emit(ins.Malloc(p, at, count), i)
        if not self.plan.replicate_alloc(i):
            self._bind_unreplicated(i.result.name, p)
            return
        size = self._emit_size(at, count)
        raw = self.builder.function.new_register(VOID_PTR, "dpmr.rm")
        self.emit(ins.Call(raw, "dpmr_replica_malloc", [size]), i)
        p_r = self.new_named(f"{i.result.name}_r", p.type)
        self.rops[i.result.name] = p_r
        self.emit(ins.PtrCast(p_r, raw), i)
        if self.with_shadow:
            self._emit_shadow_alloc(i, at, count, stack=False)

    def _bind_unreplicated(self, name: str, p: Register) -> None:
        """Chapter-5 refinement: the 'replica' aliases the application object."""
        self.rops[name] = p
        self.unreplicated.add(name)
        if self.with_shadow:
            self.nsops[name] = ConstNull(VOID_PTR)

    def _emit_size(self, at: Type, count: Optional[Value]) -> Value:
        unit = sizeof(at)
        if count is None:
            return ConstInt(INT64, unit)
        b = self.builder
        c = count
        if isinstance(c.type, IntType) and c.type.bits != 64:
            c = b.num_cast(c, INT64, hint="dpmr.sz")
        return b.mul(c, ConstInt(INT64, unit))

    def _emit_shadow_alloc(self, i, at: Type, count: Optional[Value], stack: bool) -> None:
        sat = self.maps.sat(at)
        name = i.result.name
        if sat is None:
            self.nsops[name] = ConstNull(VOID_PTR)
            return
        p_s = self.new_named(f"{name}_s", self._alloc_result_type(sat, count))
        self.nsops[name] = p_s
        ctor = ins.Alloca if stack else ins.Malloc
        self.emit(ctor(p_s, sat, count), i)

    def _tx_free(self, i: ins.Free) -> None:
        self.emit(ins.Free(self.val(i.pointer)), i)
        if not self.plan.mirror_free(i):
            return
        if isinstance(i.pointer, Register) and i.pointer.name in self.unreplicated:
            return
        b = self.builder
        rp = self.coerce_ptr(self.rop(i.pointer), VOID_PTR)
        self.emit(ins.Call(None, "dpmr_replica_free", [rp]), i)
        if self.with_shadow:
            ps = self.nsop(i.pointer)
            if isinstance(ps, ConstNull):
                return
            nonnull = b.cmp("ne", ps, ConstNull(ps.type), hint="dpmr.fz")
            with self.aux_if(nonnull):
                self.emit(ins.Free(ps), i)

    # -- loads and stores (design-specific pointer handling) --------------------------

    def _tx_load(self, i: ins.Load) -> None:
        raise NotImplementedError

    def _tx_store(self, i: ins.Store) -> None:
        raise NotImplementedError

    # -- addressing ----------------------------------------------------------------

    def _tx_field_addr(self, i: ins.FieldAddr) -> None:
        p = self.val(i.pointer)
        struct = p.type.pointee
        assert isinstance(struct, StructType)
        rty = PointerType(struct.fields[i.index])
        x = self.new_named(i.result.name, rty)
        self.vmap[i.result.name] = x
        self.emit(ins.FieldAddr(x, p, i.index), i)
        x_r = self.new_named(f"{i.result.name}_r", rty)
        self.rops[i.result.name] = x_r
        self.emit(ins.FieldAddr(x_r, self.rop(i.pointer), i.index), i)
        if self.with_shadow:
            self._shadow_field_addr(i, struct)

    def _shadow_field_addr(self, i: ins.FieldAddr, struct: StructType) -> None:
        name = i.result.name
        field_sat = self.maps.shadow.shadow_type(struct.fields[i.index])
        if field_sat is None:
            self.nsops[name] = ConstNull(VOID_PTR)
            return
        ps = self.nsop(i.pointer)
        if isinstance(ps, ConstNull):
            raise DpmrTransformError(
                f"{self.src_fn.name}: field {i.index} of {struct} needs shadow "
                "addressing but the base pointer has no shadow (SDS restriction)"
            )
        phi = self.maps.shadow.shadow_field_index(struct, i.index)
        x_s = self.new_named(f"{name}_s", PointerType(field_sat))
        self.nsops[name] = x_s
        self.emit(ins.FieldAddr(x_s, ps, phi), i)

    def _tx_elem_addr(self, i: ins.ElemAddr) -> None:
        p = self.val(i.pointer)
        arr = p.type.pointee
        assert isinstance(arr, ArrayType)
        rty = PointerType(arr.element)
        idx = self.val(i.index)
        x = self.new_named(i.result.name, rty)
        self.vmap[i.result.name] = x
        self.emit(ins.ElemAddr(x, p, idx), i)
        x_r = self.new_named(f"{i.result.name}_r", rty)
        self.rops[i.result.name] = x_r
        self.emit(ins.ElemAddr(x_r, self.rop(i.pointer), idx), i)
        if self.with_shadow:
            self._shadow_elem_addr(i, arr, idx)

    def _shadow_elem_addr(self, i: ins.ElemAddr, arr: ArrayType, idx: Value) -> None:
        name = i.result.name
        elem_sat = self.maps.shadow.shadow_type(arr.element)
        if elem_sat is None:
            self.nsops[name] = ConstNull(VOID_PTR)
            return
        ps = self.nsop(i.pointer)
        if isinstance(ps, ConstNull):
            raise DpmrTransformError(
                f"{self.src_fn.name}: array of {arr.element} needs shadow "
                "addressing but the base pointer has no shadow (SDS restriction)"
            )
        x_s = self.new_named(f"{name}_s", PointerType(elem_sat))
        self.nsops[name] = x_s
        self.emit(ins.ElemAddr(x_s, ps, idx), i)

    # -- casts ---------------------------------------------------------------------

    def _tx_ptr_cast(self, i: ins.PtrCast) -> None:
        target = self.maps.at(i.result.type.pointee)
        q = self.new_named(i.result.name, PointerType(target))
        self.vmap[i.result.name] = q
        self.emit(ins.PtrCast(q, self.val(i.pointer)), i)
        q_r = self.new_named(f"{i.result.name}_r", q.type)
        self.rops[i.result.name] = q_r
        self.emit(ins.PtrCast(q_r, self.rop(i.pointer)), i)
        if isinstance(i.pointer, Register) and i.pointer.name in self.unreplicated:
            self.unreplicated.add(i.result.name)
        if self.with_shadow:
            self._shadow_ptr_cast(i, target)

    def _shadow_ptr_cast(self, i: ins.PtrCast, target: Type) -> None:
        name = i.result.name
        sat = self.maps.shadow.shadow_type(target)
        ps = self.nsop(i.pointer)
        want = PointerType(sat) if sat is not None else VOID_PTR
        if isinstance(ps, ConstNull):
            self.nsops[name] = ConstNull(want)
            return
        q_s = self.new_named(f"{name}_s", want)
        self.nsops[name] = q_s
        self.emit(ins.PtrCast(q_s, ps), i)

    def _tx_ptr_to_int(self, i: ins.PtrToInt) -> None:
        r = self.new_named(i.result.name, i.result.type)
        self.vmap[i.result.name] = r
        self.emit(ins.PtrToInt(r, self.val(i.pointer)), i)

    def _tx_int_to_ptr(self, i: ins.IntToPtr) -> None:
        if not self.plan.allows_int_to_pointer():
            raise DpmrTransformError(
                "int-to-pointer casts are not allowed under "
                f"{self.parent.design.value.upper()} (§2.9/§4.4); use the DSA "
                "scope-expansion plan (Ch. 5)"
            )
        target = self.maps.at(i.result.type.pointee)
        q = self.new_named(i.result.name, PointerType(target))
        self.vmap[i.result.name] = q
        self.emit(ins.IntToPtr(q, self.val(i.value)), i)
        # The resulting pointer denotes non-replicated memory (DSA marks its
        # node unknown); its "replica" aliases the application object.
        self.rops[i.result.name] = q
        self.unreplicated.add(i.result.name)
        if self.with_shadow:
            self.nsops[i.result.name] = ConstNull(VOID_PTR)

    def _tx_func_addr(self, i: ins.FuncAddr) -> None:
        name = self.parent._fn_name_map[i.function_name]
        fn_ty = self.out_module.functions[name].type
        x = self.new_named(i.result.name, PointerType(fn_ty))
        self.vmap[i.result.name] = x
        self.emit(ins.FuncAddr(x, name), i)
        x_r = self.new_named(f"{i.result.name}_r", x.type)
        self.rops[i.result.name] = x_r
        self.emit(ins.FuncAddr(x_r, name), i)
        if self.with_shadow:
            self.nsops[i.result.name] = ConstNull(VOID_PTR)

    # -- calls and returns ------------------------------------------------------------

    def _tx_call(self, i: ins.Call) -> None:
        from .wrappers import get_wrapper_spec

        extras: List[Value] = []
        if i.is_direct:
            src_fn = self.parent.src.functions.get(i.callee)
            if src_fn is None:
                raise DpmrTransformError(f"call to unknown function {i.callee}")
            orig_type = src_fn.type
            callee: Union[str, Value] = self.parent._fn_name_map[i.callee]
            if src_fn.is_external:
                spec = get_wrapper_spec(i.callee)
                extras = spec.extra_args(self, i)
        else:
            callee_val = self.val(i.callee)
            orig_fn_type = i.callee.type.pointee
            orig_type = orig_fn_type
            callee = callee_val
        args: List[Value] = list(extras)
        rv_slot: Optional[Register] = None
        ret_at = self.maps.at(orig_type.ret)
        if isinstance(ret_at, PointerType):
            slot_ty = self._return_slot_pointee(ret_at)
            rv_slot = self.builder.alloca(slot_ty, hint="dpmr.rvs")
            args.append(rv_slot)
        for a in i.args:
            args.append(self.val(a))
            if isinstance(self.maps.at(a.type), PointerType):
                args.append(self.rop(a))
                if self.with_shadow:
                    args.append(self.nsop(a))
        result: Optional[Register] = None
        if i.result is not None:
            result = self.new_named(i.result.name, self.maps.at(i.result.type))
            self.vmap[i.result.name] = result
        self.emit(ins.Call(result, callee, args), i)
        if rv_slot is not None and i.result is not None:
            self._bind_returned_pointer(i.result.name, rv_slot)

    def _return_slot_pointee(self, ret_at: PointerType) -> Type:
        raise NotImplementedError

    def _bind_returned_pointer(self, name: str, rv_slot: Register) -> None:
        raise NotImplementedError

    def _tx_ret(self, i: ins.Ret) -> None:
        if i.value is not None and isinstance(self.maps.at(i.value.type), PointerType):
            self._store_returned_pointer(i)
        self.emit(ins.Ret(self.val(i.value)), i)

    def _store_returned_pointer(self, i: ins.Ret) -> None:
        raise NotImplementedError

    # -- control flow -----------------------------------------------------------------

    def _tx_jump(self, i: ins.Jump) -> None:
        self.emit(ins.Jump(f"o.{i.target}"), i)

    def _tx_branch(self, i: ins.Branch) -> None:
        self.emit(
            ins.Branch(self.val(i.cond), f"o.{i.then_target}", f"o.{i.else_target}"), i
        )

    def _tx_unreachable(self, i: ins.Unreachable) -> None:
        self.emit(ins.Unreachable(), i)


_HANDLERS = {
    ins.BinOp: "_tx_binop",
    ins.Cmp: "_tx_cmp",
    ins.NumCast: "_tx_numcast",
    ins.Alloca: "_tx_alloca",
    ins.Malloc: "_tx_malloc",
    ins.Free: "_tx_free",
    ins.Load: "_tx_load",
    ins.Store: "_tx_store",
    ins.FieldAddr: "_tx_field_addr",
    ins.ElemAddr: "_tx_elem_addr",
    ins.PtrCast: "_tx_ptr_cast",
    ins.PtrToInt: "_tx_ptr_to_int",
    ins.IntToPtr: "_tx_int_to_ptr",
    ins.FuncAddr: "_tx_func_addr",
    ins.Call: "_tx_call",
    ins.Ret: "_tx_ret",
    ins.Jump: "_tx_jump",
    ins.Branch: "_tx_branch",
    ins.Unreachable: "_tx_unreachable",
}
