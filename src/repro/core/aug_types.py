"""Augmented types: ``at()``, ``rpt()``, ``spt()``, and ``(st∘at)()``.

Augmented types (Table 2.3, Figs 2.6–2.8) thread replica and shadow pointers
across function boundaries.  Only function types actually change:

* every pointer parameter gains an ROP parameter (``rpt``) and — under SDS —
  an NSOP parameter (``spt``);
* a function returning a pointer gains a leading ``rvSop`` parameter (SDS:
  pointer to the return value's shadow struct) or ``rvRopPtr`` (MDS: pointer
  to an ROP slot) through which the callee returns replica/shadow pointers.

:class:`TypeMaps` bundles the shadow and augmented builders and exposes the
helper functions of §2.4: ``φ()`` (shadow field indices), ``γ()`` (register
expansion) and ``π()`` (return-value parameter injection) live with the
transforms, but their type-level ingredients come from here.

The composed mapping ``(st∘at)(t)`` of Table 2.5 exists in the paper to avoid
manipulating partially resolved placeholders; in this implementation
recursive types are identified structs resolved by object identity, so the
composition is computed literally as ``st(at(t))`` (and a unit test checks it
against a direct implementation of Table 2.5's rules).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from ..ir.types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    UnionType,
    VoidType,
    VOID_PTR,
)
from .shadow_types import ShadowTypeBuilder


class ReplicationDesign(enum.Enum):
    """Which DPMR design shapes augmented function types."""

    SDS = "sds"
    MDS = "mds"


def contains_function_type(t: Type) -> bool:
    """Whether ``t`` transitively mentions a function type."""
    return _contains_fn(t, set())


def _contains_fn(t: Type, seen: set) -> bool:
    if isinstance(t, FunctionType):
        return True
    if isinstance(t, PointerType):
        return _contains_fn(t.pointee, seen)
    if isinstance(t, ArrayType):
        return _contains_fn(t.element, seen)
    if isinstance(t, (StructType, UnionType)):
        if id(t) in seen:
            return False
        seen.add(id(t))
        parts = t.fields if isinstance(t, StructType) else t.members
        return any(_contains_fn(p, seen) for p in parts)
    return False


class AugTypeBuilder:
    """Computes and caches ``at()`` for one replication design."""

    def __init__(self, shadow: ShadowTypeBuilder, design: ReplicationDesign):
        self.shadow = shadow
        self.design = design
        self._cache: Dict[Type, Type] = {}
        self._in_progress: Dict[Type, Type] = {}
        self._counter = 0

    # -- the at() mapping ----------------------------------------------------

    def aug_type(self, t: Type) -> Type:
        if t in self._cache:
            return self._cache[t]
        if t in self._in_progress:
            return self._in_progress[t]
        if not contains_function_type(t):
            # at() only changes function types; everything else is identical
            # (Table 2.3), so preserve object identity for cache coherence.
            self._cache[t] = t
            return t
        rv = self._build(t)
        self._cache[t] = rv
        self._in_progress.pop(t, None)
        return rv

    def _build(self, t: Type) -> Type:
        if isinstance(t, FunctionType):
            return self.aug_function_type(t)
        if isinstance(t, PointerType):
            # Recursion can only thread through pointers; no placeholder is
            # needed because pointee augmentation bottoms out at functions.
            return PointerType(self.aug_type(t.pointee))
        if isinstance(t, ArrayType):
            return ArrayType(self.aug_type(t.element), t.count)
        if isinstance(t, StructType):
            if t.name is not None:
                self._counter += 1
                rv = StructType.opaque(f"aug.{t.name}.{self._counter}")
                self._in_progress[t] = rv
                rv.set_fields([self.aug_type(f) for f in t.fields])
                return rv
            return StructType([self.aug_type(f) for f in t.fields])
        if isinstance(t, UnionType):
            return UnionType([self.aug_type(m) for m in t.members])
        return t

    # -- function-type augmentation (Fig. 2.7 / Table 4.1) ---------------------

    def aug_function_type(self, t: FunctionType) -> FunctionType:
        ret = self.aug_type(t.ret)
        params: List[Type] = []
        if isinstance(ret, PointerType):
            params.append(self.return_slot_type(ret))
        for p in t.params:
            ap = self.aug_type(p)
            params.append(ap)
            params.extend(self.extra_params_for(ap))
        return FunctionType(ret, params)

    def return_slot_type(self, aug_ret: PointerType) -> PointerType:
        """Type of the injected return-value parameter (``π()``'s type).

        SDS: ``st(at(r))*`` — pointer to the return value's shadow struct.
        MDS: ``at(r)*`` — pointer to a slot holding the return value's ROP.
        """
        if self.design is ReplicationDesign.SDS:
            return PointerType(self.shadow.pointer_shadow_struct(aug_ret))
        return PointerType(aug_ret)

    def extra_params_for(self, aug_param: Type) -> List[Type]:
        """``rpt``/``spt`` parameters added after a pointer parameter."""
        if not isinstance(aug_param, PointerType):
            return []
        extras: List[Type] = [aug_param]  # rpt(τ*) = at(τ)*
        if self.design is ReplicationDesign.SDS:
            extras.append(self.spt(aug_param))
        return extras

    def spt(self, aug_param: PointerType) -> Type:
        """``spt(τ*)``: NSOP parameter type (Table 2.3)."""
        inner = self.shadow.shadow_type(aug_param.pointee)
        if inner is None:
            return VOID_PTR
        return PointerType(inner)


class TypeMaps:
    """Facade bundling ``st``, ``at`` and the composed ``(st∘at)``."""

    def __init__(self, design: ReplicationDesign = ReplicationDesign.SDS):
        self.design = design
        self.shadow = ShadowTypeBuilder()
        self.aug = AugTypeBuilder(self.shadow, design)

    def st(self, t: Type) -> Optional[Type]:
        return self.shadow.shadow_type(t)

    def at(self, t: Type) -> Type:
        return self.aug.aug_type(t)

    def sat(self, t: Type) -> Optional[Type]:
        """``(st∘at)(t)`` (Table 2.5)."""
        return self.shadow.shadow_type(self.aug.aug_type(t))

    def phi(self, t: StructType, index: int) -> int:
        """``φ(t, f_i)`` over the augmented struct (Eq. 2.2)."""
        aug = self.aug.aug_type(t)
        assert isinstance(aug, StructType)
        return self.shadow.shadow_field_index(aug, index)


def composed_shadow_aug_reference(maps: TypeMaps, t: Type) -> Optional[Type]:
    """Direct implementation of Table 2.5's ``(st∘at)`` rules.

    Exists for cross-checking :meth:`TypeMaps.sat` in tests; not used by the
    transformation itself.
    """
    if isinstance(t, (IntType, FloatType, VoidType, FunctionType)):
        return None
    if isinstance(t, ArrayType):
        inner = composed_shadow_aug_reference(maps, t.element)
        return None if inner is None else ArrayType(inner, t.count)
    if isinstance(t, StructType):
        inners = [composed_shadow_aug_reference(maps, f) for f in t.fields]
        kept = [i for i in inners if i is not None]
        return StructType(kept) if kept else None
    if isinstance(t, UnionType):
        inners = [composed_shadow_aug_reference(maps, m) for m in t.members]
        kept = [i for i in inners if i is not None]
        return UnionType(kept) if kept else None
    if isinstance(t, PointerType):
        inner = composed_shadow_aug_reference(maps, t.pointee)
        rop = PointerType(maps.at(t.pointee))
        nsop = VOID_PTR if inner is None else PointerType(inner)
        return StructType([rop, nsop])
    raise TypeError(f"unexpected type {t}")
