"""Mirrored Data Structures: the MDS design (Chapter 4).

MDS keeps no shadow memory: replica memory *mirrors* application memory, and
replica pointer slots hold replica pointers (Fig. 2.2 / Table 4.3).
Consequences:

* stores of a pointer ``x`` mirror the ROP: ``*p_r <- x_r``;
* loads of pointers are never compared (the two values differ by design);
  the ROP is simply loaded from replica memory: ``x_r <- *p_r``;
* memory overhead drops to 2x and most SDS input restrictions disappear
  (§4.4): no shadow-type allocation constraint, no typing constraints on
  pointer arithmetic, no pointer-to-pointer cast restrictions.
"""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir.types import PointerType, StructType, Type
from ..ir.values import ConstNull, Register, Value
from .aug_types import ReplicationDesign
from .transform import BaseTransform, FunctionTranslator


class MdsTransform(BaseTransform):
    """Whole-module MDS transformation."""

    design = ReplicationDesign.MDS

    def makes_pointers_comparable(self) -> bool:
        return False

    def _replica_initializer(self, init):
        # Replica memory mirrors application memory: global pointer
        # initializers are redirected to the replica targets.
        return _mirror_init(self, init)

    def _translator_class(self):
        return MdsFunctionTranslator


def _mirror_init(tx: MdsTransform, init):
    from ..ir.values import FunctionRef, GlobalRef

    if isinstance(init, GlobalRef):
        return GlobalRef(f"{init.name}_r", init.type)
    if isinstance(init, list):
        return [_mirror_init(tx, item) for item in init]
    return init


class MdsFunctionTranslator(FunctionTranslator):
    """MDS-specific load/store/call-return behaviour (Tables 4.3/4.4)."""

    def _tx_load(self, i: ins.Load) -> None:
        p = self.val(i.pointer)
        x = self.new_named(i.result.name, p.type.pointee)
        self.vmap[i.result.name] = x
        self.emit(ins.Load(x, p), i)
        skip_mirror = (
            isinstance(i.pointer, Register) and i.pointer.name in self.unreplicated
        )
        if isinstance(x.type, PointerType):
            # Pointer loads are never compared under MDS; the replica load
            # yields the ROP directly.
            if skip_mirror:
                self.rops[i.result.name] = x
                self.unreplicated.add(i.result.name)
                return
            pr = self.coerce_ptr(self.rop(i.pointer), p.type)
            x_r = self.new_named(f"{i.result.name}_r", x.type)
            self.rops[i.result.name] = x_r
            self.emit(ins.Load(x_r, pr), i)
            return
        if self.plan.compare_load(i) and not skip_mirror:
            self.policy.emit_load_check(self, x, self.rop(i.pointer))

    def _tx_store(self, i: ins.Store) -> None:
        p = self.val(i.pointer)
        x = self.val(i.value)
        self.emit(ins.Store(p, x), i)
        if not self.plan.mirror_store(i):
            return
        if isinstance(i.pointer, Register) and i.pointer.name in self.unreplicated:
            return
        pr = self.coerce_ptr(self.rop(i.pointer), p.type)
        if isinstance(x.type, PointerType):
            mirrored = self._as_value_of(self.rop(i.value), x.type)
            self.emit(ins.Store(pr, mirrored), i)
        else:
            self.emit(ins.Store(pr, x), i)

    def _as_value_of(self, v: Value, want: Type) -> Value:
        if isinstance(v, ConstNull):
            return ConstNull(want)
        if v.type == want:
            return v
        return self.builder.ptr_cast(v, want.pointee, hint="dpmr.cz")

    # -- returned pointers (rvRopPtr protocol, Table 4.4) -------------------

    def _return_slot_pointee(self, ret_at: PointerType) -> Type:
        return ret_at

    def _bind_returned_pointer(self, name: str, rv_slot: Register) -> None:
        x_r = self.new_named(f"{name}_r", rv_slot.type.pointee)
        self.emit(ins.Load(x_r, rv_slot))
        self.rops[name] = x_r

    def _store_returned_pointer(self, i: ins.Ret) -> None:
        rv_slot = self.rv_param
        mirrored = self._as_value_of(self.rop(i.value), rv_slot.type.pointee)
        self.emit(ins.Store(rv_slot, mirrored), i)
