"""Replication plans: which memory operations participate in replication.

Chapter 5 refines DPMR's partial replica using Data Structure Analysis:
objects whose behaviour cannot be reasoned about (int-to-pointer casts,
pointers masquerading as integers, unknown/external memory) are simply *not
replicated*.  A :class:`ReplicationPlan` carries those per-instruction
decisions into the transformation:

* an allocation that is not replicated aliases its "replica" pointer to the
  application pointer (``p_r = p``);
* stores into non-replicated memory are not mirrored;
* loads from non-replicated memory are not compared (and pointer loads take
  their ROP from the aliased replica slot, which by DSA's transitive
  ``markX()`` marking is guaranteed to denote non-replicated memory too);
* frees of non-replicated buffers do not free a replica.

The default plan replicates everything — exactly the behaviour of Chapters
2–4.
"""

from __future__ import annotations

from ..ir import instructions as ins


class ReplicationPlan:
    """Full replication: the Ch. 2–4 behaviour."""

    def replicate_alloc(self, inst: ins.Instruction) -> bool:
        """Whether this Malloc/Alloca gets a real replica (and shadow)."""
        return True

    def mirror_store(self, inst: ins.Store) -> bool:
        """Whether this store is mirrored to replica (and shadow) memory."""
        return True

    def compare_load(self, inst: ins.Load) -> bool:
        """Whether this load is eligible for replica comparison."""
        return True

    def mirror_free(self, inst: ins.Free) -> bool:
        """Whether this free also frees replica (and shadow) memory."""
        return True

    def allows_int_to_pointer(self) -> bool:
        """Whether int-to-pointer casts are accepted (Ch. 5 only)."""
        return False

    def rop_for_int_to_pointer(self) -> str:
        """ROP strategy for int-to-pointer results: ``alias`` only."""
        return "alias"


FULL_REPLICATION = ReplicationPlan()
