"""Shadow Data Structures: the SDS design (Chapter 2).

SDS stores *identical* pointer values in application and replica memory —
pointer loads are comparable — and keeps, per application/replica object
pair, a third *shadow object* holding (ROP, NSOP) pairs for every pointer
slot (Fig. 2.4).

Design-specific behaviour (Table 2.6):

* store of a pointer ``x`` through ``p``: ``*p_r <- x`` (the same value!),
  plus ``p_s->rop <- x_r`` and ``p_s->nsop <- x_s``;
* load of a pointer: compared like any other load, then
  ``x_r <- p_s->rop`` and ``x_s <- p_s->nsop``;
* a function returning a pointer stores (ROP, NSOP) through its ``rvSop``
  argument, loaded by the caller after the call.
"""

from __future__ import annotations

from typing import Optional

from ..ir import instructions as ins
from ..ir.types import PointerType, Type
from ..ir.values import ConstNull, GlobalRef, Register, Value
from .aug_types import ReplicationDesign
from .shadow_types import NSOP_FIELD, ROP_FIELD
from .transform import BaseTransform, DpmrTransformError, FunctionTranslator


class SdsTransform(BaseTransform):
    """Whole-module SDS transformation."""

    design = ReplicationDesign.SDS

    def makes_pointers_comparable(self) -> bool:
        return True

    def _replica_initializer(self, init):
        # SDS replica memory holds pointer values identical to application
        # memory (Fig. 2.3), so the initializer is reused verbatim.
        return init

    # FunctionTranslator subclass selection
    def _translator_class(self):
        return SdsFunctionTranslator


class SdsFunctionTranslator(FunctionTranslator):
    """SDS-specific load/store/call-return behaviour."""

    def _tx_load(self, i: ins.Load) -> None:
        p = self.val(i.pointer)
        x = self.new_named(i.result.name, p.type.pointee)
        self.vmap[i.result.name] = x
        self.emit(ins.Load(x, p), i)
        check = self.plan.compare_load(i)
        skip_mirror = (
            isinstance(i.pointer, Register) and i.pointer.name in self.unreplicated
        )
        if check and not skip_mirror:
            self.policy.emit_load_check(self, x, self.rop(i.pointer))
        if isinstance(x.type, PointerType):
            self._load_shadow_pair(i, x)

    def _load_shadow_pair(self, i: ins.Load, x: Register) -> None:
        """``x_r <- p_s->rop; x_s <- p_s->nsop`` (always, policy-independent)."""
        name = i.result.name
        if isinstance(i.pointer, Register) and i.pointer.name in self.unreplicated:
            self.rops[name] = x
            self.nsops[name] = ConstNull(_VOID_PTR)
            self.unreplicated.add(name)
            return
        ps = self.nsop(i.pointer)
        sdw = self._shadow_slot_struct(ps, i)
        b = self.builder
        rop_addr = self.new_named(f"dpmr.ra.{name}", PointerType(sdw.fields[ROP_FIELD]))
        self.emit(ins.FieldAddr(rop_addr, ps, ROP_FIELD), i)
        x_r = self.new_named(f"{name}_r", sdw.fields[ROP_FIELD])
        self.emit(ins.Load(x_r, rop_addr), i)
        nsop_addr = self.new_named(
            f"dpmr.na.{name}", PointerType(sdw.fields[NSOP_FIELD])
        )
        self.emit(ins.FieldAddr(nsop_addr, ps, NSOP_FIELD), i)
        x_s = self.new_named(f"{name}_s", sdw.fields[NSOP_FIELD])
        self.emit(ins.Load(x_s, nsop_addr), i)
        self.rops[name] = self._coerce_reg(x_r, x.type)
        self.nsops[name] = x_s

    def _coerce_reg(self, v: Register, want: Type) -> Value:
        if v.type == want:
            return v
        return self.builder.ptr_cast(v, want.pointee, hint="dpmr.cz")

    def _shadow_slot_struct(self, ps: Value, i: ins.Instruction):
        from ..ir.types import StructType

        if isinstance(ps, ConstNull) or not isinstance(ps.type, PointerType) or not isinstance(ps.type.pointee, StructType):
            raise DpmrTransformError(
                f"{self.src_fn.name}: pointer memory access without a typed "
                f"shadow slot (SDS restriction, §2.9): {i!r}"
            )
        return ps.type.pointee

    def _tx_store(self, i: ins.Store) -> None:
        p = self.val(i.pointer)
        x = self.val(i.value)
        self.emit(ins.Store(p, x), i)
        if not self.plan.mirror_store(i):
            return
        if isinstance(i.pointer, Register) and i.pointer.name in self.unreplicated:
            return
        self.emit(ins.Store(self.coerce_ptr(self.rop(i.pointer), p.type), x), i)
        if isinstance(x.type, PointerType):
            self._store_shadow_pair(i, x)

    def _store_shadow_pair(self, i: ins.Store, x: Value) -> None:
        ps = self.nsop(i.pointer)
        sdw = self._shadow_slot_struct(ps, i)
        rop_addr = self.builder.function.new_register(
            PointerType(sdw.fields[ROP_FIELD]), "dpmr.ra"
        )
        self.emit(ins.FieldAddr(rop_addr, ps, ROP_FIELD), i)
        rop_val = self._as_slot_value(self.rop(i.value), sdw.fields[ROP_FIELD])
        self.emit(ins.Store(rop_addr, rop_val), i)
        nsop_addr = self.builder.function.new_register(
            PointerType(sdw.fields[NSOP_FIELD]), "dpmr.na"
        )
        self.emit(ins.FieldAddr(nsop_addr, ps, NSOP_FIELD), i)
        nsop_val = self._as_slot_value(self.nsop(i.value), sdw.fields[NSOP_FIELD])
        self.emit(ins.Store(nsop_addr, nsop_val), i)

    def _as_slot_value(self, v: Value, slot_type: Type) -> Value:
        if isinstance(v, ConstNull):
            return ConstNull(slot_type)
        if v.type == slot_type:
            return v
        return self.builder.ptr_cast(v, slot_type.pointee, hint="dpmr.cz")

    # -- returned pointers ------------------------------------------------

    def _return_slot_pointee(self, ret_at: PointerType) -> Type:
        return self.maps.shadow.pointer_shadow_struct(ret_at)

    def _bind_returned_pointer(self, name: str, rv_slot: Register) -> None:
        sdw = rv_slot.type.pointee
        b = self.builder
        rop_addr = b.field_addr(rv_slot, ROP_FIELD, hint="dpmr.ra")
        x_r = self.new_named(f"{name}_r", sdw.fields[ROP_FIELD])
        self.emit(ins.Load(x_r, rop_addr))
        nsop_addr = b.field_addr(rv_slot, NSOP_FIELD, hint="dpmr.na")
        x_s = self.new_named(f"{name}_s", sdw.fields[NSOP_FIELD])
        self.emit(ins.Load(x_s, nsop_addr))
        self.rops[name] = x_r
        self.nsops[name] = x_s

    def _store_returned_pointer(self, i: ins.Ret) -> None:
        rv_slot = self.rv_param
        sdw = rv_slot.type.pointee
        b = self.builder
        rop_addr = b.field_addr(rv_slot, ROP_FIELD, hint="dpmr.ra")
        self.emit(ins.Store(rop_addr, self._as_slot_value(self.rop(i.value), sdw.fields[ROP_FIELD])), i)
        nsop_addr = b.field_addr(rv_slot, NSOP_FIELD, hint="dpmr.na")
        self.emit(ins.Store(nsop_addr, self._as_slot_value(self.nsop(i.value), sdw.fields[NSOP_FIELD])), i)


from ..ir.types import VOID_PTR as _VOID_PTR  # noqa: E402
