"""Incremental DPMR recompilation for fault-injection campaigns.

The paper's evaluation (§3.5) rebuilds and re-transforms the whole benchmark
once per injected fault, even though consecutive builds differ in exactly
one function.  :class:`IncrementalDpmrCompiler` removes that redundancy with
a content-addressed, function-granular transform cache:

1. the *pristine* module is transformed once per variant configuration,
   recording the comparison policy's compile-time state at every function
   boundary (the static load-checking policy draws one random number per
   load site, in module order — the snapshots let a single function be
   re-transformed with exactly the per-site decisions a full rebuild would
   make);
2. a faulty build re-transforms *only* the functions whose content hash
   differs from the pristine build (for campaign clones this is exactly the
   function containing the injected fault — every other function is the
   same object and is recognized by identity), and splices them into a
   copy-on-write clone of the cached transformed module;
3. re-transformed functions are memoized under
   ``(function name, content hash)`` — the variant configuration is fixed
   per compiler instance — so repeated compiles of the same faulty function
   run the translator at most once.  The key is built with
   :func:`repro.machine.compile.content_cache_key`, the same
   content-addressing discipline the compiled execution tier uses for its
   generated-code cache.

The result is **bit-identical** to a full rebuild: output functions are
declared with fresh register/label counters exactly as the full pass
declares them, function/global dict ordering (which fixes machine address
assignment) is preserved by in-place replacement, and the `main` stub is
regenerated whenever `main` itself changes.  What is *not* re-run per build
is whole-module verification — the pristine build is verified once on both
sides, and each incremental build verifies only the re-transformed
functions (verification cannot change emitted code, only raise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.module import Function, Module
from ..ir.printer import function_fingerprint
from ..ir.verifier import verify_function, verify_module
from ..machine.compile import content_cache_key
from .aug_types import ReplicationDesign
from .mds import MdsTransform
from .pipeline import DpmrBuild, DpmrCompiler
from .sds import SdsTransform
from .transform import ENTRY_FUNCTION


@dataclass
class TransformCacheStats:
    """Aggregate hit/miss counters of one incremental compiler."""

    hits: int = 0
    misses: int = 0
    full_rebuilds: int = 0  # structure-mismatch fallbacks (never in campaigns)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: Replacement set for one re-transformed source function: the output
#: functions to splice, as (output name, function) pairs.
_Replacement = List[Tuple[str, Function]]


class IncrementalDpmrCompiler:
    """Compiles fault-injected clones of one pristine module incrementally.

    Drop-in alternative to :meth:`DpmrCompiler.compile` for the campaign
    loop: ``compile(faulty)`` returns a :class:`DpmrBuild` whose module is
    byte-identical to ``DpmrCompiler.compile(faulty).module``, built in
    O(changed functions) instead of O(program).  Modules handed to
    :meth:`compile` must be derived from the pristine module (e.g. via
    ``Module.clone``); anything structurally incompatible (different
    function/global sets or signatures) falls back to a full rebuild.
    """

    def __init__(self, compiler: DpmrCompiler, pristine: Module):
        if compiler.optimize or compiler.plan is not None:
            raise ValueError(
                "incremental recompilation supports neither the post-DPMR "
                "optimize stage nor module-bound replication plans; use "
                "DpmrCompiler.compile directly"
            )
        self.compiler = compiler
        self.pristine = pristine
        self.stats = TransformCacheStats()
        cls = (
            SdsTransform
            if compiler.design is ReplicationDesign.SDS
            else MdsTransform
        )
        if compiler.verify:
            verify_module(pristine)
        self._tx = cls(pristine, policy=compiler.policy, plan=None)
        # Base build: one full transform, with a policy-state snapshot taken
        # immediately before each function (module order = rebuild order).
        self._pre_states: Dict[str, object] = {}
        out = self._tx.begin_module()
        for fn in pristine.defined_functions():
            self._pre_states[fn.name] = compiler.policy.compile_state()
            self._tx.translate_function(fn)
        self._tx._generate_main_stub(out)
        if compiler.verify:
            verify_module(out)
        self.base_module = out
        self._pristine_fp: Dict[str, str] = {}
        self._memo: Dict[Tuple[str, str], _Replacement] = {}

    # -- public API -----------------------------------------------------

    def compile(self, module: Module) -> DpmrBuild:
        """Transform ``module``, reusing every cached unchanged function."""
        changed = self._changed_functions(module)
        if changed is None:
            self.stats.full_rebuilds += 1
            return self.compiler.compile(module)
        out = self.base_module.clone(mutable_functions=())
        hits = sum(1 for fn in module.defined_functions()) - len(changed)
        misses = 0
        for name, fingerprint in changed.items():
            memo_key = content_cache_key(name, fingerprint)
            replacement = self._memo.get(memo_key)
            if replacement is not None:
                hits += 1
            else:
                misses += 1
                replacement = self._retransform(module, out, name)
                self._memo[memo_key] = replacement
            for out_name, out_fn in replacement:
                if out_name in out.functions:
                    out.functions[out_name] = out_fn  # in place: keeps order
                else:  # pragma: no cover - declarations always pre-exist
                    out.add_function(out_fn)
        self.stats.hits += hits
        self.stats.misses += misses
        return DpmrBuild(
            out,
            self.compiler.design,
            self.compiler.policy,
            self.compiler.diversity,
            cache_hits=hits,
            cache_misses=misses,
        )

    # -- internals ------------------------------------------------------

    def _fingerprint_pristine(self, name: str) -> str:
        fp = self._pristine_fp.get(name)
        if fp is None:
            fp = self._pristine_fp[name] = function_fingerprint(
                self.pristine.functions[name]
            )
        return fp

    def _changed_functions(self, module: Module) -> Optional[Dict[str, str]]:
        """Map of changed defined functions → content hash.

        ``None`` means the module is not a per-function edit of the pristine
        module and needs a full rebuild.  Functions shared by identity with
        the pristine module (the common case for campaign clones) are
        recognized without hashing.
        """
        pristine = self.pristine
        if module.functions.keys() != pristine.functions.keys():
            return None
        if module.globals.keys() != pristine.globals.keys():
            return None
        for name, g in module.globals.items():
            pg = pristine.globals[name]
            if g is pg:
                continue
            if g.value_type != pg.value_type or g.initializer is not pg.initializer:
                return None
        changed: Dict[str, str] = {}
        for name, fn in module.functions.items():
            pfn = pristine.functions[name]
            if fn is pfn:
                continue
            if fn.is_external != pfn.is_external or fn.type != pfn.type:
                return None
            if fn.is_external:
                continue
            fp = function_fingerprint(fn)
            if fp != self._fingerprint_pristine(name):
                changed[name] = fp
        return changed

    def _retransform(
        self, module: Module, out: Module, name: str
    ) -> _Replacement:
        """Re-translate source function ``name`` exactly as a full rebuild
        of ``module`` would, splicing into ``out``."""
        tx = self._tx
        src_fn = module.functions[name]
        if self.compiler.verify:
            verify_function(src_fn, module)
        tx.src = module
        tx.out_module = out
        try:
            self.compiler.policy.restore_compile_state(self._pre_states[name])
            out_name = tx.out_name(name)
            out_fn = tx.fresh_declaration(src_fn)
            out.functions[out_name] = out_fn
            tx._translator_class()(tx, src_fn, out_fn).translate()
            replacement: _Replacement = [(out_name, out_fn)]
            if name == ENTRY_FUNCTION and ENTRY_FUNCTION in out.functions:
                # The entry stub is derived from main's signature; rebuild it
                # so a rebuilt mainAug and its stub stay consistent.  The
                # stub is the last function in the base module, so delete +
                # re-append preserves dict order.
                del out.functions[ENTRY_FUNCTION]
                tx._generate_main_stub(out)
                replacement.append(
                    (ENTRY_FUNCTION, out.functions[ENTRY_FUNCTION])
                )
            if self.compiler.verify:
                for _, fn in replacement:
                    verify_function(fn, out)
            return replacement
        finally:
            tx.src = self.pristine
            tx.out_module = self.base_module
