"""Incremental DPMR recompilation for fault-injection campaigns.

The paper's evaluation (§3.5) rebuilds and re-transforms the whole benchmark
once per injected fault, even though consecutive builds differ in exactly
one function.  :class:`IncrementalDpmrCompiler` removes that redundancy with
a content-addressed, function-granular transform cache:

1. the *pristine* module is transformed once per variant configuration,
   recording the comparison policy's compile-time state at every function
   boundary (the static load-checking policy draws one random number per
   load site, in module order — the snapshots let a single function be
   re-transformed with exactly the per-site decisions a full rebuild would
   make);
2. a faulty build re-transforms *only* the functions whose content hash
   differs from the pristine build (for campaign clones this is exactly the
   function containing the injected fault — every other function is the
   same object and is recognized by identity), and splices them into a
   copy-on-write clone of the cached transformed module;
3. a changed function is rebuilt by the *delta transform*: the base build
   journals every translator step per source instruction, so the faulty
   rebuild replays the journal verbatim outside the fault diff and runs the
   translator only for the diff itself (see :meth:`_delta_retransform`) —
   per-site build cost stops scaling with function size.  Every output
   function (base and per-site) additionally carries a *provenance stamp*
   — a digest of (transform config, policy pre-state, source content) that
   deterministically pins its text — which the compiled tier's code cache
   keys on directly (see ``repro.machine.compile._STAMP_CACHE``), so
   repeat codegen for the same site skips structural delta planning and
   diversity variants (whose transformed text is identical) share one
   generated-code entry;
4. re-transformed functions are memoized under
   ``(function name, content hash)`` — the variant configuration is fixed
   per compiler instance — so repeated compiles of the same faulty function
   run the translator at most once.  The key is built with
   :func:`repro.machine.compile.content_cache_key`, the same
   content-addressing discipline the compiled execution tier uses for its
   generated-code cache.

The result is **bit-identical** to a full rebuild: output functions are
declared with fresh register/label counters exactly as the full pass
declares them, function/global dict ordering (which fixes machine address
assignment) is preserved by in-place replacement, and the `main` stub is
regenerated whenever `main` itself changes.  What is *not* re-run per build
is whole-module verification — the pristine build is verified once on both
sides, and each incremental build verifies only the re-transformed
functions (verification cannot change emitted code, only raise).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.builder import IRBuilder
from ..ir.module import Function, Module
from ..ir.printer import function_fingerprint
from ..ir.verifier import verify_function, verify_module
from ..machine.codegen import _block_eq, _inst_eq
from ..machine.compile import content_cache_key, inline_runtime_enabled
from .aug_types import ReplicationDesign
from .mds import MdsTransform
from .pipeline import DpmrBuild, DpmrCompiler
from .policies import ComparisonPolicy
from .sds import SdsTransform
from .transform import ENTRY_FUNCTION


@dataclass
class TransformCacheStats:
    """Aggregate hit/miss counters of one incremental compiler."""

    hits: int = 0
    misses: int = 0
    full_rebuilds: int = 0  # structure-mismatch fallbacks (never in campaigns)
    delta_splices: int = 0  # misses served by instruction-granular replay
    delta_refusals: int = 0  # misses that fell back to whole-function re-translation
    replayed_instructions: int = 0  # source instructions replayed from the journal
    translated_instructions: int = 0  # source instructions actually re-translated

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def delta_replay_rate(self) -> float:
        """Fraction of per-miss source instructions served by journal replay
        instead of the translator — the delta-transform hit rate."""
        total = self.replayed_instructions + self.translated_instructions
        return self.replayed_instructions / total if total else 0.0


#: Replacement set for one re-transformed source function: the output
#: functions to splice, as (output name, function) pairs.
_Replacement = List[Tuple[str, Function]]


# -- translation journals (instruction-granular delta transforms) ---------
#
# During the base build every translator step is journaled: per source
# instruction we record the translator's *pre*-state token — the output
# function's register/label counters, the cumulative count of load sites the
# comparison policy has been consulted for, and the builder's insertion
# block — plus the list of *events* translating it produced (instructions
# emitted into which output block, auxiliary blocks created, and
# vmap/rops/nsops/unreplicated bindings).  A faulty clone differs from the
# pristine function in a handful of instructions; everything outside the
# diff is replayed by applying the recorded events verbatim, and only the
# diff (plus any suffix whose counters no longer line up) goes through the
# translator.  Replay is bit-exact because translated output depends only on
# (a) the source instruction, (b) the counter/site token, and (c) the named
# bindings — all of which the resume checks compare for exact equality.


class _PolicyCounter:
    """Wraps a comparison policy, counting ``emit_load_check`` consultations
    (= compile-time state consumption sites)."""

    __slots__ = ("_policy", "draws")

    def __init__(self, policy):
        self._policy = policy
        self.draws = 0

    def emit_load_check(self, tx, loaded, replica_ptr) -> None:
        self.draws += 1
        self._policy.emit_load_check(tx, loaded, replica_ptr)

    def __getattr__(self, name):
        return getattr(self._policy, name)


class _JDict(dict):
    """Dict that journals ``__setitem__`` into the observer's event sink."""

    def __init__(self, seed, observer, tag):
        super().__init__(seed)
        self._obs = observer
        self._tag = tag

    def __setitem__(self, key, value):
        self._obs._events.append((self._tag, key, value))
        super().__setitem__(key, value)


class _JSet(set):
    """Set that journals ``add`` into the observer's event sink."""

    def __init__(self, seed, observer):
        super().__init__(seed)
        self._obs = observer

    def add(self, item):
        self._obs._events.append(("u", item, None))
        super().add(item)


class _BlockJournal:
    __slots__ = ("label", "records", "end")

    def __init__(self, label: str):
        self.label = label
        #: one record per source instruction:
        #: (pre_reg, pre_label, pre_sites, pre_block_label, events)
        self.records: List[Tuple[int, int, int, str, list]] = []
        #: state token after the block's last instruction (same 4 fields)
        self.end: Optional[Tuple[int, int, int, str]] = None


class _JournalObserver:
    """Observer for :meth:`FunctionTranslator.translate` that records the
    per-instruction journal of one base-build translation."""

    def __init__(self):
        self.blocks: List[_BlockJournal] = []
        self._tr = None
        self._counter = None
        self._events: list = []

    def attach(self, tr) -> None:
        self._tr = tr
        self._counter = _PolicyCounter(tr.policy)
        tr.policy = self._counter
        tr.vmap = _JDict(tr.vmap, self, "v")
        tr.rops = _JDict(tr.rops, self, "r")
        tr.nsops = _JDict(tr.nsops, self, "n")
        tr.unreplicated = _JSet(tr.unreplicated, self)
        builder = tr.builder
        orig_emit = builder.emit
        orig_new_block = builder.new_block

        def emit(instruction):
            self._events.append(("e", builder.block.label, instruction))
            return orig_emit(instruction)

        def new_block(label=None):
            blk = orig_new_block(label)
            self._events.append(("b", blk.label, None))
            return blk

        builder.emit = emit
        builder.new_block = new_block

    def _token(self) -> Tuple[int, int, int, str]:
        tr = self._tr
        out_fn = tr.out_fn
        return (
            out_fn._next_reg,
            out_fn._next_label,
            self._counter.draws,
            tr.builder.block.label,
        )

    def _close_block(self) -> None:
        if self.blocks:
            self.blocks[-1].end = self._token()

    def enter_block(self, block) -> None:
        self._close_block()
        self.blocks.append(_BlockJournal(block.label))

    def instruction(self, inst) -> None:
        self._events = []
        pre_reg, pre_label, pre_sites, pre_block = self._token()
        self.blocks[-1].records.append(
            (pre_reg, pre_label, pre_sites, pre_block, self._events)
        )

    def finish(self) -> None:
        self._close_block()


def _policy_fingerprint(policy) -> str:
    """Content digest of a comparison policy's *configuration*.

    Covers the concrete class plus every plain-data attribute (thresholds,
    probabilities, names); mutable machinery like RNG objects is excluded
    — their contribution to emitted text is pinned separately by the
    per-function pre-state digest."""
    h = hashlib.sha256()
    h.update(type(policy).__module__.encode())
    h.update(type(policy).__qualname__.encode())
    for key, value in sorted(vars(policy).items()):
        if isinstance(
            value, (str, int, float, bool, bytes, type(None), tuple, frozenset)
        ):
            h.update(f"{key}={value!r};".encode())
    return h.hexdigest()


def _apply_events(events: list, out_fn: Function, tr) -> None:
    """Replay journal events: emissions, block creation, name bindings."""
    for tag, a, b in events:
        if tag == "e":
            out_fn.block(a).append(b)
        elif tag == "b":
            # explicit label: does not advance the auto-label counter (the
            # counters are re-synchronized from tokens at every mode switch)
            out_fn.add_block(a)
        elif tag == "v":
            tr.vmap[a] = b
        elif tag == "r":
            tr.rops[a] = b
        elif tag == "n":
            tr.nsops[a] = b
        else:  # "u"
            tr.unreplicated.add(a)


class IncrementalDpmrCompiler:
    """Compiles fault-injected clones of one pristine module incrementally.

    Drop-in alternative to :meth:`DpmrCompiler.compile` for the campaign
    loop: ``compile(faulty)`` returns a :class:`DpmrBuild` whose module is
    byte-identical to ``DpmrCompiler.compile(faulty).module``, built in
    O(changed functions) instead of O(program).  Modules handed to
    :meth:`compile` must be derived from the pristine module (e.g. via
    ``Module.clone``); anything structurally incompatible (different
    function/global sets or signatures) falls back to a full rebuild.
    """

    def __init__(self, compiler: DpmrCompiler, pristine: Module):
        if compiler.optimize or compiler.plan is not None:
            raise ValueError(
                "incremental recompilation supports neither the post-DPMR "
                "optimize stage nor module-bound replication plans; use "
                "DpmrCompiler.compile directly"
            )
        self.compiler = compiler
        self.pristine = pristine
        self.stats = TransformCacheStats()
        cls = (
            SdsTransform
            if compiler.design is ReplicationDesign.SDS
            else MdsTransform
        )
        if compiler.verify:
            verify_module(pristine)
        self._tx = cls(pristine, policy=compiler.policy, plan=None)
        # Instruction-granular delta transforms need (a) the runtime
        # specialization knob on (DPMR_INLINE_RT=0 restores whole-function
        # re-transforms) and (b) a policy whose per-site compile state can be
        # fast-forwarded: stateless, or one overriding advance_compile_state.
        self._journal_ok = inline_runtime_enabled() and (
            compiler.policy.compile_state() is None
            or type(compiler.policy).advance_compile_state
            is not ComparisonPolicy.advance_compile_state
        )
        self._journals: Dict[str, List[_BlockJournal]] = {}
        # Base build: one full transform, with a policy-state snapshot taken
        # immediately before each function (module order = rebuild order).
        self._pre_states: Dict[str, object] = {}
        out = self._tx.begin_module()
        for fn in pristine.defined_functions():
            self._pre_states[fn.name] = compiler.policy.compile_state()
            if self._journal_ok:
                out_fn = out.functions[self._tx.out_name(fn.name)]
                observer = _JournalObserver()
                self._tx._translator_class()(self._tx, fn, out_fn).translate(
                    observer
                )
                self._journals[fn.name] = observer.blocks
            else:
                self._tx.translate_function(fn)
        self._tx._generate_main_stub(out)
        if compiler.verify:
            verify_module(out)
        self.base_module = out
        self._pristine_fp: Dict[str, str] = {}
        self._memo: Dict[Tuple[str, str], _Replacement] = {}
        # Provenance stamps: the transformed text of any source function is
        # a pure function of (transform config, policy pre-state, source
        # content), so a digest of those three content-addresses the output
        # — the compiled tier keys generated code on it directly, skipping
        # structural delta planning and sharing entries across diversity
        # variants (whose transformed text is identical).  Part of the
        # runtime-inlining pipeline: DPMR_INLINE_RT=0 disables stamping.
        self._stamp_cfg: Optional[str] = None
        self._state_fp: Dict[str, str] = {}
        if inline_runtime_enabled():
            cfg = hashlib.sha256()
            cfg.update(type(self._tx).__qualname__.encode())
            cfg.update(repr(compiler.design).encode())
            cfg.update(_policy_fingerprint(compiler.policy).encode())
            self._stamp_cfg = cfg.hexdigest()
            for fn in pristine.defined_functions():
                self._state_fp[fn.name] = hashlib.sha256(
                    repr(self._pre_states[fn.name]).encode()
                ).hexdigest()
                out.functions[self._tx.out_name(fn.name)]._dpmr_stamp = (
                    self._stamp_cfg,
                    self._state_fp[fn.name],
                    self._fingerprint_pristine(fn.name),
                )
            if (
                ENTRY_FUNCTION in out.functions
                and ENTRY_FUNCTION in self._state_fp
            ):
                out.functions[ENTRY_FUNCTION]._dpmr_stamp = (
                    self._stamp_cfg,
                    self._state_fp[ENTRY_FUNCTION],
                    self._fingerprint_pristine(ENTRY_FUNCTION),
                )

    # -- public API -----------------------------------------------------

    def compile(self, module: Module) -> DpmrBuild:
        """Transform ``module``, reusing every cached unchanged function."""
        changed = self._changed_functions(module)
        if changed is None:
            self.stats.full_rebuilds += 1
            return self.compiler.compile(module)
        out = self.base_module.clone(mutable_functions=())
        hits = sum(1 for fn in module.defined_functions()) - len(changed)
        misses = 0
        for name, fingerprint in changed.items():
            memo_key = content_cache_key(name, fingerprint)
            replacement = self._memo.get(memo_key)
            if replacement is not None:
                hits += 1
            else:
                misses += 1
                replacement = self._delta_retransform(module, out, name)
                if replacement is not None:
                    self.stats.delta_splices += 1
                else:
                    self.stats.delta_refusals += 1
                    replacement = self._retransform(module, out, name)
                self._memo[memo_key] = replacement
                if self._stamp_cfg is not None:
                    stamp = (
                        self._stamp_cfg,
                        self._state_fp[name],
                        fingerprint,
                    )
                    for _, out_fn in replacement:
                        out_fn._dpmr_stamp = stamp
            for out_name, out_fn in replacement:
                if out_name in out.functions:
                    out.functions[out_name] = out_fn  # in place: keeps order
                else:  # pragma: no cover - declarations always pre-exist
                    out.add_function(out_fn)
        self.stats.hits += hits
        self.stats.misses += misses
        return DpmrBuild(
            out,
            self.compiler.design,
            self.compiler.policy,
            self.compiler.diversity,
            cache_hits=hits,
            cache_misses=misses,
        )

    # -- internals ------------------------------------------------------

    def _fingerprint_pristine(self, name: str) -> str:
        fp = self._pristine_fp.get(name)
        if fp is None:
            fp = self._pristine_fp[name] = function_fingerprint(
                self.pristine.functions[name]
            )
        return fp

    def _changed_functions(self, module: Module) -> Optional[Dict[str, str]]:
        """Map of changed defined functions → content hash.

        ``None`` means the module is not a per-function edit of the pristine
        module and needs a full rebuild.  Functions shared by identity with
        the pristine module (the common case for campaign clones) are
        recognized without hashing.
        """
        pristine = self.pristine
        if module.functions.keys() != pristine.functions.keys():
            return None
        if module.globals.keys() != pristine.globals.keys():
            return None
        for name, g in module.globals.items():
            pg = pristine.globals[name]
            if g is pg:
                continue
            if g.value_type != pg.value_type or g.initializer is not pg.initializer:
                return None
        changed: Dict[str, str] = {}
        for name, fn in module.functions.items():
            pfn = pristine.functions[name]
            if fn is pfn:
                continue
            if fn.is_external != pfn.is_external or fn.type != pfn.type:
                return None
            if fn.is_external:
                continue
            fp = function_fingerprint(fn)
            if fp != self._fingerprint_pristine(name):
                changed[name] = fp
        return changed

    def _retransform(
        self, module: Module, out: Module, name: str
    ) -> _Replacement:
        """Re-translate source function ``name`` exactly as a full rebuild
        of ``module`` would, splicing into ``out``."""
        tx = self._tx
        src_fn = module.functions[name]
        if self.compiler.verify:
            verify_function(src_fn, module)
        tx.src = module
        tx.out_module = out
        try:
            self.compiler.policy.restore_compile_state(self._pre_states[name])
            out_name = tx.out_name(name)
            out_fn = tx.fresh_declaration(src_fn)
            out.functions[out_name] = out_fn
            tx._translator_class()(tx, src_fn, out_fn).translate()
            replacement: _Replacement = [(out_name, out_fn)]
            if name == ENTRY_FUNCTION and ENTRY_FUNCTION in out.functions:
                # The entry stub is derived from main's signature; rebuild it
                # so a rebuilt mainAug and its stub stay consistent.  The
                # stub is the last function in the base module, so delete +
                # re-append preserves dict order.
                del out.functions[ENTRY_FUNCTION]
                tx._generate_main_stub(out)
                replacement.append(
                    (ENTRY_FUNCTION, out.functions[ENTRY_FUNCTION])
                )
            if self.compiler.verify:
                for _, fn in replacement:
                    verify_function(fn, out)
            return replacement
        finally:
            tx.src = self.pristine
            tx.out_module = self.base_module

    def _delta_retransform(
        self, module: Module, out: Module, name: str
    ) -> Optional[_Replacement]:
        """Instruction-granular sibling of :meth:`_retransform`.

        Rebuilds the output function by *replaying* the base build's journal
        for every source instruction outside the fault diff and running the
        translator only for the diff itself (plus any suffix whose
        register/label/site counters no longer line up exactly with the
        journal).  Returns None — caller falls back to the whole-function
        path — when no journal exists, the block structure changed, a resume
        precondition fails, or replay raises.
        """
        journal = self._journals.get(name)
        if journal is None:
            return None
        src_fn = module.functions[name]
        pfn = self.pristine.functions[name]
        if [b.label for b in src_fn.blocks] != [bj.label for bj in journal]:
            return None
        if self.compiler.verify:
            verify_function(src_fn, module)
        tx = self._tx
        policy = self.compiler.policy
        tx.src = module
        tx.out_module = out
        try:
            out_name = tx.out_name(name)
            out_fn = tx.fresh_declaration(src_fn)
            out.functions[out_name] = out_fn
            tr = tx._translator_class()(tx, src_fn, out_fn)
            counter = _PolicyCounter(policy)
            tr.policy = counter
            policy.restore_compile_state(self._pre_states[name])
            tr._bind_params()
            for block in src_fn.blocks:
                out_fn.add_block(f"o.{block.label}")
            tr.builder = IRBuilder(
                out_fn, out_fn.block(f"o.{src_fn.blocks[0].label}")
            )
            sites_advanced = 0
            replayed = translated = 0
            replay_mode = True
            for bj, sblock, pblock in zip(journal, src_fn.blocks, pfn.blocks):
                finsts, pinsts = sblock.instructions, pblock.instructions
                recs = bj.records
                if not replay_mode:
                    # real mode: resume replay at a block boundary only when
                    # the live counters/sites line up exactly with the journal
                    rec0 = recs[0] if recs else None
                    if (
                        rec0 is not None
                        and _block_eq(sblock, pblock)
                        and out_fn._next_reg == rec0[0]
                        and out_fn._next_label == rec0[1]
                        and sites_advanced + counter.draws == rec0[2]
                        and rec0[3] == f"o.{sblock.label}"
                    ):
                        for rec in recs:
                            _apply_events(rec[4], out_fn, tr)
                        replayed += len(recs)
                        replay_mode = True
                        continue
                    tr.builder.position_at_end(out_fn.block(f"o.{sblock.label}"))
                    for inst in finsts:
                        tr._translate_instruction(inst)
                    translated += len(finsts)
                    continue
                if _block_eq(sblock, pblock):
                    for rec in recs:
                        _apply_events(rec[4], out_fn, tr)
                    replayed += len(recs)
                    continue
                # divergent block: structural common prefix p / suffix s
                lf, lp = len(finsts), len(pinsts)
                p = 0
                while p < min(lf, lp) and _inst_eq(finsts[p], pinsts[p]):
                    p += 1
                s = 0
                while s < min(lf, lp) - p and _inst_eq(
                    finsts[lf - 1 - s], pinsts[lp - 1 - s]
                ):
                    s += 1
                for rec in recs[:p]:
                    _apply_events(rec[4], out_fn, tr)
                replayed += p
                # switch to real translation at the recorded pre-state token
                tok = recs[p][:4] if p < len(recs) else bj.end
                t_reg, t_label, t_sites, t_block = tok
                advance = t_sites - (sites_advanced + counter.draws)
                if advance < 0:  # pragma: no cover - tokens are monotonic
                    return None
                if advance:
                    policy.advance_compile_state(advance)
                    sites_advanced += advance
                out_fn._next_reg = t_reg
                out_fn._next_label = t_label
                tr.builder.position_at_end(out_fn.block(t_block))
                for inst in finsts[p : lf - s]:
                    tr._translate_instruction(inst)
                translated += lf - s - p
                if s:
                    # resume replay for the suffix only on exact counter/site
                    # agreement (replayed instructions carry the pristine
                    # build's register and block names verbatim)
                    rec = recs[lp - s]
                    if (
                        out_fn._next_reg == rec[0]
                        and out_fn._next_label == rec[1]
                        and sites_advanced + counter.draws == rec[2]
                        and tr.builder.block.label == rec[3]
                    ):
                        for r2 in recs[lp - s :]:
                            _apply_events(r2[4], out_fn, tr)
                        replayed += s
                        continue
                    for inst in finsts[lf - s :]:
                        tr._translate_instruction(inst)
                    translated += s
                replay_mode = False
            replacement: _Replacement = [(out_name, out_fn)]
            if name == ENTRY_FUNCTION and ENTRY_FUNCTION in out.functions:
                del out.functions[ENTRY_FUNCTION]
                tx._generate_main_stub(out)
                replacement.append(
                    (ENTRY_FUNCTION, out.functions[ENTRY_FUNCTION])
                )
            if self.compiler.verify:
                for _, fn in replacement:
                    verify_function(fn, out)
            self.stats.replayed_instructions += replayed
            self.stats.translated_instructions += translated
            return replacement
        except Exception:
            # any replay surprise falls back to the exact whole-function
            # path, which re-raises genuine translation errors
            return None
        finally:
            tx.src = self.pristine
            tx.out_module = self.base_module
