"""State comparison policies (§2.7).

A *load check* replicates a load and compares the result with the
application load.  Policies trade dependability for performance by limiting
how often load checks run:

* :class:`AllLoadsPolicy` — every load is replicated and compared (the
  default of Table 2.6).
* :class:`TemporalLoadCheckingPolicy` — a global counter walks the bits of a
  64-bit mask (Table 2.9); the check runs only when the current bit is one.
  The counter/branch bookkeeping executes at *every* load, which is why the
  paper finds temporal checking costs more than all-loads (§3.8).
* :class:`StaticLoadCheckingPolicy` — each load site receives a check with a
  given probability *at compile time*; unchecked sites are never checked.

Policies are consulted by the transformation through two hooks:
``setup_module`` (once per build; may add support globals) and
``emit_load_check`` (per load site; emits IR through the translator).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from ..ir import instructions as ins
from ..ir.module import GlobalVariable
from ..ir.types import INT32
from ..ir.values import ConstInt, Register, Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .transform import FunctionTranslator


MASK_COUNTER_GLOBAL = "dpmr.maskCounter"

#: The 64-bit masks evaluated in the paper (§2.7).
TEMPORAL_MASK_1_8 = 0x8080808080808080
TEMPORAL_MASK_1_2 = 0xAAAAAAAAAAAAAAAA
TEMPORAL_MASK_7_8 = 0xFEFEFEFEFEFEFEFE


class ComparisonPolicy:
    """Base class: decides, per load, whether/how to emit the check."""

    name = "abstract"

    def setup_module(self, out_module) -> None:
        """Add any support globals to the transformed module."""

    def emit_load_check(
        self, tx: "FunctionTranslator", loaded: Register, replica_ptr: Value
    ) -> None:
        raise NotImplementedError

    # -- incremental recompilation hooks --------------------------------
    #
    # A policy that consumes compile-time state per load site (only the
    # static policy today) exposes it here so the incremental build cache
    # can snapshot the state at each function boundary and replay exactly
    # the per-site decisions a full-module rebuild would make.

    def compile_state(self):
        """Opaque snapshot of per-site compile-time state (None if stateless)."""
        return None

    def restore_compile_state(self, state) -> None:
        """Restore a snapshot taken by :meth:`compile_state`."""

    def advance_compile_state(self, sites: int) -> None:
        """Fast-forward compile-time state past ``sites`` load sites without
        emitting them (instruction-granular delta transforms skip the
        replayed sites).  Must consume state exactly as ``sites`` calls of
        :meth:`emit_load_check` would.  A policy with compile state that
        does not override this is refused by the delta path (it falls back
        to whole-function re-translation), so the no-op default is safe."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"<policy {self.name}>"


class AllLoadsPolicy(ComparisonPolicy):
    """Replicate and compare every application load."""

    name = "all-loads"

    def emit_load_check(self, tx, loaded, replica_ptr) -> None:
        tx.emit_compare_and_detect(loaded, replica_ptr)


class StaticLoadCheckingPolicy(ComparisonPolicy):
    """Include the check at each load site with probability ``fraction``.

    The site selection is made once at compile time with a seeded RNG (the
    paper generates a random number per load site, §2.7).
    """

    def __init__(self, fraction: float, seed: int = 12345):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction
        self.seed = seed
        self._rng = random.Random(seed)
        self.name = f"static-{int(round(fraction * 100))}%"

    def reset(self) -> None:
        """Re-seed site selection (used to make rebuilds deterministic)."""
        self._rng = random.Random(self.seed)

    def compile_state(self):
        return self._rng.getstate()

    def restore_compile_state(self, state) -> None:
        self._rng.setstate(state)

    def advance_compile_state(self, sites: int) -> None:
        # emit_load_check consumes exactly one draw per site.
        for _ in range(sites):
            self._rng.random()

    def emit_load_check(self, tx, loaded, replica_ptr) -> None:
        if self._rng.random() < self.fraction:
            tx.emit_compare_and_detect(loaded, replica_ptr)


class TemporalLoadCheckingPolicy(ComparisonPolicy):
    """Check a temporal fraction of loads using a 64-bit mask (Table 2.9).

    Emits, at every load site::

        c    = load @dpmr.maskCounter
        bit  = (mask >> c) & 1
        if (bit) { assert(x == *p_r) }
        store (c + 1) % 64 -> @dpmr.maskCounter
    """

    def __init__(self, mask: int, label: Optional[str] = None):
        self.mask = mask & (1 << 64) - 1
        ones = bin(self.mask).count("1")
        self.name = label or f"temporal-{ones}/64"

    def setup_module(self, out_module) -> None:
        if MASK_COUNTER_GLOBAL not in out_module.globals:
            out_module.add_global(
                GlobalVariable(MASK_COUNTER_GLOBAL, INT32, 0)
            )

    def emit_load_check(self, tx, loaded, replica_ptr) -> None:
        b = tx.builder
        counter_ref = tx.out_module.globals[MASK_COUNTER_GLOBAL].ref()
        c = b.load(counter_ref, hint="dpmr.tc")
        c64 = b.num_cast(c, _INT64, hint="dpmr.tc")
        shifted = b.binop("shr", ConstInt(_INT64, self.mask), c64, hint="dpmr.tc")
        bit = b.binop("and", shifted, ConstInt(_INT64, 1), hint="dpmr.tc")
        cond = b.cmp("ne", bit, ConstInt(_INT64, 0), hint="dpmr.tc")
        with tx.aux_if(cond):
            tx.emit_compare_and_detect(loaded, replica_ptr)
        bumped = b.add(c, ConstInt(INT32, 1))
        wrapped = b.srem(bumped, ConstInt(INT32, 64))
        b.store(counter_ref, wrapped)


def temporal_1_8() -> TemporalLoadCheckingPolicy:
    """Temporal load-checking 1/8 (mask 0x8080808080808080)."""
    return TemporalLoadCheckingPolicy(TEMPORAL_MASK_1_8, "temporal-1/8")


def temporal_1_2() -> TemporalLoadCheckingPolicy:
    """Temporal load-checking 1/2 (mask 0xAAAA...)."""
    return TemporalLoadCheckingPolicy(TEMPORAL_MASK_1_2, "temporal-1/2")


def temporal_7_8() -> TemporalLoadCheckingPolicy:
    """Temporal load-checking 7/8 (mask 0xFEFE...)."""
    return TemporalLoadCheckingPolicy(TEMPORAL_MASK_7_8, "temporal-7/8")


def static_10(seed: int = 12345) -> StaticLoadCheckingPolicy:
    return StaticLoadCheckingPolicy(0.10, seed)


def static_50(seed: int = 12345) -> StaticLoadCheckingPolicy:
    return StaticLoadCheckingPolicy(0.50, seed)


def static_90(seed: int = 12345) -> StaticLoadCheckingPolicy:
    return StaticLoadCheckingPolicy(0.90, seed)


from ..ir.types import INT64 as _INT64  # noqa: E402
