"""Shadow types: the ``st()`` mapping of Table 2.1 / Figure 2.5.

For every pointer slot in an application object, the shadow object holds two
pointers: a *replica object pointer* (ROP) and a *next shadow object pointer*
(NSOP).  ``st()`` maps a type to the type of its shadow object:

* aggregates map element-wise, with null elements dropping out;
* a pointer ``τ*`` maps to ``struct{τ*; st(τ)*}`` (NSOP degrades to ``void*``
  when ``st(τ)`` is null);
* primitive, function, and void types map to null (``None`` here) — there is
  no metadata to keep for them.

Recursive types are handled with the paper's placeholder technique, realized
here as *identified* structs whose body is filled in after the recursive
computation completes (object identity plays the role of placeholder
resolution).  Results are memoized (the paper's dynamic-programming map
``ST``).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.types import (
    ArrayType,
    FunctionType,
    PointerType,
    StructType,
    Type,
    UnionType,
    VOID_PTR,
    contains_pointer_outside_function_types,
)

#: Field indices within a pointer's shadow struct.
ROP_FIELD = 0
NSOP_FIELD = 1


class ShadowTypeBuilder:
    """Computes and caches ``st()`` (Figure 2.5)."""

    def __init__(self, name_prefix: str = "sdw"):
        self._cache: Dict[Type, Optional[Type]] = {}
        self._in_progress: Dict[Type, StructType] = {}
        self._prefix = name_prefix
        self._counter = 0

    def shadow_type(self, t: Type) -> Optional[Type]:
        """``st(t)``; ``None`` represents the null shadow type."""
        return self._impl(t)

    def pointer_shadow_struct(self, t: PointerType) -> StructType:
        """The ``struct{rop; nsop}`` shadow type of a pointer type."""
        st = self._impl(t)
        assert isinstance(st, StructType)
        return st

    # -- implementation ---------------------------------------------------

    def _fresh_name(self, base: str) -> str:
        self._counter += 1
        return f"{self._prefix}.{base}.{self._counter}"

    def _impl(self, t: Type) -> Optional[Type]:
        if t in self._cache:
            return self._cache[t]
        if t in self._in_progress:
            return self._in_progress[t]
        if not contains_pointer_outside_function_types(t):
            # Primitives, function types, void, and pointer-free aggregates
            # all short-circuit to the null shadow type (Fig. 2.5, line 17).
            self._cache[t] = None
            return None
        rv = self._build(t)
        self._cache[t] = rv
        self._in_progress.pop(t, None)
        return rv

    def _build(self, t: Type) -> Optional[Type]:
        if isinstance(t, PointerType):
            return self._build_pointer(t)
        if isinstance(t, ArrayType):
            elem = self._impl(t.element)
            if elem is None:
                return None
            return ArrayType(elem, t.count)
        if isinstance(t, StructType):
            return self._build_struct(t)
        if isinstance(t, UnionType):
            members = [self._impl(m) for m in t.members]
            kept = [m for m in members if m is not None]
            if not kept:
                return None
            return UnionType(kept)
        raise TypeError(f"unexpected type in shadow computation: {t}")

    def _build_pointer(self, t: PointerType) -> StructType:
        rv = StructType.opaque(self._fresh_name("ptr"))
        self._in_progress[t] = rv
        inner = self._impl(t.pointee)
        nsop = VOID_PTR if inner is None else PointerType(inner)
        rv.set_fields([t, nsop])
        return rv

    def _build_struct(self, t: StructType) -> StructType:
        if t.name is not None:
            rv = StructType.opaque(self._fresh_name(t.name))
            self._in_progress[t] = rv
            fields = [self._impl(f) for f in t.fields]
            rv.set_fields([f for f in fields if f is not None])
            return rv
        fields = [self._impl(f) for f in t.fields]
        return StructType([f for f in fields if f is not None])

    # -- field index mapping ------------------------------------------------

    def shadow_field_index(self, t: StructType, index: int) -> int:
        """The paper's ``φ(t, f_i)``: shadow struct index of field ``index``.

        Counts the fields before ``index`` whose shadow type is non-null
        (null-shadow fields drop out of the shadow struct).
        """
        return sum(
            1 for j in range(index) if self._impl(t.fields[j]) is not None
        )
