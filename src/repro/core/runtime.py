"""DPMR run-time support attached to the machine.

A :class:`DpmrRuntime` bundles the pieces of DPMR that execute at run time
rather than being emitted as IR:

* the configured diversity transformation (replica heap behaviour);
* the external function wrapper implementations (``<name>_efw``);
* command-line argument replication for the generated ``main`` (§3.1.1,
  Fig. 3.1).

``Machine(dpmr_runtime=...)`` calls :meth:`attach` during construction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ir.types import PointerType, VOID
from ..machine.interpreter import Machine
from .aug_types import ReplicationDesign
from .diversity import (
    DiversityPolicy,
    NoDiversity,
    PadMalloc,
    RearrangeHeap,
    ZeroBeforeFree,
)
from .wrappers import WRAPPER_IMPLS

_PTR = PointerType(VOID)

#: bumped whenever the meaning of a spec tuple changes; the spec is part of
#: every codegen cache key, so this invalidates stale specialized code.
_RT_SPEC_VERSION = "rt1"


def diversity_codegen_spec(diversity: DiversityPolicy) -> Optional[Tuple]:
    """A hashable description of replica alloc/free for codegen inlining.

    ``(version, malloc-mode, free-mode)`` where a malloc mode is
    ``("plain",)`` (plain ``heap_malloc``), ``("pad", n)`` (request
    enlarged by a constant), or ``("method",)`` (call the policy's bound
    method), and a free mode is ``"plain"`` or ``"method"``.  Exact-type
    checks keep subclasses that override behaviour on the generic
    ``("method",)`` path; a stateful policy returns None — its per-run
    deep copy means no single bound method exists to specialize against.

    Direct method binding is bit-identical to the ``call_intrinsic`` path
    because the compiled tier only activates without counters or a tracer,
    which makes :meth:`DpmrRuntime.replica_malloc`'s observability wrapper
    a transparent pass-through.
    """
    if diversity.stateful:
        return None
    t = type(diversity)
    if t is NoDiversity:
        return (_RT_SPEC_VERSION, ("plain",), "plain")
    if t is PadMalloc:
        return (_RT_SPEC_VERSION, ("pad", diversity.pad), "plain")
    if t is ZeroBeforeFree:
        return (_RT_SPEC_VERSION, ("plain",), "method")
    if t is RearrangeHeap:
        return (_RT_SPEC_VERSION, ("method",), "plain")
    return (_RT_SPEC_VERSION, ("method",), "method")


class DpmrRuntime:
    """Run-time half of a DPMR build (design + diversity)."""

    def __init__(
        self,
        design: ReplicationDesign = ReplicationDesign.SDS,
        diversity: Optional[DiversityPolicy] = None,
    ):
        self.design = design
        self.diversity = diversity if diversity is not None else NoDiversity()

    @property
    def sds(self) -> bool:
        return self.design is ReplicationDesign.SDS

    # -- machine hookup ------------------------------------------------------

    def attach(self, machine: Machine) -> None:
        for name, impl in WRAPPER_IMPLS.items():
            machine.register_intrinsic(
                f"{name}_efw", _bind_wrapper(self, impl)
            )
        machine.register_intrinsic("dpmr_argv_replica", self._argv_replica)
        machine.register_intrinsic("dpmr_argv_shadow", self._argv_shadow)

    def codegen_spec(self) -> Optional[Tuple]:
        """Spec for the compiled tier's runtime-inlining pass, or None when
        this runtime cannot be specialized (see
        :func:`diversity_codegen_spec`)."""
        return diversity_codegen_spec(self.diversity)

    # -- replica heap behaviour -------------------------------------------------

    def replica_malloc(self, machine: Machine, size: int) -> int:
        address = self.diversity.replica_malloc(machine, size)
        if machine.counters is not None:
            self._observe_replica(machine, "malloc", address, size)
        return address

    def replica_free(self, machine: Machine, address: int) -> None:
        self.diversity.replica_free(machine, address)
        if machine.counters is not None:
            self._observe_replica(machine, "free", address, 0)

    @staticmethod
    def _observe_replica(machine: Machine, op: str, address: int, size: int) -> None:
        """Replica-heap counters + sync trace event (observability on)."""
        from ..obs import counters as oc

        oc.bump(
            machine.counters,
            oc.REPLICA_MALLOC if op == "malloc" else oc.REPLICA_FREE,
        )
        tr = machine.tracer
        if tr is not None and tr.wants("replica"):
            tr.replica_sync(op, address, size, machine.cycles)

    # -- argv replication (Fig. 3.1) ------------------------------------------------

    def _argv_replica(self, machine: Machine, args: List) -> int:
        """Build ``argv_r``: the replica of the command-line pointer array.

        SDS stores pointer values identical to the application's (the replica
        strings hang off the shadow); MDS stores pointers to replica strings.
        """
        argc, argv = int(args[0]), int(args[1])
        table = machine.heap_malloc(8 * (argc + 1))
        for i in range(argc):
            app_ptr = machine.memory.read_scalar(argv + 8 * i, _PTR)
            if self.sds:
                machine.memory.write_scalar(table + 8 * i, _PTR, app_ptr)
            else:
                machine.memory.write_scalar(
                    table + 8 * i, _PTR, self._clone_string(machine, app_ptr)
                )
        machine.memory.write_scalar(table + 8 * argc, _PTR, 0)
        machine.charge(4 * argc + 4)
        return table

    def _argv_shadow(self, machine: Machine, args: List) -> int:
        """Build ``argv_s``: per-argument (ROP, NSOP) pairs (SDS only).

        Each pair's ROP points at a fresh replica of the argument string; the
        NSOP is null (``st(int8[]) = ∅``).
        """
        argc, argv = int(args[0]), int(args[1])
        table = machine.heap_malloc(16 * max(argc, 1))
        for i in range(argc):
            app_ptr = machine.memory.read_scalar(argv + 8 * i, _PTR)
            replica = self._clone_string(machine, app_ptr)
            machine.memory.write_scalar(table + 16 * i, _PTR, replica)
            machine.memory.write_scalar(table + 16 * i + 8, _PTR, 0)
        machine.charge(6 * argc + 4)
        return table

    @staticmethod
    def _clone_string(machine: Machine, address: int) -> int:
        data = machine.memory.read_cstring(address)
        replica = machine.heap_malloc(len(data) + 1)
        machine.memory.write_cstring(replica, data)
        machine.charge(2 + len(data))
        return replica

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DpmrRuntime {self.design.value} {self.diversity.name}>"


def _bind_wrapper(runtime: DpmrRuntime, impl):
    def bound(machine: Machine, args: List):
        return impl(runtime, machine, args)

    return bound
