"""The DPMR tool chain (Fig. 3.4) as a library facade.

``source (IR module) → DPMR transform → verified module → native execution``
becomes::

    compiler = DpmrCompiler(design="sds", policy=AllLoadsPolicy(),
                            diversity=RearrangeHeap())
    build = compiler.compile(module)
    result = build.run(argv=["prog"])

A :class:`DpmrBuild` pairs the transformed module with the run-time half of
the configuration (design + diversity), mirroring how the paper links
transformed bitcode against DPMR's external code support libraries.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..ir.module import Module
from ..ir.verifier import verify_module
from ..machine.interpreter import DEFAULT_MAX_CYCLES
from ..machine.process import ProcessResult, run_process
from .aug_types import ReplicationDesign
from .diversity import DiversityPolicy, NoDiversity
from .mds import MdsTransform
from .plan import ReplicationPlan
from .policies import AllLoadsPolicy, ComparisonPolicy
from .runtime import DpmrRuntime
from .sds import SdsTransform


def _coerce_design(design: Union[str, ReplicationDesign]) -> ReplicationDesign:
    if isinstance(design, ReplicationDesign):
        return design
    return ReplicationDesign(design.lower())


@dataclass
class DpmrBuild:
    """A transformed module plus its run-time configuration.

    ``cache_hits``/``cache_misses`` report the function-level transform
    cache's behaviour for this build: hits are functions spliced from the
    cached pristine transform (or the content-addressed memo), misses are
    functions that had to be re-translated.  Both stay 0 for builds produced
    by a plain (non-incremental) :meth:`DpmrCompiler.compile`.
    """

    module: Module
    design: ReplicationDesign
    policy: ComparisonPolicy
    diversity: DiversityPolicy
    cache_hits: int = 0
    cache_misses: int = 0

    def runtime(self) -> DpmrRuntime:
        # Stateful policies (e.g. the segregated-replica arena ablation)
        # get a fresh copy per run: they would otherwise leak allocator
        # state from one run into the next, making results depend on
        # execution order — which both corrupts repeated runs and breaks
        # the parallel executor's serial-identity guarantee.  Stateless
        # policies (the whole Table 2.8 suite) are shared as-is; the
        # deepcopy was a measurable per-experiment fixed cost at campaign
        # scale.
        diversity = self.diversity
        if diversity.stateful:
            diversity = copy.deepcopy(diversity)
        return DpmrRuntime(self.design, diversity)

    def run(
        self,
        argv: Sequence[str] = (),
        max_cycles: int = DEFAULT_MAX_CYCLES,
        seed: int = 0,
        tracer=None,
        counters: bool = False,
        trace_meta=None,
        compiled: bool = False,
    ) -> ProcessResult:
        return run_process(
            self.module,
            argv=argv,
            max_cycles=max_cycles,
            seed=seed,
            dpmr_runtime=self.runtime(),
            tracer=tracer,
            counters=counters,
            trace_meta=trace_meta,
            compiled=compiled,
        )

    @property
    def variant_name(self) -> str:
        return f"{self.design.value}/{self.diversity.name}/{self.policy.name}"


class DpmrCompiler:
    """Applies the DPMR transformation with a fixed configuration."""

    def __init__(
        self,
        design: Union[str, ReplicationDesign] = ReplicationDesign.SDS,
        policy: Optional[ComparisonPolicy] = None,
        diversity: Optional[DiversityPolicy] = None,
        plan: Optional[ReplicationPlan] = None,
        verify: bool = True,
        optimize: bool = False,
    ):
        self.design = _coerce_design(design)
        self.policy = policy if policy is not None else AllLoadsPolicy()
        self.diversity = diversity if diversity is not None else NoDiversity()
        self.plan = plan
        self.verify = verify
        self.optimize = optimize

    def compile(self, module: Module) -> DpmrBuild:
        """Transform ``module``; returns a runnable :class:`DpmrBuild`."""
        plan_module = getattr(self.plan, "module", None)
        if plan_module is not None and plan_module is not module:
            raise ValueError(
                "the replication plan was built for a different module "
                "instance; build the plan on the exact module being compiled"
            )
        if self.verify:
            verify_module(module)
        cls = SdsTransform if self.design is ReplicationDesign.SDS else MdsTransform
        transform = cls(module, policy=self.policy, plan=self.plan)
        out = transform.run()
        if self.optimize:
            # The post-DPMR optimize stage of Fig. 3.5.
            from ..ir.optimizer import optimize_module

            optimize_module(out)
        if self.verify:
            verify_module(out)
        return DpmrBuild(out, self.design, self.policy, self.diversity)

    def incremental(self, pristine: Module) -> "IncrementalDpmrCompiler":
        """An incremental recompiler caching this configuration's transform
        of ``pristine`` (see :mod:`repro.core.incremental`)."""
        from .incremental import IncrementalDpmrCompiler

        return IncrementalDpmrCompiler(self, pristine)
