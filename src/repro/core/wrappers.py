"""External function wrappers (§2.8, §3.1.5).

External code is not transformed by DPMR, so every external call in a
transformed module is rerouted to an *external function wrapper*
``<name>_efw`` that (1) performs the external behaviour and (2) performs the
application-visible DPMR behaviour the external function would have exhibited
had it been transformed: replica/shadow updates for stores, load checks for
reads, replica/shadow allocation for returned memory.

This module contains both halves of that machinery:

* **transform-time**: :class:`WrapperSpec` describes the wrapper's augmented
  declaration and any extra leading parameters — e.g. ``qsort``'s shadow
  element size (Fig. 3.3) and ``memcpy``/``memmove``'s shadow-region size
  (§3.1.5), computed by the compiler from the call site's static types;
* **run-time**: the ``w_*`` functions implement the wrappers against raw
  machine memory, for both SDS and MDS argument layouts.

The *interesting* wrappers the paper singles out are all here: the
``printf``-family analogs (``print_str``), ``strcmp``/``atof`` (which must
emulate parsing to learn how much of their input they read), and
``qsort``/``memcpy``/``memmove`` (type-generic writes needing shadow-size
parameters).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..ir import instructions as ins
from ..ir.types import (
    ArrayType,
    FunctionType,
    PointerType,
    INT64,
    sizeof,
)
from ..ir.values import ConstInt, Value
from ..machine.interpreter import DpmrDetected, Machine
from ..machine import intrinsics as base
from .aug_types import ReplicationDesign

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import DpmrRuntime
    from .transform import BaseTransform, FunctionTranslator


# --------------------------------------------------------------------------
# Transform-time wrapper declarations
# --------------------------------------------------------------------------


class WrapperSpec:
    """Declaration shape of one external function wrapper."""

    def wrapper_type(self, transform: "BaseTransform", orig_type: FunctionType) -> FunctionType:
        aug = transform.maps.aug.aug_function_type(orig_type)
        extras = self.extra_param_types(transform)
        if not extras:
            return aug
        return FunctionType(aug.ret, list(extras) + list(aug.params))

    def extra_param_types(self, transform: "BaseTransform") -> List:
        return []

    def extra_args(self, tx: "FunctionTranslator", call: ins.Call) -> List[Value]:
        return []


class _ShadowUnitSpec(WrapperSpec):
    """Adds a leading ``sdwSize`` parameter under SDS (Fig. 3.3)."""

    #: index of the pointer argument whose element type drives the size
    base_arg_index = 0

    def extra_param_types(self, transform):
        if transform.design is ReplicationDesign.SDS:
            return [INT64]
        return []

    def extra_args(self, tx, call):
        if tx.parent.design is not ReplicationDesign.SDS:
            return []
        return [ConstInt(INT64, self._shadow_unit(tx, call))]

    def _shadow_unit(self, tx, call) -> int:
        arg = call.args[self.base_arg_index]
        elem = _pointee_element(arg.type)
        if elem is None:
            return 0
        sat = tx.maps.sat(elem)
        return 0 if sat is None else sizeof(sat)


class QsortSpec(_ShadowUnitSpec):
    """``qsort_efw(size_t sdwSize, base, base_r, base_s, nmemb, size, cmp, ...)``."""


class MemRegionSpec(WrapperSpec):
    """``memcpy``/``memmove``: leading (appUnit, sdwUnit) pair under SDS."""

    def extra_param_types(self, transform):
        if transform.design is ReplicationDesign.SDS:
            return [INT64, INT64]
        return []

    def extra_args(self, tx, call):
        if tx.parent.design is not ReplicationDesign.SDS:
            return []
        elem = _pointee_element(call.args[0].type)
        if elem is None:
            return [ConstInt(INT64, 0), ConstInt(INT64, 0)]
        at = tx.maps.at(elem)
        sat = tx.maps.sat(elem)
        return [
            ConstInt(INT64, sizeof(at)),
            ConstInt(INT64, 0 if sat is None else sizeof(sat)),
        ]


def _pointee_element(t) -> Optional[object]:
    """Element type behind a ``τ[]*`` or ``τ*`` argument, if known."""
    if not isinstance(t, PointerType):
        return None
    pointee = t.pointee
    if isinstance(pointee, ArrayType):
        return pointee.element
    from ..ir.types import VoidType

    if isinstance(pointee, VoidType):
        return None
    return pointee


_SPECS: Dict[str, WrapperSpec] = {
    "qsort": QsortSpec(),
    "memcpy": MemRegionSpec(),
    "memmove": MemRegionSpec(),
}
_DEFAULT_SPEC = WrapperSpec()


def get_wrapper_spec(name: str) -> WrapperSpec:
    return _SPECS.get(name, _DEFAULT_SPEC)


# --------------------------------------------------------------------------
# Run-time wrapper implementations
# --------------------------------------------------------------------------


class PtrArg:
    """A γ-expanded pointer argument: (application, replica[, shadow])."""

    __slots__ = ("p", "r", "s")

    def __init__(self, p: int, r: int, s: int = 0):
        self.p = p
        self.r = r
        self.s = s


class ArgReader:
    """Sequentially decodes a wrapper's γ-expanded argument list."""

    def __init__(self, args: List, sds: bool):
        self._args = args
        self._i = 0
        self._sds = sds

    def scalar(self):
        v = self._args[self._i]
        self._i += 1
        return v

    def pointer(self) -> PtrArg:
        if self._sds:
            p, r, s = self._args[self._i : self._i + 3]
            self._i += 3
            return PtrArg(p, r, s)
        p, r = self._args[self._i : self._i + 2]
        self._i += 2
        return PtrArg(p, r)

    def rv_slot(self) -> int:
        return self.scalar()


def _check_bytes(m: Machine, app_addr: int, replica_addr: int, data: bytes) -> None:
    """Compare ``data`` (read from the application) with replica memory."""
    if replica_addr == 0 or app_addr == replica_addr:
        return  # unreplicated memory (Ch. 5 plans) — nothing to compare
    m.charge(2 + len(data) // 4)
    replica = m.memory.read_bytes(replica_addr, len(data))
    if replica != data:
        raise DpmrDetected(2, "external wrapper load check")


def _set_rv_pair(rt: "DpmrRuntime", m: Machine, slot: int, rop: int, nsop: int) -> None:
    """Store a returned pointer's ROP (and NSOP under SDS) via the rv slot."""
    m.memory.write_scalar(slot, _PTR, rop)
    if rt.sds:
        m.memory.write_scalar(slot + 8, _PTR, nsop)
    m.charge(4)


# -- individual wrappers -------------------------------------------------------


def w_print_i64(rt, m, args):
    return base._print_i64(m, args)


def w_print_f64(rt, m, args):
    return base._print_f64(m, args)


def w_putchar(rt, m, args):
    return base._putchar(m, args)


def w_exit(rt, m, args):
    return base._exit(m, args)


def w_abort(rt, m, args):
    return base._abort(m, args)


def w_app_error(rt, m, args):
    return base._app_error(m, args)


def w_print_str(rt, m, args):
    rd = ArgReader(args, rt.sds)
    s = rd.pointer()
    data = m.memory.read_cstring(s.p)
    _check_bytes(m, s.p, s.r, data + b"\x00")
    m.charge(5 + len(data))
    m.output.append(data.decode("latin-1"))
    return None


def w_strlen(rt, m, args):
    rd = ArgReader(args, rt.sds)
    s = rd.pointer()
    data = m.memory.read_cstring(s.p)
    _check_bytes(m, s.p, s.r, data + b"\x00")
    m.charge(2 + len(data))
    return len(data)


def w_strcpy(rt, m, args):
    """Fig. 2.11: check src, copy, mirror into dest_r, return dest (+ROP)."""
    rd = ArgReader(args, rt.sds)
    slot = rd.rv_slot()
    dest = rd.pointer()
    src = rd.pointer()
    data = m.memory.read_cstring(src.p)
    _check_bytes(m, src.p, src.r, data + b"\x00")
    m.charge(3 + 2 * len(data))
    m.memory.write_cstring(dest.p, data)
    if dest.r and dest.r != dest.p:
        m.memory.write_cstring(dest.r, data)
        m.charge(2 + len(data))
    _set_rv_pair(rt, m, slot, dest.r, dest.s)
    return dest.p


def w_strcmp(rt, m, args):
    """§3.1.5: emulates strcmp to learn exactly how many bytes were read.

    There is no guarantee input strings are NUL-terminated before a
    difference, so the wrapper compares byte-by-byte and only checks the
    consumed prefixes against the replicas.
    """
    rd = ArgReader(args, rt.sds)
    a = rd.pointer()
    b = rd.pointer()
    consumed_a = bytearray()
    consumed_b = bytearray()
    result = 0
    offset = 0
    while True:
        ca = m.memory.read_bytes(a.p + offset, 1)[0]
        cb = m.memory.read_bytes(b.p + offset, 1)[0]
        consumed_a.append(ca)
        consumed_b.append(cb)
        if ca != cb:
            result = -1 if ca < cb else 1
            break
        if ca == 0:
            result = 0
            break
        offset += 1
    m.charge(2 + offset)
    _check_bytes(m, a.p, a.r, bytes(consumed_a))
    _check_bytes(m, b.p, b.r, bytes(consumed_b))
    return result


def w_atoi(rt, m, args):
    rd = ArgReader(args, rt.sds)
    s = rd.pointer()
    consumed = bytearray()
    offset = 0
    while True:
        c = m.memory.read_bytes(s.p + offset, 1)[0]
        ch = chr(c)
        if (offset == 0 and ch in "+-") or ch.isdigit():
            consumed.append(c)
            offset += 1
            continue
        break
    m.charge(5 + offset)
    _check_bytes(m, s.p, s.r, bytes(consumed))
    text = consumed.decode("latin-1")
    try:
        return int(text)
    except ValueError:
        return 0


def w_atof(rt, m, args):
    """§3.1.5: emulates atof's parse to know how much of the string was read."""
    rd = ArgReader(args, rt.sds)
    s = rd.pointer()
    consumed = bytearray()
    offset = 0
    while offset < 64:
        c = m.memory.read_bytes(s.p + offset, 1)[0]
        ch = chr(c)
        if ch in "+-.0123456789eE":
            candidate = consumed + bytes([c])
            if _is_float_prefix(candidate.decode("latin-1")):
                consumed.append(c)
                offset += 1
                continue
        break
    m.charge(8 + offset)
    _check_bytes(m, s.p, s.r, bytes(consumed))
    prefix = base._float_prefix(consumed.decode("latin-1"))
    try:
        return float(prefix) if prefix else 0.0
    except ValueError:
        return 0.0


_is_float_prefix = base._could_extend_to_float


def w_memset(rt, m, args):
    rd = ArgReader(args, rt.sds)
    dest = rd.pointer()
    c = rd.scalar()
    n = max(0, rd.scalar())
    m.charge(4 + n // 8)
    m.memory.fill(dest.p, c, n)
    if dest.r and dest.r != dest.p:
        m.memory.fill(dest.r, c, n)
        m.charge(n // 8)
    return None


def w_memcpy(rt, m, args):
    """Copies app→app and replica→replica; mirrors shadow regions under SDS.

    Under SDS the source bytes are compared against the replica (pointers are
    comparable).  Under MDS the wrapper cannot know whether the region holds
    pointers (whose replica bytes legitimately differ), so it skips the check
    — missed load checks affect coverage, not correctness (§2.8).
    """
    sds = rt.sds
    idx = 0
    if sds:
        app_unit, sdw_unit = args[0], args[1]
        idx = 2
    else:
        app_unit, sdw_unit = 0, 0
    rd = ArgReader(args[idx:], sds)
    dest = rd.pointer()
    src = rd.pointer()
    n = max(0, rd.scalar())
    data = m.memory.read_bytes(src.p, n)
    m.charge(4 + n // 4)
    if sds:
        _check_bytes(m, src.p, src.r, data)
    m.memory.write_bytes(dest.p, data)
    if src.r and dest.r and dest.r != dest.p:
        replica = m.memory.read_bytes(src.r, n)
        m.memory.write_bytes(dest.r, replica)
        m.charge(n // 4)
    if sds and sdw_unit and app_unit and src.s and dest.s:
        sdw_n = (n // app_unit) * sdw_unit
        block = m.memory.read_bytes(src.s, sdw_n)
        m.memory.write_bytes(dest.s, block)
        m.charge(sdw_n // 4)
    return None


def w_memmove(rt, m, args):
    return w_memcpy(rt, m, args)  # snapshot copy is move-safe


def w_qsort(rt, m, args):
    """Sorts the application array, moving replica/shadow elements in step.

    The comparison callback is an *augmented* function: it receives γ-expanded
    element pointers, so replica (and shadow) element addresses are computed
    from the base pointers and the shadow element size (Fig. 3.3).
    """
    sds = rt.sds
    idx = 0
    sdw_unit = 0
    if sds:
        sdw_unit = args[0]
        idx = 1
    rd = ArgReader(args[idx:], sds)
    bp = rd.pointer()
    nmemb = rd.scalar()
    size = rd.scalar()
    cmp = rd.pointer()

    def compare(i: int, j: int) -> int:
        a, b_ = bp.p + i * size, bp.p + j * size
        ar, br = bp.r + i * size, bp.r + j * size
        if sds:
            as_ = bp.s + i * sdw_unit if bp.s else 0
            bs = bp.s + j * sdw_unit if bp.s else 0
            return m.call_by_address(cmp.p, [a, ar, as_, b_, br, bs])
        return m.call_by_address(cmp.p, [a, ar, b_, br])

    mem = m.memory
    mirror = bp.r and bp.r != bp.p
    for i in range(1, nmemb):
        j = i - 1
        while j >= 0:
            m.charge(8 + size // 4)
            if compare(j, i) <= 0:
                break
            j -= 1
        if j + 1 == i:
            continue
        _rotate(mem, bp.p, size, j + 1, i)
        if mirror:
            _rotate(mem, bp.r, size, j + 1, i)
        if sds and sdw_unit and bp.s:
            _rotate(mem, bp.s, sdw_unit, j + 1, i)
        m.charge((i - j) * (2 + size // 8))
    return None


def _rotate(mem, array_base: int, size: int, insert_at: int, from_idx: int) -> None:
    """Move element ``from_idx`` to ``insert_at``, shifting the rest right."""
    key = mem.read_bytes(array_base + from_idx * size, size)
    block = mem.read_bytes(
        array_base + insert_at * size, (from_idx - insert_at) * size
    )
    mem.write_bytes(array_base + (insert_at + 1) * size, block)
    mem.write_bytes(array_base + insert_at * size, key)


#: name → runtime implementation (registered as ``<name>_efw``)
WRAPPER_IMPLS: Dict[str, Callable] = {
    "print_i64": w_print_i64,
    "print_f64": w_print_f64,
    "print_str": w_print_str,
    "putchar": w_putchar,
    "exit": w_exit,
    "abort": w_abort,
    "app_error": w_app_error,
    "strlen": w_strlen,
    "strcpy": w_strcpy,
    "strcmp": w_strcmp,
    "atoi": w_atoi,
    "atof": w_atof,
    "memcpy": w_memcpy,
    "memmove": w_memmove,
    "memset": w_memset,
    "qsort": w_qsort,
}


from ..ir.types import VOID as _VOID  # noqa: E402

_PTR = PointerType(_VOID)
