"""Diversity transformations (Table 2.8).

Diversity makes memory errors *manifest differently* in application and
replica memory, beyond the implicit diversity of interleaved intra-process
allocation (§2.1).  Each policy here rewrites the behaviour of replica heap
allocation/deallocation; all of them execute against the *real* simulated
heap allocator, so layout effects (padding, shuffled placement, zeroed freed
payloads) are genuine, and their work is charged to the same cycle budget as
ordinary instructions.

* :class:`NoDiversity` — implicit diversity only.
* :class:`PadMalloc` — replica allocation requests are enlarged by a static
  pad (8/32/256/1024 in the paper), so replica overflows land in padding.
* :class:`ZeroBeforeFree` — replica payloads are zeroed before deallocation,
  so reads-after-free differ between application and replica.
* :class:`RearrangeHeap` — each replica allocation is preceded by 1..20
  dummy allocations of the same size (freed immediately afterwards), placing
  the replica at a randomized heap location; dangling-pointer reuse then
  rarely re-pairs application/replica objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.interpreter import Machine


class DiversityPolicy:
    """Base policy: replica allocation identical to application allocation."""

    name = "no-diversity"
    #: Whether a policy instance accumulates per-run mutable state.  Runs
    #: deep-copy stateful policies so allocator state cannot leak between
    #: experiments (see :meth:`DpmrBuild.runtime`); stateless policies mark
    #: themselves ``stateful = False`` to skip that per-run copy on the
    #: campaign hot path.  The base default is conservative: an unknown
    #: subclass is assumed stateful until it declares otherwise.
    stateful = True

    def replica_malloc(self, machine: "Machine", size: int) -> int:
        return machine.heap_malloc(size)

    def replica_free(self, machine: "Machine", address: int) -> None:
        machine.heap_free(address)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<diversity {self.name}>"


class NoDiversity(DiversityPolicy):
    """Implicit diversity only (the ``no-diversity`` variant of §3.7)."""

    stateful = False


class PadMalloc(DiversityPolicy):
    """``pad-malloc-y``: replica requests are enlarged by ``pad`` bytes."""

    stateful = False  # ``pad``/``name`` are fixed at construction

    def __init__(self, pad: int):
        if pad <= 0:
            raise ValueError("pad must be positive")
        self.pad = pad
        self.name = f"pad-malloc-{pad}"

    def replica_malloc(self, machine: "Machine", size: int) -> int:
        return machine.heap_malloc(size + self.pad)


class ZeroBeforeFree(DiversityPolicy):
    """``zero-before-free``: zero replica payload bytes before deallocation."""

    name = "zero-before-free"
    stateful = False

    def replica_free(self, machine: "Machine", address: int) -> None:
        from ..machine.heap import HeapError

        if address != 0:
            try:
                size = machine.heap.payload_size(address)
            except HeapError:
                size = 0  # invalid free: let free() itself abort
            if size:
                machine.memory.fill(address, 0, size)
                machine.charge(4 + size // 8)
        machine.heap_free(address)


class RearrangeHeap(DiversityPolicy):
    """``rearrange-heap``: randomize replica object placement (Table 2.8).

    Allocates 1..20 dummy buffers of the requested size, then the real
    replica buffer, then frees the dummies — the replica lands at a
    randomized offset within the region the allocator would otherwise have
    used deterministically.
    """

    name = "rearrange-heap"
    stateful = False  # randomness comes from the machine RNG, not the policy
    MAX_DUMMIES = 20

    def replica_malloc(self, machine: "Machine", size: int) -> int:
        k = machine.rng.randint(1, self.MAX_DUMMIES)
        dummies: List[int] = [machine.heap_malloc(size) for _ in range(k)]
        address = machine.heap_malloc(size)
        for d in dummies:
            machine.heap_free(d)
        return address


class SegregatedReplicas(DiversityPolicy):
    """*Ablation* of intra-process implicit diversity (not a paper policy).

    §2.1 argues that interleaving application and replica allocations in one
    address space yields *implicit* diversity: the object following ``X`` is
    usually ``X_r``, not ``Y``, so overflows corrupt unpaired objects.  This
    policy deliberately destroys that property, emulating a process-
    replication-style memory organization: replicas are bump-allocated in a
    private arena with the same chunk geometry as the main allocator, so the
    replica heap *mirrors* the application heap layout.  Overflows then
    corrupt application and replica memory pairwise-identically and escape
    detection — quantifying how much of DPMR's coverage comes from implicit
    diversity alone.
    """

    name = "ablation-segregated"
    stateful = True  # bump-pointer arena state lives on the instance
    ARENA_SIZE = 1 << 20

    def __init__(self) -> None:
        self._arena_base = 0
        self._arena_top = 0

    def replica_malloc(self, machine: "Machine", size: int) -> int:
        from ..machine.heap import HEADER_SIZE

        if self._arena_base == 0:
            self._arena_base = machine.heap_malloc(self.ARENA_SIZE)
            self._arena_top = self._arena_base
        payload = machine.heap.round_request(size)
        # Mirror the main allocator's geometry: skip a header-sized gap so
        # relative object offsets match the application heap exactly.
        addr = self._arena_top + HEADER_SIZE
        self._arena_top = addr + payload
        if self._arena_top > self._arena_base + self.ARENA_SIZE:
            from ..machine.interpreter import ExecutionTrap

            raise ExecutionTrap("out-of-memory", "segregated replica arena")
        machine.charge(20)
        return addr

    def replica_free(self, machine: "Machine", address: int) -> None:
        machine.charge(4)  # arena storage is reclaimed wholesale


def standard_diversity_suite() -> List[DiversityPolicy]:
    """The seven diversity variants evaluated in §3.7 (sans stdapp)."""
    return [
        NoDiversity(),
        ZeroBeforeFree(),
        RearrangeHeap(),
        PadMalloc(8),
        PadMalloc(32),
        PadMalloc(256),
        PadMalloc(1024),
    ]
