"""The campaign daemon: asyncio LDJSON socket server plus an HTTP shim.

:class:`ServiceServer` binds two listeners on one event loop:

* the **line-delimited JSON socket** (the primary protocol,
  :mod:`repro.service.protocol`) — submit requests, stream records, query
  status; and
* an optional **HTTP shim** for tooling that speaks nothing else:
  ``GET /healthz``, ``GET /status`` (the projection snapshot), and
  ``POST /submit`` (runs the request to completion and returns the full
  :class:`~repro.eval.api.CampaignResult` as JSON).

Both front the same :class:`~repro.service.scheduler.CampaignScheduler`,
so an HTTP submission deduplicates against socket clients and vice
versa.  A client disconnect mid-request orphans its messages only — the
scheduler keeps executing the tuples and the store retains the results.

:class:`ServiceDaemon` wraps a server in a background thread for
in-process use (tests, benchmarks, notebooks): ``start()`` blocks until
the sockets are bound and returns the address; ``stop()`` shuts the loop
down cooperatively.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import threading
from typing import Dict, List, Optional, Tuple

from ..eval.api import CampaignRequest, CampaignResult
from ..eval.config import ExecConfig
from . import protocol
from .scheduler import CampaignScheduler, RequestState

logger = logging.getLogger("repro.service.server")


class ServiceServer:
    """One daemon: scheduler + socket listener (+ optional HTTP listener)."""

    def __init__(
        self,
        config: Optional[ExecConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: Optional[int] = None,
        unix_path: Optional[str] = None,
    ):
        self.scheduler = CampaignScheduler(config)
        self.host = host
        self.port = port
        self.http_port = http_port
        #: UNIX-domain socket path for the LDJSON protocol.  When set, the
        #: TCP listener is not bound at all — tests and co-located tooling
        #: get a per-instance filesystem address with no port to collide on
        #: (the port-0 default already avoids fixed-port collisions for TCP).
        self.unix_path = unix_path
        self._server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind the listeners; returns ``(host, port)`` of the socket API
        (``(unix_path, -1)`` when serving on a UNIX socket)."""
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.unix_path
            )
            self.port = -1
        else:
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        if self.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._handle_http, self.host, self.http_port
            )
            self.http_port = self._http_server.sockets[0].getsockname()[1]
        logger.info(
            "campaign service listening on %s%s",
            self.unix_path if self.unix_path is not None else f"{self.host}:{self.port}",
            f" (http {self.http_port})" if self._http_server else "",
        )
        if self.unix_path is not None:
            return self.unix_path, -1
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
        await self.scheduler.aclose()

    # -- LDJSON socket protocol -----------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        states: List[RequestState] = []

        def send(msg: Dict) -> None:
            writer.write(protocol.encode(msg))

        send(protocol.hello())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    msg = protocol.decode(line)
                except protocol.ProtocolError as exc:
                    send(protocol.error_message(str(exc)))
                    await writer.drain()
                    continue
                kind = msg["type"]
                if kind == "ping":
                    send({"type": "pong"})
                elif kind == "status":
                    send(self.scheduler.status())
                elif kind == "submit":
                    try:
                        request = CampaignRequest.from_dict(msg.get("request") or {})
                        state = await self.scheduler.submit(request, send=send)
                        states.append(state)
                    except Exception as exc:
                        logger.warning("rejected submit: %s", exc)
                        send(protocol.error_message(str(exc)))
                else:
                    send(protocol.error_message(f"unknown message type {kind!r}"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            for state in states:
                if state.finished is not None and not state.finished.is_set():
                    self.scheduler.orphan(state)
            writer.close()

    # -- HTTP shim -------------------------------------------------------

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0].upper(), parts[1]
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length") or 0)
            if length:
                body = await reader.readexactly(length)
            status, payload = await self._http_route(method, path, body)
        except Exception as exc:
            logger.warning("http request failed: %s", exc)
            status, payload = "500 Internal Server Error", {"error": str(exc)}
        try:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                f"content-type: application/json\r\n"
                f"content-length: {len(data)}\r\n"
                f"connection: close\r\n\r\n".encode("latin-1") + data
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _http_route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[str, Dict]:
        if method == "GET" and path == "/healthz":
            return "200 OK", {"ok": True}
        if method == "GET" and path == "/status":
            return "200 OK", self.scheduler.status()
        if method == "POST" and path == "/submit":
            try:
                request = CampaignRequest.from_dict(json.loads(body.decode("utf-8")))
                state = await self.scheduler.submit(request, send=None, collect=True)
                assert state.finished is not None
                await state.finished.wait()
                result = CampaignResult(
                    [r for r in state.records if r is not None], state.manifest
                )
                return "200 OK", result.to_dict()
            except (ValueError, TypeError, UnicodeDecodeError) as exc:
                return "400 Bad Request", {"error": str(exc)}
        return "404 Not Found", {"error": f"no route {method} {path}"}


class ServiceDaemon:
    """A daemon on a background thread, for in-process embedding."""

    def __init__(
        self,
        config: Optional[ExecConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: Optional[int] = None,
        unix_path: Optional[str] = None,
    ):
        self.config = config
        self.host = host
        self.port = port
        self.http_port = http_port
        self.unix_path = unix_path
        self.server: Optional[ServiceServer] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def scheduler(self) -> CampaignScheduler:
        assert self.server is not None, "daemon not started"
        return self.server.scheduler

    def start(self) -> Tuple[str, int]:
        """Start the loop thread; blocks until listening, returns the address."""
        self._thread = threading.Thread(
            target=self._thread_main, name="dpmr-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=120):
            raise RuntimeError("campaign service daemon failed to start in time")
        if self._error is not None:
            raise RuntimeError("campaign service daemon failed") from self._error
        return self.host, self.port

    def stop(self, timeout: float = 120.0) -> None:
        """Cooperative shutdown; joins the loop thread."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced to start() or logged
            self._error = exc
            if not self._ready.is_set():
                self._ready.set()
            else:
                logger.exception("campaign service daemon died")

    async def _main(self) -> None:
        server = ServiceServer(
            self.config,
            self.host,
            self.port,
            self.http_port,
            unix_path=self.unix_path,
        )
        await server.start()
        self.server = server
        self.host, self.port = server.host, server.port
        self.http_port = server.http_port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.aclose()
