"""Cross-request deduplication keyed by the store's content address.

The daemon's dedupe key for an experiment tuple *is* the persistent
store's :func:`~repro.eval.store.experiment_key` — a pure function of the
tuple's inputs, so it works identically with or without a store
configured, and a tuple deduplicated in memory today is the same entry a
store-warm resume would hit tomorrow.  Three tables, all mutated only on
the daemon's event loop:

* ``completed`` — records finished during this daemon's lifetime (runs
  and store hits promoted at admission); later requests are served
  instantly from here.
* ``inflight`` — tuples currently scheduled or executing, each with the
  list of ``(request, index, source)`` subscribers waiting on it.  A
  request overlapping an in-flight tuple *joins* it instead of scheduling
  a duplicate; every subscriber receives the record when it lands.
* ``pending`` — in-flight tuples not yet handed to a batch; the
  scheduler's runner drains this in snapshots.

The table knows nothing about asyncio, sockets, or executors — it is a
plain data structure the scheduler drives, unit-testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..eval.experiment import ExperimentRecord
from ..eval.parallel import CampaignJob
from ..eval.store import experiment_key


def tuple_key(
    job: CampaignJob,
    si: int,
    variant_fp: str,
    ri: int,
    exec_fp: str,
    module_sha: str,
) -> Tuple[str, Dict]:
    """Content address of one ``(job, site, variant, run)`` tuple.

    Field-for-field identical to the executor's store indexing
    (:func:`repro.eval.parallel._store_index`), so a record the daemon
    executes is found under the same key by any later batch run.
    """
    fields = {
        "workload": job.workload,
        "kind": job.kind,
        "percent": job.percent,
        "site": job.sites[si].site_id,
        "variant_fp": variant_fp,
        "seed": job.seeds[ri],
        "run": ri,
        "argv": list(job.argv),
        "timeout": job.timeout,
        "exec_fp": exec_fp,
        "module_sha": module_sha,
    }
    return experiment_key(**fields), fields


@dataclass
class TupleRef:
    """One experiment tuple, addressed within a canonical job."""

    entry: object  # the scheduler's JobEntry (kept opaque here)
    si: int
    vi: int
    ri: int
    key: str

    @property
    def job(self) -> CampaignJob:
        return self.entry.job  # type: ignore[attr-defined]

    @property
    def site_id(self) -> str:
        return self.job.sites[self.si].site_id


#: One waiter on an in-flight tuple: (request state, index in that
#: request's expansion order, the source its record message will report).
Subscriber = Tuple[object, int, str]


@dataclass
class InflightTuple:
    ref: TupleRef
    subscribers: List[Subscriber] = field(default_factory=list)


class DedupeTable:
    """Completed / in-flight / pending tuples, keyed by content address."""

    def __init__(self) -> None:
        self.completed: Dict[str, ExperimentRecord] = {}
        self.inflight: Dict[str, InflightTuple] = {}
        self.pending: List[str] = []
        self.stats: Dict[str, int] = {
            "scheduled": 0,
            "joins": 0,
            "memory_hits": 0,
            "store_hits": 0,
            "failed": 0,
        }

    def lookup(self, key: str) -> Optional[ExperimentRecord]:
        """The in-memory record for ``key``, counting a hit when found."""
        record = self.completed.get(key)
        if record is not None:
            self.stats["memory_hits"] += 1
        return record

    def serve_store_hit(self, key: str, record: ExperimentRecord) -> bool:
        """Promote a persistent-store hit into the in-memory table.

        Returns True when this call inserted the record (the caller then
        emits the tuple's one ``tuple_done`` event); False when another
        request already promoted or computed it.
        """
        if key in self.completed:
            return False
        self.completed[key] = record
        self.stats["store_hits"] += 1
        return True

    def admit(self, ref: TupleRef, state: object, index: int) -> str:
        """Admit one tuple a request needs: ``"inflight"`` or ``"new"``.

        ``"inflight"`` — an equal tuple is already scheduled; the request
        subscribed to it and will be served when it lands.  ``"new"`` —
        the tuple was added to ``pending``, owned by this request.
        (In-memory completions are the caller's first check, via
        :meth:`lookup`.)
        """
        entry = self.inflight.get(ref.key)
        if entry is not None:
            entry.subscribers.append((state, index, "shared"))
            self.stats["joins"] += 1
            return "inflight"
        self.inflight[ref.key] = InflightTuple(ref, [(state, index, "run")])
        self.pending.append(ref.key)
        self.stats["scheduled"] += 1
        return "new"

    def take_pending(self) -> List[str]:
        """Drain the pending queue (one batch snapshot)."""
        keys, self.pending = self.pending, []
        return keys

    def complete(self, key: str, record: ExperimentRecord) -> Optional[InflightTuple]:
        """Move an in-flight tuple to completed; returns its subscribers.

        None when the tuple is unknown or already completed (idempotent
        against duplicate callbacks).
        """
        entry = self.inflight.pop(key, None)
        if entry is None:
            return None
        self.completed[key] = record
        return entry

    def fail(self, key: str) -> Optional[InflightTuple]:
        """Drop an in-flight tuple that produced no record (quarantine).

        The key is *not* added to ``completed``, so a later request may
        retry the tuple from scratch.
        """
        entry = self.inflight.pop(key, None)
        if entry is not None:
            self.stats["failed"] += 1
        return entry
