"""``python -m repro.service`` — run the campaign daemon.

Execution knobs come from the environment (``DPMR_*``, see
:mod:`repro.eval.config`); ``--store`` overrides ``DPMR_STORE`` so a
daemon is trivially pointed at a result-store directory::

    python -m repro.service --port 7421 --store /var/tmp/dpmr-store
"""

from __future__ import annotations

import argparse
import asyncio
import logging
from dataclasses import replace
from typing import Optional, Sequence

from ..eval.config import ExecConfig
from .server import ServiceServer


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the DPMR campaign service daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7421, help="LDJSON socket port (0 = ephemeral)"
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="also serve the HTTP shim on this port (0 = ephemeral)",
    )
    parser.add_argument(
        "--unix",
        default=None,
        metavar="PATH",
        help="serve the LDJSON protocol on this UNIX socket instead of TCP",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="result-store directory (overrides DPMR_STORE)",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    config = ExecConfig.from_env()
    if args.store is not None:
        config = replace(config, store_path=args.store)
    try:
        asyncio.run(
            _serve(config, args.host, args.port, args.http_port, args.unix)
        )
    except KeyboardInterrupt:
        pass
    return 0


async def _serve(
    config: ExecConfig,
    host: str,
    port: int,
    http_port: Optional[int],
    unix_path: Optional[str] = None,
) -> None:
    server = ServiceServer(config, host, port, http_port, unix_path=unix_path)
    await server.start()
    extra = f" (http {server.http_port})" if server.http_port is not None else ""
    where = unix_path if unix_path is not None else f"{server.host}:{server.port}"
    print(
        f"dpmr campaign service listening on {where}{extra}",
        flush=True,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()


if __name__ == "__main__":
    raise SystemExit(main())
