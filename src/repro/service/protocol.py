"""Wire protocol of the campaign service: line-delimited JSON messages.

The protocol deliberately serializes the *public API types* and nothing
else: a ``submit`` carries exactly :meth:`CampaignRequest.to_dict`, every
``record`` carries one :class:`ExperimentRecord` in the persistent
store's JSON shape, and ``done`` carries a
:class:`~repro.obs.manifest.RunManifest` — so a service round-trip and an
in-process :func:`repro.eval.run` call exchange the same data.

Framing is one JSON object per ``\\n``-terminated line (no embedded
newlines — the encoder uses compact separators), so the protocol is
trivially scriptable: ``nc`` or a ten-line client in any language can
drive a daemon.

Client → server::

    {"type": "submit", "request": {...CampaignRequest...}}
    {"type": "status"}
    {"type": "ping"}

Server → client::

    {"type": "hello", "version": 1}                      # on connect
    {"type": "accepted", "request_id", "n_items", ...}   # per submit
    {"type": "record", "request_id", "index", "source",  # streamed
     "done", "total", "record": {...}}
    {"type": "tuple_error", "request_id", "index", ...}  # quarantined tuple
    {"type": "done", "request_id", "errors",
     "manifest": {...RunManifest...}}
    {"type": "status", ...projections...}                # per status
    {"type": "pong"}                                     # per ping
    {"type": "error", "error": "..."}                    # bad input

``record.source`` says how the daemon satisfied that experiment tuple:
``"run"`` (executed for this request), ``"store"`` (persistent-store
hit at admission), or ``"shared"`` (deduplicated against a concurrent
or earlier request's execution).  Every record message carries the
tuple's ``index`` in the request's own expansion order, so a client
reassembles results in exactly the order an in-process ``run(request)``
returns them.
"""

from __future__ import annotations

import json
from typing import Dict

from ..eval.experiment import ExperimentRecord
from ..eval.store import record_to_dict

#: Protocol version, sent in the ``hello``; clients refuse a mismatch.
PROTOCOL_VERSION = 1

#: Sanity cap on one framed line (a record message is a few KB; a whole
#: manifest tops out far below this).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Record sources a daemon may report.
SOURCES = ("run", "store", "shared")


class ProtocolError(ValueError):
    """A frame that does not parse as a protocol message."""


def encode(msg: Dict) -> bytes:
    """One message as a newline-terminated compact-JSON frame."""
    return json.dumps(msg, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    ) + b"\n"


def decode(line: bytes) -> Dict:
    """Parse one frame; raises :class:`ProtocolError` on malformed input."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    try:
        msg = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(msg).__name__}")
    if not isinstance(msg.get("type"), str):
        raise ProtocolError("message has no string 'type' field")
    return msg


# -- message builders ------------------------------------------------------


def hello() -> Dict:
    return {"type": "hello", "version": PROTOCOL_VERSION}


def submit_message(request) -> Dict:
    """The submit frame for one :class:`~repro.eval.api.CampaignRequest`."""
    return {"type": "submit", "request": request.to_dict()}


def accepted_message(
    request_id: str,
    n_items: int,
    n_jobs: int,
    store_hits: int,
    shared_hits: int,
    executed: int,
) -> Dict:
    return {
        "type": "accepted",
        "request_id": request_id,
        "n_items": n_items,
        "n_jobs": n_jobs,
        "store_hits": store_hits,
        "shared_hits": shared_hits,
        "executed": executed,
    }


def record_message(
    request_id: str,
    index: int,
    source: str,
    done: int,
    total: int,
    record: ExperimentRecord,
) -> Dict:
    return {
        "type": "record",
        "request_id": request_id,
        "index": index,
        "source": source,
        "done": done,
        "total": total,
        "record": record_to_dict(record),
    }


def tuple_error_message(
    request_id: str, index: int, site: str, reason: str, done: int, total: int
) -> Dict:
    return {
        "type": "tuple_error",
        "request_id": request_id,
        "index": index,
        "site": site,
        "reason": reason,
        "done": done,
        "total": total,
    }


def done_message(request_id: str, errors: int, manifest) -> Dict:
    return {
        "type": "done",
        "request_id": request_id,
        "errors": errors,
        "manifest": manifest.to_dict(),
    }


def error_message(detail: str) -> Dict:
    return {"type": "error", "error": detail}
