"""Append-only event log and derived projections for status queries.

The daemon never answers a status query by replaying experiment records.
Instead every state change appends one plain-data event to an
:class:`EventLog` (the source of truth), and a :class:`Projections`
instance folds each event into small derived tables as it is appended:

* ``totals`` — daemon-wide admission traffic: tuples admitted, persistent
  store hits, cross-request shared hits, tuples actually executed (the
  live store hit rate falls out of these);
* ``requests`` — per-request progress (admitted / done / errors / state)
  without touching any record;
* ``figures`` — live coverage and detection-latency aggregates per
  ``workload/fault-kind/variant`` cell, updated once per *unique* tuple
  (fan-out to subscribers does not double-count);
* ``shards`` — per-shard progress cells (leases and records completed per
  worker node) when the daemon executes batches on the shard fabric
  (``ExecConfig.shards > 1``); empty for single-node daemons.

The projections are a pure fold: ``Projections.replay(log.events)``
rebuilds byte-identical state from the log alone, which is both the
correctness contract (tested) and the upgrade path — a future projection
is backfilled by replaying the same events.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class EventLog:
    """Append-only sequence of plain-dict events (the source of truth)."""

    def __init__(self) -> None:
        self.events: List[Dict] = []

    def append(self, kind: str, **fields) -> Dict:
        event = {"seq": len(self.events), "kind": kind, **fields}
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)


class Projections:
    """Derived state, folded incrementally from :class:`EventLog` events."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {
            "requests": 0,
            "completed_requests": 0,
            "tuples_admitted": 0,
            "store_hits": 0,
            "shared_hits": 0,
            "executed": 0,
            "errors": 0,
            "batches": 0,
            "batch_wall_s": 0.0,
        }
        self.requests: Dict[str, Dict] = {}
        self.figures: Dict[str, Dict] = {}
        self.shards: Dict[str, Dict] = {}

    # -- the fold -------------------------------------------------------

    def apply(self, event: Dict) -> None:
        kind = event["kind"]
        if kind == "request_admitted":
            t = self.totals
            t["requests"] += 1
            t["tuples_admitted"] += event["n_items"]
            t["store_hits"] += event["store_hits"]
            t["shared_hits"] += event["shared_hits"]
            t["executed"] += event["executed"]
            self.requests[event["request_id"]] = {
                "state": "running",
                "n_items": event["n_items"],
                "n_jobs": event["n_jobs"],
                "store_hits": event["store_hits"],
                "shared_hits": event["shared_hits"],
                "executed": event["executed"],
                "done": 0,
                "errors": 0,
            }
        elif kind == "request_progress":
            req = self.requests.get(event["request_id"])
            if req is not None:
                req["done"] = event["done"]
                req["errors"] = event["errors"]
        elif kind == "request_done":
            self.totals["completed_requests"] += 1
            req = self.requests.get(event["request_id"])
            if req is not None:
                req["state"] = "done"
                req["done"] = req["n_items"]
                req["errors"] = event["errors"]
                req["wall_s"] = event["wall_s"]
        elif kind == "tuple_done":
            fig = self._figure(
                event["workload"], event["fault_kind"], event["variant"]
            )
            fig["records"] += 1
            fig["covered"] += 1 if event["covered"] else 0
            fig["detected"] += 1 if event["detected"] else 0
            if event["t2d"] is not None:
                fig["t2d_sum"] += event["t2d"]
                fig["t2d_n"] += 1
        elif kind == "tuple_error":
            self.totals["errors"] += 1
        elif kind == "batch_done":
            self.totals["batches"] += 1
            self.totals["batch_wall_s"] += event["wall_s"]
        elif kind == "shard_done":
            cell = self._shard(event["shard"])
            cell["leases"] += event["leases"]
            cell["records"] += event["n_records"]
            cell["retries"] += event["retries"]
            cell["wall_s"] += event["wall_s"]
        # Unknown kinds are ignored: old logs replay cleanly through newer
        # projections and vice versa.

    def _figure(self, workload: str, fault_kind: str, variant: str) -> Dict:
        key = f"{workload}/{fault_kind}/{variant}"
        fig = self.figures.get(key)
        if fig is None:
            fig = {
                "records": 0,
                "covered": 0,
                "detected": 0,
                "t2d_sum": 0,
                "t2d_n": 0,
            }
            self.figures[key] = fig
        return fig

    def _shard(self, shard: int) -> Dict:
        key = f"shard-{shard}"
        cell = self.shards.get(key)
        if cell is None:
            cell = {"leases": 0, "records": 0, "retries": 0, "wall_s": 0.0}
            self.shards[key] = cell
        return cell

    # -- queries --------------------------------------------------------

    def store_hit_rate(self) -> Optional[float]:
        admitted = self.totals["tuples_admitted"]
        if not admitted:
            return None
        return self.totals["store_hits"] / admitted

    def to_dict(self) -> Dict:
        totals = dict(self.totals)
        totals["batch_wall_s"] = round(totals["batch_wall_s"], 6)
        rate = self.store_hit_rate()
        if rate is not None:
            totals["store_hit_rate"] = round(rate, 4)
        figures = {}
        for key in sorted(self.figures):
            fig = dict(self.figures[key])
            if fig["records"]:
                fig["coverage"] = round(fig["covered"] / fig["records"], 4)
            if fig["t2d_n"]:
                fig["mean_t2d"] = round(fig["t2d_sum"] / fig["t2d_n"], 2)
            figures[key] = fig
        shards = {}
        for key in sorted(self.shards):
            cell = dict(self.shards[key])
            cell["wall_s"] = round(cell["wall_s"], 6)
            shards[key] = cell
        return {
            "totals": totals,
            "requests": {k: dict(v) for k, v in sorted(self.requests.items())},
            "figures": figures,
            "shards": shards,
        }

    @classmethod
    def replay(cls, events: List[Dict]) -> "Projections":
        """Rebuild projections from the log alone (must equal the live fold)."""
        proj = cls()
        for event in events:
            proj.apply(event)
        return proj
