"""Campaign service: an async daemon over the content-addressed store.

``python -m repro.service`` runs a long-lived daemon that accepts
:class:`~repro.eval.api.CampaignRequest` submissions over a
line-delimited JSON socket (plus an optional HTTP shim), deduplicates
overlapping experiment tuples across concurrent clients against both the
persistent result store and an in-flight table, executes the remainder
on one shared supervised pool, and streams records back as they
complete — bit-identical, in the same order, to an in-process
:func:`repro.eval.run` of the same request.

Layers (each importable on its own):

* :mod:`~repro.service.protocol` — the wire format;
* :mod:`~repro.service.dedupe` — tuple tables keyed by store address;
* :mod:`~repro.service.projections` — event log + derived status views;
* :mod:`~repro.service.scheduler` — expansion, admission, batching;
* :mod:`~repro.service.server` — the asyncio daemon and thread wrapper;
* :mod:`~repro.service.client` — the blocking client.
"""

from .client import ServiceClient, ServiceError
from .projections import EventLog, Projections
from .protocol import PROTOCOL_VERSION, ProtocolError
from .scheduler import CampaignScheduler
from .server import ServiceDaemon, ServiceServer

__all__ = [
    "CampaignScheduler",
    "EventLog",
    "PROTOCOL_VERSION",
    "Projections",
    "ProtocolError",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "ServiceServer",
]
