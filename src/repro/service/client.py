"""Blocking client for the campaign service's LDJSON socket protocol.

One :class:`ServiceClient` holds one connection.  ``submit()`` sends a
:class:`~repro.eval.api.CampaignRequest` and blocks until the daemon's
``done`` frame, reassembling the streamed records *by index* into the
request's own expansion order — the returned
:class:`~repro.eval.api.CampaignResult` carries records bit-identical,
and identically ordered, to an in-process ``run(request)``.

For streaming consumption, ``submit_nowait()`` returns the daemon's
``accepted`` frame immediately and ``collect()`` finishes the read;
abandoning a request is just closing the client — the daemon keeps
executing its tuples and the store retains every result. ::

    from repro.eval import CampaignRequest
    from repro.service import ServiceClient

    # TCP (host/port) or a UNIX-domain socket (unix_path=...) — the LDJSON
    # protocol is identical over both transports.
    with ServiceClient(port=7421) as client:
        result = client.submit(CampaignRequest(
            workloads=("mcf",), kinds=("heap-array-resize",),
            variants=("stdapp", "no-diversity"), max_sites=4))
        print(len(result.records), result.manifest.shared_hits)
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional

from ..eval.api import CampaignRequest, CampaignResult
from ..eval.experiment import ExperimentRecord
from ..eval.store import record_from_dict
from ..obs.manifest import RunManifest
from . import protocol


class ServiceError(RuntimeError):
    """The daemon rejected a message or the connection failed."""


class ServiceClient:
    """One blocking connection to a campaign daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        timeout: Optional[float] = 600.0,
        unix_path: Optional[str] = None,
    ):
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        #: frames for other request ids, parked while collecting one.
        self._stash: Dict[str, List[Dict]] = {}
        hello = self._read()
        if hello.get("type") != "hello":
            raise ServiceError(f"expected hello, got {hello.get('type')!r}")
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            raise ServiceError(
                f"protocol version mismatch: daemon speaks "
                f"{hello.get('version')}, client {protocol.PROTOCOL_VERSION}"
            )

    # -- plumbing -------------------------------------------------------

    def _write(self, msg: Dict) -> None:
        self._sock.sendall(protocol.encode(msg))

    def _read(self) -> Dict:
        line = self._rfile.readline()
        if not line:
            raise ServiceError("connection closed by service")
        return protocol.decode(line)

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queries --------------------------------------------------------

    def ping(self) -> bool:
        self._write({"type": "ping"})
        return self._read().get("type") == "pong"

    def status(self) -> Dict:
        """The daemon's projection snapshot (no record replay involved)."""
        self._write({"type": "status"})
        msg = self._read()
        if msg.get("type") != "status":
            raise ServiceError(f"expected status, got {msg.get('type')!r}")
        return msg

    # -- campaigns ------------------------------------------------------

    def submit(self, request: CampaignRequest) -> CampaignResult:
        """Run one request to completion; records in expansion order."""
        return self.collect(self.submit_nowait(request))

    def submit_nowait(self, request: CampaignRequest) -> Dict:
        """Send one request; returns the ``accepted`` frame immediately.

        The daemon starts (or joins) the work either way — a client that
        never calls :meth:`collect` simply leaves the records to the
        store and any concurrent subscribers.
        """
        self._write(protocol.submit_message(request))
        msg = self._read()
        if msg.get("type") == "error":
            raise ServiceError(msg["error"])
        if msg.get("type") != "accepted":
            raise ServiceError(f"expected accepted, got {msg.get('type')!r}")
        return msg

    def collect(self, accepted: Dict) -> CampaignResult:
        """Read one accepted request's stream through its ``done`` frame."""
        request_id = accepted["request_id"]
        slots: List[Optional[ExperimentRecord]] = [None] * accepted["n_items"]
        stash = self._stash.pop(request_id, [])
        while True:
            msg = stash.pop(0) if stash else self._read()
            kind = msg.get("type")
            if kind == "error":
                raise ServiceError(msg["error"])
            rid = msg.get("request_id")
            if rid != request_id:
                if rid is not None:
                    self._stash.setdefault(rid, []).append(msg)
                continue
            if kind == "record":
                slots[msg["index"]] = record_from_dict(msg["record"])
            elif kind == "tuple_error":
                pass  # quarantined tuple: excluded, like the batch executor
            elif kind == "done":
                manifest = RunManifest.from_dict(msg["manifest"])
                records = [r for r in slots if r is not None]
                return CampaignResult(records, manifest)
            else:
                raise ServiceError(f"unexpected frame {kind!r} for {request_id}")
