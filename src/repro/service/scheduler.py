"""The campaign scheduler: shared expansion, dedupe, and batched execution.

One :class:`CampaignScheduler` serves every client of a daemon.  A
submitted :class:`~repro.eval.api.CampaignRequest` flows through three
stages:

1. **Expansion** (single-thread ``expand`` executor): resolve the
   request against *canonical* per-``(workload, scale, kind, percent,
   seeds, design)`` campaign jobs — one golden run, one site enumeration,
   and one incremental build state per cell, ever, with the variant list
   append-only so tuple indices stay stable across requests — and compute
   each tuple's content address (the persistent store's
   :func:`~repro.eval.store.experiment_key`).  Store admission
   (``get_many``) also happens here, off the event loop.
2. **Admission** (event loop): each tuple is served from the in-memory
   completed table, served from the store lookup, joined onto an
   in-flight duplicate, or scheduled as new work.  All dedupe state is
   mutated only on the loop — there are no locks around it and no races.
3. **Execution** (single-thread ``run`` executor): a runner task drains
   pending tuples in batch snapshots through
   :func:`~repro.eval.parallel.run_campaign_jobs_with_manifest`
   (``items=`` subsets, shared ``build_states``, streaming
   ``on_record``), which brings along the executor's whole resilience
   stack — supervised workers, retry/backoff, site quarantine, store
   writes, warm compiled bases.  Completions hop back to the loop via
   ``call_soon_threadsafe`` and fan out to every subscribed request.

Each request gets its own ``mode="service"`` manifest at the end:
``store_hits`` (persistent store), ``shared_hits`` (deduplicated against
other requests in this daemon's lifetime), and ``store_misses`` (tuples
this request actually caused to execute).  Client disconnects orphan the
request's messages but never cancel its tuples — the work completes and
the store retains the results, so the next submission is free.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..eval.api import CampaignRequest
from ..eval.config import ExecConfig
from ..eval.experiment import ExperimentRecord, WorkloadHarness
from ..eval.parallel import (
    CampaignJob,
    JobBuildState,
    job_for_harness,
    run_campaign_jobs_with_manifest,
)
from ..eval.store import exec_fingerprint, module_fingerprint, variant_fingerprint
from ..eval.variants import resolve_variants
from ..obs.manifest import RunManifest
from . import protocol
from .dedupe import DedupeTable, TupleRef, tuple_key
from .projections import EventLog, Projections

logger = logging.getLogger("repro.service.scheduler")


@dataclass
class JobEntry:
    """One canonical campaign job plus its append-only variant registry.

    ``job.variants`` (and the parallel ``variant_fps`` / build-state
    ``compilers``) only ever grow, and always together under the
    scheduler's cache lock — indices handed out to earlier requests stay
    valid while the run thread is mid-batch.
    """

    job: CampaignJob
    module_sha: str
    variant_fps: List[str] = field(default_factory=list)
    variant_index: Dict[str, int] = field(default_factory=dict)


@dataclass
class RequestState:
    """One admitted request's progress, counters, and reply channel."""

    request_id: str
    request: CampaignRequest
    send: Optional[Callable[[Dict], None]]
    total: int = 0
    n_jobs: int = 0
    done: int = 0
    errors: int = 0
    store_hits: int = 0
    shared_hits: int = 0
    executed: int = 0
    orphaned: bool = False
    collect: bool = False
    records: List[Optional[ExperimentRecord]] = field(default_factory=list)
    status_counts: Dict[str, int] = field(default_factory=dict)
    started: float = 0.0
    manifest: Optional[RunManifest] = None
    finished: Optional[asyncio.Event] = None


class CampaignScheduler:
    """The daemon's engine; construct on (and drive from) one event loop."""

    def __init__(self, config: Optional[ExecConfig] = None):
        self.config = config if config is not None else ExecConfig.from_env()
        self.store = self.config.make_store()
        self.exec_fp = exec_fingerprint(self.config)
        self.dedupe = DedupeTable()
        self.log = EventLog()
        self.projections = Projections()
        self.requests: Dict[str, RequestState] = {}
        self._harnesses: Dict[Tuple[str, int], WorkloadHarness] = {}
        self._jobs: Dict[Tuple, JobEntry] = {}
        #: guards the append-only variant registries shared between the
        #: expansion thread (appends) and the run thread (reads mid-batch).
        self._cache_lock = threading.Lock()
        self._expand_pool = ThreadPoolExecutor(1, thread_name_prefix="dpmr-expand")
        self._run_pool = ThreadPoolExecutor(1, thread_name_prefix="dpmr-run")
        self._cancel = threading.Event()
        self._runner_task: Optional[asyncio.Task] = None
        self._ids = itertools.count(1)

    # -- submission (event loop) ----------------------------------------

    async def submit(
        self,
        request: CampaignRequest,
        send: Optional[Callable[[Dict], None]] = None,
        collect: bool = False,
    ) -> RequestState:
        """Admit one request; returns its live state immediately.

        Record/done messages stream through ``send`` as tuples complete;
        ``collect=True`` additionally retains records in request order on
        the state (the HTTP shim's path).  Raises ``ValueError`` on an
        invalid request or a duplicate ``request_id``.
        """
        loop = asyncio.get_running_loop()
        request.validate()
        request_id = request.request_id or f"req-{next(self._ids):04d}"
        if request_id in self.requests:
            raise ValueError(f"duplicate request id {request_id!r}")
        started = time.monotonic()
        # Snapshot of keys already completed in memory: the expansion
        # thread skips store I/O for them without reading loop-owned state.
        known = frozenset(self.dedupe.completed)
        refs, store_records, n_jobs = await loop.run_in_executor(
            self._expand_pool, self._expand, request, known
        )
        state = RequestState(
            request_id=request_id,
            request=request,
            send=send,
            total=len(refs),
            n_jobs=n_jobs,
            collect=collect,
            started=started,
        )
        state.finished = asyncio.Event()
        if collect:
            state.records = [None] * len(refs)
        self.requests[request_id] = state

        served: List[Tuple[int, ExperimentRecord, str]] = []
        scheduled = 0
        for index, ref in enumerate(refs):
            record = self.dedupe.lookup(ref.key)
            if record is not None:
                state.shared_hits += 1
                served.append((index, record, "shared"))
                continue
            record = store_records.get(ref.key)
            if record is not None:
                if self.dedupe.serve_store_hit(ref.key, record):
                    self._emit_tuple_done(ref, record, "store")
                state.store_hits += 1
                served.append((index, record, "store"))
                continue
            if self.dedupe.admit(ref, state, index) == "inflight":
                state.shared_hits += 1
            else:
                state.executed += 1
                scheduled += 1
        self._event(
            "request_admitted",
            request_id=request_id,
            n_items=state.total,
            n_jobs=n_jobs,
            store_hits=state.store_hits,
            shared_hits=state.shared_hits,
            executed=state.executed,
        )
        self._send(
            state,
            protocol.accepted_message(
                request_id,
                state.total,
                n_jobs,
                state.store_hits,
                state.shared_hits,
                state.executed,
            ),
        )
        for index, record, source in served:
            self._serve(state, index, record, source)
        if scheduled:
            self._kick_runner()
        if state.done >= state.total:
            self._finish(state)
        return state

    def orphan(self, state: RequestState) -> None:
        """Stop messaging a disconnected client; its tuples keep running."""
        if not state.orphaned:
            state.orphaned = True
            logger.info(
                "request %s orphaned at %d/%d records (tuples keep running)",
                state.request_id,
                state.done,
                state.total,
            )

    def status(self) -> Dict:
        """Projection snapshot — answered without replaying any record."""
        return {
            "type": "status",
            "n_events": len(self.log),
            "inflight": len(self.dedupe.inflight),
            "pending": len(self.dedupe.pending),
            "completed": len(self.dedupe.completed),
            "dedupe": dict(self.dedupe.stats),
            "projections": self.projections.to_dict(),
        }

    async def aclose(self) -> None:
        """Cooperative shutdown: stop between experiments, drain threads."""
        self._cancel.set()
        if self._runner_task is not None:
            try:
                await self._runner_task
            except Exception:  # pragma: no cover — logged in the runner
                pass
        self._expand_pool.shutdown(wait=True)
        self._run_pool.shutdown(wait=True)

    # -- expansion (expand thread) --------------------------------------

    def _expand(
        self, request: CampaignRequest, known: frozenset
    ) -> Tuple[List[TupleRef], Dict[str, ExperimentRecord], int]:
        """Resolve a request to keyed tuple refs, in its own record order.

        The enumeration (workload × kind in request order, then
        site × variant × seed per job) matches
        :func:`~repro.eval.api.request_jobs` + the executor's serial item
        order exactly, which is what makes service records arrive in the
        same order an in-process ``run(request)`` returns them.
        """
        refs: List[TupleRef] = []
        n_jobs = 0
        for workload in request.workloads:
            for kind in request.kinds:
                entry = self._job_entry(
                    workload,
                    request.scale,
                    kind,
                    request.percent,
                    request.seeds,
                    request.design,
                )
                vis = self._ensure_variants(entry, request.variants, request.design)
                n_jobs += 1
                job = entry.job
                n_sites = len(job.sites)
                if request.max_sites is not None:
                    n_sites = min(n_sites, request.max_sites)
                for si in range(n_sites):
                    for vi in vis:
                        for ri in range(len(job.seeds)):
                            key, _ = tuple_key(
                                job,
                                si,
                                entry.variant_fps[vi],
                                ri,
                                self.exec_fp,
                                entry.module_sha,
                            )
                            refs.append(TupleRef(entry, si, vi, ri, key))
        store_records: Dict[str, ExperimentRecord] = {}
        if self.store is not None:
            lookup = sorted({r.key for r in refs} - known)
            store_records = self.store.get_many(lookup)
        return refs, store_records, n_jobs

    def _harness(self, workload: str, scale: int) -> WorkloadHarness:
        key = (workload, scale)
        harness = self._harnesses.get(key)
        if harness is None:
            from ..apps import app_factory

            harness = WorkloadHarness(
                workload, app_factory(workload, scale), config=self.config
            )
            self._harnesses[key] = harness
        return harness

    def _job_entry(
        self,
        workload: str,
        scale: int,
        kind: str,
        percent: int,
        seeds: Sequence[int],
        design: str,
    ) -> JobEntry:
        """The canonical job for one matrix cell (created once, ever).

        The job enumerates *all* fault sites — a request's ``max_sites``
        restricts which site indices it admits, so differing limits share
        one job.  Seeds are part of the identity because the run index
        (which the store key and the record both carry) indexes into them.
        """
        key = (workload, scale, kind, percent, tuple(seeds), design)
        entry = self._jobs.get(key)
        if entry is not None:
            return entry
        harness = self._harness(workload, scale)
        job = job_for_harness(harness, [], kind, percent=percent, seeds=seeds)
        job._state = JobBuildState(pristine=job.pristine, compilers=[])
        entry = JobEntry(job=job, module_sha=module_fingerprint(job.pristine))
        self._jobs[key] = entry
        return entry

    def _ensure_variants(
        self, entry: JobEntry, names: Sequence[str], design: str
    ) -> List[int]:
        """Canonical variant indices for ``names``, appending new ones."""
        variants = resolve_variants(names, design)
        vis: List[int] = []
        for variant in variants:
            vi = entry.variant_index.get(variant.name)
            if vi is None:
                with self._cache_lock:
                    vi = len(entry.job.variants)
                    entry.job.variants.append(variant)
                    state = entry.job._state
                    assert state is not None
                    state.compilers.append(
                        variant.incremental_compiler(state.pristine)
                    )
                    entry.variant_fps.append(variant_fingerprint(variant))
                    entry.variant_index[variant.name] = vi
            vis.append(vi)
        return vis

    # -- execution (runner task + run thread) ---------------------------

    def _kick_runner(self) -> None:
        if self._runner_task is None or self._runner_task.done():
            self._runner_task = asyncio.get_running_loop().create_task(
                self._run_batches()
            )

    async def _run_batches(self) -> None:
        """Drain pending tuples in batch snapshots until the queue is dry.

        Tuples admitted while a batch is executing land in the next
        snapshot; the single run thread means batches never overlap.
        """
        loop = asyncio.get_running_loop()
        while self.dedupe.pending and not self._cancel.is_set():
            keys = self.dedupe.take_pending()
            refs = [
                self.dedupe.inflight[k].ref
                for k in keys
                if k in self.dedupe.inflight
            ]
            if not refs:
                continue
            jobs: List[CampaignJob] = []
            states: List[JobBuildState] = []
            items: List[Tuple[int, int, int, int]] = []
            key_of: Dict[Tuple[int, int, int, int], str] = {}
            job_index: Dict[int, int] = {}
            for ref in refs:
                ji = job_index.get(id(ref.entry))
                if ji is None:
                    ji = len(jobs)
                    job_index[id(ref.entry)] = ji
                    jobs.append(ref.job)
                    assert ref.job._state is not None
                    states.append(ref.job._state)
                item = (ji, ref.si, ref.vi, ref.ri)
                items.append(item)
                key_of[item] = ref.key

            def on_record(item, record, source, _key_of=key_of, _loop=loop):
                key = _key_of.get(tuple(item))
                if key is not None:
                    _loop.call_soon_threadsafe(self._tuple_done, key, record)

            def run_batch(
                _jobs=jobs, _states=states, _items=items, _cb=on_record
            ):
                return run_campaign_jobs_with_manifest(
                    _jobs,
                    config=self.config,
                    build_states=_states,
                    items=_items,
                    on_record=_cb,
                    cancel=self._cancel,
                )

            try:
                _, manifest = await loop.run_in_executor(self._run_pool, run_batch)
            except Exception as exc:  # infrastructure failure of the batch
                logger.exception("campaign batch of %d tuple(s) failed", len(items))
                for key in keys:
                    self._tuple_failed(key, f"{type(exc).__name__}: {exc}")
                continue
            # on_record callbacks were queued via call_soon_threadsafe
            # *before* the executor future resolved, so by this point every
            # completed tuple has been served; leftovers were quarantined
            # (or abandoned by shutdown).
            self._event(
                "batch_done",
                n_items=len(items),
                wall_s=round(manifest.wall_s, 6),
                engine=manifest.engine,
                effective_jobs=manifest.effective_jobs,
            )
            # Shard-backend batches (ExecConfig.shards > 1) carry per-node
            # provenance; surface it as one event per shard so the status
            # projections show live per-shard progress cells.
            for sm in manifest.shards:
                self._event(
                    "shard_done",
                    shard=sm.shard,
                    leases=sm.leases,
                    n_records=sm.n_records,
                    retries=sm.retries,
                    wall_s=round(sm.wall_s, 6),
                )
            if not self._cancel.is_set():
                for key in keys:
                    if key in self.dedupe.inflight:
                        self._tuple_failed(key, "quarantined after retries")

    # -- completion fan-out (event loop) --------------------------------

    def _tuple_done(self, key: str, record: ExperimentRecord) -> None:
        entry = self.dedupe.complete(key, record)
        if entry is None:
            return
        self._emit_tuple_done(entry.ref, record, "run")
        for state, index, source in entry.subscribers:
            self._serve(state, index, record, source)

    def _tuple_failed(self, key: str, reason: str) -> None:
        entry = self.dedupe.fail(key)
        if entry is None:
            return
        ref = entry.ref
        self._event(
            "tuple_error",
            workload=ref.job.workload,
            fault_kind=ref.job.kind,
            site=ref.site_id,
            reason=reason,
        )
        for state, index, _ in entry.subscribers:
            state.done += 1
            state.errors += 1
            self._send(
                state,
                protocol.tuple_error_message(
                    state.request_id,
                    index,
                    ref.site_id,
                    reason,
                    state.done,
                    state.total,
                ),
            )
            self._progress(state)

    def _serve(
        self,
        state: RequestState,
        index: int,
        record: ExperimentRecord,
        source: str,
    ) -> None:
        state.done += 1
        status = record.result.status.value
        state.status_counts[status] = state.status_counts.get(status, 0) + 1
        if state.collect:
            state.records[index] = record
        self._send(
            state,
            protocol.record_message(
                state.request_id, index, source, state.done, state.total, record
            ),
        )
        self._progress(state)

    def _progress(self, state: RequestState) -> None:
        self._event(
            "request_progress",
            request_id=state.request_id,
            done=state.done,
            errors=state.errors,
        )
        if state.done >= state.total:
            self._finish(state)

    def _finish(self, state: RequestState) -> None:
        if state.manifest is not None:
            return
        wall = time.monotonic() - state.started
        observing = self.config.observing
        manifest = RunManifest(
            mode="service",
            requested_jobs=self.config.jobs,
            effective_jobs=1,
            worker_reason=(
                "empty_campaign"
                if state.total == 0
                else "shared service pool (per-batch worker decisions)"
            ),
            incremental=True,
            counters_enabled=observing,
            engine="compiled" if (self.config.compiled and not observing) else "interp",
            timeout_factor=self.config.timeout_factor,
            n_jobs=state.n_jobs,
            n_items=state.total,
            n_records=state.total - state.errors,
            store_path=self.config.store_path,
            store_hits=state.store_hits,
            store_misses=state.executed,
            shared_hits=state.shared_hits,
            status_counts=dict(state.status_counts),
            wall_s=wall,
        )
        state.manifest = manifest
        self._event(
            "request_done",
            request_id=state.request_id,
            wall_s=round(wall, 6),
            errors=state.errors,
        )
        self._send(
            state, protocol.done_message(state.request_id, state.errors, manifest)
        )
        if state.finished is not None:
            state.finished.set()

    # -- events and messaging -------------------------------------------

    def _event(self, kind: str, **fields) -> None:
        self.projections.apply(self.log.append(kind, **fields))

    def _emit_tuple_done(
        self, ref: TupleRef, record: ExperimentRecord, source: str
    ) -> None:
        """One event per *unique* completed tuple (not per subscriber)."""
        self._event(
            "tuple_done",
            workload=record.workload,
            fault_kind=ref.job.kind,
            variant=record.variant,
            status=record.result.status.value,
            covered=record.covered,
            detected=record.ddet or record.ndet,
            t2d=record.t2d,
            cycles=record.result.cycles,
            source=source,
        )

    def _send(self, state: RequestState, msg: Dict) -> None:
        if state.orphaned or state.send is None:
            return
        try:
            state.send(msg)
        except Exception:
            self.orphan(state)
