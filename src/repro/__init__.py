"""repro — a reproduction of Diverse Partial Memory Replication (DPMR).

DPMR (Lefever, DSN 2010 / UIUC dissertation 2011) is an automatic compiler
transformation that replicates a subset of a program's data memory inside the
same process, diversifies the replica, and detects memory-safety errors by
comparing application loads against replica loads.

Public API layers
-----------------
``repro.ir``
    The typed intermediate representation the transformation operates on.
``repro.machine``
    Byte-accurate simulated machine (memory, heap allocator, interpreter).
``repro.core``
    The DPMR transformation itself: shadow/augmented types, the SDS and MDS
    designs, diversity transformations, and state comparison policies.
``repro.dsa``
    Data Structure Analysis and replication-scope expansion (Ch. 5).
``repro.faultinject``
    Compiler-based software fault injection (§3.4).
``repro.eval``
    Variant builds, experiment runner, and the paper's metrics (§3.5–3.6).
``repro.apps``
    Analog benchmark workloads (art, bzip2, equake, mcf).
``repro.obs``
    Structured observability: tracing, counters, run manifests.
``repro.service``
    Campaign service: async daemon + client over the result store.
"""

__version__ = "1.0.0"

# The stable top-level API.  Everything in __all__ is importable from
# ``repro`` directly and covered by tests/test_public_api.py; deeper
# modules remain importable but carry no stability promise.
from .core.pipeline import DpmrBuild, DpmrCompiler  # noqa: E402
from .eval.api import CampaignRequest, CampaignResult, request_jobs, run  # noqa: E402
from .eval.config import ExecConfig  # noqa: E402
from .eval.experiment import ExperimentRecord, WorkloadHarness  # noqa: E402
from .eval.store import ResultStore  # noqa: E402
from .eval.variants import (  # noqa: E402
    Variant,
    diversity_variants,
    policy_variants,
    resolve_variants,
    stdapp_variant,
    variant_registry,
)
from .machine.process import ExitStatus, ProcessResult, run_process  # noqa: E402
from .service import ServiceClient, ServiceDaemon, ServiceError  # noqa: E402

__all__ = [
    "CampaignRequest",
    "CampaignResult",
    "DpmrBuild",
    "DpmrCompiler",
    "ExecConfig",
    "ExitStatus",
    "ExperimentRecord",
    "ProcessResult",
    "ResultStore",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "Variant",
    "WorkloadHarness",
    "diversity_variants",
    "policy_variants",
    "request_jobs",
    "resolve_variants",
    "run",
    "run_process",
    "stdapp_variant",
    "variant_registry",
]
