"""Diverse Partial Replication beyond memory errors (§1.2)."""

from .banking import Bank, DprOutcome, OVERDRAFT_PENALTY, paper_scenario, run_with_dpr
from .scheduler import (
    DiverseSchedulePolicy,
    Request,
    SchedulePolicy,
    WorkerPool,
)

__all__ = [
    "Bank",
    "DiverseSchedulePolicy",
    "DprOutcome",
    "OVERDRAFT_PENALTY",
    "Request",
    "SchedulePolicy",
    "WorkerPool",
    "paper_scenario",
    "run_with_dpr",
]
