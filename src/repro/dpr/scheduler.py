"""Deterministic multi-worker scheduler substrate for the DPR race demo.

§1.2 argues Diverse Partial Replication generalizes beyond memory errors:
replicate the component relevant to the fault model and diversify it.  For
race conditions the relevant component is the *schedule*; the diversity
transformation is a perturbed (but legal) interleaving.

This simulator dispatches queued requests to ``n_workers`` workers.  Each
worker takes a request, works on it for a deterministic number of ticks, and
commits its effect at completion time.  A :class:`SchedulePolicy` controls
dispatch order and per-request service times — the knobs a diverse replica
execution turns.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Request:
    """One queued operation."""

    seq: int
    kind: str  # "deposit" | "withdraw" | "balance"
    account: str
    amount: int = 0


class SchedulePolicy:
    """Decides dispatch order and service time; identity by default."""

    name = "fifo"

    def dispatch_key(self, request: Request) -> Tuple:
        """Priority key for pulling requests from the queue (lower first)."""
        return (request.seq,)

    def service_time(self, request: Request) -> int:
        """Ticks between dispatch and commit.

        Deposits are slow (check clearing), withdrawals fast — the asymmetry
        that lets the §1.2 race commit a later withdrawal before an earlier
        deposit when per-account ordering is not enforced.
        """
        return {"deposit": 5, "withdraw": 2}.get(request.kind, 1)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<schedule {self.name}>"


class DiverseSchedulePolicy(SchedulePolicy):
    """A legal but perturbed schedule: deterministic jittered service times.

    Under a correct (per-account ordered) system the commit *effects* are
    schedule-independent; under a racy system, different service times make
    same-account requests complete in a different order, so the race
    manifests differently in the replica execution — exactly Fig. 1.2(b).
    """

    name = "diverse"

    def __init__(self, salt: int = 7):
        self.salt = salt

    def service_time(self, request: Request) -> int:
        return 1 + (request.seq * self.salt + len(request.account)) % 5


@dataclass
class _Running:
    finish_tick: int
    dispatch_order: int
    request: Request


class WorkerPool:
    """Simulates ``n_workers`` workers draining a request queue.

    ``per_account_ordering=True`` models the *specified* behaviour (requests
    to the same account are processed in arrival order: a worker will not
    dispatch a request for an account that has an earlier request still in
    flight).  ``False`` models the race-condition bug of §1.2.
    """

    def __init__(
        self,
        n_workers: int,
        policy: Optional[SchedulePolicy] = None,
        per_account_ordering: bool = True,
    ):
        self.n_workers = n_workers
        self.policy = policy if policy is not None else SchedulePolicy()
        self.per_account_ordering = per_account_ordering

    def run(
        self,
        requests: Sequence[Request],
        commit: Callable[[Request], None],
    ) -> List[int]:
        """Execute all requests; calls ``commit`` at each completion.

        Returns the sequence of request ``seq`` numbers in commit order.
        """
        pending: List[Tuple[Tuple, int, Request]] = []
        for i, r in enumerate(requests):
            heapq.heappush(pending, (self.policy.dispatch_key(r), i, r))
        running: List[Tuple[int, int, Request]] = []  # (finish, order, req)
        in_flight_accounts: Dict[str, int] = {}
        commit_order: List[int] = []
        tick = 0
        dispatch_counter = 0
        deferred: List[Tuple[Tuple, int, Request]] = []
        while pending or running:
            # Fill idle workers.
            while pending and len(running) < self.n_workers:
                key, i, req = heapq.heappop(pending)
                if (
                    self.per_account_ordering
                    and in_flight_accounts.get(req.account, 0) > 0
                ):
                    deferred.append((key, i, req))
                    continue
                in_flight_accounts[req.account] = (
                    in_flight_accounts.get(req.account, 0) + 1
                )
                finish = tick + self.policy.service_time(req)
                heapq.heappush(running, (finish, dispatch_counter, req))
                dispatch_counter += 1
            for item in deferred:
                heapq.heappush(pending, item)
            deferred = []
            if not running:
                tick += 1
                continue
            # Advance to the next completion.
            finish, _, req = heapq.heappop(running)
            tick = max(tick, finish)
            commit(req)
            commit_order.append(req.seq)
            in_flight_accounts[req.account] -= 1
        return commit_order
