"""The banking race-condition example of §1.2 under Diverse Partial
Replication.

The system specification requires requests to the same account to be
processed in arrival order; overdrawn accounts pay a $15 penalty.  A faulty
implementation drops the per-account ordering constraint (a race), so a
deposit/withdraw pair can commit out of order and charge a spurious penalty
(Fig. 1.2a).

DPR detects this by replicating the threaded execution and the data it
operates on, running the replica under a *diversified scheduler*, and
comparing the final account balances (Fig. 1.2b): under the correct
implementation the balances are schedule-invariant; under the racy one the
diverse replica disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .scheduler import (
    DiverseSchedulePolicy,
    Request,
    SchedulePolicy,
    WorkerPool,
)

OVERDRAFT_PENALTY = 15


class Bank:
    """Account store; commits deposits/withdrawals with overdraft penalty."""

    def __init__(self, balances: Optional[Dict[str, int]] = None):
        self.balances: Dict[str, int] = dict(balances or {})
        self.penalties: int = 0

    def commit(self, request: Request) -> None:
        bal = self.balances.get(request.account, 0)
        if request.kind == "deposit":
            bal += request.amount
        elif request.kind == "withdraw":
            bal -= request.amount
            if bal < 0:
                bal -= OVERDRAFT_PENALTY
                self.penalties += 1
        self.balances[request.account] = bal


@dataclass
class DprOutcome:
    """Result of one diverse-partial-replication comparison."""

    detected: bool
    original_balances: Dict[str, int]
    replica_balances: Dict[str, int]
    original_commit_order: List[int]
    replica_commit_order: List[int]

    @property
    def divergent_accounts(self) -> List[str]:
        keys = set(self.original_balances) | set(self.replica_balances)
        return sorted(
            k
            for k in keys
            if self.original_balances.get(k) != self.replica_balances.get(k)
        )


def run_with_dpr(
    requests: Sequence[Request],
    initial_balances: Dict[str, int],
    n_workers: int = 2,
    racy: bool = False,
    diverse_policy: Optional[SchedulePolicy] = None,
) -> DprOutcome:
    """Run the banking workload and its diverse partial replica.

    ``racy=True`` models the §1.2 bug (no per-account ordering).  The partial
    replica re-executes only the scheduling-relevant component — the worker
    pool and the account data — under a diversified schedule; final balances
    are the compared state.
    """
    ordered = not racy
    original = Bank(initial_balances)
    pool = WorkerPool(n_workers, SchedulePolicy(), per_account_ordering=ordered)
    original_order = pool.run(requests, original.commit)

    replica = Bank(initial_balances)
    policy = diverse_policy if diverse_policy is not None else DiverseSchedulePolicy()
    replica_pool = WorkerPool(n_workers, policy, per_account_ordering=ordered)
    replica_order = replica_pool.run(requests, replica.commit)

    detected = original.balances != replica.balances
    return DprOutcome(
        detected=detected,
        original_balances=dict(original.balances),
        replica_balances=dict(replica.balances),
        original_commit_order=original_order,
        replica_commit_order=replica_order,
    )


def paper_scenario() -> List[Request]:
    """The exact §1.2 scenario: $100 balance, deposit $200 then withdraw $250."""
    return [
        Request(seq=0, kind="deposit", account="alice", amount=200),
        Request(seq=1, kind="withdraw", account="alice", amount=250),
    ]
