"""Root pytest plugin: reproducible randomized test ordering.

The executor's determinism guarantees are only credible if the test
suite passes in any order; ``--shuffle-seed`` shuffles the collected
items with a seeded RNG so an ordering failure is reproducible.  CI runs
the suite with ``--shuffle-seed=auto`` and, on failure, uploads the run
manifest this plugin writes (``.pytest-run-manifest.json``: the seed,
the exact execution order, and every failing test) so the failing order
can be replayed locally with ``--shuffle-seed=<seed>``.

(pytest-randomly is deliberately not a dependency — the test image is
offline; this is the minimal subset the repo needs.)
"""

import json
import random

MANIFEST_PATH = ".pytest-run-manifest.json"


def pytest_addoption(parser):
    parser.addoption(
        "--shuffle-seed",
        default=None,
        help="shuffle collected test order with this integer seed "
        "('auto' draws one); writes .pytest-run-manifest.json",
    )


def pytest_configure(config):
    raw = config.getoption("--shuffle-seed")
    if raw is None:
        return
    seed = random.randrange(1, 1 << 32) if raw == "auto" else int(raw)
    config.pluginmanager.register(_ShufflePlugin(seed), "repro-shuffle")


class _ShufflePlugin:
    def __init__(self, seed):
        self.seed = seed
        self.order = []
        self.failures = []

    def pytest_report_header(self, config):
        return (
            f"shuffled test order: seed={self.seed} "
            f"(reproduce with --shuffle-seed={self.seed})"
        )

    def pytest_collection_modifyitems(self, config, items):
        random.Random(self.seed).shuffle(items)
        self.order = [item.nodeid for item in items]

    def pytest_runtest_logreport(self, report):
        if report.failed:
            self.failures.append(
                {"nodeid": report.nodeid, "when": report.when}
            )

    def pytest_sessionfinish(self, session, exitstatus):
        manifest = {
            "schema": 1,
            "shuffle_seed": self.seed,
            "exit_status": int(exitstatus),
            "n_tests": len(self.order),
            "failures": self.failures,
            "order": self.order,
        }
        with open(MANIFEST_PATH, "w") as fh:
            json.dump(manifest, fh, indent=2)
            fh.write("\n")
