#!/usr/bin/env python3
"""Tunability demo: sweep diversity transformations and comparison policies.

DPMR's headline property is *tunability* (§1.1): different deployments trade
performance against dependability by picking a diversity transformation and
a state comparison policy.  This example sweeps both axes on the ``mcf``
analog workload and prints the overhead / coverage trade-off surface.

Run:  python examples/tuning.py
"""

from repro.apps import app_factory
from repro.eval import (
    WorkloadHarness,
    coverage,
    diversity_variants,
    policy_variants,
    stdapp_variant,
)
from repro.faultinject import IMMEDIATE_FREE


def main() -> None:
    harness = WorkloadHarness("mcf", app_factory("mcf", 1))
    print(f"golden run: {harness.golden.cycles} cycles, "
          f"output {harness.golden.output_text!r}\n")

    print("DIVERSITY AXIS (all-loads policy, SDS)")
    print(f"{'variant':<20} {'overhead':>9} {'imm-free coverage':>18}")
    print("-" * 50)
    variants = [stdapp_variant()] + diversity_variants("sds")
    for variant in variants:
        oh = harness.overhead(variant)
        records = harness.run_campaign([variant], IMMEDIATE_FREE)
        cov = coverage(records)
        print(f"{variant.name:<20} {oh:>8.2f}x {cov:>17.2f}")

    print()
    print("POLICY AXIS (rearrange-heap diversity, SDS)")
    print(f"{'variant':<20} {'overhead':>9} {'imm-free coverage':>18}")
    print("-" * 50)
    for variant in policy_variants("sds"):
        oh = harness.overhead(variant)
        records = harness.run_campaign([variant], IMMEDIATE_FREE)
        cov = coverage(records)
        print(f"{variant.name:<20} {oh:>8.2f}x {cov:>17.2f}")

    print()
    print("Reading the table: pick the cheapest configuration meeting your")
    print("coverage requirement — e.g. static-10% cuts overhead at some")
    print("coverage cost, while temporal masks cost *more* than all-loads")
    print("(the counter/branch work at every load, §3.8).")


if __name__ == "__main__":
    main()
