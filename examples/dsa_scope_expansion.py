#!/usr/bin/env python3
"""Chapter 5 demo: DSA lets DPMR accept (almost) arbitrary programs.

Plain SDS/MDS forbid int-to-pointer casts — DPMR would have no way to
maintain replica pointers for addresses conjured from integers.  Chapter 5
runs Data Structure Analysis, marks memory whose behaviour cannot be
reasoned about as *unknown*, transitively extends that marking (markX,
Fig. 5.7), and simply excludes those objects from the partial replica.

Run:  python examples/dsa_scope_expansion.py
"""

from repro.core import DpmrCompiler, DpmrTransformError
from repro.dsa import DataStructureAnalysis, DsaReplicationPlan
from repro.ir import INT32, INT64, ModuleBuilder, VOID, verify_module
from repro.machine import run_process


def build_program():
    """A program that hides a pointer inside an integer (Fig. 5.1 style)."""
    mb = ModuleBuilder("i2p-demo")
    mb.declare_external("print_i64", VOID, [INT64])
    fn, b = mb.define("main", INT32)

    # This buffer's address escapes into integer arithmetic.
    sneaky = b.malloc(INT64, b.i64(8))
    with b.for_range(b.i64(8)) as i:
        b.store(b.elem_addr(sneaky, i), b.mul(i, b.i64(5)))
    cookie = b.ptr_to_int(b.elem_addr(sneaky, b.i64(0)))
    # ... later reconstructed: *(int64*)(cookie + 3*8)
    back = b.int_to_ptr(b.add(cookie, b.i64(24)), INT64)
    b.call("print_i64", [b.load(back)])

    # This buffer is perfectly ordinary and stays fully replicated.
    honest = b.malloc(INT64, b.i64(8))
    with b.for_range(b.i64(8)) as i:
        b.store(b.elem_addr(honest, i), b.add(i, b.i64(1)))
    total = b.alloca(INT64)
    b.store(total, b.i64(0))
    with b.for_range(b.i64(8)) as i:
        b.store(total, b.add(b.load(total), b.load(b.elem_addr(honest, i))))
    b.call("print_i64", [b.load(total)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


def main() -> None:
    golden = run_process(build_program())
    print(f"golden: {golden.status.value}, output={golden.output_text!r}\n")

    print("1. Plain MDS (Ch. 4) rejects the program:")
    try:
        DpmrCompiler(design="mds").compile(build_program())
        print("   unexpectedly accepted?!")
    except DpmrTransformError as exc:
        print(f"   DpmrTransformError: {exc}\n")

    print("2. Data Structure Analysis classifies the memory:")
    module = build_program()
    plan = DsaReplicationPlan(module)
    for key, value in plan.summary().items():
        print(f"   {key:<20} {value}")
    print()

    print("3. MDS with the DSA replication plan runs it — the 'sneaky'")
    print("   buffer is excluded from replication, everything else is")
    print("   replicated and checked as usual:")
    result = DpmrCompiler(design="mds", plan=plan).compile(module).run()
    print(f"   status={result.status.value}, output={result.output_text!r}, "
          f"overhead={result.cycles / golden.cycles:.2f}x")
    assert result.output_text == golden.output_text


if __name__ == "__main__":
    main()
