#!/usr/bin/env python3
"""Diverse Partial Replication beyond memory errors: the §1.2 banking race.

A queue of account requests is drained by worker threads.  The system
specification requires same-account requests to be processed in arrival
order; overdrawn accounts pay a $15 penalty.  A racy implementation lets a
fast withdrawal overtake a slow deposit — Alice deposits $200 then withdraws
$250 from a $100 balance, and the buggy interleaving charges her a spurious
penalty (Fig. 1.2a).

DPR replicates the schedule-relevant component and re-runs it under a
*diversified scheduler*; comparing final balances detects the race
(Fig. 1.2b).

Run:  python examples/banking_race.py
"""

from repro.dpr import paper_scenario, run_with_dpr


def show(title, outcome):
    print(title)
    print(f"  original schedule committed: {outcome.original_commit_order}")
    print(f"  diverse  schedule committed: {outcome.replica_commit_order}")
    print(f"  original balances: {outcome.original_balances}")
    print(f"  replica  balances: {outcome.replica_balances}")
    verdict = "RACE DETECTED" if outcome.detected else "no divergence"
    print(f"  => {verdict}\n")


def main() -> None:
    requests = paper_scenario()
    balances = {"alice": 100}
    print("Scenario (Fig. 1.2): balance $100; X = deposit $200 (slow check")
    print("clearing), then Y = withdraw $250 (fast).\n")

    show(
        "Correct implementation (per-account ordering enforced):",
        run_with_dpr(requests, balances, racy=False),
    )
    show(
        "Racy implementation (ordering constraint dropped):",
        run_with_dpr(requests, balances, racy=True),
    )
    print("The correct system is schedule-invariant, so the diverse replica")
    print("agrees ($50).  Under the race, the original execution charges the")
    print("overdraft penalty ($35) while the diverse replica does not — the")
    print("state comparison exposes the bug without ever re-running the same")
    print("interleaving twice.")


if __name__ == "__main__":
    main()
