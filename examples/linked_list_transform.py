#!/usr/bin/env python3
"""The paper's running example: transforming createNode()/getSum().

Reproduces Figures 2.9/2.10 (SDS) and 4.1/4.2 (MDS): builds the linked-list
program, prints the original and transformed IR for ``createNode``, and runs
all three builds to show behavioural equivalence.

Run:  python examples/linked_list_transform.py
"""

from repro.core import DpmrCompiler
from repro.ir import format_function
from repro.machine import run_process

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.conftest import build_linked_list_module  # noqa: E402


def main() -> None:
    module = build_linked_list_module(n_nodes=5)

    print("=" * 70)
    print("ORIGINAL createNode (cf. Fig 2.9a)")
    print("=" * 70)
    print(format_function(module.functions["createNode"]))

    sds = DpmrCompiler(design="sds").compile(build_linked_list_module())
    print()
    print("=" * 70)
    print("SDS-TRANSFORMED createNode (cf. Fig 2.9b)")
    print("  - rvSop parameter returns the ROP/NSOP of the new node")
    print("  - three allocations: application, replica, shadow")
    print("  - pointer stores mirror to replica and fill the shadow pair")
    print("=" * 70)
    print(format_function(sds.module.functions["createNode"]))

    mds = DpmrCompiler(design="mds").compile(build_linked_list_module())
    print()
    print("=" * 70)
    print("MDS-TRANSFORMED createNode (cf. Fig 4.1b)")
    print("  - rvRopPtr parameter returns the ROP directly")
    print("  - two allocations: application and replica (no shadow)")
    print("  - pointer stores mirror the ROP into replica memory")
    print("=" * 70)
    print(format_function(mds.module.functions["createNode"]))

    print()
    print("=" * 70)
    print("BEHAVIOURAL EQUIVALENCE")
    print("=" * 70)
    golden = run_process(module)
    print(f"golden: status={golden.status.value} output={golden.output_text!r} "
          f"cycles={golden.cycles}")
    for name, build in (("sds", sds), ("mds", mds)):
        r = build.run()
        print(
            f"{name:6}: status={r.status.value} output={r.output_text!r} "
            f"cycles={r.cycles} (overhead {r.cycles / golden.cycles:.2f}x)"
        )
        assert r.output_text == golden.output_text


if __name__ == "__main__":
    main()
