#!/usr/bin/env python3
"""Quickstart: build a program, transform it with DPMR, detect a bug.

Builds a small IR program with a latent heap buffer overflow, runs it
natively (silent corruption), then runs it under SDS-based DPMR (detected).

Run:  python examples/quickstart.py
"""

from repro.core import DpmrCompiler
from repro.ir import INT32, INT64, ModuleBuilder, VOID, verify_module
from repro.machine import ExitStatus, run_process


def build_program(n_alloc: int, n_write: int):
    """Sum an array after (possibly) overflowing its neighbour."""
    mb = ModuleBuilder("quickstart")
    mb.declare_external("print_i64", VOID, [INT64])
    fn, b = mb.define("main", INT32)

    table = b.malloc(INT64, b.i64(n_alloc))  # the buggy buffer
    totals = b.malloc(INT64, b.i64(n_alloc))  # its innocent neighbour
    with b.for_range(b.i64(n_alloc)) as i:
        b.store(b.elem_addr(totals, i), b.i64(10))
    # The bug: writes n_write elements into an n_alloc-element buffer.
    with b.for_range(b.i64(n_write)) as i:
        b.store(b.elem_addr(table, i), i)
    acc = b.alloca(INT64)
    b.store(acc, b.i64(0))
    with b.for_range(b.i64(n_alloc)) as i:
        b.store(acc, b.add(b.load(acc), b.load(b.elem_addr(totals, i))))
    b.call("print_i64", [b.load(acc)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


def main() -> None:
    print("== clean program ==")
    clean = build_program(8, 8)
    golden = run_process(clean)
    print(f"native run : {golden.status.value}, output={golden.output_text!r}")
    build = DpmrCompiler(design="sds").compile(build_program(8, 8))
    r = build.run()
    print(
        f"DPMR run   : {r.status.value}, output={r.output_text!r}, "
        f"overhead={r.cycles / golden.cycles:.2f}x"
    )
    assert r.output_text == golden.output_text

    print("\n== buggy program (16-element write into an 8-element buffer) ==")
    buggy_native = run_process(build_program(8, 16))
    print(
        f"native run : {buggy_native.status.value}, "
        f"output={buggy_native.output_text!r}   <- silently corrupted!"
    )
    # Implicit diversity alone (no explicit transformation) catches this:
    build = DpmrCompiler(design="sds").compile(build_program(8, 16))
    r = build.run()
    print(f"DPMR run   : {r.status.value}  ({r.detail})")
    assert r.status is ExitStatus.DPMR_DETECTED
    print("\nDPMR caught the overflow that native execution silently absorbed.")


if __name__ == "__main__":
    main()
