"""Workload application tests: determinism, DPMR equivalence, fault sites."""

import pytest

from repro.apps import APP_BUILDERS, WORKLOAD_ORDER, app_factory
from repro.core import DpmrCompiler, RearrangeHeap
from repro.faultinject import Campaign, HEAP_ARRAY_RESIZE, IMMEDIATE_FREE
from repro.ir import verify_module
from repro.machine import ExitStatus, run_process

APPS = list(APP_BUILDERS)


@pytest.mark.parametrize("name", APPS)
def test_app_verifies(name):
    verify_module(APP_BUILDERS[name](1))


@pytest.mark.parametrize("name", APPS)
def test_app_golden_run_succeeds(name):
    r = run_process(APP_BUILDERS[name](1))
    assert r.status is ExitStatus.NORMAL, (name, r.detail)
    assert r.exit_code == 0
    assert len(r.output_text) > 2


@pytest.mark.parametrize("name", APPS)
def test_app_deterministic(name):
    r1 = run_process(APP_BUILDERS[name](1))
    r2 = run_process(APP_BUILDERS[name](1))
    assert r1.output_text == r2.output_text
    assert r1.cycles == r2.cycles


@pytest.mark.parametrize("name", APPS)
@pytest.mark.parametrize("design", ["sds", "mds"])
def test_app_output_preserved_under_dpmr(name, design):
    golden = run_process(APP_BUILDERS[name](1))
    build = DpmrCompiler(design=design).compile(APP_BUILDERS[name](1))
    r = build.run()
    assert r.status is ExitStatus.NORMAL, (name, design, r.detail)
    assert r.output_text == golden.output_text


@pytest.mark.parametrize("name", APPS)
def test_app_output_preserved_under_rearrange_heap(name):
    golden = run_process(APP_BUILDERS[name](1))
    build = DpmrCompiler(design="sds", diversity=RearrangeHeap()).compile(
        APP_BUILDERS[name](1)
    )
    r = build.run(seed=11)
    assert r.status is ExitStatus.NORMAL, (name, r.detail)
    assert r.output_text == golden.output_text


@pytest.mark.parametrize("name", APPS)
def test_app_has_fault_sites(name):
    resize = Campaign(app_factory(name), HEAP_ARRAY_RESIZE)
    free = Campaign(app_factory(name), IMMEDIATE_FREE)
    assert len(resize.sites) >= 1
    assert len(free.sites) >= 2


@pytest.mark.parametrize("name", APPS)
def test_app_scales(name):
    small = run_process(APP_BUILDERS[name](1))
    big = run_process(APP_BUILDERS[name](2))
    assert big.cycles > small.cycles
    assert big.status is ExitStatus.NORMAL


def test_workload_order_matches_paper():
    assert WORKLOAD_ORDER == ("art", "bzip2", "equake", "mcf")


def test_pointer_heavy_apps_have_larger_sds_mds_gap():
    """§4.5: MDS's advantage over SDS concentrates on equake/mcf because a
    larger fraction of their allocations hold pointers."""
    gaps = {}
    for name in APPS:
        golden = run_process(APP_BUILDERS[name](1)).cycles
        sds = DpmrCompiler(design="sds").compile(APP_BUILDERS[name](1)).run().cycles
        mds = DpmrCompiler(design="mds").compile(APP_BUILDERS[name](1)).run().cycles
        gaps[name] = (sds - mds) / golden
    light = max(gaps["art"], gaps["bzip2"])
    heavy = min(gaps["equake"], gaps["mcf"])
    assert heavy > light


def test_apps_allocate_and_release_heap():
    """Every app frees what it allocates (no leaks in the golden run)."""
    from repro.machine.interpreter import Machine

    for name in APPS:
        machine = Machine(APP_BUILDERS[name](1))
        machine.run("main", _main_args(machine, name))
        assert machine.heap.live_chunks == 0, name


def _main_args(machine, name):
    return []
