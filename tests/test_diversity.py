"""Diversity transformation tests (Table 2.8, §2.6)."""

import pytest

from repro.core import (
    DpmrCompiler,
    DpmrRuntime,
    NoDiversity,
    PadMalloc,
    RearrangeHeap,
    ReplicationDesign,
    ZeroBeforeFree,
    standard_diversity_suite,
)
from repro.machine import Memory
from repro.machine.interpreter import Machine
from repro.ir import INT32, Module, ModuleBuilder
from tests.conftest import build_sum_module


def _bare_machine():
    mb = ModuleBuilder()
    fn, b = mb.define("main", INT32)
    b.ret(b.i32(0))
    return Machine(mb.module, seed=1)


class TestPadMalloc:
    def test_replica_chunks_are_padded(self):
        m = _bare_machine()
        policy = PadMalloc(256)
        addr = policy.replica_malloc(m, 32)
        assert m.heap.payload_size(addr) >= 32 + 256

    def test_pad_sizes_match_paper(self):
        names = {p.name for p in standard_diversity_suite()}
        for pad in (8, 32, 256, 1024):
            assert f"pad-malloc-{pad}" in names

    def test_invalid_pad_rejected(self):
        with pytest.raises(ValueError):
            PadMalloc(0)


class TestZeroBeforeFree:
    def test_payload_zeroed_before_free(self):
        m = _bare_machine()
        policy = ZeroBeforeFree()
        addr = m.heap_malloc(32)
        m.memory.write_bytes(addr, b"\xAA" * 32)
        policy.replica_free(m, addr)
        # The first 8 bytes now hold the free-list link; the rest must be 0.
        assert m.memory.read_bytes(addr + 16, 16) == b"\x00" * 16

    def test_free_null_is_safe(self):
        m = _bare_machine()
        ZeroBeforeFree().replica_free(m, 0)

    def test_invalid_free_still_aborts(self):
        from repro.machine import ExecutionTrap

        m = _bare_machine()
        with pytest.raises(ExecutionTrap):
            ZeroBeforeFree().replica_free(m, 0x100001)


class TestRearrangeHeap:
    def test_randomizes_placement(self):
        """With rearrange-heap the replica usually does not directly follow
        the application object (implicit layout broken up)."""
        placements = set()
        for seed in range(6):
            m = _bare_machine()
            m.rng.seed(seed)
            policy = RearrangeHeap()
            app = m.heap_malloc(32)
            rep = policy.replica_malloc(m, 32)
            placements.add(rep - app)
        assert len(placements) > 1

    def test_dummy_buffers_are_freed(self):
        m = _bare_machine()
        live_before = m.heap.live_chunks
        RearrangeHeap().replica_malloc(m, 32)
        assert m.heap.live_chunks == live_before + 1

    def test_bounded_dummies(self):
        assert RearrangeHeap.MAX_DUMMIES == 20  # Table 2.8's 20-slot buffer


class TestOverheadOrdering:
    def test_paper_overhead_shape(self):
        """§3.7: no-diversity/zero-before-free cheapest; pad-malloc-1024
        worst among pad-mallocs."""
        results = {}
        for policy in (NoDiversity(), ZeroBeforeFree(), PadMalloc(8), PadMalloc(1024)):
            build = DpmrCompiler(design="sds", diversity=policy).compile(
                build_sum_module(30)
            )
            results[policy.name] = build.run().cycles
        assert results["no-diversity"] <= results["pad-malloc-8"]
        assert results["pad-malloc-8"] <= results["pad-malloc-1024"]

    def test_rearrange_heap_costs_more_than_no_diversity(self):
        base = DpmrCompiler(design="sds").compile(build_sum_module(30)).run()
        rearr = (
            DpmrCompiler(design="sds", diversity=RearrangeHeap())
            .compile(build_sum_module(30))
            .run(seed=2)
        )
        assert rearr.cycles > base.cycles


class TestSuite:
    def test_standard_suite_has_seven_variants(self):
        suite = standard_diversity_suite()
        assert len(suite) == 7
        assert suite[0].name == "no-diversity"

    def test_all_variants_preserve_output(self):
        from repro.machine import ExitStatus, run_process

        golden = run_process(build_sum_module(12))
        for policy in standard_diversity_suite():
            r = (
                DpmrCompiler(design="sds", diversity=policy)
                .compile(build_sum_module(12))
                .run(seed=4)
            )
            assert r.status is ExitStatus.NORMAL, (policy.name, r.detail)
            assert r.output_text == golden.output_text, policy.name
