"""The ASCII report renderers (eval/report.py).

Fabricated inputs, exact expectations on the load-bearing parts: which
rows appear, placeholder behaviour for missing cells, and the new
counter/manifest sections staying stable whether observability was on.
"""

from __future__ import annotations

from repro.eval import (
    CoverageComponents,
    conditional_coverage_table,
    counter_table,
    coverage_table,
    latency_table,
    manifest_section,
    overhead_table,
)
from repro.obs import JobManifest, RunManifest


class TestCoverageTables:
    def test_coverage_table_rows_follow_given_order(self):
        rows = {
            ("stdapp", "mcf"): CoverageComponents(0.5, 0.25, 0.0, 8),
            ("no-diversity", "mcf"): CoverageComponents(0.25, 0.25, 0.5, 8),
        }
        text = coverage_table(
            "Fig X", rows, ["no-diversity", "stdapp"], ["mcf", "art"]
        )
        lines = text.splitlines()
        assert lines[0] == "Fig X"
        body = [l for l in lines if l.startswith(("stdapp", "no-diversity"))]
        # Requested order, missing (variant, app) cells silently skipped.
        assert [l.split()[0] for l in body] == ["no-diversity", "stdapp"]
        assert "0.50" in body[0] and body[0].endswith("8")

    def test_conditional_coverage_table(self):
        rows = {"stdapp": CoverageComponents(0.0, 1.0, 0.0, 4)}
        text = conditional_coverage_table("Cond", rows, ["stdapp", "missing"])
        assert "stdapp" in text
        assert "missing" not in text
        assert "1.00" in text

    def test_overhead_table_placeholder_for_missing_cells(self):
        rows = {("golden", "mcf"): 1.0, ("no-diversity", "mcf"): 2.5}
        text = overhead_table(
            "Overhead", rows, ["golden", "no-diversity"], ["mcf", "art"]
        )
        assert "1.00x" in text and "2.50x" in text
        assert "--" in text  # the art column has no data

    def test_latency_table_scales_to_kcycles(self):
        rows = {("no-diversity", "mcf"): 12_500.0, ("stdapp", "mcf"): None}
        text = latency_table("T2D", rows, ["no-diversity", "stdapp"], ["mcf"])
        assert "(kcycles)" in text.splitlines()[0]
        assert "12.50" in text
        assert "--" in text  # None renders as missing


class TestCounterTable:
    def test_empty_totals_render_stable_placeholder(self):
        text = counter_table({})
        assert "observability disabled" in text

    def test_totals_grouped_and_formatted(self):
        text = counter_table(
            {
                "op.load": 1_234_567,
                "op.store": 10,
                "dpmr.compare": 42,
                "heap.alloc": 7,
            }
        )
        lines = text.splitlines()
        assert "1,234,567" in text
        # Sorted keys, one blank line between key-prefix groups.
        keys = [l.split()[0] for l in lines[2:] if l]
        assert keys == ["dpmr.compare", "heap.alloc", "op.load", "op.store"]
        assert lines.count("") == 2


class TestManifestSection:
    def _manifest(self) -> RunManifest:
        m = RunManifest(
            mode="campaign",
            requested_jobs=4,
            effective_jobs=1,
            worker_reason="serial",
            serial_fallback="machine reports 1 cpu(s)",
            incremental=True,
            trace_path="campaign.jsonl",
            counters_enabled=True,
            timeout_factor=20,
            n_jobs=1,
            n_items=32,
            n_records=32,
            jobs=[
                JobManifest(
                    workload="mcf",
                    kind="heap-array-resize",
                    n_sites=2,
                    n_variants=8,
                    n_seeds=2,
                    cache_hits=30,
                    cache_misses=2,
                    builds_cached=16,
                )
            ],
            status_counts={"normal": 20, "dpmr-detected": 12},
            wall_s=1.5,
        )
        m.path = "campaign.jsonl.manifest.json"
        return m

    def test_every_decision_is_visible(self):
        text = manifest_section(self._manifest())
        assert "mode=campaign records=32 items=32" in text
        assert "requested=4 effective=1 (serial)" in text
        assert "serial fallback: machine reports 1 cpu(s)" in text
        assert "incremental=on" in text
        assert "trace=campaign.jsonl" in text
        assert "counters=on" in text
        assert "timeout_factor=20" in text
        assert "job mcf/heap-array-resize" in text
        assert "cache hits=30 misses=2" in text
        assert "dpmr-detected=12" in text
        assert "persisted: campaign.jsonl.manifest.json" in text

    def test_quiet_manifest_omits_optional_lines(self):
        m = RunManifest(mode="clean", worker_reason="serial requested (jobs=1)")
        text = manifest_section(m)
        assert "serial fallback" not in text
        assert "trace=" not in text
        assert "persisted" not in text
        assert "statuses" not in text
