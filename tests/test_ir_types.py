"""Type system tests: sizes, alignment, layout, and the paper's helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import (
    ArrayType,
    FLOAT32,
    FLOAT64,
    FunctionType,
    INT16,
    INT32,
    INT64,
    INT8,
    IntType,
    POINTER_SIZE,
    PointerType,
    StructType,
    UnionType,
    VOID,
    alignof,
    array,
    contains_pointer_outside_function_types,
    field_offset,
    ptr,
    scalarize,
    sizeof,
    walk,
)


class TestPrimitives:
    def test_int_sizes(self):
        assert sizeof(INT8) == 1
        assert sizeof(INT16) == 2
        assert sizeof(INT32) == 4
        assert sizeof(INT64) == 8

    def test_float_sizes(self):
        assert sizeof(FLOAT32) == 4
        assert sizeof(FLOAT64) == 8

    def test_pointer_size_is_predefined(self):
        assert sizeof(ptr(INT8)) == POINTER_SIZE
        assert sizeof(ptr(StructType([INT64] * 10))) == POINTER_SIZE

    def test_int_types_are_interned(self):
        assert IntType(32) is INT32

    def test_invalid_int_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(24)

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            sizeof(VOID)

    def test_scalar_classification(self):
        assert INT32.is_scalar()
        assert FLOAT64.is_scalar()
        assert ptr(INT8).is_scalar()
        assert not StructType([INT32]).is_scalar()
        assert not array(INT8, 4).is_scalar()


class TestAggregates:
    def test_array_size(self):
        assert sizeof(array(INT32, 5)) == 20

    def test_unsized_array_has_no_size(self):
        with pytest.raises(TypeError):
            sizeof(array(INT8))

    def test_struct_equivalence_to_array(self):
        # The paper: struct{int32;int32;int32;} is equivalent to int32[3].
        s = StructType([INT32, INT32, INT32])
        assert sizeof(s) == sizeof(array(INT32, 3))

    def test_struct_padding(self):
        s = StructType([INT8, INT64])
        assert field_offset(s, 0) == 0
        assert field_offset(s, 1) == 8
        assert sizeof(s) == 16

    def test_struct_tail_padding(self):
        s = StructType([INT64, INT8])
        assert sizeof(s) == 16  # padded to alignment 8

    def test_union_size_is_max_member(self):
        u = UnionType([INT8, INT64, array(INT16, 3)])
        assert sizeof(u) == 8

    def test_alignment(self):
        assert alignof(INT8) == 1
        assert alignof(INT64) == 8
        assert alignof(ptr(INT8)) == POINTER_SIZE
        assert alignof(StructType([INT8, INT32])) == 4

    def test_field_offset_out_of_range(self):
        with pytest.raises(IndexError):
            field_offset(StructType([INT32]), 3)


class TestNamedStructs:
    def test_recursive_struct(self):
        ll = StructType.opaque("LL")
        ll.set_fields([INT32, PointerType(ll)])
        assert sizeof(ll) == 16
        assert field_offset(ll, 1) == 8

    def test_opaque_struct_rejects_field_access(self):
        s = StructType.opaque("X")
        with pytest.raises(ValueError):
            _ = s.fields

    def test_double_body_rejected(self):
        s = StructType.opaque("X")
        s.set_fields([INT32])
        with pytest.raises(ValueError):
            s.set_fields([INT64])

    def test_named_structs_compare_by_identity(self):
        a = StructType([INT32], name="A")
        b = StructType([INT32], name="A")
        assert a != b
        assert a == a

    def test_literal_structs_compare_structurally(self):
        assert StructType([INT32, INT8]) == StructType([INT32, INT8])
        assert StructType([INT32]) != StructType([INT64])

    def test_named_struct_hashable_when_recursive(self):
        ll = StructType.opaque("LL2")
        ll.set_fields([PointerType(ll)])
        assert ll in {ll}


class TestTypePredicates:
    def test_contains_pointer_basic(self):
        assert contains_pointer_outside_function_types(ptr(INT8))
        assert not contains_pointer_outside_function_types(INT32)
        assert contains_pointer_outside_function_types(
            StructType([INT32, ptr(INT8)])
        )
        assert not contains_pointer_outside_function_types(
            StructType([INT32, FLOAT64])
        )

    def test_function_params_do_not_count_as_pointers(self):
        # A *function type* with pointer params contains no data pointer...
        ft = FunctionType(VOID, [ptr(INT8)])
        assert not contains_pointer_outside_function_types(ft)
        # ...but a function *pointer* is itself a pointer.
        assert contains_pointer_outside_function_types(ptr(ft))

    def test_contains_pointer_recursive_type_terminates(self):
        ll = StructType.opaque("LL3")
        ll.set_fields([INT32, PointerType(ll)])
        assert contains_pointer_outside_function_types(ll)

    def test_scalarize(self):
        s = StructType([INT32, array(INT8, 2), StructType([FLOAT64])])
        assert scalarize(s) == (INT32, INT8, INT8, FLOAT64)

    def test_scalarize_union_uses_largest_member(self):
        u = UnionType([INT8, StructType([INT32, INT32])])
        assert scalarize(u) == (INT32, INT32)

    def test_walk_visits_components(self):
        s = StructType([INT32, ptr(FLOAT64)])
        seen = list(walk(s))
        assert INT32 in seen and FLOAT64 in seen

    def test_walk_handles_cycles(self):
        ll = StructType.opaque("LL4")
        ll.set_fields([PointerType(ll)])
        assert len(list(walk(ll))) < 10


@given(st.lists(st.sampled_from([INT8, INT16, INT32, INT64, FLOAT64]), min_size=1, max_size=8))
def test_struct_size_at_least_sum_of_fields(fields):
    """Padding can only grow a struct, never shrink it."""
    s = StructType(fields)
    assert sizeof(s) >= sum(sizeof(f) for f in fields)
    assert sizeof(s) % alignof(s) == 0


@given(st.lists(st.sampled_from([INT8, INT16, INT32, INT64, FLOAT64]), min_size=1, max_size=8))
def test_field_offsets_monotone_and_aligned(fields):
    s = StructType(fields)
    offsets = [field_offset(s, i) for i in range(len(fields))]
    assert offsets == sorted(offsets)
    for off, f in zip(offsets, fields):
        assert off % alignof(f) == 0


@given(st.integers(min_value=0, max_value=64), st.sampled_from([INT8, INT32, INT64]))
def test_array_size_linear(n, elem):
    assert sizeof(array(elem, n)) == n * sizeof(elem)
