"""The curated public API surface.

``repro.__all__`` (and the layer ``__all__`` lists it re-exports from)
is the stability promise: every name must be importable, and the promise
must not silently grow or shrink — additions and removals go through
this file.  Also pins the post-soak removal of the PR-4 kwarg aliases:
``ExecConfig`` is the only execution-knob surface.
"""

import importlib

import pytest

import repro


def _exports(module_name):
    module = importlib.import_module(module_name)
    assert isinstance(module.__all__, list) and module.__all__
    return module, module.__all__


class TestTopLevelSurface:
    def test_every_name_importable(self):
        module, names = _exports("repro")
        for name in names:
            assert getattr(module, name) is not None, name

    def test_no_duplicates_and_sorted(self):
        _, names = _exports("repro")
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_star_import_honours_all(self):
        namespace = {}
        exec("from repro import *", namespace)
        public = {k for k in namespace if not k.startswith("_")}
        assert public == set(repro.__all__)

    def test_service_types_reachable_from_top_level(self):
        from repro import ServiceClient, ServiceDaemon, ServiceError

        assert issubclass(ServiceError, RuntimeError)
        assert callable(ServiceClient) and callable(ServiceDaemon)

    def test_request_types_reachable_from_top_level(self):
        from repro import CampaignRequest, CampaignResult, request_jobs, run

        assert callable(request_jobs) and callable(run)
        assert CampaignRequest.__dataclass_fields__.keys() >= {
            "workloads",
            "kinds",
            "variants",
            "seeds",
            "max_sites",
        }
        assert CampaignResult is not None


class TestLayerSurfaces:
    @pytest.mark.parametrize(
        "module_name",
        ["repro.eval", "repro.service", "repro.obs", "repro.core"],
    )
    def test_layer_all_importable(self, module_name):
        module, names = _exports(module_name)
        for name in names:
            assert getattr(module, name) is not None, f"{module_name}.{name}"

    def test_eval_all_covers_top_level_reexports(self):
        # Everything repro re-exports from repro.eval is itself public there.
        _, eval_names = _exports("repro.eval")
        from_eval = {
            "CampaignRequest",
            "CampaignResult",
            "ExecConfig",
            "ExperimentRecord",
            "ResultStore",
            "Variant",
            "WorkloadHarness",
            "diversity_variants",
            "policy_variants",
            "request_jobs",
            "resolve_variants",
            "run",
            "stdapp_variant",
            "variant_registry",
        }
        assert from_eval <= set(eval_names)


class TestRemovedKnobSurface:
    """The deprecated per-call aliases are gone, not just warning."""

    def test_merge_deprecated_removed(self):
        with pytest.raises(ImportError):
            from repro.eval.config import merge_deprecated  # noqa: F401

    def test_no_alias_kwargs_in_signatures(self):
        import inspect

        from repro.eval import run_campaign_jobs
        from repro.eval.experiment import WorkloadHarness

        removed = {
            # run_campaign_jobs's first positional is the job *list*;
            # the removed alias there was processes=.
            run_campaign_jobs: ("processes", "incremental"),
            WorkloadHarness.run_campaign: ("jobs", "processes", "incremental"),
        }
        for func, gone_names in removed.items():
            params = inspect.signature(func).parameters
            for gone in gone_names:
                assert gone not in params, f"{func.__qualname__} kept {gone}="
            assert "config" in params
