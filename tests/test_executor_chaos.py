"""Chaos tests for the fault-tolerant campaign executor.

Each test injects one failure mode through the test-only hook
``repro.eval.parallel._CHAOS_HOOK`` (inherited by forked workers) and
asserts the two halves of the resilience contract:

* surviving records are bit-identical (``ExperimentRecord.signature``)
  to a clean serial run, and
* every recovery decision — worker restart, retry, experiment timeout,
  quarantine, store hit — is visible in the run manifest.

File latches (``O_CREAT | O_EXCL``) make a chaos action fire exactly
once across worker respawns and retries.
"""

import multiprocessing
import os
import signal
import time
from unittest import mock

import pytest

from repro.apps import app_factory
from repro.eval import (
    ExecConfig,
    WorkloadHarness,
    diversity_variants,
    run,
    stdapp_variant,
)
from repro.eval import parallel as par
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="supervised workers require the fork start method",
)

# mcf / heap-array-resize: 2 sites x 3 variants x 1 seed = 6 experiments.
KIND = HEAP_ARRAY_RESIZE
N_SITES = 2
N_VARIANTS = 3


def make_harness():
    return WorkloadHarness("mcf", app_factory("mcf", 1), seeds=(0,))


def make_variants():
    return [stdapp_variant()] + diversity_variants("sds")[: N_VARIANTS - 1]


@pytest.fixture(scope="module")
def harness():
    return make_harness()


@pytest.fixture(scope="module")
def variants():
    return make_variants()


@pytest.fixture(scope="module")
def serial_baseline(harness, variants):
    """Signatures of a clean serial run — the bit-identity reference."""
    res = run(harness, variants, kind=KIND, config=ExecConfig(jobs=1))
    assert len(res.records) == N_SITES * N_VARIANTS
    return [r.signature() for r in res.records]


def run_with_chaos(harness, variants, hook, config, kind=KIND):
    """Run a campaign with the chaos hook installed, forcing the
    supervised parallel path even though the campaign is tiny."""
    with mock.patch.object(par, "_CHAOS_HOOK", hook), mock.patch.object(
        par, "MIN_ITEMS_PER_WORKER", 1
    ), mock.patch("os.cpu_count", return_value=4):
        return run(harness, variants, kind=kind, config=config)


def latch_once(latch_path):
    """True exactly once across every process sharing ``latch_path``."""
    try:
        os.close(os.open(str(latch_path), os.O_CREAT | os.O_EXCL))
        return True
    except FileExistsError:
        return False


class TestWorkerCrash:
    def test_sigkilled_worker_is_restarted_and_item_retried(
        self, harness, variants, serial_baseline, tmp_path
    ):
        latch = tmp_path / "killed"

        def chaos(item):
            if item == (0, 1, 1, 0) and latch_once(latch):
                os.kill(os.getpid(), signal.SIGKILL)

        res = run_with_chaos(
            harness,
            variants,
            chaos,
            ExecConfig(jobs=2, retries=2, retry_backoff_s=0.01),
        )
        m = res.manifest
        assert m.effective_jobs == 2
        assert m.worker_restarts >= 1
        assert m.retries >= 1
        assert not m.quarantined
        assert [r.signature() for r in res.records] == serial_baseline

    def test_wedged_experiment_hits_timeout_and_is_retried(
        self, harness, variants, serial_baseline, tmp_path
    ):
        latch = tmp_path / "wedged"

        def chaos(item):
            if item == (0, 0, 2, 0) and latch_once(latch):
                time.sleep(60.0)  # supervisor kills us long before this

        res = run_with_chaos(
            harness,
            variants,
            chaos,
            ExecConfig(
                jobs=2, retries=2, exp_timeout_s=0.4, retry_backoff_s=0.01
            ),
        )
        m = res.manifest
        assert m.exp_timeouts >= 1
        assert m.worker_restarts >= 1
        assert not m.quarantined
        assert [r.signature() for r in res.records] == serial_baseline


class TestQuarantine:
    @pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "parallel"])
    def test_poisoned_site_is_quarantined_not_fatal(
        self, harness, variants, serial_baseline, jobs
    ):
        def chaos(item):
            if item[:2] == (0, 0):
                raise RuntimeError("poisoned site")

        res = run_with_chaos(
            harness,
            variants,
            chaos,
            ExecConfig(jobs=jobs, retries=1, retry_backoff_s=0.01),
        )
        m = res.manifest
        assert len(m.quarantined) == 1
        q = m.quarantined[0]
        assert q.workload == "mcf"
        assert q.kind == KIND
        assert q.attempts == 2  # first try + one retry
        assert "poisoned site" in q.reason
        assert m.retries >= 1
        # Survivors are the serial records minus the quarantined site,
        # bit-identical and in the same order.
        survivors = [
            sig for sig in serial_baseline if sig[2] != q.site
        ]
        assert len(survivors) == (N_SITES - 1) * N_VARIANTS
        assert [r.signature() for r in res.records] == survivors

    def test_retries_exhausted_counts_every_attempt(self, harness, variants):
        def chaos(item):
            if item[:2] == (0, 1):
                raise RuntimeError("flaky infrastructure")

        res = run_with_chaos(
            harness,
            variants,
            chaos,
            ExecConfig(jobs=1, retries=3, retry_backoff_s=0.0),
        )
        m = res.manifest
        assert len(m.quarantined) == 1
        assert m.quarantined[0].attempts == 4
        assert m.retries == 3


def _interrupted_campaign_child(store_dir, kind):
    """Child-process body: a serial campaign writing into the store.

    The parent SIGKILLs this process mid-campaign; atomic store writes
    guarantee every entry it managed to publish is complete.
    """
    config = ExecConfig(jobs=1, store_path=store_dir)
    run(make_harness(), make_variants(), kind=kind, config=config)


def _store_entry_count(store_dir):
    # Count only published entries: a SIGKILL mid-put can orphan a
    # ".tmp-*.json" scratch file, which the store itself never serves.
    n = 0
    for sub in os.listdir(store_dir) if os.path.isdir(store_dir) else ():
        subdir = os.path.join(store_dir, sub)
        if os.path.isdir(subdir):
            n += sum(
                1
                for name in os.listdir(subdir)
                if name.endswith(".json") and not name.startswith(".tmp-")
            )
    return n


class TestInterruptedResume:
    @pytest.mark.parametrize("kind", [HEAP_ARRAY_RESIZE, IMMEDIATE_FREE])
    def test_sigkilled_campaign_resumes_bit_identical(self, tmp_path, kind):
        """The PR's acceptance criterion: a campaign interrupted by SIGKILL,
        resumed via the store, matches an uninterrupted serial run exactly,
        with the resume visible as store hits in the manifest."""
        store_dir = str(tmp_path / "store")
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(
            target=_interrupted_campaign_child, args=(store_dir, kind)
        )
        child.start()
        # Wait for partial progress, then kill mid-campaign.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if _store_entry_count(store_dir) >= 2 or not child.is_alive():
                break
            time.sleep(0.01)
        interrupted = child.is_alive()
        if interrupted:
            os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=10.0)
        partial = _store_entry_count(store_dir)
        assert partial >= 2

        # Resume: same campaign, same store, this process.
        harness = make_harness()
        variants = make_variants()
        resumed = run(
            harness,
            variants,
            kind=kind,
            config=ExecConfig(jobs=1, store_path=store_dir),
        )
        clean = run(harness, variants, kind=kind, config=ExecConfig(jobs=1))
        assert [r.signature() for r in resumed.records] == [
            r.signature() for r in clean.records
        ]
        m = resumed.manifest
        assert m.store_hits >= min(partial, len(clean.records))
        assert m.store_hits + m.store_misses == len(clean.records)
        if interrupted:
            assert m.store_misses > 0  # the kill really interrupted work
        # A third run is served entirely from the store.
        again = run(
            harness,
            variants,
            kind=kind,
            config=ExecConfig(jobs=1, store_path=store_dir),
        )
        assert again.manifest.store_hits == len(clean.records)
        assert again.manifest.store_misses == 0
        assert [r.signature() for r in again.records] == [
            r.signature() for r in clean.records
        ]

    def test_parallel_resume_matches_serial(self, tmp_path):
        """Cold parallel run with chaos, warm serial resume: identical."""
        store_dir = str(tmp_path / "store")
        latch = tmp_path / "killed"

        def chaos(item):
            if item == (0, 0, 1, 0) and latch_once(latch):
                os.kill(os.getpid(), signal.SIGKILL)

        harness = make_harness()
        variants = make_variants()
        cold = run_with_chaos(
            harness,
            variants,
            chaos,
            ExecConfig(
                jobs=2, retries=2, retry_backoff_s=0.01, store_path=store_dir
            ),
        )
        assert cold.manifest.worker_restarts >= 1
        warm = run(
            harness,
            variants,
            kind=KIND,
            config=ExecConfig(jobs=1, store_path=store_dir),
        )
        assert warm.manifest.store_hits == len(cold.records)
        assert warm.manifest.store_misses == 0
        assert [r.signature() for r in warm.records] == [
            r.signature() for r in cold.records
        ]
