"""Simulated memory tests: typed access, traps, garbage initialization."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import FLOAT32, FLOAT64, INT16, INT32, INT64, INT8, VOID, PointerType
from repro.machine import Memory, MemoryTrap


@pytest.fixture
def mem():
    return Memory()


class TestScalarAccess:
    def test_int_roundtrip(self, mem):
        addr = mem.heap.base
        mem.write_scalar(addr, INT32, -12345)
        assert mem.read_scalar(addr, INT32) == -12345

    def test_int8_wraps(self, mem):
        addr = mem.heap.base
        mem.write_scalar(addr, INT8, 200)
        assert mem.read_scalar(addr, INT8) == 200 - 256

    def test_float_roundtrip(self, mem):
        addr = mem.heap.base
        mem.write_scalar(addr, FLOAT64, 3.25)
        assert mem.read_scalar(addr, FLOAT64) == 3.25

    def test_float32_quantizes(self, mem):
        addr = mem.heap.base
        mem.write_scalar(addr, FLOAT32, 1.1)
        v = mem.read_scalar(addr, FLOAT32)
        assert v != 1.1 and abs(v - 1.1) < 1e-6

    def test_pointer_roundtrip(self, mem):
        addr = mem.heap.base
        p = PointerType(VOID)
        mem.write_scalar(addr, p, 0xDEADBEEF)
        assert mem.read_scalar(addr, p) == 0xDEADBEEF

    def test_little_endian_layout(self, mem):
        addr = mem.heap.base
        mem.write_scalar(addr, INT32, 1)
        assert mem.read_bytes(addr, 4) == b"\x01\x00\x00\x00"


class TestTraps:
    def test_null_dereference(self, mem):
        with pytest.raises(MemoryTrap, match="null"):
            mem.read_bytes(0, 1)
        with pytest.raises(MemoryTrap, match="null"):
            mem.read_bytes(64, 8)

    def test_unmapped_address(self, mem):
        with pytest.raises(MemoryTrap, match="segmentation"):
            mem.read_bytes(0x5000, 1)

    def test_straddling_segment_end(self, mem):
        with pytest.raises(MemoryTrap):
            mem.read_bytes(mem.heap.end - 4, 8)

    def test_write_to_unmapped(self, mem):
        with pytest.raises(MemoryTrap):
            mem.write_bytes(0xF0000000, b"x")


class TestCStrings:
    def test_roundtrip(self, mem):
        addr = mem.stack.base
        mem.write_cstring(addr, b"hello")
        assert mem.read_cstring(addr) == b"hello"

    def test_empty(self, mem):
        addr = mem.stack.base
        mem.write_cstring(addr, b"")
        assert mem.read_cstring(addr) == b""


class TestGarbageInitialization:
    def test_heap_starts_with_junk(self):
        """Fresh heap memory holds address-dependent garbage so that
        uninitialized reads differ between an object and its replica."""
        mem = Memory()
        a = mem.read_bytes(mem.heap.base, 64)
        b = mem.read_bytes(mem.heap.base + 64, 64)
        assert a != b
        assert a != b"\x00" * 64

    def test_garbage_is_deterministic(self):
        m1, m2 = Memory(), Memory()
        assert m1.read_bytes(m1.heap.base, 256) == m2.read_bytes(m2.heap.base, 256)

    def test_globals_zero_initialized(self):
        mem = Memory()
        assert mem.read_bytes(mem.globals.base, 64) == b"\x00" * 64


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_int32_roundtrip_property(v):
    mem = Memory()
    mem.write_scalar(mem.heap.base, INT32, v)
    assert mem.read_scalar(mem.heap.base, INT32) == v


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1), st.integers(0, 100))
def test_int64_roundtrip_any_offset(v, off):
    mem = Memory()
    mem.write_scalar(mem.heap.base + off, INT64, v)
    assert mem.read_scalar(mem.heap.base + off, INT64) == v


@given(st.binary(min_size=0, max_size=64))
def test_bytes_roundtrip(data):
    mem = Memory()
    mem.write_bytes(mem.stack.base, data)
    assert mem.read_bytes(mem.stack.base, len(data)) == data
