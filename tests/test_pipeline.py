"""Pipeline facade, report rendering, and process-result plumbing tests."""

import pytest

from repro.core import (
    AllLoadsPolicy,
    DpmrCompiler,
    NoDiversity,
    RearrangeHeap,
    ReplicationDesign,
    static_50,
)
from repro.eval import CoverageComponents
from repro.eval.report import (
    conditional_coverage_table,
    coverage_table,
    latency_table,
    overhead_table,
)
from repro.machine import ExitStatus, run_process
from tests.conftest import build_sum_module


class TestDpmrCompiler:
    def test_design_coercion_from_string(self):
        assert DpmrCompiler(design="MDS").design is ReplicationDesign.MDS
        assert DpmrCompiler(design="sds").design is ReplicationDesign.SDS

    def test_invalid_design_rejected(self):
        with pytest.raises(ValueError):
            DpmrCompiler(design="xds")

    def test_variant_name_encodes_configuration(self):
        build = DpmrCompiler(
            design="mds", diversity=RearrangeHeap(), policy=static_50()
        ).compile(build_sum_module())
        assert build.variant_name == "mds/rearrange-heap/static-50%"

    def test_defaults(self):
        c = DpmrCompiler()
        assert isinstance(c.policy, AllLoadsPolicy)
        assert isinstance(c.diversity, NoDiversity)

    def test_input_module_unmodified(self):
        m = build_sum_module()
        before = sum(1 for f in m.defined_functions() for _ in f.instructions())
        DpmrCompiler(design="sds").compile(m)
        after = sum(1 for f in m.defined_functions() for _ in f.instructions())
        assert before == after
        # the source still runs as the untransformed program
        assert run_process(m).status is ExitStatus.NORMAL

    def test_optimize_flag_preserves_behaviour(self):
        golden = run_process(build_sum_module())
        plain = DpmrCompiler(design="sds").compile(build_sum_module())
        optimized = DpmrCompiler(design="sds", optimize=True).compile(
            build_sum_module()
        )
        r_plain = plain.run()
        r_opt = optimized.run()
        assert r_opt.status is ExitStatus.NORMAL
        assert r_opt.output_text == r_plain.output_text == golden.output_text
        assert r_opt.cycles <= r_plain.cycles

    def test_seeded_runs_reproducible(self):
        build = DpmrCompiler(design="sds", diversity=RearrangeHeap()).compile(
            build_sum_module()
        )
        a = build.run(seed=9)
        c = build.run(seed=9)
        assert a.cycles == c.cycles
        assert a.output_text == c.output_text

    def test_different_seeds_change_rearrange_layout(self):
        build = DpmrCompiler(design="sds", diversity=RearrangeHeap()).compile(
            build_sum_module()
        )
        cycles = {build.run(seed=s).cycles for s in range(4)}
        assert len(cycles) > 1  # dummy counts differ per seed


class TestReportRendering:
    def _components(self):
        return CoverageComponents(co=0.5, ndet=0.25, ddet=0.25, total_runs=8)

    def test_coverage_table_contains_rows(self):
        text = coverage_table(
            "T",
            {("v1", "art"): self._components()},
            ["v1"],
            ["art", "mcf"],
        )
        assert "v1" in text and "art" in text and "0.50" in text
        assert "mcf" not in text.splitlines()[-1] or True

    def test_conditional_table(self):
        text = conditional_coverage_table("T", {"v1": self._components()}, ["v1"])
        assert "1.00" in text  # total coverage

    def test_overhead_table_marks_missing(self):
        text = overhead_table("T", {("v1", "art"): 2.5}, ["v1"], ["art", "mcf"])
        assert "2.50x" in text and "--" in text

    def test_latency_table_converts_to_kcycles(self):
        text = latency_table("T", {("v1", "art"): 2500.0}, ["v1"], ["art"])
        assert "2.50" in text


class TestProcessResult:
    def test_first_activation_none_without_faults(self, sum_module):
        r = run_process(sum_module)
        assert r.first_activation is None

    def test_output_text_joins_chunks(self, sum_module):
        r = run_process(sum_module)
        assert r.output_text == "".join(r.output)

    def test_crashed_property(self):
        from repro.ir import INT32, ModuleBuilder, verify_module

        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        b.unreachable()
        verify_module(mb.module)
        r = run_process(mb.module)
        assert r.crashed
