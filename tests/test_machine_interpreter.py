"""Interpreter semantics: arithmetic, memory, control, traps, timing."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import (
    ArrayType,
    FLOAT64,
    GlobalVariable,
    INT32,
    INT64,
    INT8,
    ModuleBuilder,
    PointerType,
    StructType,
    verify_module,
    wrap_int,
)
from repro.machine import ExitStatus, run_process


def _expr_main(build_fn, declare=("print_i64",)):
    from repro.ir import VOID

    mb = ModuleBuilder()
    if "print_i64" in declare:
        mb.declare_external("print_i64", VOID, [INT64])
    if "print_f64" in declare:
        mb.declare_external("print_f64", VOID, [FLOAT64])
    fn, b = mb.define("main", INT32)
    build_fn(mb, b)
    verify_module(mb.module)
    return run_process(mb.module)


class TestArithmeticSemantics:
    def test_c_style_division_truncates_toward_zero(self):
        def body(mb, b):
            b.call("print_i64", [b.sdiv(b.i64(-7), b.i64(2))])
            b.call("print_i64", [b.srem(b.i64(-7), b.i64(2))])
            b.ret(b.i32(0))

        r = _expr_main(body)
        assert r.output_text == "-3-1"

    def test_division_by_zero_crashes(self):
        def body(mb, b):
            b.call("print_i64", [b.sdiv(b.i64(1), b.i64(0))])
            b.ret(b.i32(0))

        r = _expr_main(body)
        assert r.status is ExitStatus.CRASH
        assert "divide" in r.detail

    def test_int32_overflow_wraps(self):
        def body(mb, b):
            big = b.num_cast(b.i64(2**31 - 1), INT32)
            v = b.add(big, b.num_cast(b.i64(1), INT32))
            b.call("print_i64", [b.num_cast(v, INT64)])
            b.ret(b.i32(0))

        assert _expr_main(body).output_text == str(-(2**31))

    def test_float_arithmetic(self):
        def body(mb, b):
            v = b.fdiv(b.fmul(b.f64(3.0), b.f64(5.0)), b.f64(4.0))
            b.call("print_f64", [v])
            b.ret(b.i32(0))

        r = _expr_main(body, declare=("print_f64",))
        assert r.output_text == "3.75"

    def test_shift_ops(self):
        def body(mb, b):
            b.call("print_i64", [b.binop("shl", b.i64(3), b.i64(4))])
            b.call("print_i64", [b.binop("shr", b.i64(256), b.i64(3))])
            b.ret(b.i32(0))

        assert _expr_main(body).output_text == "4832"


class TestMemorySemantics:
    def test_struct_field_store_load(self):
        def body(mb, b):
            s = StructType([INT32, INT64, INT8])
            p = b.alloca(s)
            b.store(b.field_addr(p, 1), b.i64(99))
            b.call("print_i64", [b.load(b.field_addr(p, 1))])
            b.ret(b.i32(0))

        assert _expr_main(body).output_text == "99"

    def test_adjacent_fields_do_not_clobber(self):
        def body(mb, b):
            s = StructType([INT32, INT32])
            p = b.alloca(s)
            b.store(b.field_addr(p, 0), b.i32(1))
            b.store(b.field_addr(p, 1), b.i32(2))
            a = b.num_cast(b.load(b.field_addr(p, 0)), INT64)
            c = b.num_cast(b.load(b.field_addr(p, 1)), INT64)
            b.call("print_i64", [b.add(b.mul(a, b.i64(10)), c)])
            b.ret(b.i32(0))

        assert _expr_main(body).output_text == "12"

    def test_out_of_bounds_heap_write_corrupts_silently(self):
        """Writing one element past a heap array lands in the next chunk's
        header/payload — no trap (this is what DPMR exists to detect)."""

        def body(mb, b):
            a = b.malloc(INT64, b.i64(2))
            b.store(b.elem_addr(a, b.i64(2)), b.i64(13))  # one past the end
            b.call("print_i64", [b.i64(0)])
            b.ret(b.i32(0))

        r = _expr_main(body)
        assert r.status is ExitStatus.NORMAL

    def test_wild_pointer_dereference_traps(self):
        def body(mb, b):
            from repro.ir import ConstInt

            wild = b.int_to_ptr(b.i64(0x7000), INT64)
            b.call("print_i64", [b.load(wild)])
            b.ret(b.i32(0))

        r = _expr_main(body)
        assert r.status is ExitStatus.CRASH

    def test_null_dereference_traps(self):
        def body(mb, b):
            null = b.int_to_ptr(b.i64(0), INT64)
            b.call("print_i64", [b.load(null)])
            b.ret(b.i32(0))

        r = _expr_main(body)
        assert r.status is ExitStatus.CRASH
        assert "null" in r.detail

    def test_stack_frames_are_released(self):
        """Alloca'd memory is reused across calls (dangling stack pointers
        point at reused memory, as on a real stack)."""

        def body(mb, b):
            b.ret(b.i32(0))

        mb = ModuleBuilder()
        from repro.ir import VOID

        mb.declare_external("print_i64", VOID, [INT64])
        leaf, lb = mb.define("leaf", INT64, [INT64], ["x"])
        slot = lb.alloca(INT64)
        lb.store(slot, leaf.params[0])
        lb.ret(lb.load(slot))
        fn, b = mb.define("main", INT32)
        a = b.call("leaf", [b.i64(1)])
        c = b.call("leaf", [b.i64(2)])
        b.call("print_i64", [b.add(a, c)])
        b.ret(b.i32(0))
        verify_module(mb.module)
        r = run_process(mb.module)
        assert r.output_text == "3"


class TestGlobals:
    def test_global_scalar_initializer(self):
        from repro.ir import VOID

        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        mb.add_global("counter", INT64, 41)
        fn, b = mb.define("main", INT32)
        g = mb.module.globals["counter"].ref()
        b.store(g, b.add(b.load(g), b.i64(1)))
        b.call("print_i64", [b.load(g)])
        b.ret(b.i32(0))
        verify_module(mb.module)
        assert run_process(mb.module).output_text == "42"

    def test_global_array_initializer(self):
        from repro.ir import VOID

        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        mb.add_global("table", ArrayType(INT64, 3), [10, 20, 30])
        fn, b = mb.define("main", INT32)
        g = mb.module.globals["table"].ref()
        v = b.load(b.elem_addr(g, b.i64(1)))
        b.call("print_i64", [v])
        b.ret(b.i32(0))
        verify_module(mb.module)
        assert run_process(mb.module).output_text == "20"

    def test_global_pointer_to_global(self):
        from repro.ir import VOID

        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        target = mb.add_global("target", INT64, 7)
        mb.add_global("indirect", PointerType(INT64), target.ref())
        fn, b = mb.define("main", INT32)
        pp = mb.module.globals["indirect"].ref()
        p = b.load(pp)
        b.call("print_i64", [b.load(p)])
        b.ret(b.i32(0))
        verify_module(mb.module)
        assert run_process(mb.module).output_text == "7"


class TestExecutionLimits:
    def test_timeout(self):
        from repro.ir import VOID

        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        with b.while_loop(lambda bb: bb.eq(bb.i64(1), bb.i64(1))):
            pass
        b.ret(b.i32(0))
        verify_module(mb.module)
        r = run_process(mb.module, max_cycles=10_000)
        assert r.status is ExitStatus.TIMEOUT

    def test_cycle_accounting_monotone(self, sum_module):
        r = run_process(sum_module)
        assert r.cycles > r.instructions > 0

    def test_deterministic_cycles(self, sum_module):
        from tests.conftest import build_sum_module

        r1 = run_process(build_sum_module())
        r2 = run_process(build_sum_module())
        assert r1.cycles == r2.cycles
        assert r1.output_text == r2.output_text


class TestArgv:
    def test_main_receives_argc_argv(self):
        from repro.ir import VOID, VOID_PTR

        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        argv_ty = PointerType(ArrayType(PointerType(ArrayType(INT8))))
        fn, b = mb.define("main", INT32, [INT32, argv_ty], ["argc", "argv"])
        b.call("print_i64", [b.num_cast(fn.params[0], INT64)])
        b.ret(b.i32(0))
        verify_module(mb.module)
        r = run_process(mb.module, argv=["prog", "x", "y"])
        assert r.output_text == "3"


@given(st.integers(-(2**63), 2**63 - 1), st.integers(-(2**63), 2**63 - 1))
def test_add_wraps_like_int64(a, c):
    from repro.ir import VOID

    mb = ModuleBuilder()
    mb.declare_external("print_i64", VOID, [INT64])
    fn, b = mb.define("main", INT32)
    b.call("print_i64", [b.add(b.i64(a), b.i64(c))])
    b.ret(b.i32(0))
    r = run_process(mb.module)
    assert r.output_text == str(wrap_int(a + c, 64))
