"""Heap allocator tests: the behaviours the paper's results depend on."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import Memory, HeapAllocator, HeapError, OutOfMemory, MIN_PAYLOAD


@pytest.fixture
def heap():
    return HeapAllocator(Memory())


class TestAllocation:
    def test_returns_aligned_payload(self, heap):
        for size in (1, 7, 24, 100):
            assert heap.malloc(size) % 8 == 0

    def test_minimum_allocation_size(self, heap):
        """§3.4: a 16-byte request still reserves the 24-byte minimum, which
        is why some heap-array-resize injections cannot manifest."""
        assert heap.round_request(16) == MIN_PAYLOAD
        assert heap.round_request(1) == MIN_PAYLOAD
        assert heap.round_request(25) == 32

    def test_distinct_chunks(self, heap):
        a = heap.malloc(32)
        b = heap.malloc(32)
        assert abs(a - b) >= 32

    def test_sequential_layout(self, heap):
        """Bump allocation lays chunks out in order — the source of DPMR's
        implicit diversity (Fig. 2.1): X, Xr, Xs, Y, Yr, Ys."""
        addrs = [heap.malloc(24) for _ in range(4)]
        assert addrs == sorted(addrs)

    def test_payload_size(self, heap):
        a = heap.malloc(40)
        assert heap.payload_size(a) == 40

    def test_out_of_memory(self):
        heap = HeapAllocator(Memory(heap_size=1 << 12))
        with pytest.raises(OutOfMemory):
            for _ in range(1000):
                heap.malloc(64)


class TestFree:
    def test_free_null_is_noop(self, heap):
        heap.free(0)

    def test_lifo_reuse(self, heap):
        """Recently freed chunks are reused first — makes dangling-pointer
        reuse likely, as in real allocators."""
        a = heap.malloc(32)
        heap.malloc(32)
        heap.free(a)
        c = heap.malloc(32)
        assert c == a

    def test_free_writes_metadata_into_payload(self, heap):
        """§2.5.3: dangling readers observe allocator metadata."""
        a = heap.malloc(32)
        before = heap.memory.read_bytes(a, 16)
        heap.free(a)
        after = heap.memory.read_bytes(a, 16)
        assert before != after

    def test_double_free_aborts(self, heap):
        a = heap.malloc(32)
        heap.free(a)
        with pytest.raises(HeapError, match="double free"):
            heap.free(a)

    def test_double_free_after_reallocation_succeeds(self, heap):
        """If the chunk was reallocated in between, the second free is
        'valid' to the allocator and prematurely frees the new owner's
        buffer (§2.5.3 free errors)."""
        a = heap.malloc(32)
        heap.free(a)
        b = heap.malloc(32)
        assert b == a
        heap.free(a)  # no abort: frees b's buffer out from under it

    def test_misaligned_free_aborts(self, heap):
        a = heap.malloc(32)
        with pytest.raises(HeapError, match="misaligned"):
            heap.free(a + 3)

    def test_interior_pointer_free_aborts(self, heap):
        a = heap.malloc(64)
        with pytest.raises(HeapError):
            heap.free(a + 16)

    def test_non_heap_pointer_free_aborts(self, heap):
        with pytest.raises(HeapError, match="non-heap"):
            heap.free(0x1000)

    def test_live_chunk_query(self, heap):
        a = heap.malloc(32)
        assert heap.is_live_chunk(a)
        heap.free(a)
        assert not heap.is_live_chunk(a)


class TestFreeListBehaviour:
    def test_first_fit_splits_nothing_but_reuses_larger(self, heap):
        a = heap.malloc(128)
        heap.free(a)
        b = heap.malloc(24)  # fits in the freed 128-byte chunk
        assert b == a

    def test_small_chunk_not_reused_for_big_request(self, heap):
        a = heap.malloc(24)
        top_before = heap.top
        heap.free(a)
        b = heap.malloc(256)
        assert b != a
        assert heap.top > top_before

    def test_bytes_in_use_accounting(self, heap):
        a = heap.malloc(32)
        b = heap.malloc(64)
        used = heap.bytes_in_use
        heap.free(a)
        assert heap.bytes_in_use == used - 32
        heap.free(b)
        assert heap.bytes_in_use == 0
        assert heap.live_chunks == 0


@given(st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=40))
def test_allocations_never_overlap(sizes):
    heap = HeapAllocator(Memory())
    spans = []
    for s in sizes:
        a = heap.malloc(s)
        spans.append((a, a + heap.round_request(s)))
    spans.sort()
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2


@given(
    st.lists(
        st.tuples(st.integers(1, 256), st.booleans()), min_size=1, max_size=60
    )
)
def test_alloc_free_sequences_keep_invariants(ops):
    """Interleaved malloc/free sequences preserve allocator invariants."""
    heap = HeapAllocator(Memory())
    live = []
    for size, do_free in ops:
        if do_free and live:
            heap.free(live.pop())
        else:
            live.append(heap.malloc(size))
    assert heap.live_chunks == len(live)
    for a in live:
        assert heap.is_live_chunk(a)
