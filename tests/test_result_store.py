"""Round-trip and invalidation behaviour of the persistent result store.

The store's contract (eval/store.py): a hit returns a record bit-identical
to the one stored; a corrupt or truncated entry is silently recomputed
(never crashes a campaign); and the content address changes whenever any
result-affecting input changes — the module text, the variant
configuration, or a result-affecting ``ExecConfig`` knob.
"""

import dataclasses
import json
import os

import pytest

from repro.apps import app_factory
from repro.eval import (
    ExecConfig,
    ResultStore,
    WorkloadHarness,
    diversity_variants,
    experiment_key,
    module_fingerprint,
    run,
    stdapp_variant,
    variant_fingerprint,
)
from repro.eval.store import (
    exec_fingerprint,
    record_from_dict,
    record_to_dict,
)
from repro.eval.variants import Variant
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE
from repro.faultinject.campaign import Campaign


@pytest.fixture(scope="module")
def harness():
    return WorkloadHarness("mcf", app_factory("mcf", 1), seeds=(0,))


@pytest.fixture(scope="module")
def variants():
    return [stdapp_variant()] + diversity_variants("sds")[:2]


def campaign_with_store(harness, variants, store_dir, **cfg):
    config = ExecConfig(jobs=1, store_path=str(store_dir), **cfg)
    return run(harness, variants, kind=HEAP_ARRAY_RESIZE, config=config)


class TestRoundTrip:
    def test_hit_returns_identical_record(self, harness, variants, tmp_path):
        cold = campaign_with_store(harness, variants, tmp_path / "s")
        warm = campaign_with_store(harness, variants, tmp_path / "s")
        assert warm.manifest.store_hits == len(cold.records) > 0
        assert warm.manifest.store_misses == 0
        assert [r.signature() for r in warm.records] == [
            r.signature() for r in cold.records
        ]

    def test_counters_survive_the_round_trip(self, harness, variants, tmp_path):
        config = ExecConfig(jobs=1, store_path=str(tmp_path / "s"), counters=True)
        cold = run(harness, variants, kind=HEAP_ARRAY_RESIZE, config=config)
        warm = run(harness, variants, kind=HEAP_ARRAY_RESIZE, config=config)
        assert [r.result.counters for r in warm.records] == [
            r.result.counters for r in cold.records
        ]

    def test_record_dict_round_trip_is_lossless(self, harness, variants, tmp_path):
        res = campaign_with_store(harness, variants, tmp_path / "s")
        for record in res.records:
            clone = record_from_dict(
                json.loads(json.dumps(record_to_dict(record)))
            )
            assert clone.signature() == record.signature()
            assert clone.result.counters == record.result.counters

    def test_store_is_shared_across_handles(self, harness, variants, tmp_path):
        cold = campaign_with_store(harness, variants, tmp_path / "s")
        store = ResultStore(str(tmp_path / "s"))
        assert len(store) == len(cold.records)
        for key in store.keys():
            assert key in store


class TestCorruption:
    def _entry_paths(self, store_dir):
        paths = []
        for sub in os.listdir(store_dir):
            subdir = os.path.join(store_dir, sub)
            if os.path.isdir(subdir):
                paths.extend(os.path.join(subdir, n) for n in os.listdir(subdir))
        return sorted(paths)

    def test_corrupt_entry_is_recomputed_not_crashed(
        self, harness, variants, tmp_path
    ):
        store_dir = tmp_path / "s"
        cold = campaign_with_store(harness, variants, store_dir)
        victim = self._entry_paths(store_dir)[0]
        with open(victim, "w") as fh:
            fh.write("{ not json at all")
        warm = campaign_with_store(harness, variants, store_dir)
        assert warm.manifest.store_corrupt == 1
        assert warm.manifest.store_misses == 1
        assert warm.manifest.store_hits == len(cold.records) - 1
        assert [r.signature() for r in warm.records] == [
            r.signature() for r in cold.records
        ]

    def test_truncated_entry_is_recomputed(self, harness, variants, tmp_path):
        store_dir = tmp_path / "s"
        cold = campaign_with_store(harness, variants, store_dir)
        victim = self._entry_paths(store_dir)[0]
        text = open(victim).read()
        with open(victim, "w") as fh:
            fh.write(text[: len(text) // 2])
        warm = campaign_with_store(harness, variants, store_dir)
        assert warm.manifest.store_corrupt == 1
        assert [r.signature() for r in warm.records] == [
            r.signature() for r in cold.records
        ]

    def test_checksum_mismatch_is_treated_as_corrupt(
        self, harness, variants, tmp_path
    ):
        # Valid JSON whose payload was tampered with: the checksum guards
        # against silent bit-rot, not just truncation.
        store_dir = tmp_path / "s"
        cold = campaign_with_store(harness, variants, store_dir)
        victim = self._entry_paths(store_dir)[0]
        entry = json.load(open(victim))
        entry["record"]["result"]["cycles"] += 1
        json.dump(entry, open(victim, "w"))
        warm = campaign_with_store(harness, variants, store_dir)
        assert warm.manifest.store_corrupt == 1
        assert [r.signature() for r in warm.records] == [
            r.signature() for r in cold.records
        ]
        # the rewritten entry is valid again
        again = campaign_with_store(harness, variants, store_dir)
        assert again.manifest.store_corrupt == 0
        assert again.manifest.store_hits == len(cold.records)


class TestKeyInvalidation:
    def _key(self, module_sha, variant_fp, exec_fp, site="s", seed=0):
        return experiment_key(
            workload="w",
            kind=HEAP_ARRAY_RESIZE,
            percent=50,
            site=site,
            variant_fp=variant_fp,
            seed=seed,
            run=0,
            argv=(),
            timeout=1000,
            exec_fp=exec_fp,
            module_sha=module_sha,
        )

    def test_key_changes_when_module_text_changes(self):
        campaign = Campaign(app_factory("mcf", 1), HEAP_ARRAY_RESIZE)
        pristine_sha = module_fingerprint(campaign.pristine)
        faulty = campaign.faulty_module(campaign.sites[0])
        faulty_sha = module_fingerprint(faulty)
        assert pristine_sha != faulty_sha
        vfp = variant_fingerprint(stdapp_variant())
        efp = exec_fingerprint(ExecConfig())
        assert self._key(pristine_sha, vfp, efp) != self._key(faulty_sha, vfp, efp)

    def test_key_changes_when_exec_config_changes(self):
        base = ExecConfig()
        changed = dataclasses.replace(base, timeout_factor=7)
        assert exec_fingerprint(base) != exec_fingerprint(changed)
        vfp = variant_fingerprint(stdapp_variant())
        assert self._key("m", vfp, exec_fingerprint(base)) != self._key(
            "m", vfp, exec_fingerprint(changed)
        )

    def test_result_transparent_knobs_do_not_change_the_key(self):
        # Worker count, incremental builds, tracing, and resilience knobs
        # are proven bit-transparent: varying them must still hit.
        base = ExecConfig()
        for variation in (
            dataclasses.replace(base, jobs=8),
            dataclasses.replace(base, incremental=False),
            dataclasses.replace(base, counters=True),
            dataclasses.replace(base, retries=9, exp_timeout_s=1.5),
            dataclasses.replace(base, store_path="/elsewhere"),
        ):
            assert exec_fingerprint(variation) == exec_fingerprint(base)

    def test_key_changes_with_variant_configuration(self):
        fps = {
            variant_fingerprint(v)
            for v in [stdapp_variant()] + diversity_variants("sds")
        }
        assert len(fps) == 8  # stdapp + seven distinct diversity variants
        sds = Variant(name="x", design="sds")
        mds = Variant(name="x", design="mds")
        assert variant_fingerprint(sds) != variant_fingerprint(mds)

    def test_key_discriminates_site_seed_and_kind(self):
        vfp = variant_fingerprint(stdapp_variant())
        efp = exec_fingerprint(ExecConfig())
        base = self._key("m", vfp, efp, site="a", seed=0)
        assert base != self._key("m", vfp, efp, site="b", seed=0)
        assert base != self._key("m", vfp, efp, site="a", seed=1)

    def test_cross_kind_campaigns_do_not_collide(self, harness, tmp_path):
        variants = [stdapp_variant()]
        config = ExecConfig(jobs=1, store_path=str(tmp_path / "s"))
        resize = run(harness, variants, kind=HEAP_ARRAY_RESIZE, config=config)
        free = run(harness, variants, kind=IMMEDIATE_FREE, config=config)
        assert resize.manifest.store_hits == 0
        assert free.manifest.store_hits == 0
