"""Command-line argument handling tests (§3.1.1, Fig. 3.1)."""

import pytest

from repro.core import DpmrCompiler
from repro.ir import (
    ArrayType,
    INT32,
    INT64,
    INT8,
    ModuleBuilder,
    PointerType,
    VOID,
    VOID_PTR,
    verify_module,
)
from repro.machine import ExitStatus, run_process

ARGV_T = PointerType(ArrayType(PointerType(ArrayType(INT8))))


def _argv_module():
    """main(argc, argv) prints argc, the length of argv[1], and argv[1]."""
    mb = ModuleBuilder()
    mb.declare_external("print_i64", VOID, [INT64])
    mb.declare_external("print_str", VOID, [VOID_PTR])
    mb.declare_external("strlen", INT64, [VOID_PTR])
    fn, b = mb.define("main", INT32, [INT32, ARGV_T], ["argc", "argv"])
    b.call("print_i64", [b.num_cast(fn.params[0], INT64)])
    arg1 = b.load(b.elem_addr(fn.params[1], b.i64(1)))
    b.call("print_i64", [b.call("strlen", [arg1])])
    b.call("print_str", [arg1])
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


def test_untransformed_argv():
    r = run_process(_argv_module(), argv=["prog", "hello"])
    assert r.status is ExitStatus.NORMAL
    assert r.output_text == "25hello"


@pytest.mark.parametrize("design", ["sds", "mds"])
def test_transformed_main_replicates_argv(design):
    """The generated main replicates command-line memory before mainAug."""
    build = DpmrCompiler(design=design).compile(_argv_module())
    r = build.run(argv=["prog", "hello"])
    assert r.status is ExitStatus.NORMAL, (design, r.detail)
    assert r.output_text == "25hello"


@pytest.mark.parametrize("design", ["sds", "mds"])
def test_main_signature_unchanged(design):
    """§3.1.1: the function type of main() must not change."""
    build = DpmrCompiler(design=design).compile(_argv_module())
    main = build.module.functions["main"]
    assert len(main.type.params) == 2
    aug = build.module.functions["mainAug"]
    assert len(aug.type.params) > 2  # argv gained replica (and shadow) params


def test_zero_arg_main_gets_trivial_stub(linked_list_module):
    build = DpmrCompiler(design="sds").compile(linked_list_module)
    main = build.module.functions["main"]
    assert len(main.type.params) == 0
    r = build.run()
    assert r.status is ExitStatus.NORMAL


@pytest.mark.parametrize("design", ["sds", "mds"])
def test_argv_strings_fully_traversable(design):
    """Loop over all argv entries through replicated pointers."""
    mb = ModuleBuilder()
    mb.declare_external("print_i64", VOID, [INT64])
    mb.declare_external("strlen", INT64, [VOID_PTR])
    fn, b = mb.define("main", INT32, [INT32, ARGV_T], ["argc", "argv"])
    total = b.alloca(INT64)
    b.store(total, b.i64(0))
    argc64 = b.num_cast(fn.params[0], INT64)
    with b.for_range(argc64) as i:
        arg = b.load(b.elem_addr(fn.params[1], i))
        b.store(total, b.add(b.load(total), b.call("strlen", [arg])))
    b.call("print_i64", [b.load(total)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    golden = run_process(mb.module, argv=["p", "ab", "cdef"])
    build = DpmrCompiler(design=design).compile(mb.module)
    r = build.run(argv=["p", "ab", "cdef"])
    assert r.status is ExitStatus.NORMAL, r.detail
    assert r.output_text == golden.output_text == "7"
