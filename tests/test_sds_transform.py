"""SDS transformation tests (Tables 2.6/2.7, Figs. 2.9/2.10)."""

import pytest

from repro.core import DpmrCompiler, SdsTransform
from repro.core.transform import RENAMED_ENTRY
from repro.ir import (
    GlobalRef,
    INT32,
    INT64,
    ModuleBuilder,
    PointerType,
    StructType,
    VOID,
    verify_module,
)
from repro.ir import instructions as ins
from repro.machine import ExitStatus, run_process
from tests.conftest import build_linked_list_module, build_sum_module


@pytest.fixture
def sds_build(linked_list_module):
    return DpmrCompiler(design="sds").compile(linked_list_module)


class TestModuleStructure:
    def test_main_renamed_and_stub_generated(self, sds_build):
        fns = sds_build.module.functions
        assert RENAMED_ENTRY in fns
        assert "main" in fns
        assert not fns["main"].is_external

    def test_external_calls_rerouted_to_wrappers(self, sds_build):
        fns = sds_build.module.functions
        assert "print_i64_efw" in fns
        assert fns["print_i64_efw"].is_external
        called = {
            i.callee
            for f in sds_build.module.defined_functions()
            for i in f.instructions()
            if isinstance(i, ins.Call) and i.is_direct
        }
        assert "print_i64" not in called
        assert "print_i64_efw" in called

    def test_runtime_externals_declared(self, sds_build):
        for name in ("dpmr_detect", "dpmr_replica_malloc", "dpmr_replica_free"):
            assert sds_build.module.functions[name].is_external

    def test_augmented_create_node_signature(self, sds_build):
        """Fig. 2.9: createNode(rvSop, data, last, last_r, last_s)."""
        fn = sds_build.module.functions["createNode"]
        names = [p.name for p in fn.params]
        assert names == ["rvSop", "data", "last", "last_r", "last_s"]

    def test_augmented_get_sum_signature(self, sds_build):
        """Fig. 2.10: getSum(n, n_r, n_s) — int return adds no slot."""
        fn = sds_build.module.functions["getSum"]
        assert [p.name for p in fn.params] == ["n", "n_r", "n_s"]

    def test_transformed_module_verifies(self, sds_build):
        verify_module(sds_build.module)

    def test_triple_allocation_per_pointerful_malloc(self, sds_build):
        """createNode's malloc becomes app malloc + replica malloc (via the
        diversity runtime) + shadow malloc."""
        fn = sds_build.module.functions["createNode"]
        mallocs = [i for i in fn.instructions() if isinstance(i, ins.Malloc)]
        replica_calls = [
            i
            for i in fn.instructions()
            if isinstance(i, ins.Call)
            and i.is_direct
            and i.callee == "dpmr_replica_malloc"
        ]
        assert len(mallocs) == 2  # application object + shadow object
        assert len(replica_calls) == 1


class TestGlobals:
    def _module_with_globals(self):
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        target = mb.add_global("t", INT64, 5)
        mb.add_global("p", PointerType(INT64), target.ref())
        fn, b = mb.define("main", INT32)
        g = mb.module.globals["p"].ref()
        loaded = b.load(g)
        b.call("print_i64", [b.load(loaded)])
        b.ret(b.i32(0))
        verify_module(mb.module)
        return mb.module

    def test_replica_and_shadow_globals_created(self):
        m = self._module_with_globals()
        out = DpmrCompiler(design="sds").compile(m).module
        assert "t" in out.globals and "t_r" in out.globals
        assert "p" in out.globals and "p_r" in out.globals
        assert "p_s" in out.globals  # p holds a pointer → shadow exists
        assert "t_s" not in out.globals  # int64 global has null shadow

    def test_sds_replica_pointer_initializer_identical(self):
        """SDS replica memory holds identical pointers (Fig. 2.3)."""
        m = self._module_with_globals()
        out = DpmrCompiler(design="sds").compile(m).module
        init = out.globals["p_r"].initializer
        assert isinstance(init, GlobalRef) and init.name == "t"

    def test_shadow_global_initializer_points_to_replicas(self):
        m = self._module_with_globals()
        out = DpmrCompiler(design="sds").compile(m).module
        rop, nsop = out.globals["p_s"].initializer
        assert isinstance(rop, GlobalRef) and rop.name == "t_r"
        assert nsop is None  # st(int64) = ∅

    def test_global_program_runs_correctly(self):
        m = self._module_with_globals()
        golden = run_process(m)
        r = DpmrCompiler(design="sds").compile(m).run()
        assert r.status is ExitStatus.NORMAL
        assert r.output_text == golden.output_text == "5"


class TestBehaviouralEquivalence:
    def test_linked_list_output_preserved(self, linked_list_module, sds_build):
        golden = run_process(linked_list_module)
        r = sds_build.run()
        assert r.status is ExitStatus.NORMAL
        assert r.output_text == golden.output_text

    def test_sum_output_preserved(self):
        m = build_sum_module(17)
        golden = run_process(m)
        r = DpmrCompiler(design="sds").compile(m).run()
        assert r.output_text == golden.output_text

    def test_overhead_in_paper_range(self, linked_list_module, sds_build):
        """§3.7: all-loads SDS overheads land between ~2x and ~5x."""
        golden = run_process(linked_list_module)
        r = sds_build.run()
        overhead = r.cycles / golden.cycles
        assert 1.5 < overhead < 6.0

    def test_pointer_returned_through_rvsop(self, sds_build):
        """createNode returns a pointer: callers recover ROP/NSOP via the
        rvSop slot, so getSum still traverses replica structures correctly
        (checked behaviourally by the equivalence tests; here structurally)."""
        fn = sds_build.module.functions["createNode"]
        stores = [i for i in fn.instructions() if isinstance(i, ins.Store)]
        rv_stores = [
            s
            for s in stores
            if any(
                getattr(op, "name", "") == "rvSop" for op in s.operands()
            )
        ]
        # ROP and NSOP stored through rvSop field addresses (2 fieldaddr uses)
        fas = [
            i
            for i in fn.instructions()
            if isinstance(i, ins.FieldAddr)
            and getattr(i.pointer, "name", "") == "rvSop"
        ]
        assert len(fas) == 2


class TestRestrictions:
    def test_int_to_pointer_rejected(self):
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        p = b.int_to_ptr(b.i64(0x100000), INT64)
        b.store(p, b.i64(1))
        b.ret(b.i32(0))
        verify_module(mb.module)
        from repro.core import DpmrTransformError

        with pytest.raises(DpmrTransformError, match="int-to-pointer"):
            DpmrCompiler(design="sds").compile(mb.module)

    def test_reserved_runtime_name_rejected(self):
        mb = ModuleBuilder()
        mb.declare_external("dpmr_detect", VOID, [INT32])
        fn, b = mb.define("main", INT32)
        b.ret(b.i32(0))
        from repro.core import DpmrTransformError

        with pytest.raises(DpmrTransformError, match="reserved"):
            DpmrCompiler(design="sds").compile(mb.module)
