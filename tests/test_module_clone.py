"""Structural module cloning (ir/module.py) — the campaign snapshot primitive.

``Module.clone()`` lets a campaign build one pristine module per workload and
derive every faulty build from it, instead of re-running the program factory
per site.  That is only sound if a clone is (a) structurally identical to its
original and (b) fully isolated under mutation: injecting a fault into one
clone must leave the pristine module and every sibling clone untouched —
including in copy-on-write mode, where unchanged functions are *shared*.
"""

import pytest

from repro.apps import WORKLOAD_ORDER, app_factory
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE
from repro.faultinject.campaign import Campaign
from repro.faultinject.injector import enumerate_sites, inject
from repro.ir.printer import format_function, format_module, function_fingerprint


@pytest.fixture(scope="module", params=list(WORKLOAD_ORDER))
def module(request):
    return app_factory(request.param, 1)()


class TestStructuralEquality:
    def test_clone_prints_identically(self, module):
        assert format_module(module.clone()) == format_module(module)

    def test_clone_shares_no_ir_objects(self, module):
        clone = module.clone()
        for name, fn in module.functions.items():
            cfn = clone.functions[name]
            assert cfn is not fn
            for b, cb in zip(fn.blocks, cfn.blocks):
                assert cb is not b
                assert cb.instructions is not b.instructions
                for i, ci in zip(b.instructions, cb.instructions):
                    assert ci is not i
        for name, g in module.globals.items():
            assert clone.globals[name] is not g

    def test_clone_preserves_function_and_global_order(self, module):
        clone = module.clone()
        assert list(clone.functions) == list(module.functions)
        assert list(clone.globals) == list(module.globals)

    def test_cow_clone_shares_unchanged_functions(self, module):
        clone = module.clone(mutable_functions=())
        for name, fn in module.functions.items():
            assert clone.functions[name] is fn

    def test_cow_clone_deep_copies_only_requested(self, module):
        some = next(n for n, f in module.functions.items() if not f.is_external)
        clone = module.clone(mutable_functions=(some,))
        assert clone.functions[some] is not module.functions[some]
        for name, fn in module.functions.items():
            if name != some:
                assert clone.functions[name] is fn

    def test_fresh_registers_and_labels_continue_from_original(self):
        # Cloned functions must keep allocating registers/labels from where
        # the original left off, or later passes could collide names.
        from repro.ir.types import IntType

        mine = app_factory("art", 1)()
        for name, fn in mine.functions.items():
            if fn.is_external:
                continue
            cfn = mine.clone().functions[name]
            assert cfn.new_register(IntType(32)).name == fn.new_register(IntType(32)).name
            break


class TestMutationIsolation:
    @pytest.mark.parametrize("kind", [HEAP_ARRAY_RESIZE, IMMEDIATE_FREE])
    def test_injecting_into_clone_leaves_pristine_untouched(self, module, kind):
        sites = enumerate_sites(module, kind)
        if not sites:
            pytest.skip("no sites of this kind")
        before = format_module(module)
        inject(module.clone(mutable_functions=(sites[0].function,)), sites[0], 50)
        assert format_module(module) == before

    @pytest.mark.parametrize("kind", [HEAP_ARRAY_RESIZE, IMMEDIATE_FREE])
    def test_sibling_clones_are_isolated(self, module, kind):
        sites = enumerate_sites(module, kind)
        if len(sites) < 2:
            pytest.skip("needs two sites")
        a = inject(module.clone(mutable_functions=(sites[0].function,)), sites[0], 50)
        fingerprint_a = function_fingerprint(a.functions[sites[0].function])
        b = inject(module.clone(mutable_functions=(sites[1].function,)), sites[1], 50)
        # Injecting b's fault must not have touched a (or the pristine).
        assert function_fingerprint(a.functions[sites[0].function]) == fingerprint_a
        assert format_function(a.functions[sites[0].function]) != format_function(
            b.functions[sites[1].function]
        )

    def test_mutating_clone_globals_is_isolated(self, module):
        if not module.globals:
            pytest.skip("no globals")
        clone = module.clone(mutable_functions=())
        name = next(iter(clone.globals))
        clone.globals[name].initializer = b"clobbered"
        assert module.globals[name].initializer != b"clobbered"


class TestCampaignSnapshot:
    def test_faulty_module_isolation_via_campaign(self):
        camp = Campaign(app_factory("mcf", 1), HEAP_ARRAY_RESIZE)
        before = format_module(camp.pristine)
        built = [camp.faulty_module(s) for s in camp.sites]
        assert format_module(camp.pristine) == before
        texts = {format_module(m) for m in built}
        assert len(texts) == len(built)  # every site yields a distinct module

    def test_campaign_runs_factory_once(self):
        calls = []
        base = app_factory("mcf", 1)

        def counting_factory():
            calls.append(1)
            return base()

        camp = Campaign(counting_factory, HEAP_ARRAY_RESIZE)
        assert camp.sites  # site enumeration reuses the pristine snapshot
        camp.faulty_module(camp.sites[0])
        camp.pristine_module()
        assert len(calls) == 1
