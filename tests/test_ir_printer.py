"""Printer tests: every instruction kind renders, fault sites are visible."""

from repro.ir import (
    INT32,
    INT64,
    ModuleBuilder,
    PointerType,
    StructType,
    VOID,
    format_function,
    format_instruction,
    format_module,
)
from repro.ir import instructions as ins
from tests.conftest import build_linked_list_module


def _rich_module():
    """Touches every instruction kind once."""
    s = StructType([INT64, PointerType(INT64)])
    mb = ModuleBuilder("rich")
    mb.declare_external("print_i64", VOID, [INT64])
    mb.add_global("g", INT64, 7)
    callee, cb = mb.define("callee", INT64, [INT64], ["x"])
    cb.ret(callee.params[0])
    fn, b = mb.define("main", INT32)
    box = b.malloc(s)
    slot = b.alloca(INT64)
    arr = b.malloc(INT64, b.i64(4))
    b.store(slot, b.i64(1))
    v = b.load(slot)
    fa = b.field_addr(box, 0)
    ea = b.elem_addr(arr, b.i64(2))
    pc = b.ptr_cast(arr, INT64)
    pi = b.ptr_to_int(pc)
    ip = b.int_to_ptr(pi, INT64)
    t = b.add(v, b.i64(2))
    c = b.slt(t, b.i64(10))
    nc = b.num_cast(t, INT32)
    fp = b.func_addr(callee)
    r = b.call(fp, [t])
    r2 = b.call("callee", [r])
    b.call("print_i64", [r2])
    with b.if_then(c):
        b.store(slot, b.i64(9))
    b.free(arr)
    b.free(box)
    b.ret(b.i32(0))
    return mb.module


def test_every_instruction_formats():
    m = _rich_module()
    for f in m.defined_functions():
        for inst in f.instructions():
            text = format_instruction(inst)
            assert text and "unknown" not in text


def test_format_function_and_module():
    m = _rich_module()
    fn_text = format_function(m.functions["main"])
    assert "func @main" in fn_text
    assert "malloc" in fn_text and "ptrcast" in fn_text
    mod_text = format_module(m)
    assert "global @g" in mod_text
    assert "extern func @print_i64" in mod_text


def test_fault_site_annotation_rendered():
    from repro.faultinject import HEAP_ARRAY_RESIZE, enumerate_sites, inject

    m = build_linked_list_module()
    from repro.faultinject import IMMEDIATE_FREE

    site = enumerate_sites(m, IMMEDIATE_FREE)[0]
    inject(m, site)
    text = format_function(m.functions[site.function])
    assert "fault-site=" in text


def test_branch_and_jump_rendering():
    assert "jump done" == format_instruction(ins.Jump("done"))
    text = format_instruction(ins.Unreachable())
    assert text == "unreachable"
